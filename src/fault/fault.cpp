#include "fault/fault.hpp"

#include "obs/obs.hpp"
#include "util/rng.hpp"

namespace spooftrack::fault {

std::string_view site_name(Site site) noexcept {
  switch (site) {
    case Site::kFeedOutage:
      return "feed_outage";
    case Site::kFeedStale:
      return "feed_stale";
    case Site::kTracerouteLoss:
      return "traceroute_loss";
    case Site::kTracerouteTruncate:
      return "traceroute_truncate";
    case Site::kHoneypotDrop:
      return "honeypot_drop";
    case Site::kHoneypotDuplicate:
      return "honeypot_duplicate";
    case Site::kDeployFailure:
      return "deploy_failure";
    case Site::kJournalPreWrite:
      return "journal_pre_write";
    case Site::kJournalMidRecord:
      return "journal_mid_record";
    case Site::kJournalPreRename:
      return "journal_pre_rename";
    case Site::kJournalPreFsync:
      return "journal_pre_fsync";
  }
  return "unknown";
}

bool FaultPlan::any() const noexcept {
  return any_feed() || any_traceroute() || any_honeypot() || any_deploy();
}

FaultPlan& FaultPlan::set_all(double p) noexcept {
  feed_outage_prob = p;
  feed_stale_prob = p;
  traceroute_loss_prob = p;
  traceroute_truncate_prob = p;
  honeypot_drop_prob = p;
  honeypot_duplicate_prob = p;
  deploy_failure_prob = p;
  return *this;
}

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan), enabled_(plan.any()) {}

double FaultInjector::site_prob(Site site) const noexcept {
  switch (site) {
    case Site::kFeedOutage:
      return plan_.feed_outage_prob;
    case Site::kFeedStale:
      return plan_.feed_stale_prob;
    case Site::kTracerouteLoss:
      return plan_.traceroute_loss_prob;
    case Site::kTracerouteTruncate:
      return plan_.traceroute_truncate_prob;
    case Site::kHoneypotDrop:
      return plan_.honeypot_drop_prob;
    case Site::kHoneypotDuplicate:
      return plan_.honeypot_duplicate_prob;
    case Site::kDeployFailure:
      return plan_.deploy_failure_prob;
    case Site::kJournalPreWrite:
    case Site::kJournalMidRecord:
    case Site::kJournalPreRename:
    case Site::kJournalPreFsync:
      // Kill-points are ordinal-triggered (crashes()), never probabilistic.
      return 0.0;
  }
  return 0.0;
}

double FaultInjector::draw(Site site, std::uint64_t a,
                           std::uint64_t b) const noexcept {
  // (seed, hash_combine(site, a, b)) — the same stateless salting the
  // MeasurementDriver uses, so a draw depends on nothing but its
  // identifiers. The top 53 bits give a uniform double in [0, 1).
  const std::uint64_t h = util::hash_combine(
      plan_.seed,
      util::hash_combine(static_cast<std::uint64_t>(site),
                         util::hash_combine(a, b)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultInjector::fires(Site site, std::uint64_t a,
                          std::uint64_t b) const noexcept {
  if (!enabled_) return false;
  const double p = site_prob(site);
  if (p <= 0.0) return false;
  return draw(site, a, b) < p;
}

std::uint64_t FaultInjector::mix(Site site, std::uint64_t a,
                                 std::uint64_t b) const noexcept {
  // Distinct from draw()'s hash (extra finalizer) so the truncation point
  // is independent of whether truncation fires.
  return util::mix64(util::hash_combine(
      plan_.seed ^ 0x5EC0DDA57ULL,
      util::hash_combine(static_cast<std::uint64_t>(site),
                         util::hash_combine(a, b))));
}

SimulatedCrash::SimulatedCrash(Site site, std::uint64_t ordinal)
    : std::runtime_error("simulated crash at " + std::string(site_name(site)) +
                         " barrier #" + std::to_string(ordinal)),
      site_(site),
      ordinal_(ordinal) {}

void FaultInjector::check_crash(Site site, std::uint64_t ordinal) const {
  if (!crashes(site, ordinal)) return;
  OBS_COUNT("fault.crash.triggered", 1);
  throw SimulatedCrash(site, ordinal);
}

std::string_view grade_name(Grade grade) noexcept {
  switch (grade) {
    case Grade::kGood:
      return "good";
    case Grade::kDegraded:
      return "degraded";
    case Grade::kFailed:
      return "failed";
  }
  return "unknown";
}

Grade grade_config(const ConfigQuality& quality,
                   const FaultPlan& plan) noexcept {
  if (quality.deploy_attempts > 1) return Grade::kDegraded;
  const std::uint64_t feed_total =
      std::uint64_t{quality.feed_entries} + quality.feed_faults;
  if (feed_total > 0 &&
      static_cast<double>(quality.feed_faults) >
          plan.degraded_feed_fraction * static_cast<double>(feed_total)) {
    return Grade::kDegraded;
  }
  if (quality.traces > 0 &&
      static_cast<double>(quality.trace_faults) >
          plan.degraded_trace_fraction * static_cast<double>(quality.traces)) {
    return Grade::kDegraded;
  }
  return Grade::kGood;
}

}  // namespace spooftrack::fault
