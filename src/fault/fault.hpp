// spooftrack::fault — deterministic, seeded fault injection for the
// measurement plane.
//
// The paper's pipeline works on the real Internet only because it tolerates
// dirty inputs: route collectors miss RIB dumps, traceroutes stall at
// unresponsive hops, honeypot capture is lossy, and PEERING announcements
// occasionally fail to stick. This subsystem makes that degraded operation
// a first-class, *measured* scenario: every injection site draws from a
// stateless hash of (seed, site, config, entity) — the same salting
// discipline as the MeasurementDriver — so a fault schedule is
// byte-reproducible for any worker count and any component can re-derive
// the same draw independently.
//
// Two properties callers lean on (tests/test_fault.cpp pins both):
//
//  * Disabled is a provable no-op. A FaultInjector with every probability
//    at zero never fires and every injection site takes its pre-existing
//    branch, so outputs are bit-identical to a build without the fault
//    layer.
//  * Draws are monotone in the rate. fires() compares one fixed hash
//    against the probability, so the faults fired at rate p are a subset
//    of those fired at rate q > p under the same seed — degradation sweeps
//    compare like with like, and quality metrics degrade monotonically by
//    construction, not in expectation.
//
// The fault model (distributions, seed derivations, degradation semantics)
// is a documented contract: see docs/faults.md. Every `fault.*` metric
// emitted at an injection site must appear there
// (FaultDocsContract.EveryEmittedFaultMetricIsDocumented).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace spooftrack::fault {

/// Injection sites. Values are part of the seed-derivation contract
/// (docs/faults.md): a draw hashes (seed, site value, a, b), so renumbering
/// reshuffles every fault schedule. The kJournal* sites are kill-points —
/// deterministic crash barriers inside the campaign journal
/// (docs/checkpointing.md), triggered by ordinal rather than probability.
enum class Site : std::uint64_t {
  kFeedOutage = 1,          // collector misses a peer's export entirely
  kFeedStale = 2,           // collector snapshot predates the announcement
  kTracerouteLoss = 3,      // probe result never arrives
  kTracerouteTruncate = 4,  // probe result cut short mid-path
  kHoneypotDrop = 5,        // capture pipeline loses a packet
  kHoneypotDuplicate = 6,   // capture merge delivers a packet twice
  kDeployFailure = 7,       // configuration deployment attempt fails
  kJournalPreWrite = 8,     // before any byte of a journal record
  kJournalMidRecord = 9,    // after half a record's frame (torn write)
  kJournalPreRename = 10,   // segment sealed+fsynced, before the rename
  kJournalPreFsync = 11,    // segment renamed, before the directory fsync
};

std::string_view site_name(Site site) noexcept;

/// The fault model for one run: per-site probabilities, the seed every
/// draw derives from, the deploy retry budget, and the thresholds that
/// turn per-config fault counts into quality grades. All probabilities
/// default to zero (faults disabled).
struct FaultPlan {
  std::uint64_t seed = 0xFA170ULL;

  /// Per (config, peer): the collector missed this peer's export.
  double feed_outage_prob = 0.0;
  /// Per (config, peer): the snapshot is stale — the exported AS-path is
  /// truncated before the announcement seed, so it yields no votes.
  double feed_stale_prob = 0.0;
  /// Per (config-round salt, probe): the whole traceroute is lost.
  double traceroute_loss_prob = 0.0;
  /// Per (config-round salt, probe): the traceroute is cut short at a
  /// hash-derived hop and never reaches the target.
  double traceroute_truncate_prob = 0.0;
  /// Per ingested packet: capture loses it before the honeypot sees it.
  double honeypot_drop_prob = 0.0;
  /// Per ingested packet: capture merge delivers it twice.
  double honeypot_duplicate_prob = 0.0;
  /// Per (config, attempt): this deployment attempt fails transiently.
  double deploy_failure_prob = 0.0;

  /// Extra deployment attempts after the first failure; a config whose
  /// first 1 + budget attempts all fail is abandoned (grade kFailed, no
  /// measurement, matrix row all-missing).
  std::uint32_t deploy_retry_budget = 2;

  /// Retry pacing: attempt k (k = 1 after the first failure) waits
  /// min(cap, base << (k - 1)) milliseconds of *simulated* time, halved and
  /// topped up with a seeded jitter draw ("equal jitter"). The clock is
  /// simulated — deploys never sleep — but the schedule is part of the
  /// deterministic contract: `deploy.retry.backoff_steps` /
  /// `deploy.retry.backoff_ms` count it, and the campaign wall-clock model
  /// consumes it when planning real PEERING runs.
  std::uint32_t deploy_backoff_base_ms = 250;
  std::uint32_t deploy_backoff_cap_ms = 8000;

  /// Deterministic kill-point (docs/checkpointing.md): the crash_at-th time
  /// the journal passes `crash_site`'s barrier, a SimulatedCrash is thrown.
  /// 0 disables crashes. Ordinals are 1-based and counted per site by the
  /// journal writer, whose barriers run in globally-serialized commit
  /// order, so a kill-point fires at the same logical instant for any
  /// worker count or pipeline depth.
  Site crash_site = Site::kJournalPreWrite;
  std::uint64_t crash_at = 0;

  /// Grade thresholds: a config is kDegraded when the faulted fraction of
  /// its feed entries or traceroutes exceeds these, or when deployment
  /// needed a retry.
  double degraded_feed_fraction = 0.05;
  double degraded_trace_fraction = 0.05;

  /// Any injection probability nonzero? (Kill-points do not count: a
  /// crash-only plan must not switch the measurement plane into its
  /// fault-accounting mode, or a zero-rate crash plan would no longer be
  /// bit-identical to a fault-free run.)
  bool any() const noexcept;
  /// Kill-point armed?
  bool any_crash() const noexcept { return crash_at > 0; }
  bool any_feed() const noexcept {
    return feed_outage_prob > 0.0 || feed_stale_prob > 0.0;
  }
  bool any_traceroute() const noexcept {
    return traceroute_loss_prob > 0.0 || traceroute_truncate_prob > 0.0;
  }
  bool any_honeypot() const noexcept {
    return honeypot_drop_prob > 0.0 || honeypot_duplicate_prob > 0.0;
  }
  bool any_deploy() const noexcept { return deploy_failure_prob > 0.0; }

  /// Sets every injection probability to `p` (budgets and thresholds are
  /// untouched). Convenience for sweeps.
  FaultPlan& set_all(double p) noexcept;
};

/// Stateless deterministic fault source. Thread-safe: draws are pure
/// functions of (plan seed, site, a, b), so any worker can evaluate any
/// draw in any order with identical results, and accounting code can
/// re-derive a component's draws without plumbing counters through it.
class FaultInjector {
 public:
  /// Disabled injector: enabled() is false and fires() never fires.
  FaultInjector() = default;
  explicit FaultInjector(const FaultPlan& plan);

  const FaultPlan& plan() const noexcept { return plan_; }
  bool enabled() const noexcept { return enabled_; }

  /// Uniform [0, 1) draw for (site, a, b); pure in the plan seed.
  double draw(Site site, std::uint64_t a, std::uint64_t b) const noexcept;

  /// Whether the site's fault fires for (a, b): draw < site probability.
  /// Always false when disabled. Monotone in the site probability.
  bool fires(Site site, std::uint64_t a, std::uint64_t b) const noexcept;

  /// Raw 64-bit mix for secondary choices (e.g. the truncation hop).
  /// Independent of the threshold draw for the same (site, a, b).
  std::uint64_t mix(Site site, std::uint64_t a,
                    std::uint64_t b) const noexcept;

  /// Whether the plan's kill-point fires at this barrier crossing: true iff
  /// crash_at != 0, site == crash_site and ordinal == crash_at. The caller
  /// supplies the 1-based per-site ordinal, keeping the injector stateless.
  bool crashes(Site site, std::uint64_t ordinal) const noexcept {
    return plan_.crash_at != 0 && site == plan_.crash_site &&
           ordinal == plan_.crash_at;
  }

  /// Throws SimulatedCrash when crashes(site, ordinal).
  void check_crash(Site site, std::uint64_t ordinal) const;

 private:
  double site_prob(Site site) const noexcept;

  FaultPlan plan_{};
  bool enabled_ = false;
};

/// Thrown by FaultInjector::check_crash at an armed kill-point. Models an
/// operator restart / power loss at a journal barrier: the process state is
/// lost, the on-disk journal is whatever the barriers before the crash made
/// durable. The recovery harness (tests/test_journal.cpp) catches it,
/// reopens the journal and pins that the resumed run is byte-identical.
class SimulatedCrash : public std::runtime_error {
 public:
  SimulatedCrash(Site site, std::uint64_t ordinal);

  Site site() const noexcept { return site_; }
  std::uint64_t ordinal() const noexcept { return ordinal_; }

 private:
  Site site_;
  std::uint64_t ordinal_;
};

/// Per-configuration measurement quality grade (docs/faults.md).
enum class Grade : std::uint8_t {
  kGood = 0,      // no faults worth reporting
  kDegraded = 1,  // measured, but above a degradation threshold
  kFailed = 2,    // deployment abandoned; no measurement exists
};

std::string_view grade_name(Grade grade) noexcept;

/// Per-configuration fault accounting, filled by the measurement driver
/// (feed/trace counts) and the deploy loop (attempts), graded against the
/// plan thresholds by grade_config.
struct ConfigQuality {
  Grade grade = Grade::kGood;
  /// Deployment attempts consumed (1 = first try stuck; > 1 = retried).
  std::uint32_t deploy_attempts = 1;
  /// Feed entries that survived collector faults for this config.
  std::uint32_t feed_entries = 0;
  /// Feed entries lost or staled by collector faults.
  std::uint32_t feed_faults = 0;
  /// Traceroutes issued for this config (probes x rounds).
  std::uint32_t traces = 0;
  /// Traceroutes lost or truncated by injected faults.
  std::uint32_t trace_faults = 0;

  friend bool operator==(const ConfigQuality&,
                         const ConfigQuality&) = default;
};

/// Grades measured fault counts against the plan thresholds. Never returns
/// kFailed — abandonment is decided by the deploy loop, which knows the
/// retry budget was exhausted.
Grade grade_config(const ConfigQuality& quality,
                   const FaultPlan& plan) noexcept;

}  // namespace spooftrack::fault
