#include "bgp/catchment.hpp"

namespace spooftrack::bgp {

std::size_t CatchmentMap::count(LinkId link) const noexcept {
  std::size_t n = 0;
  for (LinkId l : link_of) {
    if (l == link) ++n;
  }
  return n;
}

std::vector<topology::AsId> CatchmentMap::members(LinkId link) const {
  std::vector<topology::AsId> out;
  for (topology::AsId id = 0; id < link_of.size(); ++id) {
    if (link_of[id] == link) out.push_back(id);
  }
  return out;
}

std::vector<std::size_t> CatchmentMap::counts(std::size_t link_count) const {
  std::vector<std::size_t> out(link_count, 0);
  for (LinkId l : link_of) {
    if (l < link_count) ++out[l];
  }
  return out;
}

std::size_t CatchmentMap::routed_count() const noexcept {
  std::size_t n = 0;
  for (LinkId l : link_of) {
    if (l != kNoCatchment) ++n;
  }
  return n;
}

CatchmentMap extract_catchments(const RoutingOutcome& outcome,
                                const Configuration& config) {
  CatchmentMap map;
  map.link_of.assign(outcome.best.size(), kNoCatchment);
  for (topology::AsId id = 0; id < outcome.best.size(); ++id) {
    const Route& route = outcome.best[id];
    if (!route.valid()) continue;
    map.link_of[id] = config.announcements[route.ann].link;
  }
  return map;
}

}  // namespace spooftrack::bgp
