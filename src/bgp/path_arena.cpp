#include "bgp/path_arena.hpp"

#include <stdexcept>

namespace spooftrack::bgp {

namespace {

std::uint64_t intern_key(topology::Asn asn, PathId parent) noexcept {
  return (static_cast<std::uint64_t>(asn) << 32) | parent;
}

}  // namespace

PathArena::PathArena() {
  segments_[0] = std::make_unique<Node[]>(kBaseSegment);
}

PathArena::~PathArena() = default;

PathId PathArena::append_node(topology::Asn asn, PathId parent) {
  if (next_id_ == std::numeric_limits<PathId>::max()) {
    throw std::length_error("PathArena: id space exhausted");
  }
  const PathId id = next_id_;
  const std::uint32_t seg = segment_of(id);
  if (!segments_[seg]) {
    segments_[seg] = std::make_unique<Node[]>(std::size_t{kBaseSegment}
                                              << seg);
  }
  Node& n = segments_[seg][segment_offset(id, seg)];
  n.asn = asn;
  n.parent = parent;
  n.length = length(parent) + 1;
  n.bloom = bloom(parent) | bloom_bit(asn);
  // Publish the id only after the node is fully written (readers on other
  // threads see the id through a synchronising handoff, never before).
  ++next_id_;
  return id;
}

PathId PathArena::prepend(topology::Asn asn, PathId tail) {
  const auto [it, inserted] = intern_.try_emplace(intern_key(asn, tail), 0);
  if (!inserted) {
    ++hits_;
    return it->second;
  }
  return it->second = append_node(asn, tail);
}

PathId PathArena::intern(std::span<const topology::Asn> path) {
  PathId id = kEmptyPath;
  for (std::size_t i = path.size(); i-- > 0;) {
    id = prepend(path[i], id);
  }
  return id;
}

bool PathArena::contains(PathId id, topology::Asn asn) const noexcept {
  if (!maybe_contains(id, asn)) return false;
  for (; id != kEmptyPath; id = node(id).parent) {
    if (node(id).asn == asn) return true;
  }
  return false;
}

bool PathArena::equal(PathId a, const PathArena& other,
                      PathId b) const noexcept {
  if (this == &other) return a == b;
  if (length(a) != other.length(b)) return false;
  while (a != kEmptyPath) {
    const Node& na = node(a);
    const Node& nb = other.node(b);
    if (na.asn != nb.asn) return false;
    a = na.parent;
    b = nb.parent;
  }
  return true;
}

std::vector<topology::Asn> PathArena::materialize(PathId id) const {
  std::vector<topology::Asn> out;
  out.reserve(length(id));
  for (; id != kEmptyPath; id = node(id).parent) {
    out.push_back(node(id).asn);
  }
  return out;
}

void PathArena::adopt_prefix(const PathArena& from, std::size_t nodes) {
  if (node_count() != 0) {
    throw std::logic_error("PathArena::adopt_prefix on a non-empty arena");
  }
  intern_.reserve(nodes);
  for (PathId id = 1; id <= nodes; ++id) {
    const Node& n = from.node(id);
    const PathId copy = append_node(n.asn, n.parent);
    intern_.emplace(intern_key(n.asn, n.parent), copy);
  }
}

PathId PathArena::migrate(const PathArena& from, PathId id,
                          std::vector<PathId>& memo) {
  // Walk toward the origin until a migrated suffix (or the root), then
  // unwind, interning and memoising on the way back out.
  std::vector<PathId> chain;
  PathId cursor = id;
  while (cursor != kEmptyPath && memo[cursor] == kNoMigration) {
    chain.push_back(cursor);
    cursor = from.node(cursor).parent;
  }
  PathId mapped = cursor == kEmptyPath ? kEmptyPath : memo[cursor];
  for (std::size_t i = chain.size(); i-- > 0;) {
    mapped = prepend(from.node(chain[i]).asn, mapped);
    memo[chain[i]] = mapped;
  }
  return mapped;
}

}  // namespace spooftrack::bgp
