// Catchments: the partition of sources induced by one announcement
// configuration. Each routed AS belongs to exactly one peering link's
// catchment — the link whose announcement its best route descends from.
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/announcement.hpp"
#include "bgp/engine.hpp"

namespace spooftrack::bgp {

inline constexpr LinkId kNoCatchment = std::numeric_limits<LinkId>::max();

/// Byte-wide missing sentinel used by the columnar catchment store and the
/// artifact serialization format.
inline constexpr std::uint8_t kNoCatchment8 = 0xFF;

/// Maximum number of distinct peering links the analysis pipeline tracks.
/// The cluster refinement folds catchment values into 6-bit slots (64, one
/// reserved for "missing"), and the columnar store encodes cells in one
/// byte; link ids must stay below this bound or encoding raises.
inline constexpr std::uint32_t kMaxCatchmentLinks = 62;

/// Catchment membership for one configuration.
struct CatchmentMap {
  /// Per AsId: the peering link whose catchment the AS belongs to, or
  /// kNoCatchment when the AS has no route under this configuration.
  std::vector<LinkId> link_of;

  LinkId operator[](topology::AsId id) const noexcept { return link_of[id]; }
  std::size_t size() const noexcept { return link_of.size(); }

  /// Number of ASes routed to `link`.
  std::size_t count(LinkId link) const noexcept;
  /// AsIds routed to `link`.
  std::vector<topology::AsId> members(LinkId link) const;
  /// One-pass per-link totals: element l is the number of ASes routed to
  /// link l. Links >= link_count are ignored (missing cells always are).
  /// Replaces links x count(link) scan loops, which are O(links * N).
  std::vector<std::size_t> counts(std::size_t link_count) const;
  /// Number of ASes with any catchment.
  std::size_t routed_count() const noexcept;

  friend bool operator==(const CatchmentMap&, const CatchmentMap&) = default;
};

/// Ground-truth catchments from a routing outcome.
CatchmentMap extract_catchments(const RoutingOutcome& outcome,
                                const Configuration& config);

}  // namespace spooftrack::bgp
