// BGP announcement configurations, the paper's §III primitive:
//
//   c = <A; P; Q>
//
// where A is the set of peering links announcing the prefix, P ⊆ A the set
// announced with AS-path prepending, and Q maps links to poisoned AS sets.
// We flatten the triple into one AnnouncementSpec per active link.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/as_graph.hpp"

namespace spooftrack::bgp {

using LinkId = std::uint32_t;

/// A peering link of the origin AS: one point of presence connected to one
/// transit provider (the Table I setup: one provider per PEERING mux).
struct PeeringLink {
  LinkId id = 0;
  std::string pop_name;
  topology::Asn provider = 0;
};

/// Per-link announcement parameters for one configuration.
struct AnnouncementSpec {
  AnnouncementSpec() = default;
  AnnouncementSpec(LinkId link_id, std::uint32_t prepend_count,
                   std::vector<topology::Asn> poison = {},
                   std::vector<topology::Asn> no_export = {})
      : link(link_id),
        prepend(prepend_count),
        poisoned(std::move(poison)),
        no_export_to(std::move(no_export)) {}

  LinkId link = 0;
  /// Extra times the origin prepends its own ASN (the paper uses 4, making
  /// the AS-path longer than most Internet paths).
  std::uint32_t prepend = 0;
  /// ASes poisoned on this link's announcement. Encoded PEERING-style: each
  /// poisoned ASN is sandwiched between occurrences of the origin ASN.
  std::vector<topology::Asn> poisoned;
  /// BGP-community-style export control (the paper's §VIII future work):
  /// the link's provider honours a "do not export to AS X" community on the
  /// origin's announcement. Unlike poisoning, this works even against ASes
  /// that disable loop prevention and never trips tier-1 route-leak
  /// filters, but it requires the direct provider to support the community.
  std::vector<topology::Asn> no_export_to;

  friend bool operator==(const AnnouncementSpec&,
                         const AnnouncementSpec&) = default;
};

/// One announcement configuration. The index of an AnnouncementSpec inside
/// `announcements` is the "announcement id" used by routes and catchments.
struct Configuration {
  std::string label;
  std::vector<AnnouncementSpec> announcements;

  bool announces(LinkId link) const noexcept;

  friend bool operator==(const Configuration&, const Configuration&) = default;

  const AnnouncementSpec* spec_for(LinkId link) const noexcept;
  std::vector<LinkId> active_links() const;
};

inline constexpr std::uint32_t kNoAnnouncement =
    std::numeric_limits<std::uint32_t>::max();

/// PEERING's operational cap: at most two poisoned ASes per announcement.
inline constexpr std::size_t kMaxPoisonedPerAnnouncement = 2;
/// Sanity cap on prepending (real announcements rarely exceed this).
inline constexpr std::uint32_t kMaxPrepend = 16;
/// Cap on no-export community targets per announcement.
inline constexpr std::size_t kMaxNoExportPerAnnouncement = 8;

/// The origin network deploying the configurations.
struct OriginSpec {
  topology::Asn asn = 47065;  // PEERING's ASN by default
  std::vector<PeeringLink> links;

  const PeeringLink* link_by_provider(topology::Asn provider) const noexcept;
};

/// Builds the AS-path the named provider receives from the origin:
/// origin repeated (1 + prepend) times, then each poisoned AS sandwiched
/// with the origin ASN (PEERING's attribution-friendly encoding).
std::vector<topology::Asn> seed_path(topology::Asn origin,
                                     const AnnouncementSpec& spec);

/// Validates a configuration against an origin: links must exist, appear at
/// most once, respect prepend/poison caps, and not poison the origin
/// itself. Throws std::invalid_argument describing the first violation.
void validate(const Configuration& config, const OriginSpec& origin);

}  // namespace spooftrack::bgp
