// Synchronous path-vector routing engine.
//
// Computes, for one announcement configuration, the best route of every AS
// toward the experiment prefix by iterating synchronous Jacobi rounds to a
// fixed point: each round, every (active) AS recomputes its best route from
// its neighbors' round-(k-1) routes under the RoutingPolicy. Gao-Rexford
// class ordering is preserved by every policy this library constructs, so
// the instance is dispute-wheel-free and the iteration converges; a round
// cap turns pathological custom policies into a reported error instead of a
// hang.
//
// AS-paths live in a hash-consed PathArena owned by the outcome (see
// path_arena.hpp); routes are POD and the propagation loop never allocates
// per route. The compute phase of each round is read-only over the previous
// round's state, which is what lets the engine evaluate the frontier on
// several threads while staying bit-identical to the serial schedule: every
// write — including all arena interning — happens in the serial commit
// phase, in frontier order.
//
// The origin AS is modelled explicitly: it originates the prefix on the
// configured peering links (with prepending / poisoning encoded in the seed
// AS-path) and never transits routes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bgp/announcement.hpp"
#include "bgp/path_arena.hpp"
#include "bgp/policy.hpp"
#include "bgp/route.hpp"
#include "topology/as_graph.hpp"

namespace spooftrack::bgp {

namespace detail {
struct SeedTable;
}  // namespace detail

struct EngineOptions {
  /// Hard cap on Jacobi rounds; converging instances use far fewer
  /// (roughly the AS-level diameter).
  std::uint32_t max_rounds = 512;
  /// Recompute an AS only when a neighbor changed in the previous round.
  /// Semantically transparent (the fixed point is identical); exists as an
  /// ablation knob for the performance claim in docs/architecture.md.
  bool activity_tracking = true;
  /// Threads evaluating each round's frontier (compute phase only; commit
  /// stays serial, so results are bit-identical for every value). 1 = fully
  /// serial, 0 = util::default_worker_count().
  std::size_t workers = 1;
  /// Frontiers smaller than this are evaluated serially even when workers
  /// > 1 — dispatch overhead dwarfs the work on the convergence tail.
  std::size_t parallel_min_frontier = 256;
  /// A warm start whose baseline arena holds more nodes than this compacts
  /// it (re-interning only live paths) instead of extending it; bounds
  /// memory along long warm-start chains.
  std::size_t arena_compact_nodes = std::size_t{1} << 21;
};

struct RoutingOutcome {
  /// Best route per AsId; invalid (ann == kNoAnnouncement) when the AS has
  /// no route to the prefix. The origin's own entry is invalid by
  /// convention (it originates rather than routes). Route::path ids live
  /// in `paths`.
  std::vector<Route> best;
  /// Data-plane next hop per AsId (kInvalidAsId when unrouted).
  std::vector<topology::AsId> next_hop;
  /// Per AsId: the 1-based Jacobi round after which the AS never changed
  /// its route again (0 = never held a route / never changed). Feeds the
  /// convergence-time model: deeper ripples settle later. On a warm-started
  /// outcome the rounds are counted from the warm start (0 = carried over
  /// unchanged from the baseline), not from an empty routing table.
  std::vector<std::uint32_t> settled_round;
  /// Arena holding every Route::path above. Shared so warm starts can
  /// extend a baseline's arena in place when they are its sole owner, and
  /// so outcomes stay cheap to move around.
  std::shared_ptr<const PathArena> paths;
  std::uint32_t rounds = 0;
  bool converged = false;

  /// Materialised AS-path of `id`'s best route (empty when unrouted).
  std::vector<topology::Asn> path_of(topology::AsId id) const {
    return paths ? paths->materialize(best[id].path)
                 : std::vector<topology::Asn>{};
  }
  /// AS-path length of `id`'s best route (0 when unrouted).
  std::uint32_t path_length(topology::AsId id) const noexcept {
    return paths ? paths->length(best[id].path) : 0u;
  }
};

/// Content equality of one AS's routing entry across two outcomes,
/// regardless of which arenas the outcomes use (Route::operator== compares
/// PathIds and is only meaningful within one arena).
bool routes_equal(const RoutingOutcome& a, const RoutingOutcome& b,
                  topology::AsId id);

/// What outcome_checksum covers: kRoutes hashes the converged routing state
/// (best routes with full paths + next hops) — identical across cold/warm
/// and serial/parallel runs of the same configuration; kFull additionally
/// hashes settled_round and rounds, which warm starts deliberately change.
enum class ChecksumScope { kRoutes, kFull };

/// FNV-1a 64 digest of an outcome, stable across processes and platforms.
/// The golden-equivalence suite pins these against checksums captured from
/// the pre-arena engine.
std::uint64_t outcome_checksum(const RoutingOutcome& outcome,
                               ChecksumScope scope);

class Engine {
 public:
  /// The graph and policy must outlive the engine.
  Engine(const topology::AsGraph& graph, const RoutingPolicy& policy,
         EngineOptions options = {});

  /// A validated, reusable seed table for one (origin, configuration)
  /// pair: the per-link-provider seed routes plus the precomputed
  /// no-export block bitmaps. Campaigns that propagate the same
  /// configuration repeatedly (or chain warm starts through it) prepare it
  /// once instead of re-validating per run. Tied to the Engine's graph.
  class Prepared {
   public:
    Prepared(Prepared&&) noexcept;
    Prepared& operator=(Prepared&&) noexcept;
    ~Prepared();

   private:
    friend class Engine;
    explicit Prepared(std::unique_ptr<detail::SeedTable> table);
    std::unique_ptr<detail::SeedTable> table_;
  };

  /// Validates `config` against the topology and builds its seed table.
  /// Throws std::invalid_argument for malformed configurations or origins
  /// whose link providers are not providers of the origin in the graph.
  Prepared prepare(const OriginSpec& origin, const Configuration& config) const;

  /// Routes one configuration. Thread-safe: `run` is const and keeps all
  /// mutable state on the stack, so configurations can run in parallel
  /// (on top of the per-run compute-phase parallelism options_.workers
  /// selects). Throws like `prepare`.
  RoutingOutcome run(const OriginSpec& origin,
                     const Configuration& config) const;
  /// As above, reusing a prepared seed table (skips validation entirely).
  RoutingOutcome run(const OriginSpec& origin, const Configuration& config,
                     const Prepared& seeds) const;

  /// Warm-start incremental propagation: routes `config` starting from
  /// `baseline`, the converged outcome of `baseline_config` under the same
  /// origin, engine options and policy. Only ASes whose announcement
  /// inputs changed (link providers that gained/lost/changed seeds, plus
  /// their neighbors, which apply the no-export filter to routes learned
  /// from them) are active in round 0; everything else is re-activated on
  /// demand by the ordinary changed-neighbor tracking.
  ///
  /// Equivalence guarantee: `best` and `next_hop` (including announcement
  /// ids and full AS-paths inside each Route) are content-identical to a
  /// cold `run(origin, config)` — outcome_checksum(., kRoutes) matches
  /// exactly. The instance is dispute-wheel-free (see the file comment),
  /// so the fixed point is unique and the iteration reaches it from any
  /// starting state. `rounds` and `settled_round` are relative to the warm
  /// run (typically much smaller than the cold values) and therefore NOT
  /// comparable across cold and warm outcomes.
  ///
  /// Throws std::invalid_argument when either configuration is malformed,
  /// when the baseline outcome does not match this graph's size, or when
  /// the baseline did not converge. Thread-safe like `run`.
  RoutingOutcome run_warm(const OriginSpec& origin,
                          const Configuration& config,
                          const Configuration& baseline_config,
                          const RoutingOutcome& baseline) const;

  /// Overload consuming the baseline: when the baseline is the sole owner
  /// of its arena (the chained-campaign case), its routing state AND arena
  /// are moved into the warm run — no per-route copy, no arena rebuild.
  RoutingOutcome run_warm(const OriginSpec& origin,
                          const Configuration& config,
                          const Configuration& baseline_config,
                          RoutingOutcome&& baseline) const;

  /// Fully-prepared warm start: both seed tables supplied by the caller.
  /// Campaign chains prepare each configuration once and step through the
  /// chain without ever rebuilding a table.
  RoutingOutcome run_warm(const OriginSpec& origin,
                          const Configuration& config, const Prepared& seeds,
                          const Configuration& baseline_config,
                          const Prepared& baseline_seeds,
                          RoutingOutcome&& baseline) const;

  /// Warm start from a *leased* baseline: the chained-campaign case where
  /// the previous step's outcome may still be read concurrently by a
  /// measurement lease. `consume` is the caller's explicit statement that
  /// every lease has been dropped (with a release/acquire edge — never
  /// inferred from shared_ptr::use_count(), whose relaxed load carries no
  /// happens-before): true moves the baseline's routing state and arena
  /// into the warm run, exactly like the && overload; false leaves
  /// `*baseline` untouched and warm-starts from a copy (the copy shares
  /// the arena, so the run extends a cloned prefix of it). The outcome —
  /// routes, next hops, settled rounds, round count — is byte-identical
  /// either way (the warm run starts from the same routing state and all
  /// staging comparisons are structural under hash-consing); only
  /// allocation behaviour differs.
  RoutingOutcome run_warm_leased(const OriginSpec& origin,
                                 const Configuration& config,
                                 const Prepared& seeds,
                                 const Configuration& baseline_config,
                                 const Prepared& baseline_seeds,
                                 const std::shared_ptr<RoutingOutcome>& baseline,
                                 bool consume) const;

  /// A route available to an AS (used by the policy-compliance audit of
  /// Figure 9): what a neighbor exported and the AS accepted.
  struct CandidateInfo {
    topology::AsId sender = topology::kInvalidAsId;
    topology::Rel rel_of_sender = topology::Rel::kProvider;
    std::uint8_t local_pref = kPrefProvider;
    std::uint32_t length = 0;
    std::uint32_t ann = kNoAnnouncement;
  };

  /// Enumerates the candidate routes `as_id` could choose under `outcome`
  /// (its neighbors' exported routes plus any direct origin announcement,
  /// after import filtering).
  std::vector<CandidateInfo> candidates(topology::AsId as_id,
                                        const OriginSpec& origin,
                                        const Configuration& config,
                                        const RoutingOutcome& outcome) const;
  /// As above with a prepared seed table — the audit calls this per AS and
  /// must not re-validate the configuration every time.
  std::vector<CandidateInfo> candidates(topology::AsId as_id,
                                        const OriginSpec& origin,
                                        const Configuration& config,
                                        const Prepared& seeds,
                                        const RoutingOutcome& outcome) const;

  const topology::AsGraph& graph() const noexcept { return graph_; }
  const RoutingPolicy& policy() const noexcept { return policy_; }

 private:
  const topology::AsGraph& graph_;
  const RoutingPolicy& policy_;
  EngineOptions options_;
};

/// Walks data-plane next hops from `source` to `origin`. Returns the AsId
/// sequence including both endpoints, or an empty vector when the source
/// has no route or the forwarding state is inconsistent — an invalid
/// next hop mid-walk or a forwarding loop (either would indicate an engine
/// bug or a non-converged outcome). Never throws on malformed outcomes.
std::vector<topology::AsId> forwarding_path(const RoutingOutcome& outcome,
                                            topology::AsId source,
                                            topology::AsId origin);

/// As above, writing into a caller-owned buffer (cleared first) so batch
/// extractors — measure::ProbePathSet over hundreds of probes per
/// configuration — recycle one allocation instead of paying one per probe.
void forwarding_path_into(const RoutingOutcome& outcome,
                          topology::AsId source, topology::AsId origin,
                          std::vector<topology::AsId>& path);

}  // namespace spooftrack::bgp
