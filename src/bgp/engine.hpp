// Synchronous path-vector routing engine.
//
// Computes, for one announcement configuration, the best route of every AS
// toward the experiment prefix by iterating synchronous Jacobi rounds to a
// fixed point: each round, every (active) AS recomputes its best route from
// its neighbors' round-(k-1) routes under the RoutingPolicy. Gao-Rexford
// class ordering is preserved by every policy this library constructs, so
// the instance is dispute-wheel-free and the iteration converges; a round
// cap turns pathological custom policies into a reported error instead of a
// hang.
//
// The origin AS is modelled explicitly: it originates the prefix on the
// configured peering links (with prepending / poisoning encoded in the seed
// AS-path) and never transits routes.
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/announcement.hpp"
#include "bgp/policy.hpp"
#include "bgp/route.hpp"
#include "topology/as_graph.hpp"

namespace spooftrack::bgp {

struct EngineOptions {
  /// Hard cap on Jacobi rounds; converging instances use far fewer
  /// (roughly the AS-level diameter).
  std::uint32_t max_rounds = 512;
  /// Recompute an AS only when a neighbor changed in the previous round.
  /// Semantically transparent (the fixed point is identical); exists as an
  /// ablation knob for the performance claim in docs/architecture.md.
  bool activity_tracking = true;
};

struct RoutingOutcome {
  /// Best route per AsId; invalid (ann == kNoAnnouncement) when the AS has
  /// no route to the prefix. The origin's own entry is invalid by
  /// convention (it originates rather than routes).
  std::vector<Route> best;
  /// Data-plane next hop per AsId (kInvalidAsId when unrouted).
  std::vector<topology::AsId> next_hop;
  /// Per AsId: the 1-based Jacobi round after which the AS never changed
  /// its route again (0 = never held a route / never changed). Feeds the
  /// convergence-time model: deeper ripples settle later. On a warm-started
  /// outcome the rounds are counted from the warm start (0 = carried over
  /// unchanged from the baseline), not from an empty routing table.
  std::vector<std::uint32_t> settled_round;
  std::uint32_t rounds = 0;
  bool converged = false;
};

class Engine {
 public:
  /// The graph and policy must outlive the engine.
  Engine(const topology::AsGraph& graph, const RoutingPolicy& policy,
         EngineOptions options = {});

  /// Routes one configuration. Thread-safe: `run` is const and keeps all
  /// mutable state on the stack, so configurations can run in parallel.
  /// Throws std::invalid_argument for malformed configurations or origins
  /// whose link providers are not providers of the origin in the graph.
  RoutingOutcome run(const OriginSpec& origin,
                     const Configuration& config) const;

  /// Warm-start incremental propagation: routes `config` starting from
  /// `baseline`, the converged outcome of `baseline_config` under the same
  /// origin, engine options and policy. Only ASes whose announcement
  /// inputs changed (link providers that gained/lost/changed seeds, plus
  /// their neighbors, which apply the no-export filter to routes learned
  /// from them) are active in round 0; everything else is re-activated on
  /// demand by the ordinary changed-neighbor tracking.
  ///
  /// Equivalence guarantee: `best` and `next_hop` (including announcement
  /// ids inside each Route) are bit-identical to a cold `run(origin,
  /// config)`. The instance is dispute-wheel-free (see the file comment),
  /// so the fixed point is unique and the iteration reaches it from any
  /// starting state. `rounds` and `settled_round` are relative to the warm
  /// run (typically much smaller than the cold values) and therefore NOT
  /// comparable across cold and warm outcomes.
  ///
  /// Throws std::invalid_argument when either configuration is malformed,
  /// when the baseline outcome does not match this graph's size, or when
  /// the baseline did not converge. Thread-safe like `run`.
  RoutingOutcome run_warm(const OriginSpec& origin,
                          const Configuration& config,
                          const Configuration& baseline_config,
                          const RoutingOutcome& baseline) const;

  /// Overload consuming the baseline: moves its routing state into the warm
  /// run instead of deep-copying every route — the fast path for chained
  /// warm starts that discard each baseline after stepping from it.
  RoutingOutcome run_warm(const OriginSpec& origin,
                          const Configuration& config,
                          const Configuration& baseline_config,
                          RoutingOutcome&& baseline) const;

  /// A route available to an AS (used by the policy-compliance audit of
  /// Figure 9): what a neighbor exported and the AS accepted.
  struct CandidateInfo {
    topology::AsId sender = topology::kInvalidAsId;
    topology::Rel rel_of_sender = topology::Rel::kProvider;
    std::uint8_t local_pref = kPrefProvider;
    std::uint32_t length = 0;
    std::uint32_t ann = kNoAnnouncement;
  };

  /// Enumerates the candidate routes `as_id` could choose under `outcome`
  /// (its neighbors' exported routes plus any direct origin announcement,
  /// after import filtering).
  std::vector<CandidateInfo> candidates(topology::AsId as_id,
                                        const OriginSpec& origin,
                                        const Configuration& config,
                                        const RoutingOutcome& outcome) const;

  const topology::AsGraph& graph() const noexcept { return graph_; }
  const RoutingPolicy& policy() const noexcept { return policy_; }

 private:
  const topology::AsGraph& graph_;
  const RoutingPolicy& policy_;
  EngineOptions options_;
};

/// Walks data-plane next hops from `source` to `origin`. Returns the AsId
/// sequence including both endpoints, or an empty vector when the source
/// has no route or the forwarding state is inconsistent — an invalid
/// next hop mid-walk or a forwarding loop (either would indicate an engine
/// bug or a non-converged outcome). Never throws on malformed outcomes.
std::vector<topology::AsId> forwarding_path(const RoutingOutcome& outcome,
                                            topology::AsId source,
                                            topology::AsId origin);

}  // namespace spooftrack::bgp
