#include "bgp/engine.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/obs.hpp"
#include "util/parallel.hpp"

namespace spooftrack::bgp {

using topology::AsId;
using topology::kInvalidAsId;
using topology::Rel;

namespace detail {

struct Seed {
  std::uint32_t ann = kNoAnnouncement;
  std::vector<topology::Asn> path;
};

struct SeedTable {
  AsId origin_id = kInvalidAsId;
  std::vector<Seed> seed_of;    // indexed by AsId (link providers only)
  std::vector<bool> has_seed;
  /// Per link provider: receiver-AsId bitmap of that provider's seed
  /// announcement's no-export targets; empty when the announcement has
  /// none. Precomputed so the hot loop replaces a std::find over the
  /// target ASN list with one bit test.
  std::vector<std::vector<bool>> no_export_block;
};

}  // namespace detail

Engine::Engine(const topology::AsGraph& graph, const RoutingPolicy& policy,
               EngineOptions options)
    : graph_(graph), policy_(policy), options_(options) {
  if (!graph_.frozen()) {
    throw std::invalid_argument("engine requires a frozen AsGraph");
  }
}

Engine::Prepared::Prepared(std::unique_ptr<detail::SeedTable> table)
    : table_(std::move(table)) {}
Engine::Prepared::Prepared(Prepared&&) noexcept = default;
Engine::Prepared& Engine::Prepared::operator=(Prepared&&) noexcept = default;
Engine::Prepared::~Prepared() = default;

namespace {

using detail::Seed;
using detail::SeedTable;

/// Validates the configuration against the topology and builds the seed
/// routes each link provider hears from the origin.
SeedTable build_seeds(const topology::AsGraph& graph,
                      const OriginSpec& origin, const Configuration& config) {
  validate(config, origin);

  const auto origin_id = graph.id_of(origin.asn);
  if (!origin_id) {
    throw std::invalid_argument("origin AS " + std::to_string(origin.asn) +
                                " not present in topology");
  }

  SeedTable table;
  table.origin_id = *origin_id;
  table.seed_of.resize(graph.size());
  table.has_seed.assign(graph.size(), false);
  table.no_export_block.resize(graph.size());

  for (std::uint32_t ann = 0; ann < config.announcements.size(); ++ann) {
    const AnnouncementSpec& spec = config.announcements[ann];
    const PeeringLink& link = origin.links[spec.link];
    const auto provider_id = graph.id_of(link.provider);
    if (!provider_id) {
      throw std::invalid_argument("link provider AS " +
                                  std::to_string(link.provider) +
                                  " not present in topology");
    }
    const auto rel = graph.relationship(*origin_id, *provider_id);
    if (!rel || *rel != Rel::kProvider) {
      throw std::invalid_argument(
          "origin is not a customer of link provider AS " +
          std::to_string(link.provider));
    }
    if (table.has_seed[*provider_id]) {
      throw std::invalid_argument("two peering links share provider AS " +
                                  std::to_string(link.provider));
    }
    table.has_seed[*provider_id] = true;
    table.seed_of[*provider_id] = Seed{ann, seed_path(origin.asn, spec)};
    if (!spec.no_export_to.empty()) {
      auto& blocked = table.no_export_block[*provider_id];
      blocked.assign(graph.size(), false);
      for (const topology::Asn target : spec.no_export_to) {
        // Targets absent from the topology can never receive the route
        // anyway; they simply have no bit to set.
        if (const auto id = graph.id_of(target)) blocked[*id] = true;
      }
    }
  }
  return table;
}

/// True when AS `p` sees exactly the same announcement behaviour under both
/// configurations: same seed presence, announcement id, seed AS-path, and
/// no-export target set of that announcement. This is the full set of
/// configuration inputs that influence p's own route computation and the
/// no-export filtering its neighbors apply to routes learned from p.
bool seed_entry_equal(AsId p, const SeedTable& a, const Configuration& ca,
                      const SeedTable& b, const Configuration& cb) {
  if (a.has_seed[p] != b.has_seed[p]) return false;
  if (!a.has_seed[p]) return true;
  const Seed& sa = a.seed_of[p];
  const Seed& sb = b.seed_of[p];
  if (sa.ann != sb.ann || sa.path != sb.path) return false;
  return ca.announcements[sa.ann].no_export_to ==
         cb.announcements[sb.ann].no_export_to;
}

/// True when p's export filtering toward its neighbors is identical under
/// both configurations. A neighbor blocks a route learned from p iff p is
/// seeded, the route carries p's seed announcement, and the neighbor is on
/// that announcement's no-export list — so the decision function is
/// unchanged when both effective no-export lists are empty (nothing is ever
/// blocked), or when p is seeded on the same announcement id with the same
/// list under both. Only when this differs do p's neighbors need round-0
/// activation; a change to p's own route reaches them through ordinary
/// changed-neighbor tracking.
bool export_filter_equal(AsId p, const SeedTable& a, const Configuration& ca,
                         const SeedTable& b, const Configuration& cb) {
  static const std::vector<topology::Asn> kEmpty;
  const auto& ea = a.has_seed[p]
                       ? ca.announcements[a.seed_of[p].ann].no_export_to
                       : kEmpty;
  const auto& eb = b.has_seed[p]
                       ? cb.announcements[b.seed_of[p].ann].no_export_to
                       : kEmpty;
  if (ea.empty() && eb.empty()) return true;
  return a.has_seed[p] && b.has_seed[p] &&
         a.seed_of[p].ann == b.seed_of[p].ann && ea == eb;
}

/// A route change produced by the compute phase, before interning. The
/// winner's path is NOT interned here — it is described as (sender_asn,
/// parent) and interned by the serial commit phase, which is what keeps the
/// parallel compute phase free of arena writes and the resulting ids
/// independent of the thread count.
struct StagedWrite {
  AsId x = kInvalidAsId;
  AsId from = kInvalidAsId;
  std::uint32_t ann = kNoAnnouncement;
  PathId parent = kEmptyPath;
  topology::Asn sender_asn = 0;
  Rel learned_from = Rel::kProvider;
  std::uint8_t local_pref = kPrefProvider;
  bool includes_sender = false;
  bool has_route = false;
};

/// The shared Jacobi fixed-point loop behind Engine::run and
/// Engine::run_warm. `current`/`current_from` is the starting routing state
/// (all-invalid on a cold start, the baseline fixed point on a warm start)
/// with path ids in `arena_ptr`, and `active_round0` selects which ASes
/// recompute in round 0.
RoutingOutcome propagate(const topology::AsGraph& graph_,
                         const RoutingPolicy& policy_,
                         const EngineOptions& options_,
                         const OriginSpec& origin, const SeedTable& seeds,
                         std::shared_ptr<PathArena> arena_ptr,
                         std::vector<Route> current,
                         std::vector<AsId> current_from,
                         const std::vector<bool>& active_round0) {
  OBS_TIMER("engine.propagate_ns");
  OBS_COUNT("engine.propagations", 1);
  PathArena& arena = *arena_ptr;
  const AsId origin_id = seeds.origin_id;
  const std::size_t n = graph_.size();
  const std::size_t nodes_before = arena.node_count();
  const std::uint64_t hits_before = arena.hits();

  RoutingOutcome outcome;

  // The origin never holds a route to its own prefix.
  current[origin_id] = Route{};
  current_from[origin_id] = kInvalidAsId;

  // Intern the seed paths up front, in ascending provider order — the only
  // interning outside the commit phase, and deterministic by construction.
  std::vector<PathId> seed_path_of(n, kEmptyPath);
  for (AsId p = 0; p < n; ++p) {
    if (seeds.has_seed[p]) {
      seed_path_of[p] = arena.intern(seeds.seed_of[p].path);
    }
  }

  std::vector<std::uint32_t> settled(n, 0);

  // Jacobi iteration over an explicit active frontier: an AS is recomputed
  // only when one of its neighbors changed in the previous round, and each
  // round touches only the frontier — never all of the topology. Round 0's
  // frontier is `active_round0` (every AS on a cold start, only
  // delta-affected ASes on a warm start).
  //
  // Each round splits into a compute phase that reads ONLY round-(k-1)
  // state (current/current_from/arena) and stages changed routes, and a
  // serial commit phase that interns paths and applies the writes. Because
  // compute is read-only, the frontier can be evaluated on several threads:
  // chunks of active_list each fill their own staging buffer, and the
  // commit walks the buffers in chunk order — the exact order a serial
  // sweep over active_list would produce, so results (and even arena node
  // ids) are bit-identical for every worker count.
  std::vector<AsId> active_list;
  active_list.reserve(n);
  for (AsId x = 0; x < n; ++x) {
    if (x != origin_id && active_round0[x]) active_list.push_back(x);
  }
  const bool had_initial_frontier = !active_list.empty();
  std::vector<bool> queued(n, false);

  // Evaluates one active AS against its neighbors' round-(k-1) routes and
  // stages a write when its best route changed. Read-only on shared state;
  // safe to call concurrently for distinct `x`.
  const auto evaluate = [&](AsId x, std::vector<StagedWrite>& out) {
    const topology::Asn x_asn = graph_.asn_of(x);
    CandidateRef best_ref;
    bool have_best = false;

    for (const topology::Neighbor& nb : graph_.neighbors(x)) {
      CandidateRef cand;
      if (nb.id == origin_id) {
        if (!seeds.has_seed[x]) continue;
        // Direct announcement from the origin over this peering link.
        const Seed& seed = seeds.seed_of[x];
        cand.sender = origin_id;
        cand.sender_asn = origin.asn;
        cand.rel_of_sender = nb.rel;  // origin is our customer
        cand.ann = seed.ann;
        cand.arena = &arena;
        cand.learned_path = seed_path_of[x];
        cand.path_includes_sender = true;
      } else {
        const Route& learned = current[nb.id];
        if (!learned.valid()) continue;
        // Valley-free export rule at the sender: from the sender's
        // perspective, x is reverse(nb.rel).
        if (!policy_.exports(learned.learned_from,
                             topology::reverse(nb.rel))) {
          continue;
        }
        // BGP-community export control: a link provider whose best route
        // is its own seed withholds it from no-export targets (one bit
        // test against the precomputed bitmap).
        const auto& blocked = seeds.no_export_block[nb.id];
        if (!blocked.empty() && seeds.seed_of[nb.id].ann == learned.ann &&
            blocked[x]) {
          continue;
        }
        cand.sender = nb.id;
        cand.sender_asn = graph_.asn_of(nb.id);
        cand.rel_of_sender = nb.rel;
        cand.ann = learned.ann;
        cand.arena = &arena;
        cand.learned_path = learned.path;
        cand.path_includes_sender = false;
      }
      cand.local_pref = policy_.local_pref(x, cand.rel_of_sender);

      if (!policy_.accepts(x, x_asn, cand.rel_of_sender, cand)) continue;
      if (!have_best || policy_.better(x, x_asn, cand, best_ref)) {
        best_ref = cand;
        have_best = true;
      }
    }

    // Compare the winner with the previous round's route WITHOUT interning
    // its path: hash-consing makes "current path == [sender] + learned
    // path" a head/tail id check.
    const Route& cur = current[x];
    if (!have_best) {
      // Unrouted entries are always stored as exactly Route{}, so validity
      // plus next hop cover full equality with the (invalid) winner.
      if (current_from[x] == kInvalidAsId && !cur.valid()) return;
      StagedWrite w;
      w.x = x;
      out.push_back(w);
      return;
    }
    const bool same =
        current_from[x] == best_ref.sender && cur.ann == best_ref.ann &&
        cur.learned_from == best_ref.rel_of_sender &&
        cur.local_pref == best_ref.local_pref &&
        (best_ref.path_includes_sender
             ? cur.path == best_ref.learned_path
             : (cur.path != kEmptyPath &&
                arena.head(cur.path) == best_ref.sender_asn &&
                arena.tail(cur.path) == best_ref.learned_path));
    if (same) return;
    StagedWrite w;
    w.x = x;
    w.from = best_ref.sender;
    w.ann = best_ref.ann;
    w.parent = best_ref.learned_path;
    w.sender_asn = best_ref.sender_asn;
    w.learned_from = best_ref.rel_of_sender;
    w.local_pref = best_ref.local_pref;
    w.includes_sender = best_ref.path_includes_sender;
    w.has_route = true;
    out.push_back(w);
  };

  const std::size_t workers = options_.workers == 0
                                  ? util::default_worker_count()
                                  : options_.workers;
  std::unique_ptr<util::WorkerPool> pool;
  if (workers > 1) {
    pool = std::make_unique<util::WorkerPool>(workers - 1);
    OBS_GAUGE("engine.parallel.workers", workers);
  }
  std::vector<std::vector<StagedWrite>> chunk_staged(
      pool ? workers * 4 : std::size_t{1});

  std::uint32_t round = 0;
  std::uint32_t last_staged_round = 0;
  bool any_staged = false;
  for (; round < options_.max_rounds && !active_list.empty(); ++round) {
    OBS_HIST("engine.frontier", "ases", active_list.size());
    for (auto& chunk : chunk_staged) chunk.clear();

    const bool go_parallel =
        pool && active_list.size() >= options_.parallel_min_frontier;
    const std::size_t chunks =
        go_parallel ? std::min(active_list.size(), chunk_staged.size()) : 1;
    if (go_parallel) {
      OBS_COUNT("engine.parallel.rounds", 1);
      const std::size_t per = (active_list.size() + chunks - 1) / chunks;
      pool->run(chunks, [&](std::size_t c) {
        const std::size_t lo = c * per;
        const std::size_t hi = std::min(lo + per, active_list.size());
        OBS_HIST("engine.parallel.chunk_ases", "ases", hi - lo);
        for (std::size_t i = lo; i < hi; ++i) {
          evaluate(active_list[i], chunk_staged[c]);
        }
      });
    } else {
      for (const AsId x : active_list) evaluate(x, chunk_staged[0]);
    }

    // Commit phase (serial): intern winners and apply the writes in chunk
    // order == active_list order, deriving the next frontier as we go.
    // Activation is export-filtered: neighbor `nb` of a changed AS joins
    // the frontier only when Gao-Rexford export rules let nb see the old
    // or the new route — a stub whose provider-learned route changed
    // exports to nobody, so its change activates nobody. Skipped neighbors
    // provably have unchanged candidate sets and would stage nothing.
    active_list.clear();
    std::size_t staged_total = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      for (const StagedWrite& w : chunk_staged[c]) {
        ++staged_total;
        Route& slot = current[w.x];
        const bool old_valid = slot.valid();
        const Rel old_learned_from = slot.learned_from;
        if (w.has_route) {
          Route route;
          route.ann = w.ann;
          route.path = w.includes_sender
                           ? w.parent
                           : arena.prepend(w.sender_asn, w.parent);
          route.learned_from = w.learned_from;
          route.local_pref = w.local_pref;
          slot = route;
        } else {
          slot = Route{};
        }
        current_from[w.x] = w.from;
        settled[w.x] = round + 1;
        if (options_.activity_tracking) {
          for (const topology::Neighbor& nb : graph_.neighbors(w.x)) {
            if (nb.id == origin_id || queued[nb.id]) continue;
            // nb.rel is nb's relationship as seen from w.x, which is
            // exactly the receiver side of the sender's export decision.
            if (!((old_valid && policy_.exports(old_learned_from, nb.rel)) ||
                  (w.has_route && policy_.exports(w.learned_from, nb.rel)))) {
              continue;
            }
            queued[nb.id] = true;
            active_list.push_back(nb.id);
          }
        }
      }
    }
    OBS_COUNT("engine.routes_staged", staged_total);
    if (staged_total != 0) {
      any_staged = true;
      last_staged_round = round;
    }

    if (!options_.activity_tracking) {
      if (staged_total != 0) {
        for (AsId x = 0; x < n; ++x) {
          if (x != origin_id) active_list.push_back(x);
        }
      }
    } else {
      for (const AsId x : active_list) queued[x] = false;
    }
  }

  OBS_HIST("engine.rounds", "rounds", round);
  OBS_HIST("engine.arena.nodes", "nodes", arena.node_count());
  OBS_COUNT("engine.arena.interned", arena.node_count() - nodes_before);
  OBS_COUNT("engine.arena.hits", arena.hits() - hits_before);
  outcome.converged = active_list.empty();
  // Report rounds with unfiltered-frontier semantics: the last staging
  // round, plus the trailing no-op round an unfiltered frontier would run,
  // plus the empty round that detects convergence. Export-filtered
  // activation may terminate the loop earlier (it skips evaluations that
  // provably stage nothing), but the reported count stays bit-compatible
  // with the pre-arena engine the goldens were captured from.
  if (!outcome.converged) {
    outcome.rounds = round;
  } else if (any_staged) {
    outcome.rounds = std::min(last_staged_round + 2, options_.max_rounds);
  } else {
    outcome.rounds = had_initial_frontier ? 1u : 0u;
  }
  outcome.best = std::move(current);
  outcome.next_hop = std::move(current_from);
  outcome.settled_round = std::move(settled);
  outcome.paths = std::move(arena_ptr);
  return outcome;
}

}  // namespace

Engine::Prepared Engine::prepare(const OriginSpec& origin,
                                 const Configuration& config) const {
  return Prepared(
      std::make_unique<detail::SeedTable>(build_seeds(graph_, origin, config)));
}

RoutingOutcome Engine::run(const OriginSpec& origin,
                           const Configuration& config) const {
  return run(origin, config, prepare(origin, config));
}

RoutingOutcome Engine::run(const OriginSpec& origin,
                           const Configuration& /*config*/,
                           const Prepared& seeds) const {
  OBS_COUNT("engine.cold_runs", 1);
  return propagate(graph_, policy_, options_, origin, *seeds.table_,
                   std::make_shared<PathArena>(),
                   std::vector<Route>(graph_.size()),
                   std::vector<AsId>(graph_.size(), kInvalidAsId),
                   std::vector<bool>(graph_.size(), true));
}

RoutingOutcome Engine::run_warm(const OriginSpec& origin,
                                const Configuration& config,
                                const Configuration& baseline_config,
                                const RoutingOutcome& baseline) const {
  return run_warm(origin, config, baseline_config, RoutingOutcome(baseline));
}

RoutingOutcome Engine::run_warm(const OriginSpec& origin,
                                const Configuration& config,
                                const Configuration& baseline_config,
                                RoutingOutcome&& baseline) const {
  return run_warm(origin, config, prepare(origin, config), baseline_config,
                  prepare(origin, baseline_config), std::move(baseline));
}

RoutingOutcome Engine::run_warm_leased(
    const OriginSpec& origin, const Configuration& config,
    const Prepared& seeds, const Configuration& baseline_config,
    const Prepared& baseline_seeds,
    const std::shared_ptr<RoutingOutcome>& baseline, bool consume) const {
  if (baseline == nullptr) {
    throw std::invalid_argument("leased warm start requires a baseline");
  }
  if (consume) {
    // Every lease on the baseline was dropped: move its routing state and
    // arena into the warm run, exactly like the chained-campaign path.
    OBS_COUNT("engine.warm.lease_consumed", 1);
    return run_warm(origin, config, seeds, baseline_config, baseline_seeds,
                    std::move(*baseline));
  }
  // A lease is still reading the baseline. The copy shares the baseline's
  // arena, so run_warm takes the shared-arena path (prefix clone) and the
  // leased outcome stays valid and untouched.
  OBS_COUNT("engine.warm.lease_copied", 1);
  RoutingOutcome copy = *baseline;
  return run_warm(origin, config, seeds, baseline_config, baseline_seeds,
                  std::move(copy));
}

RoutingOutcome Engine::run_warm(const OriginSpec& origin,
                                const Configuration& config,
                                const Prepared& seeds_prep,
                                const Configuration& baseline_config,
                                const Prepared& baseline_seeds,
                                RoutingOutcome&& baseline) const {
  OBS_COUNT("engine.warm_runs", 1);
  const SeedTable& seeds = *seeds_prep.table_;
  const SeedTable& base_seeds = *baseline_seeds.table_;

  if (baseline.best.size() != graph_.size() ||
      baseline.next_hop.size() != graph_.size() || !baseline.paths) {
    throw std::invalid_argument(
        "warm-start baseline outcome does not match the topology");
  }
  if (!baseline.converged) {
    throw std::invalid_argument(
        "warm start requires a converged baseline outcome");
  }

  // Seed delta: an AS must be recomputed in round 0 when its own
  // announcement inputs changed. Its neighbors additionally need round-0
  // activation only when its export *filtering* changed (the no-export
  // filter a neighbor applies to routes learned from p reads p's seed
  // announcement) — a change to p's own route reaches them through the
  // ordinary changed-neighbor tracking as the delta ripples outward.
  std::vector<bool> active(graph_.size(), false);
  bool any_delta = false;
  for (AsId p = 0; p < graph_.size(); ++p) {
    if (seed_entry_equal(p, seeds, config, base_seeds, baseline_config)) {
      continue;
    }
    any_delta = true;
    active[p] = true;
    if (!export_filter_equal(p, seeds, config, base_seeds, baseline_config)) {
      for (const topology::Neighbor& n : graph_.neighbors(p)) {
        active[n.id] = true;
      }
    }
  }

  OBS_HIST("engine.warm.round0_frontier", "ases",
           std::count(active.begin(), active.end(), true));

  if (!any_delta) {
    // Identical seed tables: the baseline fixed point is the answer.
    OBS_COUNT("engine.warm.noop_hits", 1);
    RoutingOutcome outcome;
    outcome.best = std::move(baseline.best);
    outcome.next_hop = std::move(baseline.next_hop);
    outcome.settled_round.assign(graph_.size(), 0);
    outcome.paths = std::move(baseline.paths);
    outcome.rounds = 0;
    outcome.converged = true;
    return outcome;
  }

  // Arena ownership. Three cases, cheapest first:
  //   * sole owner, reasonably sized  → extend the baseline arena in place
  //     (the chained-campaign fast path: zero copies);
  //   * shared, reasonably sized      → id-preserving prefix clone, so the
  //     moved-in routes stay valid without rewriting a single id;
  //   * oversized (long warm chains)  → compact: re-intern only the paths
  //     the baseline routes still reference, rewriting their ids.
  std::vector<Route> current = std::move(baseline.best);
  std::shared_ptr<PathArena> arena;
  const bool oversized =
      baseline.paths->node_count() > options_.arena_compact_nodes;
  if (!oversized && baseline.paths.use_count() == 1) {
    arena = std::const_pointer_cast<PathArena>(baseline.paths);
    baseline.paths.reset();
  } else if (!oversized) {
    PathId max_id = kEmptyPath;
    for (const Route& r : current) max_id = std::max(max_id, r.path);
    auto fresh = std::make_shared<PathArena>();
    fresh->adopt_prefix(*baseline.paths, max_id);
    arena = std::move(fresh);
  } else {
    OBS_COUNT("engine.arena.compactions", 1);
    auto fresh = std::make_shared<PathArena>();
    std::vector<PathId> memo(baseline.paths->node_count() + 1,
                             PathArena::kNoMigration);
    for (Route& r : current) {
      if (r.path != kEmptyPath) {
        r.path = fresh->migrate(*baseline.paths, r.path, memo);
      }
    }
    arena = std::move(fresh);
  }

  return propagate(graph_, policy_, options_, origin, seeds,
                   std::move(arena), std::move(current),
                   std::move(baseline.next_hop), active);
}

std::vector<Engine::CandidateInfo> Engine::candidates(
    AsId as_id, const OriginSpec& origin, const Configuration& config,
    const RoutingOutcome& outcome) const {
  return candidates(as_id, origin, config, prepare(origin, config), outcome);
}

std::vector<Engine::CandidateInfo> Engine::candidates(
    AsId as_id, const OriginSpec& origin, const Configuration& /*config*/,
    const Prepared& prepared, const RoutingOutcome& outcome) const {
  const SeedTable& seeds = *prepared.table_;
  std::vector<CandidateInfo> out;
  if (as_id == seeds.origin_id) return out;

  // Seed paths are configuration data, not outcome data; intern the one
  // this AS may hear into a throwaway arena (CandidateRef carries its own
  // arena pointer, so mixing it with outcome-arena candidates is fine).
  PathArena seed_arena;
  const topology::Asn x_asn = graph_.asn_of(as_id);
  for (const topology::Neighbor& n : graph_.neighbors(as_id)) {
    CandidateRef cand;
    if (n.id == seeds.origin_id) {
      if (!seeds.has_seed[as_id]) continue;
      const Seed& seed = seeds.seed_of[as_id];
      cand.sender = seeds.origin_id;
      cand.sender_asn = origin.asn;
      cand.rel_of_sender = n.rel;
      cand.ann = seed.ann;
      cand.arena = &seed_arena;
      cand.learned_path = seed_arena.intern(seed.path);
      cand.path_includes_sender = true;
    } else {
      const Route& learned = outcome.best[n.id];
      if (!learned.valid()) continue;
      if (!policy_.exports(learned.learned_from, topology::reverse(n.rel))) {
        continue;
      }
      const auto& blocked = seeds.no_export_block[n.id];
      if (!blocked.empty() && seeds.seed_of[n.id].ann == learned.ann &&
          blocked[as_id]) {
        continue;
      }
      cand.sender = n.id;
      cand.sender_asn = graph_.asn_of(n.id);
      cand.rel_of_sender = n.rel;
      cand.ann = learned.ann;
      cand.arena = outcome.paths.get();
      cand.learned_path = learned.path;
      cand.path_includes_sender = false;
    }
    cand.local_pref = policy_.local_pref(as_id, cand.rel_of_sender);
    if (!policy_.accepts(as_id, x_asn, cand.rel_of_sender, cand)) continue;

    CandidateInfo info;
    info.sender = cand.sender;
    info.rel_of_sender = cand.rel_of_sender;
    info.local_pref = cand.local_pref;
    info.length = cand.length();
    info.ann = cand.ann;
    out.push_back(info);
  }
  return out;
}

bool routes_equal(const RoutingOutcome& a, const RoutingOutcome& b,
                  AsId id) {
  if (a.next_hop[id] != b.next_hop[id]) return false;
  const Route& ra = a.best[id];
  const Route& rb = b.best[id];
  if (ra.ann != rb.ann || ra.learned_from != rb.learned_from ||
      ra.local_pref != rb.local_pref) {
    return false;
  }
  if (!ra.valid()) return true;
  return a.paths->equal(ra.path, *b.paths, rb.path);
}

std::uint64_t outcome_checksum(const RoutingOutcome& outcome,
                               ChecksumScope scope) {
  // FNV-1a 64. The mixing order is a compatibility contract with the
  // goldens in tests/test_equivalence.cpp, captured from the pre-arena
  // engine — do not reorder.
  std::uint64_t h = 14695981039346656037ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (AsId as = 0; as < outcome.best.size(); ++as) {
    const Route& r = outcome.best[as];
    mix(r.ann);
    mix(static_cast<std::uint64_t>(r.learned_from));
    mix(r.local_pref);
    if (outcome.paths) {
      mix(outcome.paths->length(r.path));
      for (const topology::Asn asn : outcome.paths->view(r.path)) mix(asn);
    } else {
      mix(0);
    }
    mix(outcome.next_hop[as] == kInvalidAsId
            ? ~0ULL
            : static_cast<std::uint64_t>(outcome.next_hop[as]));
    if (scope == ChecksumScope::kFull) mix(outcome.settled_round[as]);
  }
  if (scope == ChecksumScope::kFull) mix(outcome.rounds);
  return h;
}

void forwarding_path_into(const RoutingOutcome& outcome, AsId source,
                          AsId origin, std::vector<AsId>& path) {
  path.clear();
  if (source == origin) {
    path.push_back(origin);
    return;
  }
  if (source >= outcome.best.size() || !outcome.best[source].valid()) {
    return;
  }
  AsId cursor = source;
  const std::size_t limit = outcome.best.size() + 1;
  while (true) {
    path.push_back(cursor);
    if (cursor == origin) return;
    if (path.size() > limit) {
      // Forwarding loop: inconsistent state (an engine bug or a
      // non-converged outcome); surface as an empty path like the
      // invalid-hop case below.
      path.clear();
      return;
    }
    const AsId hop = outcome.next_hop[cursor];
    if (hop == kInvalidAsId) {
      // Inconsistent forwarding state (should not happen on converged
      // outcomes); surface as an empty path.
      path.clear();
      return;
    }
    cursor = hop;
  }
}

std::vector<AsId> forwarding_path(const RoutingOutcome& outcome,
                                  AsId source, AsId origin) {
  std::vector<AsId> path;
  forwarding_path_into(outcome, source, origin, path);
  return path;
}

}  // namespace spooftrack::bgp
