#include "bgp/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/obs.hpp"

namespace spooftrack::bgp {

using topology::AsId;
using topology::kInvalidAsId;
using topology::Rel;

Engine::Engine(const topology::AsGraph& graph, const RoutingPolicy& policy,
               EngineOptions options)
    : graph_(graph), policy_(policy), options_(options) {
  if (!graph_.frozen()) {
    throw std::invalid_argument("engine requires a frozen AsGraph");
  }
}

namespace {

struct Seed {
  std::uint32_t ann = kNoAnnouncement;
  std::vector<topology::Asn> path;
};

struct SeedTable {
  AsId origin_id = kInvalidAsId;
  std::vector<Seed> seed_of;    // indexed by AsId (link providers only)
  std::vector<bool> has_seed;
};

/// Validates the configuration against the topology and builds the seed
/// routes each link provider hears from the origin.
SeedTable build_seeds(const topology::AsGraph& graph,
                      const OriginSpec& origin, const Configuration& config) {
  validate(config, origin);

  const auto origin_id = graph.id_of(origin.asn);
  if (!origin_id) {
    throw std::invalid_argument("origin AS " + std::to_string(origin.asn) +
                                " not present in topology");
  }

  SeedTable table;
  table.origin_id = *origin_id;
  table.seed_of.resize(graph.size());
  table.has_seed.assign(graph.size(), false);

  for (std::uint32_t ann = 0; ann < config.announcements.size(); ++ann) {
    const AnnouncementSpec& spec = config.announcements[ann];
    const PeeringLink& link = origin.links[spec.link];
    const auto provider_id = graph.id_of(link.provider);
    if (!provider_id) {
      throw std::invalid_argument("link provider AS " +
                                  std::to_string(link.provider) +
                                  " not present in topology");
    }
    const auto rel = graph.relationship(*origin_id, *provider_id);
    if (!rel || *rel != Rel::kProvider) {
      throw std::invalid_argument(
          "origin is not a customer of link provider AS " +
          std::to_string(link.provider));
    }
    if (table.has_seed[*provider_id]) {
      throw std::invalid_argument("two peering links share provider AS " +
                                  std::to_string(link.provider));
    }
    table.has_seed[*provider_id] = true;
    table.seed_of[*provider_id] = Seed{ann, seed_path(origin.asn, spec)};
  }
  return table;
}

/// True when AS `p` sees exactly the same announcement behaviour under both
/// configurations: same seed presence, announcement id, seed AS-path, and
/// no-export target set of that announcement. This is the full set of
/// configuration inputs that influence p's own route computation and the
/// no-export filtering its neighbors apply to routes learned from p.
bool seed_entry_equal(AsId p, const SeedTable& a, const Configuration& ca,
                      const SeedTable& b, const Configuration& cb) {
  if (a.has_seed[p] != b.has_seed[p]) return false;
  if (!a.has_seed[p]) return true;
  const Seed& sa = a.seed_of[p];
  const Seed& sb = b.seed_of[p];
  if (sa.ann != sb.ann || sa.path != sb.path) return false;
  return ca.announcements[sa.ann].no_export_to ==
         cb.announcements[sb.ann].no_export_to;
}

/// True when p's export filtering toward its neighbors is identical under
/// both configurations. A neighbor blocks a route learned from p iff p is
/// seeded, the route carries p's seed announcement, and the neighbor is on
/// that announcement's no-export list — so the decision function is
/// unchanged when both effective no-export lists are empty (nothing is ever
/// blocked), or when p is seeded on the same announcement id with the same
/// list under both. Only when this differs do p's neighbors need round-0
/// activation; a change to p's own route reaches them through ordinary
/// changed-neighbor tracking.
bool export_filter_equal(AsId p, const SeedTable& a, const Configuration& ca,
                         const SeedTable& b, const Configuration& cb) {
  static const std::vector<topology::Asn> kEmpty;
  const auto& ea = a.has_seed[p]
                       ? ca.announcements[a.seed_of[p].ann].no_export_to
                       : kEmpty;
  const auto& eb = b.has_seed[p]
                       ? cb.announcements[b.seed_of[p].ann].no_export_to
                       : kEmpty;
  if (ea.empty() && eb.empty()) return true;
  return a.has_seed[p] && b.has_seed[p] &&
         a.seed_of[p].ann == b.seed_of[p].ann && ea == eb;
}

/// The shared Jacobi fixed-point loop behind Engine::run and
/// Engine::run_warm. `current`/`current_from` is the starting routing state
/// (all-invalid on a cold start, the baseline fixed point on a warm start)
/// and `active_round0` selects which ASes recompute in round 0.
RoutingOutcome propagate(const topology::AsGraph& graph_,
                         const RoutingPolicy& policy_,
                         const EngineOptions& options_,
                         const OriginSpec& origin, const Configuration& config,
                         const SeedTable& seeds, std::vector<Route> current,
                         std::vector<AsId> current_from,
                         const std::vector<bool>& active_round0) {
  OBS_TIMER("engine.propagate_ns");
  OBS_COUNT("engine.propagations", 1);
  const AsId origin_id = seeds.origin_id;
  const std::size_t n = graph_.size();

  RoutingOutcome outcome;

  // The origin never holds a route to its own prefix.
  current[origin_id] = Route{};
  current_from[origin_id] = kInvalidAsId;

  std::vector<std::uint32_t> settled(n, 0);

  // Jacobi iteration over an explicit active frontier: an AS is recomputed
  // only when one of its neighbors changed in the previous round, and each
  // round touches only the frontier — never all of the topology. Round 0's
  // frontier is `active_round0` (every AS on a cold start, only
  // delta-affected ASes on a warm start).
  //
  // Instead of a second full buffer, each round stages its changed routes
  // and applies them only after every active AS has computed — all reads of
  // `current` happen before any write, so the schedule (and therefore every
  // per-round result) is exactly synchronous Jacobi.
  struct StagedWrite {
    AsId x;
    AsId from;
    Route route;
  };
  std::vector<StagedWrite> staged;

  std::vector<AsId> active_list;
  active_list.reserve(n);
  for (AsId x = 0; x < n; ++x) {
    if (x != origin_id && active_round0[x]) active_list.push_back(x);
  }
  std::vector<bool> queued(n, false);

  std::uint32_t round = 0;
  for (; round < options_.max_rounds && !active_list.empty(); ++round) {
    OBS_HIST("engine.frontier", "ases", active_list.size());
    staged.clear();

    for (const AsId x : active_list) {
      const topology::Asn x_asn = graph_.asn_of(x);
      CandidateRef best_ref;
      bool have_best = false;

      for (const topology::Neighbor& n : graph_.neighbors(x)) {
        CandidateRef cand;
        if (n.id == origin_id) {
          if (!seeds.has_seed[x]) continue;
          // Direct announcement from the origin over this peering link.
          const Seed& seed = seeds.seed_of[x];
          cand.sender = origin_id;
          cand.sender_asn = origin.asn;
          cand.rel_of_sender = n.rel;  // origin is our customer
          cand.ann = seed.ann;
          cand.learned_path = &seed.path;
          cand.path_includes_sender = true;
        } else {
          const Route& learned = current[n.id];
          if (!learned.valid()) continue;
          // Valley-free export rule at the sender: from the sender's
          // perspective, x is reverse(n.rel).
          if (!policy_.exports(learned.learned_from,
                               topology::reverse(n.rel))) {
            continue;
          }
          // BGP-community export control: a link provider whose best route
          // is its own seed withholds it from no-export targets.
          if (seeds.has_seed[n.id] &&
              seeds.seed_of[n.id].ann == learned.ann) {
            const auto& blocked =
                config.announcements[learned.ann].no_export_to;
            if (std::find(blocked.begin(), blocked.end(), x_asn) !=
                blocked.end()) {
              continue;
            }
          }
          cand.sender = n.id;
          cand.sender_asn = graph_.asn_of(n.id);
          cand.rel_of_sender = n.rel;
          cand.ann = learned.ann;
          cand.learned_path = &learned.as_path;
          cand.path_includes_sender = false;
        }
        cand.local_pref = policy_.local_pref(x, cand.rel_of_sender);

        if (!policy_.accepts(x, x_asn, cand.rel_of_sender, cand)) continue;
        if (!have_best || policy_.better(x, x_asn, cand, best_ref)) {
          best_ref = cand;
          have_best = true;
        }
      }

      // Materialise the winner and compare with the previous round's route.
      Route winner;
      AsId winner_from = kInvalidAsId;
      if (have_best) {
        winner.ann = best_ref.ann;
        winner.learned_from = best_ref.rel_of_sender;
        winner.local_pref = best_ref.local_pref;
        if (best_ref.path_includes_sender) {
          winner.as_path = *best_ref.learned_path;
        } else {
          winner.as_path.reserve(best_ref.learned_path->size() + 1);
          winner.as_path.push_back(best_ref.sender_asn);
          winner.as_path.insert(winner.as_path.end(),
                                best_ref.learned_path->begin(),
                                best_ref.learned_path->end());
        }
        winner_from = best_ref.sender;
      }

      if (winner_from != current_from[x] || !(winner == current[x])) {
        staged.push_back({x, winner_from, std::move(winner)});
      }
    }

    // Apply phase: commit the changed routes, then derive the next frontier
    // from their neighborhoods.
    OBS_COUNT("engine.routes_staged", staged.size());
    for (StagedWrite& w : staged) {
      current[w.x] = std::move(w.route);
      current_from[w.x] = w.from;
      settled[w.x] = round + 1;
    }
    active_list.clear();
    if (!options_.activity_tracking) {
      if (!staged.empty()) {
        for (AsId x = 0; x < n; ++x) {
          if (x != origin_id) active_list.push_back(x);
        }
      }
    } else {
      for (const StagedWrite& w : staged) {
        for (const topology::Neighbor& nb : graph_.neighbors(w.x)) {
          if (nb.id == origin_id || queued[nb.id]) continue;
          queued[nb.id] = true;
          active_list.push_back(nb.id);
        }
      }
      for (const AsId x : active_list) queued[x] = false;
    }
  }

  OBS_HIST("engine.rounds", "rounds", round);
  outcome.rounds = round;
  outcome.converged = active_list.empty();
  outcome.best = std::move(current);
  outcome.next_hop = std::move(current_from);
  outcome.settled_round = std::move(settled);
  return outcome;
}

}  // namespace

RoutingOutcome Engine::run(const OriginSpec& origin,
                           const Configuration& config) const {
  OBS_COUNT("engine.cold_runs", 1);
  const SeedTable seeds = build_seeds(graph_, origin, config);
  return propagate(graph_, policy_, options_, origin, config, seeds,
                   std::vector<Route>(graph_.size()),
                   std::vector<AsId>(graph_.size(), kInvalidAsId),
                   std::vector<bool>(graph_.size(), true));
}

RoutingOutcome Engine::run_warm(const OriginSpec& origin,
                                const Configuration& config,
                                const Configuration& baseline_config,
                                const RoutingOutcome& baseline) const {
  return run_warm(origin, config, baseline_config, RoutingOutcome(baseline));
}

RoutingOutcome Engine::run_warm(const OriginSpec& origin,
                                const Configuration& config,
                                const Configuration& baseline_config,
                                RoutingOutcome&& baseline) const {
  OBS_COUNT("engine.warm_runs", 1);
  const SeedTable seeds = build_seeds(graph_, origin, config);
  const SeedTable base_seeds = build_seeds(graph_, origin, baseline_config);

  if (baseline.best.size() != graph_.size() ||
      baseline.next_hop.size() != graph_.size()) {
    throw std::invalid_argument(
        "warm-start baseline outcome does not match the topology");
  }
  if (!baseline.converged) {
    throw std::invalid_argument(
        "warm start requires a converged baseline outcome");
  }

  // Seed delta: an AS must be recomputed in round 0 when its own
  // announcement inputs changed. Its neighbors additionally need round-0
  // activation only when its export *filtering* changed (the no-export
  // filter a neighbor applies to routes learned from p reads p's seed
  // announcement) — a change to p's own route reaches them through the
  // ordinary changed-neighbor tracking as the delta ripples outward.
  std::vector<bool> active(graph_.size(), false);
  bool any_delta = false;
  for (AsId p = 0; p < graph_.size(); ++p) {
    if (seed_entry_equal(p, seeds, config, base_seeds, baseline_config)) {
      continue;
    }
    any_delta = true;
    active[p] = true;
    if (!export_filter_equal(p, seeds, config, base_seeds, baseline_config)) {
      for (const topology::Neighbor& n : graph_.neighbors(p)) {
        active[n.id] = true;
      }
    }
  }

  OBS_HIST("engine.warm.round0_frontier", "ases",
           std::count(active.begin(), active.end(), true));

  if (!any_delta) {
    // Identical seed tables: the baseline fixed point is the answer.
    OBS_COUNT("engine.warm.noop_hits", 1);
    RoutingOutcome outcome;
    outcome.best = std::move(baseline.best);
    outcome.next_hop = std::move(baseline.next_hop);
    outcome.settled_round.assign(graph_.size(), 0);
    outcome.rounds = 0;
    outcome.converged = true;
    return outcome;
  }

  return propagate(graph_, policy_, options_, origin, config, seeds,
                   std::move(baseline.best), std::move(baseline.next_hop),
                   active);
}

std::vector<Engine::CandidateInfo> Engine::candidates(
    AsId as_id, const OriginSpec& origin, const Configuration& config,
    const RoutingOutcome& outcome) const {
  const SeedTable seeds = build_seeds(graph_, origin, config);
  std::vector<CandidateInfo> out;
  if (as_id == seeds.origin_id) return out;

  const topology::Asn x_asn = graph_.asn_of(as_id);
  for (const topology::Neighbor& n : graph_.neighbors(as_id)) {
    CandidateRef cand;
    if (n.id == seeds.origin_id) {
      if (!seeds.has_seed[as_id]) continue;
      const Seed& seed = seeds.seed_of[as_id];
      cand.sender = seeds.origin_id;
      cand.sender_asn = origin.asn;
      cand.rel_of_sender = n.rel;
      cand.ann = seed.ann;
      cand.learned_path = &seed.path;
      cand.path_includes_sender = true;
    } else {
      const Route& learned = outcome.best[n.id];
      if (!learned.valid()) continue;
      if (!policy_.exports(learned.learned_from, topology::reverse(n.rel))) {
        continue;
      }
      if (seeds.has_seed[n.id] && seeds.seed_of[n.id].ann == learned.ann) {
        const auto& blocked = config.announcements[learned.ann].no_export_to;
        if (std::find(blocked.begin(), blocked.end(), x_asn) !=
            blocked.end()) {
          continue;
        }
      }
      cand.sender = n.id;
      cand.sender_asn = graph_.asn_of(n.id);
      cand.rel_of_sender = n.rel;
      cand.ann = learned.ann;
      cand.learned_path = &learned.as_path;
      cand.path_includes_sender = false;
    }
    cand.local_pref = policy_.local_pref(as_id, cand.rel_of_sender);
    if (!policy_.accepts(as_id, x_asn, cand.rel_of_sender, cand)) continue;

    CandidateInfo info;
    info.sender = cand.sender;
    info.rel_of_sender = cand.rel_of_sender;
    info.local_pref = cand.local_pref;
    info.length = cand.length();
    info.ann = cand.ann;
    out.push_back(info);
  }
  return out;
}

std::vector<AsId> forwarding_path(const RoutingOutcome& outcome,
                                  AsId source, AsId origin) {
  std::vector<AsId> path;
  if (source == origin) {
    path.push_back(origin);
    return path;
  }
  if (source >= outcome.best.size() || !outcome.best[source].valid()) {
    return path;
  }
  AsId cursor = source;
  const std::size_t limit = outcome.best.size() + 1;
  while (true) {
    path.push_back(cursor);
    if (cursor == origin) return path;
    if (path.size() > limit) {
      // Forwarding loop: inconsistent state (an engine bug or a
      // non-converged outcome); surface as an empty path like the
      // invalid-hop case below.
      return {};
    }
    const AsId hop = outcome.next_hop[cursor];
    if (hop == kInvalidAsId) {
      // Inconsistent forwarding state (should not happen on converged
      // outcomes); surface as an empty path.
      return {};
    }
    cursor = hop;
  }
}

}  // namespace spooftrack::bgp
