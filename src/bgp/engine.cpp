#include "bgp/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace spooftrack::bgp {

using topology::AsId;
using topology::kInvalidAsId;
using topology::Rel;

Engine::Engine(const topology::AsGraph& graph, const RoutingPolicy& policy,
               EngineOptions options)
    : graph_(graph), policy_(policy), options_(options) {
  if (!graph_.frozen()) {
    throw std::invalid_argument("engine requires a frozen AsGraph");
  }
}

namespace {

struct Seed {
  std::uint32_t ann = kNoAnnouncement;
  std::vector<topology::Asn> path;
};

struct SeedTable {
  AsId origin_id = kInvalidAsId;
  std::vector<Seed> seed_of;    // indexed by AsId (link providers only)
  std::vector<bool> has_seed;
};

/// Validates the configuration against the topology and builds the seed
/// routes each link provider hears from the origin.
SeedTable build_seeds(const topology::AsGraph& graph,
                      const OriginSpec& origin, const Configuration& config) {
  validate(config, origin);

  const auto origin_id = graph.id_of(origin.asn);
  if (!origin_id) {
    throw std::invalid_argument("origin AS " + std::to_string(origin.asn) +
                                " not present in topology");
  }

  SeedTable table;
  table.origin_id = *origin_id;
  table.seed_of.resize(graph.size());
  table.has_seed.assign(graph.size(), false);

  for (std::uint32_t ann = 0; ann < config.announcements.size(); ++ann) {
    const AnnouncementSpec& spec = config.announcements[ann];
    const PeeringLink& link = origin.links[spec.link];
    const auto provider_id = graph.id_of(link.provider);
    if (!provider_id) {
      throw std::invalid_argument("link provider AS " +
                                  std::to_string(link.provider) +
                                  " not present in topology");
    }
    const auto rel = graph.relationship(*origin_id, *provider_id);
    if (!rel || *rel != Rel::kProvider) {
      throw std::invalid_argument(
          "origin is not a customer of link provider AS " +
          std::to_string(link.provider));
    }
    if (table.has_seed[*provider_id]) {
      throw std::invalid_argument("two peering links share provider AS " +
                                  std::to_string(link.provider));
    }
    table.has_seed[*provider_id] = true;
    table.seed_of[*provider_id] = Seed{ann, seed_path(origin.asn, spec)};
  }
  return table;
}

}  // namespace

RoutingOutcome Engine::run(const OriginSpec& origin,
                           const Configuration& config) const {
  const SeedTable seeds = build_seeds(graph_, origin, config);
  const AsId origin_id = seeds.origin_id;

  RoutingOutcome outcome;

  // Double-buffered Jacobi iteration with activity tracking: an AS is
  // recomputed only when one of its neighbors changed in the previous
  // round (every AS is active in round 0).
  std::vector<Route> current(graph_.size());
  std::vector<AsId> current_from(graph_.size(), kInvalidAsId);
  std::vector<bool> changed_prev(graph_.size(), true);
  std::vector<std::uint32_t> settled(graph_.size(), 0);

  bool any_change = true;
  std::uint32_t round = 0;
  std::vector<Route> next(graph_.size());
  std::vector<AsId> next_from(graph_.size(), kInvalidAsId);
  std::vector<bool> changed_now(graph_.size(), false);

  for (; round < options_.max_rounds && any_change; ++round) {
    any_change = false;
    std::fill(changed_now.begin(), changed_now.end(), false);

    for (AsId x = 0; x < graph_.size(); ++x) {
      if (x == origin_id) {
        next[x] = Route{};
        next_from[x] = kInvalidAsId;
        continue;
      }

      bool active = round == 0 || !options_.activity_tracking;
      if (!active) {
        for (const topology::Neighbor& n : graph_.neighbors(x)) {
          if (changed_prev[n.id]) {
            active = true;
            break;
          }
        }
      }
      if (!active) {
        next[x] = current[x];
        next_from[x] = current_from[x];
        continue;
      }

      const topology::Asn x_asn = graph_.asn_of(x);
      CandidateRef best_ref;
      bool have_best = false;

      for (const topology::Neighbor& n : graph_.neighbors(x)) {
        CandidateRef cand;
        if (n.id == origin_id) {
          if (!seeds.has_seed[x]) continue;
          // Direct announcement from the origin over this peering link.
          const Seed& seed = seeds.seed_of[x];
          cand.sender = origin_id;
          cand.sender_asn = origin.asn;
          cand.rel_of_sender = n.rel;  // origin is our customer
          cand.ann = seed.ann;
          cand.learned_path = &seed.path;
          cand.path_includes_sender = true;
        } else {
          const Route& learned = current[n.id];
          if (!learned.valid()) continue;
          // Valley-free export rule at the sender: from the sender's
          // perspective, x is reverse(n.rel).
          if (!policy_.exports(learned.learned_from,
                               topology::reverse(n.rel))) {
            continue;
          }
          // BGP-community export control: a link provider whose best route
          // is its own seed withholds it from no-export targets.
          if (seeds.has_seed[n.id] &&
              seeds.seed_of[n.id].ann == learned.ann) {
            const auto& blocked =
                config.announcements[learned.ann].no_export_to;
            if (std::find(blocked.begin(), blocked.end(), x_asn) !=
                blocked.end()) {
              continue;
            }
          }
          cand.sender = n.id;
          cand.sender_asn = graph_.asn_of(n.id);
          cand.rel_of_sender = n.rel;
          cand.ann = learned.ann;
          cand.learned_path = &learned.as_path;
          cand.path_includes_sender = false;
        }
        cand.local_pref = policy_.local_pref(x, cand.rel_of_sender);

        if (!policy_.accepts(x, x_asn, cand.rel_of_sender, cand)) continue;
        if (!have_best || policy_.better(x, x_asn, cand, best_ref)) {
          best_ref = cand;
          have_best = true;
        }
      }

      // Materialise the winner and compare with the previous round's route.
      Route winner;
      AsId winner_from = kInvalidAsId;
      if (have_best) {
        winner.ann = best_ref.ann;
        winner.learned_from = best_ref.rel_of_sender;
        winner.local_pref = best_ref.local_pref;
        if (best_ref.path_includes_sender) {
          winner.as_path = *best_ref.learned_path;
        } else {
          winner.as_path.reserve(best_ref.learned_path->size() + 1);
          winner.as_path.push_back(best_ref.sender_asn);
          winner.as_path.insert(winner.as_path.end(),
                                best_ref.learned_path->begin(),
                                best_ref.learned_path->end());
        }
        winner_from = best_ref.sender;
      }

      const bool differs =
          winner_from != current_from[x] || !(winner == current[x]);
      next[x] = std::move(winner);
      next_from[x] = winner_from;
      if (differs) {
        changed_now[x] = true;
        any_change = true;
        settled[x] = round + 1;
      }
    }

    current.swap(next);
    current_from.swap(next_from);
    changed_prev.swap(changed_now);
  }

  outcome.rounds = round;
  outcome.converged = !any_change;
  outcome.best = std::move(current);
  outcome.next_hop = std::move(current_from);
  outcome.settled_round = std::move(settled);
  return outcome;
}

std::vector<Engine::CandidateInfo> Engine::candidates(
    AsId as_id, const OriginSpec& origin, const Configuration& config,
    const RoutingOutcome& outcome) const {
  const SeedTable seeds = build_seeds(graph_, origin, config);
  std::vector<CandidateInfo> out;
  if (as_id == seeds.origin_id) return out;

  const topology::Asn x_asn = graph_.asn_of(as_id);
  for (const topology::Neighbor& n : graph_.neighbors(as_id)) {
    CandidateRef cand;
    if (n.id == seeds.origin_id) {
      if (!seeds.has_seed[as_id]) continue;
      const Seed& seed = seeds.seed_of[as_id];
      cand.sender = seeds.origin_id;
      cand.sender_asn = origin.asn;
      cand.rel_of_sender = n.rel;
      cand.ann = seed.ann;
      cand.learned_path = &seed.path;
      cand.path_includes_sender = true;
    } else {
      const Route& learned = outcome.best[n.id];
      if (!learned.valid()) continue;
      if (!policy_.exports(learned.learned_from, topology::reverse(n.rel))) {
        continue;
      }
      if (seeds.has_seed[n.id] && seeds.seed_of[n.id].ann == learned.ann) {
        const auto& blocked = config.announcements[learned.ann].no_export_to;
        if (std::find(blocked.begin(), blocked.end(), x_asn) !=
            blocked.end()) {
          continue;
        }
      }
      cand.sender = n.id;
      cand.sender_asn = graph_.asn_of(n.id);
      cand.rel_of_sender = n.rel;
      cand.ann = learned.ann;
      cand.learned_path = &learned.as_path;
      cand.path_includes_sender = false;
    }
    cand.local_pref = policy_.local_pref(as_id, cand.rel_of_sender);
    if (!policy_.accepts(as_id, x_asn, cand.rel_of_sender, cand)) continue;

    CandidateInfo info;
    info.sender = cand.sender;
    info.rel_of_sender = cand.rel_of_sender;
    info.local_pref = cand.local_pref;
    info.length = cand.length();
    info.ann = cand.ann;
    out.push_back(info);
  }
  return out;
}

std::vector<AsId> forwarding_path(const RoutingOutcome& outcome,
                                  AsId source, AsId origin) {
  std::vector<AsId> path;
  if (source == origin) {
    path.push_back(origin);
    return path;
  }
  if (source >= outcome.best.size() || !outcome.best[source].valid()) {
    return path;
  }
  AsId cursor = source;
  const std::size_t limit = outcome.best.size() + 1;
  while (true) {
    path.push_back(cursor);
    if (cursor == origin) return path;
    if (path.size() > limit) {
      throw std::logic_error("forwarding loop detected");
    }
    const AsId hop = outcome.next_hop[cursor];
    if (hop == kInvalidAsId) {
      // Inconsistent forwarding state (should not happen on converged
      // outcomes); surface as an empty path.
      return {};
    }
    cursor = hop;
  }
}

}  // namespace spooftrack::bgp
