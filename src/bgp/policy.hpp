// Per-AS routing policy: Gao-Rexford import preferences and export rules,
// BGP loop prevention (the mechanism poisoning exploits), and the
// real-world deviations the paper depends on or measures:
//
//   * ASes that disable loop prevention for traffic engineering, making
//     poisoning ineffective against them (§III-A(c));
//   * tier-1 ASes that filter customer announcements whose AS-path contains
//     another tier-1 (route-leak protection), dropping poisoned
//     announcements entirely (§III-A(c));
//   * "relationship violators" that swap peer/provider preference — these
//     break Gao's best-relationship criterion and produce the <100%
//     compliance of Figure 9 while remaining provably convergent
//     (Gao-Rexford safety only requires customer routes to stay on top);
//   * "shortest-path violators" whose IGP-like tiebreak dominates AS-path
//     length inside a preference class (Figure 9's second criterion).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "bgp/path_arena.hpp"
#include "bgp/route.hpp"
#include "topology/as_graph.hpp"

namespace spooftrack::bgp {

struct PolicyConfig {
  std::uint64_t seed = 7;
  /// Fraction of ASes that ignore their own ASN in received paths.
  double ignore_poison_fraction = 0.02;
  /// Fraction of ASes whose tiebreak score dominates AS-path length.
  double shortest_violator_fraction = 0.06;
  /// Fraction of ASes preferring provider routes over peer routes.
  double peer_provider_swap_fraction = 0.05;
  /// Whether tier-1 ASes drop customer routes containing other tier-1s.
  bool tier1_filters_poisoned = true;
};

struct AsPolicyFlags {
  bool is_tier1 = false;
  bool ignores_poison = false;
  bool shortest_violator = false;
  bool peer_provider_swapped = false;
};

/// A candidate route as evaluated by a receiver, before the receiver's own
/// path node is interned. `learned_path` is the path as held by the sender,
/// in `arena`; when `path_includes_sender` is false the candidate path is
/// conceptually [sender_asn] + learned_path (the normal relayed case);
/// when true, the learned path already starts with the sender (origin
/// seeds). Everything is O(1) to copy — candidate evaluation allocates
/// nothing.
struct CandidateRef {
  topology::AsId sender = topology::kInvalidAsId;
  topology::Asn sender_asn = 0;
  topology::Rel rel_of_sender = topology::Rel::kProvider;
  std::uint8_t local_pref = kPrefProvider;
  std::uint32_t ann = kNoAnnouncement;
  const PathArena* arena = nullptr;
  PathId learned_path = kEmptyPath;
  bool path_includes_sender = false;

  std::uint32_t length() const noexcept {
    return arena->length(learned_path) + (path_includes_sender ? 0u : 1u);
  }
};

class RoutingPolicy {
 public:
  /// Derives per-AS flags from the graph (tier-1 detection) and the config
  /// (random flag assignment, deterministic in config.seed).
  RoutingPolicy(const topology::AsGraph& graph, const PolicyConfig& config);

  const AsPolicyFlags& flags(topology::AsId id) const noexcept {
    return flags_[id];
  }

  /// Replaces one AS's flags — used by tests and what-if analyses
  /// (e.g. "would poisoning work if AS X obeyed loop prevention?").
  void override_flags(topology::AsId id, AsPolicyFlags flags) {
    flags_[id] = flags;
    // Keep the tier-1 ASN set consistent with the flag.
    // (tier1_asns_ is keyed by ASN, which the caller controls via the
    // graph; flag-only overrides adjust filtering behaviour.)
  }
  bool is_tier1_asn(topology::Asn asn) const noexcept {
    return tier1_asns_.contains(asn);
  }

  /// LocalPref `receiver` assigns a route learned from a neighbor related
  /// by `rel_of_sender`. Canonical Gao-Rexford unless the AS swaps
  /// peer/provider preference.
  std::uint8_t local_pref(topology::AsId receiver,
                          topology::Rel rel_of_sender) const noexcept;

  /// Import filter: would `receiver` accept this candidate from a neighbor
  /// related to it by `rel_of_sender`? Walks the candidate's arena path;
  /// allocation-free.
  bool accepts(topology::AsId receiver, topology::Asn receiver_asn,
               topology::Rel rel_of_sender,
               const CandidateRef& candidate) const;

  /// Convenience overload for a materialised AS-path (used by tests); the
  /// path must include the sender as its first element.
  bool accepts(topology::AsId receiver, topology::Asn receiver_asn,
               topology::Rel rel_of_sender,
               std::span<const topology::Asn> path_with_sender) const;

  /// Export filter: Gao-Rexford — customer-learned routes go to everyone;
  /// peer- and provider-learned routes go only to customers.
  bool exports(topology::Rel learned_from,
               topology::Rel rel_of_receiver) const noexcept;

  /// Deterministic per-adjacency tiebreak score (lower wins); models the
  /// IGP-cost / MED / router-id tiebreaks the origin cannot control.
  std::uint64_t tie_score(topology::Asn receiver_asn,
                          topology::Asn sender_asn) const noexcept;

  /// Strict order for `receiver`: true when `a` is preferred over `b`.
  /// Candidates must already carry the receiver's local_pref.
  bool better(topology::AsId receiver, topology::Asn receiver_asn,
              const CandidateRef& a, const CandidateRef& b) const;

 private:
  template <class PathRange>
  bool accepts_path(topology::AsId receiver, topology::Asn receiver_asn,
                    topology::Rel rel_of_sender,
                    topology::Asn relayed_sender_asn,
                    const PathRange& path) const;

  std::vector<AsPolicyFlags> flags_;
  std::unordered_set<topology::Asn> tier1_asns_;
  // OR of PathArena::bloom_bit over tier1_asns_: a path whose bloom misses
  // this mask provably contains no tier-1 ASN, skipping the leak-filter
  // walk in the common case.
  std::uint64_t tier1_bloom_ = 0;
};

}  // namespace spooftrack::bgp
