#include "bgp/announcement.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace spooftrack::bgp {

bool Configuration::announces(LinkId link) const noexcept {
  return spec_for(link) != nullptr;
}

const AnnouncementSpec* Configuration::spec_for(LinkId link) const noexcept {
  for (const auto& spec : announcements) {
    if (spec.link == link) return &spec;
  }
  return nullptr;
}

std::vector<LinkId> Configuration::active_links() const {
  std::vector<LinkId> links;
  links.reserve(announcements.size());
  for (const auto& spec : announcements) links.push_back(spec.link);
  std::sort(links.begin(), links.end());
  return links;
}

const PeeringLink* OriginSpec::link_by_provider(
    topology::Asn provider) const noexcept {
  for (const auto& link : links) {
    if (link.provider == provider) return &link;
  }
  return nullptr;
}

std::vector<topology::Asn> seed_path(topology::Asn origin,
                                     const AnnouncementSpec& spec) {
  std::vector<topology::Asn> path;
  path.reserve(1 + spec.prepend + 2 * spec.poisoned.size());
  for (std::uint32_t i = 0; i <= spec.prepend; ++i) path.push_back(origin);
  for (topology::Asn poisoned : spec.poisoned) {
    path.push_back(poisoned);
    path.push_back(origin);
  }
  return path;
}

void validate(const Configuration& config, const OriginSpec& origin) {
  if (config.announcements.empty()) {
    throw std::invalid_argument("configuration announces from no link");
  }
  std::unordered_set<LinkId> seen;
  for (const auto& spec : config.announcements) {
    if (spec.link >= origin.links.size()) {
      throw std::invalid_argument("announcement references unknown link " +
                                  std::to_string(spec.link));
    }
    if (!seen.insert(spec.link).second) {
      throw std::invalid_argument("link " + std::to_string(spec.link) +
                                  " announced twice in one configuration");
    }
    if (spec.prepend > kMaxPrepend) {
      throw std::invalid_argument("prepend count exceeds cap");
    }
    if (spec.poisoned.size() > kMaxPoisonedPerAnnouncement) {
      throw std::invalid_argument(
          "PEERING allows at most two poisoned ASes per announcement");
    }
    for (topology::Asn poisoned : spec.poisoned) {
      if (poisoned == origin.asn) {
        throw std::invalid_argument("origin cannot poison itself");
      }
    }
    if (spec.no_export_to.size() > kMaxNoExportPerAnnouncement) {
      throw std::invalid_argument("too many no-export community targets");
    }
    for (topology::Asn target : spec.no_export_to) {
      if (target == origin.asn) {
        throw std::invalid_argument(
            "origin cannot no-export to itself");
      }
    }
  }
}

}  // namespace spooftrack::bgp
