#include "bgp/route.hpp"

namespace spooftrack::bgp {

std::uint8_t canonical_pref(topology::Rel rel_of_sender) noexcept {
  switch (rel_of_sender) {
    case topology::Rel::kCustomer: return kPrefCustomer;
    case topology::Rel::kPeer: return kPrefPeer;
    case topology::Rel::kProvider: return kPrefProvider;
  }
  return kPrefProvider;
}

std::string to_string(const Route& route, const PathArena& arena) {
  if (!route.valid()) return "<no route>";
  std::string out = "[";
  bool first = true;
  for (topology::Asn asn : arena.view(route.path)) {
    if (!first) out += ' ';
    out += std::to_string(asn);
    first = false;
  }
  out += "] learned from ";
  out += topology::to_string(route.learned_from);
  out += " lp=";
  out += std::to_string(static_cast<unsigned>(route.local_pref));
  out += " (ann ";
  out += std::to_string(route.ann);
  out += ")";
  return out;
}

}  // namespace spooftrack::bgp
