#include "bgp/route.hpp"

#include <algorithm>

namespace spooftrack::bgp {

std::uint8_t canonical_pref(topology::Rel rel_of_sender) noexcept {
  switch (rel_of_sender) {
    case topology::Rel::kCustomer: return kPrefCustomer;
    case topology::Rel::kPeer: return kPrefPeer;
    case topology::Rel::kProvider: return kPrefProvider;
  }
  return kPrefProvider;
}

bool Route::contains(topology::Asn asn) const noexcept {
  return std::find(as_path.begin(), as_path.end(), asn) != as_path.end();
}

std::string Route::to_string() const {
  if (!valid()) return "<no route>";
  std::string out = "[";
  for (std::size_t i = 0; i < as_path.size(); ++i) {
    if (i != 0) out += ' ';
    out += std::to_string(as_path[i]);
  }
  out += "] learned from ";
  out += topology::to_string(learned_from);
  out += " lp=";
  out += std::to_string(static_cast<unsigned>(local_pref));
  out += " (ann ";
  out += std::to_string(ann);
  out += ")";
  return out;
}

}  // namespace spooftrack::bgp
