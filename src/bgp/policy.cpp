#include "bgp/policy.hpp"

#include "topology/metrics.hpp"
#include "util/rng.hpp"

namespace spooftrack::bgp {

RoutingPolicy::RoutingPolicy(const topology::AsGraph& graph,
                             const PolicyConfig& config)
    : flags_(graph.size()) {
  for (topology::AsId id : topology::tier1_set(graph)) {
    flags_[id].is_tier1 = config.tier1_filters_poisoned;
    tier1_asns_.insert(graph.asn_of(id));
    tier1_bloom_ |= PathArena::bloom_bit(graph.asn_of(id));
  }
  util::Rng rng{config.seed};
  for (topology::AsId id = 0; id < graph.size(); ++id) {
    if (rng.chance(config.ignore_poison_fraction)) {
      flags_[id].ignores_poison = true;
    }
    if (rng.chance(config.shortest_violator_fraction)) {
      flags_[id].shortest_violator = true;
    }
    if (rng.chance(config.peer_provider_swap_fraction)) {
      flags_[id].peer_provider_swapped = true;
    }
  }
}

std::uint8_t RoutingPolicy::local_pref(
    topology::AsId receiver, topology::Rel rel_of_sender) const noexcept {
  if (flags_[receiver].peer_provider_swapped) {
    switch (rel_of_sender) {
      case topology::Rel::kCustomer: return kPrefCustomer;
      case topology::Rel::kProvider: return kPrefPeer;   // swapped up
      case topology::Rel::kPeer: return kPrefProvider;   // swapped down
    }
  }
  return canonical_pref(rel_of_sender);
}

template <class PathRange>
bool RoutingPolicy::accepts_path(topology::AsId receiver,
                                 topology::Asn receiver_asn,
                                 topology::Rel rel_of_sender,
                                 topology::Asn relayed_sender_asn,
                                 const PathRange& path) const {
  const AsPolicyFlags& f = flags_[receiver];

  // BGP loop prevention: the mechanism poisoning relies on. ASes that
  // disabled it (interconnecting sites over the Internet) accept anyway.
  // The sender cannot be the receiver, so scanning the learned path covers
  // the whole candidate path.
  if (!f.ignores_poison) {
    for (topology::Asn asn : path) {
      if (asn == receiver_asn) return false;
    }
  }

  // Tier-1 route-leak filter: a customer announcing a path through another
  // tier-1 looks like a leak; poisoned announcements trip this filter.
  if (f.is_tier1 && rel_of_sender == topology::Rel::kCustomer) {
    for (topology::Asn asn : path) {
      if (asn != receiver_asn && tier1_asns_.contains(asn)) return false;
    }
    if (relayed_sender_asn != 0 &&
        tier1_asns_.contains(relayed_sender_asn)) {
      return false;
    }
  }
  return true;
}

bool RoutingPolicy::accepts(topology::AsId receiver,
                            topology::Asn receiver_asn,
                            topology::Rel rel_of_sender,
                            const CandidateRef& candidate) const {
  // The hot path of candidate evaluation: both filters are membership
  // queries over the candidate's path, so the path's Bloom signature (one
  // load — it lives in the head node) answers the common negative case
  // without walking the path. Positives fall back to the exact walk, so
  // outcomes are identical to accepts_path.
  const AsPolicyFlags& f = flags_[receiver];
  const PathArena& arena = *candidate.arena;
  const std::uint64_t path_bloom = arena.bloom(candidate.learned_path);

  if (!f.ignores_poison &&
      (path_bloom & PathArena::bloom_bit(receiver_asn)) != 0) {
    for (topology::Asn asn : arena.view(candidate.learned_path)) {
      if (asn == receiver_asn) return false;
    }
  }

  if (f.is_tier1 && rel_of_sender == topology::Rel::kCustomer) {
    if ((path_bloom & tier1_bloom_) != 0) {
      for (topology::Asn asn : arena.view(candidate.learned_path)) {
        if (asn != receiver_asn && tier1_asns_.contains(asn)) return false;
      }
    }
    if (!candidate.path_includes_sender &&
        tier1_asns_.contains(candidate.sender_asn)) {
      return false;
    }
  }
  return true;
}

bool RoutingPolicy::accepts(
    topology::AsId receiver, topology::Asn receiver_asn,
    topology::Rel rel_of_sender,
    std::span<const topology::Asn> path_with_sender) const {
  return accepts_path(receiver, receiver_asn, rel_of_sender, topology::Asn{0},
                      path_with_sender);
}

bool RoutingPolicy::exports(topology::Rel learned_from,
                            topology::Rel rel_of_receiver) const noexcept {
  if (learned_from == topology::Rel::kCustomer) return true;
  return rel_of_receiver == topology::Rel::kCustomer;
}

std::uint64_t RoutingPolicy::tie_score(topology::Asn receiver_asn,
                                       topology::Asn sender_asn) const
    noexcept {
  return util::hash_combine(receiver_asn, sender_asn);
}

bool RoutingPolicy::better(topology::AsId receiver,
                           topology::Asn receiver_asn, const CandidateRef& a,
                           const CandidateRef& b) const {
  if (a.local_pref != b.local_pref) return a.local_pref > b.local_pref;

  const bool score_first = flags_[receiver].shortest_violator;
  const std::uint64_t score_a = tie_score(receiver_asn, a.sender_asn);
  const std::uint64_t score_b = tie_score(receiver_asn, b.sender_asn);
  const std::uint32_t len_a = a.length();
  const std::uint32_t len_b = b.length();

  if (score_first) {
    if (score_a != score_b) return score_a < score_b;
    if (len_a != len_b) return len_a < len_b;
  } else {
    if (len_a != len_b) return len_a < len_b;
    if (score_a != score_b) return score_a < score_b;
  }
  // Final deterministic tiebreak: lowest neighbor ASN (router-id analogue).
  return a.sender_asn < b.sender_asn;
}

}  // namespace spooftrack::bgp
