#include "bgp/policy.hpp"

#include "topology/metrics.hpp"
#include "util/rng.hpp"

namespace spooftrack::bgp {

RoutingPolicy::RoutingPolicy(const topology::AsGraph& graph,
                             const PolicyConfig& config)
    : flags_(graph.size()) {
  for (topology::AsId id : topology::tier1_set(graph)) {
    flags_[id].is_tier1 = config.tier1_filters_poisoned;
    tier1_asns_.insert(graph.asn_of(id));
  }
  util::Rng rng{config.seed};
  for (topology::AsId id = 0; id < graph.size(); ++id) {
    if (rng.chance(config.ignore_poison_fraction)) {
      flags_[id].ignores_poison = true;
    }
    if (rng.chance(config.shortest_violator_fraction)) {
      flags_[id].shortest_violator = true;
    }
    if (rng.chance(config.peer_provider_swap_fraction)) {
      flags_[id].peer_provider_swapped = true;
    }
  }
}

std::uint8_t RoutingPolicy::local_pref(
    topology::AsId receiver, topology::Rel rel_of_sender) const noexcept {
  if (flags_[receiver].peer_provider_swapped) {
    switch (rel_of_sender) {
      case topology::Rel::kCustomer: return kPrefCustomer;
      case topology::Rel::kProvider: return kPrefPeer;   // swapped up
      case topology::Rel::kPeer: return kPrefProvider;   // swapped down
    }
  }
  return canonical_pref(rel_of_sender);
}

bool RoutingPolicy::accepts(topology::AsId receiver,
                            topology::Asn receiver_asn,
                            topology::Rel rel_of_sender,
                            const CandidateRef& candidate) const {
  const AsPolicyFlags& f = flags_[receiver];
  const auto& path = *candidate.learned_path;

  // BGP loop prevention: the mechanism poisoning relies on. ASes that
  // disabled it (interconnecting sites over the Internet) accept anyway.
  // The sender cannot be the receiver, so scanning the learned path covers
  // the whole candidate path.
  if (!f.ignores_poison) {
    for (topology::Asn asn : path) {
      if (asn == receiver_asn) return false;
    }
  }

  // Tier-1 route-leak filter: a customer announcing a path through another
  // tier-1 looks like a leak; poisoned announcements trip this filter.
  if (f.is_tier1 && rel_of_sender == topology::Rel::kCustomer) {
    for (topology::Asn asn : path) {
      if (asn != receiver_asn && tier1_asns_.contains(asn)) return false;
    }
    if (!candidate.path_includes_sender &&
        tier1_asns_.contains(candidate.sender_asn)) {
      return false;
    }
  }
  return true;
}

bool RoutingPolicy::accepts(topology::AsId receiver,
                            topology::Asn receiver_asn,
                            topology::Rel rel_of_sender,
                            const Route& candidate) const {
  CandidateRef ref;
  ref.sender_asn = candidate.as_path.empty() ? 0 : candidate.as_path.front();
  ref.rel_of_sender = rel_of_sender;
  ref.local_pref = local_pref(receiver, rel_of_sender);
  ref.ann = candidate.ann;
  ref.learned_path = &candidate.as_path;
  ref.path_includes_sender = true;
  return accepts(receiver, receiver_asn, rel_of_sender, ref);
}

bool RoutingPolicy::exports(topology::Rel learned_from,
                            topology::Rel rel_of_receiver) const noexcept {
  if (learned_from == topology::Rel::kCustomer) return true;
  return rel_of_receiver == topology::Rel::kCustomer;
}

std::uint64_t RoutingPolicy::tie_score(topology::Asn receiver_asn,
                                       topology::Asn sender_asn) const
    noexcept {
  return util::hash_combine(receiver_asn, sender_asn);
}

bool RoutingPolicy::better(topology::AsId receiver,
                           topology::Asn receiver_asn, const CandidateRef& a,
                           const CandidateRef& b) const {
  if (a.local_pref != b.local_pref) return a.local_pref > b.local_pref;

  const bool score_first = flags_[receiver].shortest_violator;
  const std::uint64_t score_a = tie_score(receiver_asn, a.sender_asn);
  const std::uint64_t score_b = tie_score(receiver_asn, b.sender_asn);
  const std::uint32_t len_a = a.length();
  const std::uint32_t len_b = b.length();

  if (score_first) {
    if (score_a != score_b) return score_a < score_b;
    if (len_a != len_b) return len_a < len_b;
  } else {
    if (len_a != len_b) return len_a < len_b;
    if (score_a != score_b) return score_a < score_b;
  }
  // Final deterministic tiebreak: lowest neighbor ASN (router-id analogue).
  return a.sender_asn < b.sender_asn;
}

}  // namespace spooftrack::bgp
