// Hash-consed AS-path arena: the flyweight store behind bgp::Route.
//
// Every AS-path the routing engine materialises is an extension of a path
// a neighbor already holds — one ASN prepended to an existing path. The
// arena exploits that structure: paths are nodes of a persistent trie keyed
// by (head ASN, tail path), and a path is identified by the 32-bit id of
// its head node. Consequences the engine is built on:
//
//   * copy and equality are O(1) (hash-consing makes equal contents have
//     equal ids within one arena);
//   * prepend is O(1) amortised (one hash probe, at most one new node);
//   * loop detection and materialisation are walks over shared nodes —
//     no per-route allocation anywhere in the propagation loop.
//
// Storage and concurrency: nodes live in power-of-two growth segments
// reached through a fixed-size spine, so appending NEVER moves or
// invalidates existing nodes. The arena is single-writer / multi-reader:
// one thread may intern new paths while any number of threads concurrently
// read paths they were handed beforehand (reads touch only node slots
// written before the handoff; the handoff itself must synchronise, e.g. a
// thread join or task queue). The intern table is touched only by the
// writer. The engine relies on this: parallel Jacobi workers read the
// arena lock-free during the compute phase, and all interning happens in
// the serial commit phase.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "topology/as_graph.hpp"

namespace spooftrack::bgp {

/// Identifier of an interned AS-path. Valid within the arena that created
/// it (and within arenas derived from it via adopt_prefix, which preserve
/// ids). Id 0 is the empty path.
using PathId = std::uint32_t;

inline constexpr PathId kEmptyPath = 0;

class PathArena {
 public:
  PathArena();
  ~PathArena();

  PathArena(const PathArena&) = delete;
  PathArena& operator=(const PathArena&) = delete;

  /// Interns [asn] + tail. Returns the existing id when that exact path
  /// was interned before (the hash-consing hit), else creates one node.
  PathId prepend(topology::Asn asn, PathId tail);

  /// Interns a full path given front (head) to back (origin).
  PathId intern(std::span<const topology::Asn> path);

  /// First ASN of the path. Precondition: id != kEmptyPath.
  topology::Asn head(PathId id) const noexcept { return node(id).asn; }
  /// The path without its head. Precondition: id != kEmptyPath.
  PathId tail(PathId id) const noexcept { return node(id).parent; }
  /// Number of ASNs in the path (0 for kEmptyPath). O(1): cached per node.
  std::uint32_t length(PathId id) const noexcept {
    return id == kEmptyPath ? 0u : node(id).length;
  }

  /// True when `asn` appears anywhere in the path (BGP loop detection).
  bool contains(PathId id, topology::Asn asn) const noexcept;

  /// One-bit-per-ASN Bloom signature: a single bit in a 64-bit word,
  /// derived by multiplicative hashing. Callers OR these into query masks
  /// (e.g. "any tier-1 ASN") to prefilter paths without walking them.
  static std::uint64_t bloom_bit(topology::Asn asn) noexcept {
    return 1ULL << (asn * 0x9E3779B97F4A7C15ULL >> 58);
  }

  /// Bloom signature of the whole path: the OR of bloom_bit over its ASNs
  /// (0 for kEmptyPath). Maintained per node, so this is one load.
  std::uint64_t bloom(PathId id) const noexcept {
    return id == kEmptyPath ? 0u : node(id).bloom;
  }

  /// Conservative membership test: false means `asn` is definitely NOT in
  /// the path; true means "possibly" (confirm with contains()). The common
  /// negative case of loop detection in O(1).
  bool maybe_contains(PathId id, topology::Asn asn) const noexcept {
    return (bloom(id) & bloom_bit(asn)) != 0;
  }

  /// Content equality across arenas. Within one arena prefer `a == b`,
  /// which hash-consing makes exact.
  bool equal(PathId a, const PathArena& other, PathId b) const noexcept;

  /// The path as a front-to-back ASN vector (the legacy Route::as_path).
  std::vector<topology::Asn> materialize(PathId id) const;

  /// Forward range over the path's ASNs, front (head) to back (origin).
  class View {
   public:
    class iterator {
     public:
      using value_type = topology::Asn;
      using difference_type = std::ptrdiff_t;
      using iterator_category = std::forward_iterator_tag;

      iterator() = default;
      iterator(const PathArena* arena, PathId id) : arena_(arena), id_(id) {}
      topology::Asn operator*() const noexcept { return arena_->head(id_); }
      iterator& operator++() noexcept {
        id_ = arena_->tail(id_);
        return *this;
      }
      iterator operator++(int) noexcept {
        iterator copy = *this;
        ++*this;
        return copy;
      }
      friend bool operator==(const iterator& a, const iterator& b) noexcept {
        return a.id_ == b.id_;
      }

     private:
      const PathArena* arena_ = nullptr;
      PathId id_ = kEmptyPath;
    };

    View(const PathArena* arena, PathId id) : arena_(arena), id_(id) {}
    iterator begin() const noexcept { return {arena_, id_}; }
    iterator end() const noexcept { return {arena_, kEmptyPath}; }

   private:
    const PathArena* arena_;
    PathId id_;
  };

  View view(PathId id) const noexcept { return {this, id}; }

  /// Interned nodes (== distinct non-empty paths ever seen).
  std::size_t node_count() const noexcept { return next_id_ - 1; }
  /// prepend() calls answered from an existing node (the dedup hit-rate
  /// numerator; node_count() is the miss total).
  std::uint64_t hits() const noexcept { return hits_; }

  /// Copies nodes [1, nodes] of `from` into this (empty) arena, preserving
  /// ids — the copy-on-extend path for warm starts whose baseline arena is
  /// shared with other outcomes. Safe to call while `from`'s owner appends
  /// nodes > `nodes` concurrently (only older slots are read).
  void adopt_prefix(const PathArena& from, std::size_t nodes);

  /// Re-interns `from`'s path `id` into this arena, memoising old→new ids
  /// in `memo` (sized from's id space, kNoMigration = not yet migrated).
  /// The compaction primitive: migrating only live paths drops garbage
  /// accumulated along a long warm-start chain.
  static constexpr PathId kNoMigration = std::numeric_limits<PathId>::max();
  PathId migrate(const PathArena& from, PathId id, std::vector<PathId>& memo);

 private:
  struct Node {
    topology::Asn asn = 0;
    PathId parent = kEmptyPath;
    std::uint32_t length = 0;
    std::uint64_t bloom = 0;  // OR of bloom_bit over this path's ASNs
  };

  // Node storage: segment k holds kBaseSegment << k nodes; a fixed spine
  // of 22 segments covers the whole 32-bit id space without ever moving a
  // node (the single-writer / multi-reader guarantee depends on this).
  static constexpr std::uint32_t kBaseSegmentBits = 10;
  static constexpr std::uint32_t kBaseSegment = 1u << kBaseSegmentBits;
  static constexpr std::size_t kMaxSegments = 22;

  static std::uint32_t segment_of(PathId id) noexcept {
    return std::bit_width((id >> kBaseSegmentBits) + 1u) - 1u;
  }
  static std::uint32_t segment_offset(PathId id, std::uint32_t seg) noexcept {
    return id - ((kBaseSegment << seg) - kBaseSegment);
  }

  const Node& node(PathId id) const noexcept {
    const std::uint32_t seg = segment_of(id);
    return segments_[seg][segment_offset(id, seg)];
  }

  PathId append_node(topology::Asn asn, PathId parent);

  std::array<std::unique_ptr<Node[]>, kMaxSegments> segments_;
  // Slot 0 of segment 0 is the kEmptyPath sentinel; real ids start at 1.
  PathId next_id_ = 1;
  std::uint64_t hits_ = 0;
  std::unordered_map<std::uint64_t, PathId> intern_;
};

}  // namespace spooftrack::bgp
