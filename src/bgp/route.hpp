// BGP route state held by an AS for the experiment prefix.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bgp/announcement.hpp"
#include "topology/as_graph.hpp"

namespace spooftrack::bgp {

/// Canonical Gao-Rexford local-preference values: routes through customers
/// beat routes through peers beat routes through providers. Individual ASes
/// may deviate (see RoutingPolicy::local_pref), which is how the library
/// models the policy violations Figure 9 measures.
inline constexpr std::uint8_t kPrefProvider = 0;
inline constexpr std::uint8_t kPrefPeer = 1;
inline constexpr std::uint8_t kPrefCustomer = 2;

std::uint8_t canonical_pref(topology::Rel rel_of_sender) noexcept;

/// The route an AS currently uses toward the experiment prefix.
///
/// `as_path` is the path exactly as received: as_path.front() is the
/// neighbor the route was learned from and as_path.back() is the origin.
/// Prepended and poisoned (sandwiched) ASNs inserted by the origin appear
/// verbatim, so as_path.size() is the length BGP compares.
struct Route {
  std::uint32_t ann = kNoAnnouncement;  // announcement id in the configuration
  /// Relationship of the neighbor the route was learned from; drives the
  /// valley-free export rule.
  topology::Rel learned_from = topology::Rel::kProvider;
  /// LocalPref assigned by the holder; drives best-route selection.
  std::uint8_t local_pref = kPrefProvider;
  std::vector<topology::Asn> as_path;

  bool valid() const noexcept { return ann != kNoAnnouncement; }
  std::uint32_t length() const noexcept {
    return static_cast<std::uint32_t>(as_path.size());
  }
  /// True when `asn` appears anywhere in the AS-path (loop detection).
  bool contains(topology::Asn asn) const noexcept;

  std::string to_string() const;

  friend bool operator==(const Route&, const Route&) = default;
};

}  // namespace spooftrack::bgp
