// BGP route state held by an AS for the experiment prefix.
#pragma once

#include <cstdint>
#include <string>

#include "bgp/announcement.hpp"
#include "bgp/path_arena.hpp"
#include "topology/as_graph.hpp"

namespace spooftrack::bgp {

/// Canonical Gao-Rexford local-preference values: routes through customers
/// beat routes through peers beat routes through providers. Individual ASes
/// may deviate (see RoutingPolicy::local_pref), which is how the library
/// models the policy violations Figure 9 measures.
inline constexpr std::uint8_t kPrefProvider = 0;
inline constexpr std::uint8_t kPrefPeer = 1;
inline constexpr std::uint8_t kPrefCustomer = 2;

std::uint8_t canonical_pref(topology::Rel rel_of_sender) noexcept;

/// The route an AS currently uses toward the experiment prefix.
///
/// `path` identifies the AS-path exactly as received in the outcome's
/// PathArena (see RoutingOutcome::paths): the path's head is the neighbor
/// the route was learned from and its back is the origin. Prepended and
/// poisoned (sandwiched) ASNs inserted by the origin appear verbatim, so
/// the arena length is the length BGP compares. The struct is POD — copies
/// and comparisons never touch the heap.
struct Route {
  std::uint32_t ann = kNoAnnouncement;  // announcement id in the configuration
  /// AS-path id in the owning outcome's arena (kEmptyPath when invalid).
  PathId path = kEmptyPath;
  /// Relationship of the neighbor the route was learned from; drives the
  /// valley-free export rule.
  topology::Rel learned_from = topology::Rel::kProvider;
  /// LocalPref assigned by the holder; drives best-route selection.
  std::uint8_t local_pref = kPrefProvider;

  bool valid() const noexcept { return ann != kNoAnnouncement; }

  /// Memberwise equality. Hash-consing makes `path` comparison exact for
  /// routes sharing one arena (every engine outcome and everything warm-
  /// started from it); across unrelated arenas use PathArena::equal or
  /// routes_equal on the outcomes.
  friend bool operator==(const Route&, const Route&) = default;
};

/// Debug rendering of a route against the arena holding its path.
std::string to_string(const Route& route, const PathArena& arena);

}  // namespace spooftrack::bgp
