#include "journal/journal.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <optional>

#include "obs/obs.hpp"
#include "util/crc32c.hpp"
#include "util/fsio.hpp"
#include "util/rng.hpp"

namespace spooftrack::journal {

namespace {

constexpr std::uint64_t kSegmentMagic = 0x4C4E4A464F4F5053ULL;  // "SPOOFJNL"
constexpr std::uint64_t kPartialMagic = 0x545250464F4F5053ULL;  // "SPOOFPRT"
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 8 + 8 + 4;  // 36 bytes
constexpr std::uint32_t kMaxRecordBytes = 4096;
constexpr std::uint64_t kSaneCount = std::uint64_t{1} << 26;

// ---- little-endian-native byte packing (local cache format, like the
// artifact serializer) ------------------------------------------------------

template <typename T>
void put(std::string& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&value), sizeof(value));
}

struct Cursor {
  const char* p;
  std::size_t n;

  template <typename T>
  bool take(T& value) noexcept {
    static_assert(std::is_trivially_copyable_v<T>);
    if (n < sizeof(T)) return false;
    std::memcpy(&value, p, sizeof(T));
    p += sizeof(T);
    n -= sizeof(T);
    return true;
  }
};

std::string segment_header(const CampaignIdentity& identity,
                           std::uint32_t seq) {
  std::string bytes;
  bytes.reserve(kHeaderSize);
  put(bytes, kSegmentMagic);
  put(bytes, kVersion);
  put(bytes, seq);
  put(bytes, identity.hash);
  put(bytes, identity.config_count);
  put(bytes, util::crc32c(bytes.data(), bytes.size()));
  return bytes;
}

/// nullopt = torn/unrecognized header (recoverable for the active segment);
/// throws JournalError when the header is intact but incompatible.
std::optional<std::uint32_t> parse_header(const std::string& bytes,
                                          const CampaignIdentity& identity,
                                          const std::string& path) {
  if (bytes.size() < kHeaderSize) return std::nullopt;
  Cursor cur{bytes.data(), kHeaderSize};
  std::uint64_t magic = 0, hash = 0, configs = 0;
  std::uint32_t version = 0, seq = 0, crc = 0;
  cur.take(magic);
  cur.take(version);
  cur.take(seq);
  cur.take(hash);
  cur.take(configs);
  cur.take(crc);
  if (magic != kSegmentMagic) return std::nullopt;
  if (crc != util::crc32c(bytes.data(), kHeaderSize - 4)) return std::nullopt;
  if (version != kVersion) {
    throw JournalError("unsupported journal version in " + path);
  }
  if (hash != identity.hash || configs != identity.config_count) {
    throw JournalError("journal " + path +
                       " belongs to a different campaign (identity mismatch)");
  }
  return seq;
}

std::string record_payload(const ConfigRecord& record) {
  std::string payload;
  payload.reserve(64);
  put<std::uint8_t>(payload, 2);  // record type: config completion
  put(payload, record.config_index);
  put(payload, record.config_hash);
  put(payload, record.chain);
  put(payload, record.chain_pos);
  put(payload, record.row_digest);
  put(payload, static_cast<std::uint8_t>(record.grade));
  put(payload, record.deploy_attempts);
  put(payload, record.feed_entries);
  put(payload, record.feed_faults);
  put(payload, record.traces);
  put(payload, record.trace_faults);
  return payload;
}

bool parse_record(Cursor& cur, ConfigRecord& record) noexcept {
  std::uint8_t type = 0, grade = 0;
  if (!cur.take(type) || type != 2) return false;
  if (!cur.take(record.config_index)) return false;
  if (!cur.take(record.config_hash)) return false;
  if (!cur.take(record.chain)) return false;
  if (!cur.take(record.chain_pos)) return false;
  if (!cur.take(record.row_digest)) return false;
  if (!cur.take(grade) || grade > 2) return false;
  record.grade = static_cast<fault::Grade>(grade);
  if (!cur.take(record.deploy_attempts)) return false;
  if (!cur.take(record.feed_entries)) return false;
  if (!cur.take(record.feed_faults)) return false;
  if (!cur.take(record.traces)) return false;
  if (!cur.take(record.trace_faults)) return false;
  return cur.n == 0;
}

std::string frame_record(const ConfigRecord& record) {
  const std::string payload = record_payload(record);
  std::string frame;
  frame.reserve(8 + payload.size());
  put<std::uint32_t>(frame, static_cast<std::uint32_t>(payload.size()));
  put<std::uint32_t>(frame, util::crc32c(payload.data(), payload.size()));
  frame += payload;
  return frame;
}

/// Parses framed records from `bytes` starting after the header. Returns
/// the byte offset one past the last valid record; `records` receives every
/// valid record in order.
std::size_t parse_frames(const std::string& bytes,
                         std::vector<ConfigRecord>& records) {
  std::size_t offset = kHeaderSize;
  while (offset + 8 <= bytes.size()) {
    std::uint32_t len = 0, crc = 0;
    std::memcpy(&len, bytes.data() + offset, 4);
    std::memcpy(&crc, bytes.data() + offset + 4, 4);
    if (len == 0 || len > kMaxRecordBytes) break;
    if (offset + 8 + len > bytes.size()) break;
    const char* payload = bytes.data() + offset + 8;
    if (util::crc32c(payload, len) != crc) break;
    Cursor cur{payload, len};
    ConfigRecord record;
    if (!parse_record(cur, record)) break;
    records.push_back(record);
    offset += 8 + len;
  }
  return offset;
}

std::string segment_name(std::uint32_t seq, bool sealed) {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%06u.%s", seq,
                sealed ? "wal" : "open");
  return name;
}

struct SegmentFile {
  std::uint32_t seq = 0;
  bool sealed = false;
};

std::vector<SegmentFile> list_segments(const std::string& dir) {
  std::vector<SegmentFile> segments;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return segments;  // missing directory = empty journal
  while (const dirent* entry = ::readdir(d)) {
    unsigned seq = 0;
    char suffix[8] = {};
    if (std::sscanf(entry->d_name, "seg-%06u.%4s", &seq, suffix) != 2) {
      continue;
    }
    if (std::strcmp(suffix, "wal") == 0) {
      segments.push_back({seq, true});
    } else if (std::strcmp(suffix, "open") == 0) {
      segments.push_back({seq, false});
    }
  }
  ::closedir(d);
  std::sort(segments.begin(), segments.end(),
            [](const SegmentFile& a, const SegmentFile& b) {
              return a.seq != b.seq ? a.seq < b.seq : a.sealed > b.sealed;
            });
  return segments;
}

struct Scan {
  std::vector<ConfigRecord> records;
  RecoveryStats stats;
  bool has_active = false;
  std::uint32_t active_seq = 0;
  std::uint64_t active_valid_len = 0;  // 0 = header torn, rewrite whole file
  std::size_t active_records = 0;
  std::uint32_t next_seq = 0;  // when no usable active exists
};

Scan scan_journal(const std::string& dir, const CampaignIdentity& identity) {
  Scan scan;
  const auto segments = list_segments(dir);
  if (segments.empty()) return scan;

  std::uint32_t expect_seq = 0;
  for (std::size_t k = 0; k < segments.size(); ++k) {
    const SegmentFile& seg = segments[k];
    const std::string path = dir + "/" + segment_name(seg.seq, seg.sealed);
    if (seg.seq != expect_seq) {
      throw JournalError("journal segment sequence broken at " + path);
    }
    if (!seg.sealed && k + 1 != segments.size()) {
      throw JournalError("journal has an active segment before " + path);
    }
    const std::string bytes = util::read_file(path);
    ++scan.stats.segments;

    if (seg.sealed) {
      // Sealed segments are immutable: the header and every byte of every
      // frame must validate, and no tail may remain.
      if (parse_header(bytes, identity, path) != seg.seq) {
        throw JournalError("corrupt sealed journal segment header: " + path);
      }
      std::vector<ConfigRecord> records;
      if (parse_frames(bytes, records) != bytes.size()) {
        throw JournalError("corrupt record in sealed journal segment: " +
                           path);
      }
      scan.records.insert(scan.records.end(), records.begin(), records.end());
      expect_seq = seg.seq + 1;
      scan.next_seq = expect_seq;
      continue;
    }

    // Active segment: a torn header or a torn tail is the expected crash
    // residue — recover the valid prefix and report the rest.
    scan.has_active = true;
    scan.active_seq = seg.seq;
    const auto header_seq = parse_header(bytes, identity, path);
    if (!header_seq || *header_seq != seg.seq) {
      scan.active_valid_len = 0;
      scan.stats.torn_bytes += bytes.size();
      continue;
    }
    std::vector<ConfigRecord> records;
    scan.active_valid_len = parse_frames(bytes, records);
    scan.stats.torn_bytes += bytes.size() - scan.active_valid_len;
    scan.active_records = records.size();
    scan.records.insert(scan.records.end(), records.begin(), records.end());
  }

  // Deduplicate (identical re-commits are harmless; diverging ones are
  // corruption) and order by configuration index.
  std::sort(scan.records.begin(), scan.records.end(),
            [](const ConfigRecord& a, const ConfigRecord& b) {
              return a.config_index < b.config_index;
            });
  std::vector<ConfigRecord> unique;
  unique.reserve(scan.records.size());
  for (const ConfigRecord& record : scan.records) {
    if (!unique.empty() &&
        unique.back().config_index == record.config_index) {
      if (!(unique.back() == record)) {
        throw JournalError("journal has conflicting records for config " +
                           std::to_string(record.config_index));
      }
      continue;
    }
    if (record.config_index >= identity.config_count) {
      throw JournalError("journal record for out-of-plan config " +
                         std::to_string(record.config_index));
    }
    unique.push_back(record);
  }
  scan.records = std::move(unique);
  scan.stats.records = scan.records.size();
  return scan;
}

}  // namespace

// ---------------------------------------------------------------------------
// JournalWriter
// ---------------------------------------------------------------------------

JournalWriter::JournalWriter(const JournalOptions& options,
                             const CampaignIdentity& identity,
                             const fault::FaultInjector* injector)
    : options_(options), identity_(identity), injector_(injector) {
  if (options_.dir.empty()) {
    throw std::invalid_argument("journal directory must not be empty");
  }
  if (options_.segment_records == 0) options_.segment_records = 1;
  util::ensure_directory(options_.dir);

  if (!options_.resume) {
    // Fresh journal: sweep any previous campaign's segments and partials so
    // a stale record can never alias into this run.
    if (DIR* d = ::opendir(options_.dir.c_str())) {
      std::vector<std::string> stale;
      while (const dirent* entry = ::readdir(d)) {
        if (std::strncmp(entry->d_name, "seg-", 4) == 0 ||
            std::strncmp(entry->d_name, "cfg-", 4) == 0) {
          stale.emplace_back(entry->d_name);
        }
      }
      ::closedir(d);
      for (const std::string& name : stale) {
        ::unlink((options_.dir + "/" + name).c_str());
      }
    }
    open_active(0);
    return;
  }

  Scan scan = scan_journal(options_.dir, identity_);
  recovered_ = std::move(scan.records);
  recovery_ = scan.stats;
  OBS_COUNT("journal.recovered_records", recovery_.records);
  OBS_COUNT("journal.torn_bytes", recovery_.torn_bytes);

  if (scan.has_active) {
    const std::string path =
        options_.dir + "/" + segment_name(scan.active_seq, false);
    if (::truncate(path.c_str(), static_cast<off_t>(scan.active_valid_len)) !=
        0) {
      throw JournalError("cannot truncate torn journal tail: " + path);
    }
    seq_ = scan.active_seq;
    if (scan.active_valid_len == 0) {
      // Header itself was torn — rewrite the whole file.
      open_active(seq_);
    } else {
      fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
      if (fd_ < 0) throw JournalError("cannot reopen journal: " + path);
      records_in_segment_ = scan.active_records;
      sync_data();
      util::fsync_directory(options_.dir, options_.fsync);
      if (records_in_segment_ >= options_.segment_records) rotate();
    }
  } else {
    open_active(scan.next_seq);
  }
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void JournalWriter::barrier(fault::Site site) {
  if (injector_ == nullptr) return;
  const std::size_t index =
      static_cast<std::size_t>(site) -
      static_cast<std::size_t>(fault::Site::kJournalPreWrite);
  injector_->check_crash(site, ++ordinals_[index]);
}

void JournalWriter::write_bytes(const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t wrote = ::write(fd_, data, size);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw JournalError(std::string("journal write failed: ") +
                         std::strerror(errno));
    }
    data += wrote;
    size -= static_cast<std::size_t>(wrote);
  }
}

void JournalWriter::sync_data() {
  if (!options_.fsync) return;
  if (::fdatasync(fd_) != 0) {
    throw JournalError(std::string("journal fsync failed: ") +
                       std::strerror(errno));
  }
  OBS_COUNT("journal.fsyncs", 1);
}

void JournalWriter::open_active(std::uint32_t seq) {
  const std::string path = options_.dir + "/" + segment_name(seq, false);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) throw JournalError("cannot create journal segment: " + path);
  const std::string header = segment_header(identity_, seq);
  write_bytes(header.data(), header.size());
  sync_data();
  util::fsync_directory(options_.dir, options_.fsync);
  seq_ = seq;
  records_in_segment_ = 0;
}

void JournalWriter::rotate() {
  // Seal: make the segment's content durable, then atomically promote it.
  sync_data();
  barrier(fault::Site::kJournalPreRename);
  ::close(fd_);
  fd_ = -1;
  const std::string open_path =
      options_.dir + "/" + segment_name(seq_, false);
  const std::string sealed_path =
      options_.dir + "/" + segment_name(seq_, true);
  if (::rename(open_path.c_str(), sealed_path.c_str()) != 0) {
    throw JournalError("cannot seal journal segment: " + open_path);
  }
  OBS_COUNT("journal.rotations", 1);
  barrier(fault::Site::kJournalPreFsync);
  util::fsync_directory(options_.dir, options_.fsync);
  open_active(seq_ + 1);
}

void JournalWriter::append(const ConfigRecord& record) {
  OBS_TIMER("journal.append_ns");
  const std::string frame = frame_record(record);
  barrier(fault::Site::kJournalPreWrite);
  // Two-part write with a barrier in between: a kJournalMidRecord crash
  // leaves a torn frame on disk, which recovery must truncate.
  const std::size_t mid = frame.size() / 2;
  write_bytes(frame.data(), mid);
  barrier(fault::Site::kJournalMidRecord);
  write_bytes(frame.data() + mid, frame.size() - mid);
  sync_data();
  OBS_COUNT("journal.records", 1);
  OBS_COUNT("journal.bytes", frame.size());
  if (++records_in_segment_ >= options_.segment_records) rotate();
}

ReplayResult replay(const std::string& dir, const CampaignIdentity& expect) {
  Scan scan = scan_journal(dir, expect);
  return {std::move(scan.records), scan.stats};
}

// ---------------------------------------------------------------------------
// Partial artifacts
// ---------------------------------------------------------------------------

std::string partial_path(const std::string& dir, std::uint64_t config_index) {
  char name[32];
  std::snprintf(name, sizeof(name), "cfg-%06llu.part",
                static_cast<unsigned long long>(config_index));
  return dir + "/" + name;
}

namespace {

std::uint64_t bytes_digest(const std::string& bytes) noexcept {
  return util::hash_combine(util::crc32c(bytes.data(), bytes.size()),
                            bytes.size());
}

}  // namespace

std::uint64_t save_partial(const std::string& dir, std::uint64_t config_index,
                           const PartialMeasurement& partial, bool sync) {
  const measure::InferenceResult& inferred = partial.inference;
  std::string bytes;
  bytes.reserve(64 + inferred.catchments.link_of.size() * 5);
  put(bytes, kPartialMagic);
  put(bytes, kVersion);
  put(bytes, config_index);
  put<std::uint64_t>(bytes, inferred.catchments.link_of.size());
  for (const bgp::LinkId link : inferred.catchments.link_of) put(bytes, link);
  put<std::uint64_t>(bytes, inferred.observed.size());
  bytes.append(reinterpret_cast<const char*>(inferred.observed.data()),
               inferred.observed.size());
  put<std::uint64_t>(bytes, inferred.covered_count);
  put(bytes, inferred.multi_catchment_fraction);
  put(bytes, partial.feed_entries);
  put(bytes, partial.feed_faults);
  put(bytes, partial.traces);
  put(bytes, partial.trace_faults);
  put(bytes, util::crc32c(bytes.data(), bytes.size()));
  util::atomic_write_file(partial_path(dir, config_index), bytes, sync);
  return bytes_digest(bytes);
}

PartialMeasurement load_partial(const std::string& dir,
                                std::uint64_t config_index,
                                std::uint64_t expected_digest) {
  const std::string path = partial_path(dir, config_index);
  std::string bytes;
  try {
    bytes = util::read_file(path);
  } catch (const std::runtime_error& e) {
    throw JournalError(std::string("journaled partial missing: ") + e.what());
  }
  if (bytes_digest(bytes) != expected_digest) {
    throw JournalError("partial artifact digest mismatch: " + path);
  }
  if (bytes.size() < 4 ||
      util::crc32c(bytes.data(), bytes.size() - 4) !=
          [&] {
            std::uint32_t crc = 0;
            std::memcpy(&crc, bytes.data() + bytes.size() - 4, 4);
            return crc;
          }()) {
    throw JournalError("partial artifact checksum mismatch: " + path);
  }

  Cursor cur{bytes.data(), bytes.size() - 4};
  const auto corrupt = [&path]() -> JournalError {
    return JournalError("corrupt partial artifact: " + path);
  };
  std::uint64_t magic = 0, index = 0, count = 0;
  std::uint32_t version = 0;
  if (!cur.take(magic) || magic != kPartialMagic) throw corrupt();
  if (!cur.take(version) || version != kVersion) throw corrupt();
  if (!cur.take(index) || index != config_index) throw corrupt();

  PartialMeasurement partial;
  measure::InferenceResult& inferred = partial.inference;
  if (!cur.take(count) || count > kSaneCount) throw corrupt();
  inferred.catchments.link_of.resize(count);
  for (bgp::LinkId& link : inferred.catchments.link_of) {
    if (!cur.take(link)) throw corrupt();
  }
  if (!cur.take(count) || count > kSaneCount) throw corrupt();
  if (cur.n < count) throw corrupt();
  inferred.observed.assign(cur.p, cur.p + count);
  cur.p += count;
  cur.n -= count;
  std::uint64_t covered = 0;
  if (!cur.take(covered)) throw corrupt();
  inferred.covered_count = covered;
  if (!cur.take(inferred.multi_catchment_fraction)) throw corrupt();
  if (!cur.take(partial.feed_entries)) throw corrupt();
  if (!cur.take(partial.feed_faults)) throw corrupt();
  if (!cur.take(partial.traces)) throw corrupt();
  if (!cur.take(partial.trace_faults)) throw corrupt();
  if (cur.n != 0) throw corrupt();
  return partial;
}

std::uint64_t config_hash(const bgp::Configuration& config) noexcept {
  std::uint64_t h = util::mix64(0x10AD'F00D ^ config.label.size());
  h = util::hash_combine(
      h, util::crc32c(config.label.data(), config.label.size()));
  h = util::hash_combine(h, config.announcements.size());
  for (const bgp::AnnouncementSpec& spec : config.announcements) {
    h = util::hash_combine(h, spec.link);
    h = util::hash_combine(h, spec.prepend);
    h = util::hash_combine(h, spec.poisoned.size());
    for (const topology::Asn asn : spec.poisoned) {
      h = util::hash_combine(h, asn);
    }
    h = util::hash_combine(h, spec.no_export_to.size());
    for (const topology::Asn asn : spec.no_export_to) {
      h = util::hash_combine(h, asn);
    }
  }
  return h;
}

}  // namespace spooftrack::journal
