// spooftrack::journal — crash-consistent campaign journal
// (docs/checkpointing.md).
//
// A measurement campaign on PEERING runs hundreds of configurations over
// hours; operator restarts and mid-campaign failures are the norm, and
// losing the whole run to one crash is what this subsystem removes. The
// journal is a segmented write-ahead log of per-configuration completion
// records: once a configuration's measurement is durable (saved as a
// digest-verified partial artifact), one CRC32C-framed record commits it.
// `--resume` replays the journal, verifies every recorded digest against
// its partial artifact, skips the committed configurations' measurements,
// and re-seeds the warm-start propagation chains by re-propagating — so a
// resumed campaign is **byte-identical** to an uninterrupted one for any
// worker count and pipeline depth (tests/test_journal.cpp pins this over
// the full kill-point matrix).
//
// On-disk layout of a journal directory:
//
//   seg-NNNNNN.wal    sealed segments (immutable; any corruption is fatal)
//   seg-NNNNNN.open   the active segment (torn tail truncated on recovery)
//   cfg-NNNNNN.part   per-config partial artifacts (atomic temp+rename)
//
// Every segment starts with a fixed CRC-protected header carrying the
// campaign identity hash, so a journal can never be replayed into a
// different campaign. Records are length+CRC32C framed; recovery scans the
// active segment and truncates the torn tail at the first bad frame.
// Segment rotation is atomic: seal (fsync) -> rename .open to .wal ->
// directory fsync. The fault::FaultInjector's kill-point sites
// (fault.crash.*) put a deterministic crash barrier at each of those
// steps; the recovery harness crashes at every one and pins equivalence.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "bgp/announcement.hpp"
#include "fault/fault.hpp"
#include "measure/inference.hpp"

namespace spooftrack::journal {

/// Unrecoverable journal or partial-artifact corruption: a sealed segment
/// that fails its CRC, a digest mismatch between a record and its partial,
/// or a journal written by a different campaign. Distinct from
/// std::runtime_error so the CLI can map it to the documented exit code 5.
class JournalError : public std::runtime_error {
 public:
  explicit JournalError(const std::string& what) : std::runtime_error(what) {}
};

/// Binds a journal to one campaign: `hash` covers everything that
/// determines deployment results (testbed seed, configuration plan, fault
/// plan probabilities and thresholds) and deliberately excludes execution
/// shape (workers, pipeline mode/depth, kill-points) — resuming with a
/// different parallelism is supported and byte-identical.
struct CampaignIdentity {
  std::uint64_t hash = 0;
  std::uint64_t config_count = 0;
};

/// One committed configuration. `row_digest` is the digest of the saved
/// partial artifact (0 for abandoned configurations, which have none); the
/// quality fields mirror the measured part of fault::ConfigQuality so a
/// resume reproduces DeploymentResult::quality without re-measuring.
struct ConfigRecord {
  std::uint64_t config_index = 0;
  std::uint64_t config_hash = 0;
  /// Propagation-chain coordinates (metadata for the recovery runbook:
  /// which warm chain, and how deep, the config committed from).
  std::uint32_t chain = 0;
  std::uint32_t chain_pos = 0;
  std::uint64_t row_digest = 0;
  fault::Grade grade = fault::Grade::kGood;
  std::uint32_t deploy_attempts = 1;
  std::uint32_t feed_entries = 0;
  std::uint32_t feed_faults = 0;
  std::uint32_t traces = 0;
  std::uint32_t trace_faults = 0;

  bool abandoned() const noexcept { return grade == fault::Grade::kFailed; }

  friend bool operator==(const ConfigRecord&, const ConfigRecord&) = default;
};

struct JournalOptions {
  /// Journal directory; empty disables journaling entirely.
  std::string dir;
  /// Recover an existing journal in `dir` and skip committed configs; false
  /// starts fresh (wiping any previous journal state in `dir`).
  bool resume = false;
  /// Records per segment before an atomic rotation seals it.
  std::size_t segment_records = 128;
  /// fsync barriers on append/seal/rotate. Disabling keeps the format and
  /// the crash barriers (tests exercise kill-points at full speed) but
  /// drops durability against power loss.
  bool fsync = true;
};

struct RecoveryStats {
  std::uint64_t segments = 0;      // files scanned (sealed + active)
  std::uint64_t records = 0;       // valid records recovered
  std::uint64_t torn_bytes = 0;    // torn tail truncated from the active
  friend bool operator==(const RecoveryStats&, const RecoveryStats&) = default;
};

/// Append-side of the journal. Construction either starts fresh or
/// recovers (options.resume); appends frame, checksum, and fsync records
/// with kill-point barriers at every durability step. Not thread-safe —
/// the deploy paths append from the globally-serialized commit stage.
class JournalWriter {
 public:
  JournalWriter(const JournalOptions& options, const CampaignIdentity& identity,
                const fault::FaultInjector* injector = nullptr);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Records recovered at construction (empty unless options.resume).
  const std::vector<ConfigRecord>& recovered() const noexcept {
    return recovered_;
  }
  const RecoveryStats& recovery() const noexcept { return recovery_; }

  /// Commits one configuration. Crash barriers: kJournalPreWrite,
  /// kJournalMidRecord (append), and on rotation kJournalPreRename,
  /// kJournalPreFsync.
  void append(const ConfigRecord& record);

 private:
  void open_active(std::uint32_t seq);
  void rotate();
  void barrier(fault::Site site);
  void write_bytes(const char* data, std::size_t size);
  void sync_data();

  JournalOptions options_;
  CampaignIdentity identity_;
  const fault::FaultInjector* injector_;
  int fd_ = -1;
  std::uint32_t seq_ = 0;
  std::size_t records_in_segment_ = 0;
  std::vector<ConfigRecord> recovered_;
  RecoveryStats recovery_{};
  std::uint64_t ordinals_[4] = {0, 0, 0, 0};  // per kill-point site
};

/// Read-only recovery scan: validates every sealed segment, truncates
/// nothing, returns the records (torn active tail ignored, counted in
/// stats). Throws JournalError on unrecoverable corruption or identity
/// mismatch. An empty/missing directory yields zero records.
struct ReplayResult {
  std::vector<ConfigRecord> records;
  RecoveryStats stats;
};
ReplayResult replay(const std::string& dir, const CampaignIdentity& expect);

// ---------------------------------------------------------------------------
// Partial artifacts: one configuration's measured result, saved atomically
// before its journal record commits. The digest recorded in the journal is
// recomputed from the file bytes on resume; any mismatch is JournalError.
// ---------------------------------------------------------------------------

struct PartialMeasurement {
  measure::InferenceResult inference;
  /// Measured-part quality accounting (feed/trace counts); deploy attempts
  /// and the grade are re-derived on resume from the stateless fault draws.
  std::uint32_t feed_entries = 0;
  std::uint32_t feed_faults = 0;
  std::uint32_t traces = 0;
  std::uint32_t trace_faults = 0;

  friend bool operator==(const PartialMeasurement&,
                         const PartialMeasurement&) = default;
};

std::string partial_path(const std::string& dir, std::uint64_t config_index);

/// Atomically writes the partial and returns its digest (the value to
/// record in the config's journal record).
std::uint64_t save_partial(const std::string& dir, std::uint64_t config_index,
                           const PartialMeasurement& partial, bool sync = true);

/// Loads a partial, verifying the whole-file digest against the journal
/// record and the embedded CRC/identity. Throws JournalError on any
/// mismatch, truncation or corruption.
PartialMeasurement load_partial(const std::string& dir,
                                std::uint64_t config_index,
                                std::uint64_t expected_digest);

/// Stable hash of one configuration (label + announcement specs); part of
/// every ConfigRecord so replay can cross-check the plan.
std::uint64_t config_hash(const bgp::Configuration& config) noexcept;

}  // namespace spooftrack::journal
