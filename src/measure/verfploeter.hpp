// Verfploeter-style active catchment measurement (de Vries et al., cited by
// the paper's §I as the "send pings, see which link replies arrive at"
// alternative to passive inference).
//
// The origin sends ICMP-echo-style probes from an address inside the
// anycast prefix to a target host in every AS. A responding host replies
// toward the prefix; the reply follows the responder's best route and
// ingresses on exactly the peering link of the responder's catchment —
// direct, per-AS catchment ground truth limited only by responsiveness.
//
// Compared with the BGP-feed + traceroute pipeline (§IV), Verfploeter gets
// near-total coverage of responsive ASes but requires the prefix to carry
// the prober (impossible on PEERING, hence the paper's passive pipeline;
// we provide both and an ablation comparing them).
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/catchment.hpp"
#include "netcore/icmp.hpp"
#include "bgp/engine.hpp"
#include "measure/address_plan.hpp"
#include "measure/inference.hpp"
#include "topology/as_graph.hpp"

namespace spooftrack::measure {

struct VerfploeterOptions {
  /// Probability an AS hosts something that answers echo probes at all.
  double responsive_prob = 0.85;
  /// Per-round transient loss probability (probe or reply dropped).
  double loss_prob = 0.03;
  /// Probe rounds per configuration (losses are re-tried across rounds).
  /// Must be >= 1; the prober clamps 0 to 1 (counted via obs) because zero
  /// rounds would silently measure nothing.
  std::uint32_t rounds = 2;
  std::uint64_t seed = 4242;
};

class VerfploeterProber {
 public:
  VerfploeterProber(const topology::AsGraph& graph, const AddressPlan& plan,
                    const VerfploeterOptions& options);

  /// Probes every AS under one routing outcome; `salt` varies transient
  /// loss between invocations. The result mirrors the passive pipeline's
  /// InferenceResult so downstream code is agnostic to the source.
  InferenceResult probe(const bgp::RoutingOutcome& outcome,
                        const bgp::Configuration& config,
                        topology::AsId origin, std::uint64_t salt) const;

  /// Whether an AS answers probes at all under this option seed.
  bool responsive(topology::AsId id) const noexcept;

  /// The actual echo request sent to an AS's target host: source address
  /// inside the anycast prefix, identifier bound to this prober session.
  netcore::Datagram make_probe(topology::AsId target,
                               std::uint16_t sequence) const;

  /// Whether a datagram is a well-formed echo reply addressed to this
  /// prober's session (the packet the catchment link would deliver).
  bool is_probe_reply(const netcore::Datagram& datagram) const;

  /// This session's ICMP identifier (derived from the seed).
  std::uint16_t session_id() const noexcept;

  /// Number of probe packets the last accounting would send per round
  /// (one per AS target); exposed for campaign planning.
  std::size_t probes_per_round() const noexcept { return graph_.size(); }

 private:
  const topology::AsGraph& graph_;
  const AddressPlan& plan_;
  VerfploeterOptions options_;
};

}  // namespace spooftrack::measure
