// IP-to-AS mapping database (Team Cymru stand-in): longest-prefix-match
// table from prefixes to origin ASNs, built from the address plan with a
// configurable fraction of deliberately missing coverage (real IP-to-AS
// data is incomplete, which is why §IV-b needs a repair pass).
#pragma once

#include <cstdint>
#include <optional>

#include "measure/address_plan.hpp"
#include "netcore/lpm.hpp"
#include "topology/as_graph.hpp"

namespace spooftrack::measure {

struct Ip2AsOptions {
  /// Fraction of AS prefixes absent from the database.
  double missing_fraction = 0.03;
  std::uint64_t seed = 23;
};

class Ip2AsMap {
 public:
  Ip2AsMap() = default;

  /// Builds the database from the address plan. The experiment prefix maps
  /// to `origin_asn`. IXP LANs are intentionally not covered.
  static Ip2AsMap from_plan(const topology::AsGraph& graph,
                            const AddressPlan& plan, topology::Asn origin_asn,
                            const Ip2AsOptions& options);

  void add(const netcore::Ipv4Prefix& prefix, topology::Asn asn);
  std::optional<topology::Asn> lookup(netcore::Ipv4Addr addr) const;
  std::size_t size() const noexcept { return table_.size(); }

 private:
  netcore::LpmTable<topology::Asn> table_;
};

}  // namespace spooftrack::measure
