#include "measure/traceroute.hpp"

#include "obs/obs.hpp"
#include "util/rng.hpp"

namespace spooftrack::measure {

namespace {

/// Deterministic uniform [0,1) from a tuple of identifiers.
double unit_hash(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                 std::uint64_t d) {
  const std::uint64_t h = util::hash_combine(util::hash_combine(a, b),
                                             util::hash_combine(c, d));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

TracerouteSim::TracerouteSim(const topology::AsGraph& graph,
                             const AddressPlan& plan, const IxpTable& ixps,
                             const TracerouteOptions& options)
    : graph_(graph), plan_(plan), ixps_(ixps), options_(options) {
  // Silent ASes are a persistent property of (seed, AS); precomputing the
  // bitmap keeps the per-hop path out of the hash.
  silent_.resize(graph_.size());
  for (topology::AsId id = 0; id < graph_.size(); ++id) {
    silent_[id] =
        unit_hash(options_.seed, 0xA5, id, 0) < options_.as_silent_prob;
  }
}

bool TracerouteSim::as_silent(topology::AsId id) const noexcept {
  return id < silent_.size() && silent_[id] != 0;
}

Traceroute TracerouteSim::run(const bgp::RoutingOutcome& outcome,
                              topology::AsId probe, topology::AsId origin,
                              std::uint64_t salt) const {
  Traceroute trace;
  const auto path = bgp::forwarding_path(outcome, probe, origin);
  run_on_path(path, probe, origin, salt, trace);
  return trace;
}

void TracerouteSim::run_on_path(std::span<const topology::AsId> path,
                                topology::AsId probe, topology::AsId origin,
                                std::uint64_t salt, Traceroute& trace) const {
  OBS_COUNT("measure.traceroute.runs", 1);
  trace.probe = probe;
  trace.hops.clear();
  trace.reached = false;
  trace.fault = 0;

  if (faults_ != nullptr &&
      faults_->fires(fault::Site::kTracerouteLoss, salt, probe)) {
    // The probe result never arrives: no hops at all, as opposed to a
    // routeless trace, which still shows the probe-side gateway.
    trace.fault = kTraceFaultLost;
    OBS_COUNT("fault.traceroute.lost", 1);
    OBS_COUNT("measure.traceroute.incomplete", 1);
    OBS_HIST("measure.traceroute.hops", "hops", 0);
    return;
  }

  auto transient_lost = [&](std::uint64_t hop_index) {
    return unit_hash(options_.seed, salt ^ 0x7C, probe, hop_index) <
           options_.hop_unresponsive_prob;
  };
  std::uint64_t hop_index = 0;
  auto emit = [&](topology::AsId as, std::optional<netcore::Ipv4Addr> addr) {
    ++hop_index;
    if (!addr || as_silent(as) || transient_lost(hop_index)) {
      trace.hops.push_back({std::nullopt});
    } else {
      trace.hops.push_back({addr});
    }
  };

  if (path.empty()) {
    // No route: the trace dies after the probe's own gateway.
    emit(probe, plan_.router_address(probe, 0));
    OBS_COUNT("measure.traceroute.incomplete", 1);
    OBS_HIST("measure.traceroute.hops", "hops", trace.hops.size());
    return;
  }

  for (std::size_t i = 0; i < path.size(); ++i) {
    const topology::AsId as = path[i];
    if (as == origin) break;  // the origin answers from the target address

    if (i == 0) {
      // Probe-side gateway inside the probe AS.
      emit(as, plan_.router_address(as, 0));
    } else {
      const topology::AsId prev = path[i - 1];
      // Ingress border interface of `as` facing `prev`.
      const auto ixp = ixps_.ixp_of_edge(prev, as);
      if (ixp) {
        emit(as, ixps_.member_address(*ixp, as));
      } else {
        const bool foreign =
            unit_hash(options_.seed, 0xB0, prev, as) <
            options_.border_foreign_addr_prob;
        const topology::AsId owner = foreign ? prev : as;
        emit(as, plan_.border_address(owner, as, prev));
      }
    }

    // Internal routers before the egress. Whether a trace catches one is a
    // transient property of the round, so the draw is salted like hop loss.
    // The last AS before the origin shows none: its egress toward the
    // experiment prefix is the target itself, which answers as the
    // destination hop below.
    const bool last_before_origin =
        i + 1 < path.size() && path[i + 1] == origin;
    if (!last_before_origin) {
      const double extra_draw =
          unit_hash(options_.seed, salt ^ 0xC1, as, probe);
      const std::uint32_t extra =
          extra_draw < options_.extra_internal_hops ? 1u : 0u;
      for (std::uint32_t r = 1; r <= extra; ++r) {
        emit(as, plan_.router_address(as, r));
      }
    }
  }

  // Destination: the experiment target inside the announced prefix. The
  // target host answers unless the probe lost the final reply.
  ++hop_index;
  if (transient_lost(hop_index)) {
    trace.hops.push_back({std::nullopt});
  } else {
    trace.hops.push_back({AddressPlan::experiment_target()});
    trace.reached = true;
  }

  if (faults_ != nullptr &&
      faults_->fires(fault::Site::kTracerouteTruncate, salt, probe)) {
    // Cut short at a hash-derived hop. keep == hops.size() (possible only
    // for single-hop traces) leaves the trace intact and is not counted.
    const std::size_t keep =
        1 + static_cast<std::size_t>(
                faults_->mix(fault::Site::kTracerouteTruncate, salt, probe) %
                trace.hops.size());
    if (keep < trace.hops.size()) {
      trace.hops.resize(keep);
      trace.reached = false;
      trace.fault |= kTraceFaultTruncated;
      OBS_COUNT("fault.traceroute.truncated", 1);
    }
  }
  if (!trace.reached) OBS_COUNT("measure.traceroute.incomplete", 1);
  OBS_HIST("measure.traceroute.hops", "hops", trace.hops.size());
}

}  // namespace spooftrack::measure
