#include "measure/feed.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "obs/obs.hpp"
#include "topology/metrics.hpp"
#include "util/rng.hpp"

namespace spooftrack::measure {

FeedSimulator::FeedSimulator(const topology::AsGraph& graph,
                             const FeedOptions& options)
    : graph_(graph) {
  util::Rng rng{options.seed};

  std::vector<topology::AsId> by_cone(graph.size());
  std::iota(by_cone.begin(), by_cone.end(), 0);
  const auto cones = topology::customer_cone_sizes(graph);
  std::stable_sort(by_cone.begin(), by_cone.end(),
                   [&](topology::AsId a, topology::AsId b) {
                     return cones[a] > cones[b];
                   });

  const std::uint32_t want =
      std::min<std::uint32_t>(options.peer_count,
                              static_cast<std::uint32_t>(graph.size()));
  const auto biased =
      static_cast<std::uint32_t>(want * options.large_cone_bias);

  std::unordered_set<topology::AsId> chosen;
  // Large-cone peers: take the top of the cone ranking.
  for (std::uint32_t i = 0; i < biased && i < by_cone.size(); ++i) {
    chosen.insert(by_cone[i]);
  }
  // Remaining peers: uniform over the whole graph.
  while (chosen.size() < want) {
    chosen.insert(
        static_cast<topology::AsId>(rng.next_below(graph.size())));
  }
  peers_.assign(chosen.begin(), chosen.end());
  std::sort(peers_.begin(), peers_.end());
}

std::vector<FeedEntry> FeedSimulator::collect(
    const bgp::RoutingOutcome& outcome) const {
  std::vector<FeedEntry> entries;
  entries.reserve(peers_.size());
  collect_into(outcome, entries);
  return entries;
}

void FeedSimulator::collect_into(const bgp::RoutingOutcome& outcome,
                                 std::vector<FeedEntry>& entries) const {
  OBS_TIMER("measure.feed.collect_ns");
  std::size_t count = 0;
  for (topology::AsId peer : peers_) {
    const bgp::Route& route = outcome.best[peer];
    if (!route.valid()) continue;
    if (count == entries.size()) entries.emplace_back();
    FeedEntry& entry = entries[count++];
    entry.peer = peer;
    entry.as_path.clear();
    entry.as_path.reserve(outcome.paths->length(route.path) + 1);
    entry.as_path.push_back(graph_.asn_of(peer));
    for (const topology::Asn asn : outcome.paths->view(route.path)) {
      entry.as_path.push_back(asn);
    }
  }
  entries.resize(count);
  OBS_COUNT("measure.feed.entries", entries.size());
}

std::vector<FeedEntry> FeedSimulator::degrade(
    const std::vector<FeedEntry>& entries,
    const fault::FaultInjector& injector, std::uint64_t salt,
    topology::Asn origin_asn, std::uint32_t* faulted) {
  std::vector<FeedEntry> out;
  out.reserve(entries.size());
  degrade_into(entries, injector, salt, origin_asn, faulted, out);
  return out;
}

void FeedSimulator::degrade_into(const std::vector<FeedEntry>& entries,
                                 const fault::FaultInjector& injector,
                                 std::uint64_t salt,
                                 topology::Asn origin_asn,
                                 std::uint32_t* faulted,
                                 std::vector<FeedEntry>& out) {
  std::size_t count = 0;
  for (const FeedEntry& entry : entries) {
    if (injector.fires(fault::Site::kFeedOutage, salt, entry.peer)) {
      OBS_COUNT("fault.feed.outages", 1);
      if (faulted != nullptr) ++*faulted;
      continue;
    }
    if (count == out.size()) out.emplace_back();
    FeedEntry& copy = out[count++];
    copy = entry;  // vector assignment recycles the slot's path storage
    if (injector.fires(fault::Site::kFeedStale, salt, entry.peer)) {
      // Stale RIB snapshot: the path the collector dumped predates the
      // announcement, so everything from the seed onward is missing. The
      // peer itself always remains (it exported *something*).
      const auto seed = std::find(copy.as_path.begin(), copy.as_path.end(),
                                  origin_asn);
      copy.as_path.erase(std::max(copy.as_path.begin() + 1, seed),
                         copy.as_path.end());
      OBS_COUNT("fault.feed.stale", 1);
      if (faulted != nullptr) ++*faulted;
    }
  }
  out.resize(count);
}

}  // namespace spooftrack::measure
