#include "measure/bitplane_store.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

#include "obs/obs.hpp"
#include "util/simd.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define SPOOFTRACK_BITPLANE_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define SPOOFTRACK_BITPLANE_NEON 1
#include <arm_neon.h>
#endif

namespace spooftrack::measure {

namespace {

constexpr std::uint64_t kLow7 = 0x7F7F7F7F7F7F7F7FULL;
constexpr std::uint64_t kHigh = 0x8080808080808080ULL;
constexpr std::uint64_t kLsb = 0x0101010101010101ULL;

// Packs the LSB of each of 8 bytes into 8 consecutive bits (byte 0 -> bit
// 0). The multiply shifts each lane's LSB to a distinct bit of the top
// byte; lanes are single bits so no two products carry into each other.
inline std::uint64_t gather_lsb(std::uint64_t bytes) noexcept {
  return ((bytes & kLsb) * 0x0102040810204080ULL) >> 56;
}

[[noreturn]] void throw_bad_cell(std::size_t config, std::size_t source,
                                 std::uint8_t value) {
  throw std::out_of_range(
      "BitplaneStore: cell (" + std::to_string(config) + ", " +
      std::to_string(source) + ") holds " + std::to_string(value) +
      ", not a valid catchment slot or the missing sentinel");
}

// Validates 8 cells at once: bytes with the high bit set must be exactly
// 0xFF (the missing sentinel), the rest must be < kMaxCatchmentLinks.
// `lanes` < 8 means the tail was zero-padded (padding passes as cell 0).
inline void validate_word(std::uint64_t x, std::size_t config,
                          std::size_t base_source, std::size_t lanes) {
  const std::uint64_t himask = ((x & kHigh) >> 7) * 0xFF;
  // byte + 0x42 overflows past 0x80 exactly when byte >= 0x3E (62); the
  // inputs have their high bit clear so the adds never cross lanes.
  const std::uint64_t low_bad =
      (((x & ~himask) + 0x4242424242424242ULL) & kHigh & ~himask);
  const bool ok = ((x & himask) == himask) && low_bad == 0;
  if (ok) [[likely]] {
    return;
  }
  for (std::size_t i = 0; i < lanes; ++i) {
    const auto byte = static_cast<std::uint8_t>(x >> (8 * i));
    if (byte != kNoCatchment8 && byte >= bgp::kMaxCatchmentLinks) {
      throw_bad_cell(config, base_source + i, byte);
    }
  }
}

// Portable build kernel for one configuration row: 8 cells per iteration,
// bit-gather per value plane via multiply. `dst` points at the row's
// 7-plane block (already zeroed).
void build_row_scalar(const std::uint8_t* src, std::size_t cols,
                      std::size_t words, std::uint64_t* dst,
                      std::size_t config) {
  for (std::size_t w = 0; w < words; ++w) {
    const std::size_t lanes = std::min<std::size_t>(64, cols - w * 64);
    std::uint64_t planes[BitplaneStore::kPlanes] = {};
    for (std::size_t k = 0; k * 8 < lanes; ++k) {
      const std::size_t nb = std::min<std::size_t>(8, lanes - k * 8);
      std::uint64_t x = 0;
      std::memcpy(&x, src + w * 64 + k * 8, nb);
      validate_word(x, config, w * 64 + k * 8, nb);
      const unsigned shift = static_cast<unsigned>(8 * k);
      for (std::size_t b = 0; b < BitplaneStore::kValuePlanes; ++b) {
        planes[b] |= gather_lsb(x >> b) << shift;
      }
      planes[BitplaneStore::kMissingPlane] |= gather_lsb(x >> 7) << shift;
    }
    for (std::size_t p = 0; p < BitplaneStore::kPlanes; ++p) {
      dst[p * words + w] = planes[p];
    }
  }
}

#if defined(SPOOFTRACK_BITPLANE_X86)

// AVX2 build kernel: 32 cells per iteration. Plane bits come from the byte
// sign after shifting bit b to bit 7; _mm256_slli_epi16 shifts across the
// whole 16-bit lane but the contaminating bits come from the *same* byte
// pair's low byte, whose bit (8 - shift + b) lands on that byte's own sign
// position only when it is the byte's bit b — i.e. movemask still reads
// each byte's bit b. The missing plane is the raw sign bit (only 0xFF has
// it after validation).
__attribute__((target("avx2"))) void build_row_avx2(const std::uint8_t* src,
                                                    std::size_t cols,
                                                    std::size_t words,
                                                    std::uint64_t* dst,
                                                    std::size_t config) {
  const __m256i all_ff = _mm256_set1_epi8(static_cast<char>(0xFF));
  const __m256i minus_one = _mm256_set1_epi8(-1);
  const __m256i limit = _mm256_set1_epi8(
      static_cast<char>(bgp::kMaxCatchmentLinks));
  const std::size_t full = cols / 32;
  for (std::size_t k = 0; k < full; ++k) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(src + k * 32));
    // Valid cells are 0..61 (signed non-negative below the limit) or 0xFF.
    const __m256i is_missing = _mm256_cmpeq_epi8(v, all_ff);
    const __m256i in_range = _mm256_and_si256(
        _mm256_cmpgt_epi8(v, minus_one), _mm256_cmpgt_epi8(limit, v));
    const __m256i valid = _mm256_or_si256(is_missing, in_range);
    if (_mm256_movemask_epi8(valid) != -1) [[unlikely]] {
      for (std::size_t i = 0; i < 32; ++i) {
        const std::uint8_t byte = src[k * 32 + i];
        if (byte != kNoCatchment8 && byte >= bgp::kMaxCatchmentLinks) {
          throw_bad_cell(config, k * 32 + i, byte);
        }
      }
    }
    const std::size_t w = k >> 1;
    const unsigned off = (k & 1) ? 32u : 0u;
    for (std::size_t b = 0; b < BitplaneStore::kValuePlanes; ++b) {
      const int bits = _mm256_movemask_epi8(
          _mm256_slli_epi16(v, static_cast<int>(7 - b)));
      dst[b * words + w] |=
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(bits)) << off;
    }
    const int miss = _mm256_movemask_epi8(v);
    dst[BitplaneStore::kMissingPlane * words + w] |=
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(miss)) << off;
  }
  // Tail cells fall back to the portable 8-at-a-time path.
  for (std::size_t s = full * 32; s < cols; s += 8) {
    const std::size_t nb = std::min<std::size_t>(8, cols - s);
    std::uint64_t x = 0;
    std::memcpy(&x, src + s, nb);
    validate_word(x, config, s, nb);
    const std::size_t w = s >> 6;
    const unsigned shift = static_cast<unsigned>(s & 63);
    for (std::size_t b = 0; b < BitplaneStore::kValuePlanes; ++b) {
      dst[b * words + w] |= gather_lsb(x >> b) << shift;
    }
    dst[BitplaneStore::kMissingPlane * words + w] |= gather_lsb(x >> 7)
                                                     << shift;
  }
}

#elif defined(SPOOFTRACK_BITPLANE_NEON)

// NEON lacks movemask; sum lanes pre-masked with distinct powers of two
// (vaddv over 8 disjoint single-bit bytes is an OR).
inline std::uint16_t neon_bitmask(uint8x16_t selected) noexcept {
  static const std::uint8_t kPow2[16] = {1, 2, 4, 8, 16, 32, 64, 128,
                                         1, 2, 4, 8, 16, 32, 64, 128};
  const uint8x16_t weighted = vandq_u8(selected, vld1q_u8(kPow2));
  const std::uint16_t lo = vaddv_u8(vget_low_u8(weighted));
  const std::uint16_t hi = vaddv_u8(vget_high_u8(weighted));
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

void build_row_neon(const std::uint8_t* src, std::size_t cols,
                    std::size_t words, std::uint64_t* dst,
                    std::size_t config) {
  const uint8x16_t all_ff = vdupq_n_u8(0xFF);
  const uint8x16_t limit = vdupq_n_u8(bgp::kMaxCatchmentLinks);
  const std::size_t full = cols / 16;
  for (std::size_t k = 0; k < full; ++k) {
    const uint8x16_t v = vld1q_u8(src + k * 16);
    const uint8x16_t valid =
        vorrq_u8(vcltq_u8(v, limit), vceqq_u8(v, all_ff));
    if (vminvq_u8(valid) == 0) [[unlikely]] {
      for (std::size_t i = 0; i < 16; ++i) {
        const std::uint8_t byte = src[k * 16 + i];
        if (byte != kNoCatchment8 && byte >= bgp::kMaxCatchmentLinks) {
          throw_bad_cell(config, k * 16 + i, byte);
        }
      }
    }
    const std::size_t w = k >> 2;
    const unsigned off = static_cast<unsigned>((k & 3) * 16);
    for (std::size_t b = 0; b < BitplaneStore::kValuePlanes; ++b) {
      const uint8x16_t has_bit =
          vtstq_u8(v, vdupq_n_u8(static_cast<std::uint8_t>(1u << b)));
      dst[b * words + w] |= static_cast<std::uint64_t>(neon_bitmask(has_bit))
                            << off;
    }
    const uint8x16_t missing = vtstq_u8(v, vdupq_n_u8(0x80));
    dst[BitplaneStore::kMissingPlane * words + w] |=
        static_cast<std::uint64_t>(neon_bitmask(missing)) << off;
  }
  for (std::size_t s = full * 16; s < cols; s += 8) {
    const std::size_t nb = std::min<std::size_t>(8, cols - s);
    std::uint64_t x = 0;
    std::memcpy(&x, src + s, nb);
    validate_word(x, config, s, nb);
    const std::size_t w = s >> 6;
    const unsigned shift = static_cast<unsigned>(s & 63);
    for (std::size_t b = 0; b < BitplaneStore::kValuePlanes; ++b) {
      dst[b * words + w] |= gather_lsb(x >> b) << shift;
    }
    dst[BitplaneStore::kMissingPlane * words + w] |= gather_lsb(x >> 7)
                                                     << shift;
  }
}

#endif

}  // namespace

BitplaneStore::BitplaneStore(const CatchmentStore& store)
    : rows_(store.configs()),
      cols_(store.sources()),
      words_((store.sources() + 63) / 64),
      bits_(rows_ * kPlanes * words_, 0) {
  OBS_TIMER("analysis.kernel.bitplane_build_ns");
  const bool wide = util::active_simd_level() == util::SimdLevel::kWide;
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::uint8_t* src = store.row(r).data();
    std::uint64_t* dst = bits_.data() + r * kPlanes * words_;
#if defined(SPOOFTRACK_BITPLANE_X86)
    if (wide) {
      build_row_avx2(src, cols_, words_, dst, r);
      continue;
    }
#elif defined(SPOOFTRACK_BITPLANE_NEON)
    if (wide) {
      build_row_neon(src, cols_, words_, dst, r);
      continue;
    }
#endif
    build_row_scalar(src, cols_, words_, dst, r);
  }
  (void)wide;
  OBS_GAUGE("analysis.kernel.bitplane_bytes", size_bytes());
  OBS_GAUGE("analysis.kernel.wide_simd", wide ? 1 : 0);
}

std::uint64_t BitplaneStore::missing_cells() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    total += util::popcount_words(plane(r, kMissingPlane), words_);
  }
  return total;
}

void BitplaneStore::decode_row(std::size_t config,
                               std::uint8_t* out) const noexcept {
  const std::uint64_t* planes = row_planes(config);
  for (std::size_t w = 0; w < words_; ++w) {
    const std::size_t lanes = std::min<std::size_t>(64, cols_ - w * 64);
    for (std::size_t k = 0; k * 8 < lanes; ++k) {
      // Pack plane b's octet into byte b; an 8x8 bit transpose then drops
      // each lane's 6 value bits into its own output byte. The missing
      // octet rides in bytes 6 and 7, so missing lanes (slot 63 = 0x3F)
      // come out with bits 6 and 7 set too: exactly 0xFF.
      std::uint64_t x = 0;
      for (std::size_t b = 0; b < kValuePlanes; ++b) {
        x |= ((planes[b * words_ + w] >> (8 * k)) & 0xFF) << (8 * b);
      }
      const std::uint64_t miss =
          (planes[kMissingPlane * words_ + w] >> (8 * k)) & 0xFF;
      x |= (miss << 48) | (miss << 56);
      std::uint64_t t;
      t = (x ^ (x >> 7)) & 0x00AA00AA00AA00AAULL;
      x ^= t ^ (t << 7);
      t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCCULL;
      x ^= t ^ (t << 14);
      t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0ULL;
      x ^= t ^ (t << 28);
      const std::size_t nb = std::min<std::size_t>(8, lanes - k * 8);
      std::memcpy(out + w * 64 + k * 8, &x, nb);
    }
  }
}

CatchmentStore BitplaneStore::to_store() const {
  CatchmentStore store(0, cols_);
  std::vector<std::uint8_t> row(cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    decode_row(r, row.data());
    store.append_row(row);
  }
  return store;
}

}  // namespace spooftrack::measure
