// Parallel measurement plane (§IV): runs the per-configuration pipeline —
// feed snapshot -> traceroute batch -> §IV-b repair -> catchment inference
// — as independent tasks over a util::WorkerPool.
//
// Determinism contract: every random draw in the pipeline derives from
// (traceroute seed, salt = hash_combine(config index, round)), so a task's
// result depends on nothing but the task itself. Tasks fan out over worker
// *slots* in a fixed stride — slot s runs tasks s, s + slots, ... with its
// own scratch, writing each result into the task's own output slot — so
// results are byte-identical for any worker count and arrive in task
// order. (WorkerPool claims work dynamically; striding over slots instead
// of tasks is what keeps scratch ownership deterministic.)
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bgp/engine.hpp"
#include "fault/fault.hpp"
#include "measure/feed.hpp"
#include "measure/inference.hpp"
#include "measure/repair.hpp"
#include "measure/traceroute.hpp"
#include "topology/as_graph.hpp"

namespace spooftrack::measure {

/// Per-probe forwarding paths under one routing outcome, flattened. The
/// snapshot deliberately does not retain the RoutingOutcome: warm campaign
/// chains may move or compact outcome storage after the sink returns, and
/// the paths are all the measurement plane needs from it.
struct ProbePathSet {
  std::vector<topology::AsId> flat;
  std::vector<std::uint32_t> offsets;  // probes.size() + 1 fenceposts

  std::span<const topology::AsId> path(std::size_t probe_index) const {
    return std::span(flat).subspan(
        offsets[probe_index], offsets[probe_index + 1] - offsets[probe_index]);
  }

  /// Walks bgp::forwarding_path once per probe. An unrouted probe stores an
  /// empty path (its traceroute dies at the probe gateway, as with run()).
  static ProbePathSet extract(const bgp::RoutingOutcome& outcome,
                              std::span<const topology::AsId> probes,
                              topology::AsId origin);

  /// As `extract`, rebuilding into `set`'s existing buffers (streaming
  /// handoff recycling: the pipelined deploy keeps a small pool of path
  /// sets instead of one snapshot per configuration).
  static void extract_into(const bgp::RoutingOutcome& outcome,
                           std::span<const topology::AsId> probes,
                           topology::AsId origin, ProbePathSet& set);
};

/// One configuration's measurement inputs, snapshotted at propagation time.
/// Configurations with identical routing outcomes (campaign memoization
/// fan-out) share one feed collection and one path set.
struct MeasurementTask {
  std::size_t config_index = 0;  // traceroute salt = (config_index, round)
  std::shared_ptr<const std::vector<FeedEntry>> feeds;
  std::shared_ptr<const ProbePathSet> probe_paths;
  /// Feed entries lost to injected collector faults before the task was
  /// built (FeedSimulator::degrade); carried here so quality accounting
  /// sees them even though `feeds` holds only the survivors.
  std::uint32_t feed_faults = 0;
};

struct MeasurementDriverOptions {
  /// Worker threads (0 = util::default_worker_count()). Any value yields
  /// byte-identical results.
  std::size_t workers = 0;
  /// Traceroute rounds per configuration (§IV-b).
  std::uint32_t traceroute_rounds = 3;
};

class MeasurementDriver {
 public:
  /// Everything one worker reuses across measure_one calls. Traceroute hop
  /// storage, repair indexes, and inference vote buffers reach a steady
  /// state after the first configuration; reuse never changes results
  /// (every component resets its buffers per call).
  struct Scratch {
    std::vector<Traceroute> traces;
    std::vector<AsLevelPath> repaired;
    PathRepair::Scratch repair;
    CatchmentInference::Scratch inference;
  };

  /// The referenced components and probe list must outlive the driver.
  MeasurementDriver(const TracerouteSim& tracer, const PathRepair& repair,
                    const CatchmentInference& inference,
                    std::span<const topology::AsId> probes,
                    topology::AsId origin,
                    MeasurementDriverOptions options = {});

  /// Runs the full §IV pipeline for one configuration: traceroute batch
  /// (salts derive from `config_index` and the round, nothing else) →
  /// §IV-b repair → catchment inference. The unit of work both run() and
  /// the pipelined deploy path fan out — one call, one configuration, one
  /// scratch. When `quality` is non-null its feed/trace accounting fields
  /// are filled (feed_faults is the caller's: the driver only sees the
  /// surviving entries); the grade is left untouched.
  InferenceResult measure_one(std::size_t config_index,
                              const std::vector<FeedEntry>& feeds,
                              const ProbePathSet& paths, Scratch& scratch,
                              fault::ConfigQuality* quality = nullptr) const;

  /// Runs the measurement pipeline for every task; results in task order.
  /// When `quality` is non-null it is resized to tasks.size() and filled
  /// with per-task fault accounting (feed entry/fault counts from the task,
  /// trace counts and fault flags from the traceroute batch). Grades are
  /// left at kGood — the deploy loop grades once it also knows deployment
  /// attempts. Quality output is byte-identical for any worker count, like
  /// the results themselves.
  std::vector<InferenceResult> run(
      std::span<const MeasurementTask> tasks,
      std::vector<fault::ConfigQuality>* quality = nullptr) const;

 private:
  const TracerouteSim& tracer_;
  const PathRepair& repair_;
  const CatchmentInference& inference_;
  std::span<const topology::AsId> probes_;
  topology::AsId origin_;
  MeasurementDriverOptions options_;
};

}  // namespace spooftrack::measure
