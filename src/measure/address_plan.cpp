#include "measure/address_plan.hpp"

#include "util/rng.hpp"

namespace spooftrack::measure {

namespace {
// Per-AS /20s carved sequentially from 20.0.0.0/6: AsId i owns
// 20.0.0.0 + i * 4096 .. + 4095.
constexpr std::uint32_t kAsSpaceBase = 20u << 24;
constexpr std::uint32_t kAsPrefixSize = 1u << 12;  // /20
}  // namespace

AddressPlan::AddressPlan(const topology::AsGraph& graph)
    : as_count_(graph.size()) {}

netcore::Ipv4Prefix AddressPlan::prefix_of(topology::AsId id) const noexcept {
  return netcore::Ipv4Prefix::make(
      netcore::Ipv4Addr{kAsSpaceBase + id * kAsPrefixSize}, 20);
}

netcore::Ipv4Addr AddressPlan::router_address(
    topology::AsId id, std::uint32_t router) const noexcept {
  // Routers live in the low /24 of the AS prefix, starting at .16.
  return prefix_of(id).nth(16 + (router % 224));
}

netcore::Ipv4Addr AddressPlan::border_address(
    topology::AsId owner, topology::AsId on,
    topology::AsId toward) const noexcept {
  // Border interfaces live above the router block; a stable slot per
  // (on, toward) pair keeps repeated traceroutes consistent.
  const std::uint64_t slot =
      256 + util::hash_combine(on, toward) % (kAsPrefixSize - 512);
  return prefix_of(owner).nth(slot);
}

netcore::Ipv4Prefix AddressPlan::experiment_prefix() noexcept {
  return netcore::Ipv4Prefix::make(netcore::Ipv4Addr{184, 164, 224, 0}, 24);
}

netcore::Ipv4Addr AddressPlan::experiment_target() noexcept {
  return netcore::Ipv4Addr{184, 164, 224, 1};
}

}  // namespace spooftrack::measure
