#include "measure/convergence.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace spooftrack::measure {

ConvergenceModel::ConvergenceModel(const ConvergenceOptions& options)
    : options_(options) {}

double ConvergenceModel::mrai_of(std::uint32_t as_id) const {
  const double unit =
      static_cast<double>(util::hash_combine(options_.seed, as_id) >> 11) *
      0x1.0p-53;
  const double low = options_.mrai_seconds * (1.0 - options_.spread);
  const double high = options_.mrai_seconds * (1.0 + options_.spread);
  return low + (high - low) * unit;
}

std::vector<double> ConvergenceModel::per_as_seconds(
    const bgp::RoutingOutcome& outcome) const {
  std::vector<double> seconds(outcome.settled_round.size(), 0.0);
  for (std::uint32_t as = 0; as < outcome.settled_round.size(); ++as) {
    const std::uint32_t rounds = outcome.settled_round[as];
    if (rounds == 0) continue;
    const double window = mrai_of(as);
    double total = 0.0;
    for (std::uint32_t r = 1; r <= rounds; ++r) {
      // The update that flips this AS in round r lands a uniform fraction
      // into the pacing window (updates coalesce; full-window waits are
      // the worst case, not the norm).
      const double fraction =
          static_cast<double>(
              util::hash_combine(util::hash_combine(options_.seed, as),
                                 r) >>
              11) *
          0x1.0p-53;
      total += window * fraction;
    }
    seconds[as] = total;
  }
  return seconds;
}

double ConvergenceModel::settle_seconds(
    const bgp::RoutingOutcome& outcome) const {
  const auto seconds = per_as_seconds(outcome);
  return seconds.empty() ? 0.0
                         : *std::max_element(seconds.begin(), seconds.end());
}

}  // namespace spooftrack::measure
