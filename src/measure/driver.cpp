#include "measure/driver.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace spooftrack::measure {

ProbePathSet ProbePathSet::extract(const bgp::RoutingOutcome& outcome,
                                   std::span<const topology::AsId> probes,
                                   topology::AsId origin) {
  ProbePathSet set;
  set.offsets.reserve(probes.size() + 1);
  set.offsets.push_back(0);
  for (topology::AsId probe : probes) {
    const auto path = bgp::forwarding_path(outcome, probe, origin);
    set.flat.insert(set.flat.end(), path.begin(), path.end());
    set.offsets.push_back(static_cast<std::uint32_t>(set.flat.size()));
  }
  return set;
}

namespace {

/// Everything one worker slot reuses across its tasks. Traceroute hop
/// storage, repair indexes, and inference vote buffers reach a steady
/// state after the first task; later tasks allocate only their results.
struct SlotScratch {
  std::vector<Traceroute> traces;
  std::vector<AsLevelPath> repaired;
  PathRepair::Scratch repair;
  CatchmentInference::Scratch inference;
};

}  // namespace

MeasurementDriver::MeasurementDriver(const TracerouteSim& tracer,
                                     const PathRepair& repair,
                                     const CatchmentInference& inference,
                                     std::span<const topology::AsId> probes,
                                     topology::AsId origin,
                                     MeasurementDriverOptions options)
    : tracer_(tracer),
      repair_(repair),
      inference_(inference),
      probes_(probes),
      origin_(origin),
      options_(options) {}

std::vector<InferenceResult> MeasurementDriver::run(
    std::span<const MeasurementTask> tasks,
    std::vector<fault::ConfigQuality>* quality) const {
  std::vector<InferenceResult> results(tasks.size());
  if (quality != nullptr) quality->assign(tasks.size(), {});
  if (tasks.empty()) return results;

  const std::size_t workers =
      options_.workers == 0 ? util::default_worker_count() : options_.workers;
  const std::size_t slots =
      std::max<std::size_t>(1, std::min(workers, tasks.size()));
  OBS_GAUGE("measure.driver.workers", slots);
  OBS_COUNT("measure.driver.tasks", tasks.size());

  const std::uint32_t rounds = options_.traceroute_rounds;
  const std::size_t probe_count = probes_.size();
  std::vector<SlotScratch> scratch(slots);

  auto run_slot = [&](std::size_t slot) {
    SlotScratch& s = scratch[slot];
    for (std::size_t t = slot; t < tasks.size(); t += slots) {
      OBS_TIMER("measure.driver.config_ns");
      const MeasurementTask& task = tasks[t];
      if (s.traces.size() != probe_count * rounds) {
        s.traces.resize(probe_count * rounds);
      }
      std::size_t k = 0;
      for (std::size_t p = 0; p < probe_count; ++p) {
        const auto path = task.probe_paths->path(p);
        for (std::uint32_t round = 0; round < rounds; ++round) {
          tracer_.run_on_path(path, probes_[p], origin_,
                              util::hash_combine(task.config_index, round),
                              s.traces[k++]);
        }
      }
      OBS_COUNT("measure.driver.traceroutes", s.traces.size());
      if (quality != nullptr) {
        fault::ConfigQuality& q = (*quality)[t];
        q.feed_entries = static_cast<std::uint32_t>(task.feeds->size());
        q.feed_faults = task.feed_faults;
        q.traces = static_cast<std::uint32_t>(s.traces.size());
        for (const Traceroute& trace : s.traces) {
          q.trace_faults += trace.fault != 0 ? 1u : 0u;
        }
      }
      repair_.repair(s.traces, *task.feeds, s.repair, s.repaired);
      results[t] = inference_.infer(*task.feeds, s.repaired, s.inference);
    }
  };

  // slots - 1 pool threads; the calling thread claims the remaining slot.
  util::WorkerPool pool(slots - 1);
  pool.run(slots, run_slot);
  return results;
}

}  // namespace spooftrack::measure
