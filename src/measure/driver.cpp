#include "measure/driver.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace spooftrack::measure {

ProbePathSet ProbePathSet::extract(const bgp::RoutingOutcome& outcome,
                                   std::span<const topology::AsId> probes,
                                   topology::AsId origin) {
  ProbePathSet set;
  extract_into(outcome, probes, origin, set);
  return set;
}

void ProbePathSet::extract_into(const bgp::RoutingOutcome& outcome,
                                std::span<const topology::AsId> probes,
                                topology::AsId origin, ProbePathSet& set) {
  set.flat.clear();
  set.offsets.clear();
  set.offsets.reserve(probes.size() + 1);
  set.offsets.push_back(0);
  // One recycled walk buffer for every probe: forwarding_path_into clears
  // it per call, so only the first few probes grow it.
  thread_local std::vector<topology::AsId> walk;
  for (topology::AsId probe : probes) {
    bgp::forwarding_path_into(outcome, probe, origin, walk);
    set.flat.insert(set.flat.end(), walk.begin(), walk.end());
    set.offsets.push_back(static_cast<std::uint32_t>(set.flat.size()));
  }
}

MeasurementDriver::MeasurementDriver(const TracerouteSim& tracer,
                                     const PathRepair& repair,
                                     const CatchmentInference& inference,
                                     std::span<const topology::AsId> probes,
                                     topology::AsId origin,
                                     MeasurementDriverOptions options)
    : tracer_(tracer),
      repair_(repair),
      inference_(inference),
      probes_(probes),
      origin_(origin),
      options_(options) {}

InferenceResult MeasurementDriver::measure_one(
    std::size_t config_index, const std::vector<FeedEntry>& feeds,
    const ProbePathSet& paths, Scratch& scratch,
    fault::ConfigQuality* quality) const {
  OBS_TIMER("measure.driver.config_ns");
  const std::uint32_t rounds = options_.traceroute_rounds;
  const std::size_t probe_count = probes_.size();
  Scratch& s = scratch;
  if (s.traces.size() != probe_count * rounds) {
    s.traces.resize(probe_count * rounds);
  }
  std::size_t k = 0;
  for (std::size_t p = 0; p < probe_count; ++p) {
    const auto path = paths.path(p);
    for (std::uint32_t round = 0; round < rounds; ++round) {
      tracer_.run_on_path(path, probes_[p], origin_,
                          util::hash_combine(config_index, round),
                          s.traces[k++]);
    }
  }
  OBS_COUNT("measure.driver.traceroutes", s.traces.size());
  if (quality != nullptr) {
    quality->feed_entries = static_cast<std::uint32_t>(feeds.size());
    quality->traces = static_cast<std::uint32_t>(s.traces.size());
    for (const Traceroute& trace : s.traces) {
      quality->trace_faults += trace.fault != 0 ? 1u : 0u;
    }
  }
  repair_.repair(s.traces, feeds, s.repair, s.repaired);
  return inference_.infer(feeds, s.repaired, s.inference);
}

std::vector<InferenceResult> MeasurementDriver::run(
    std::span<const MeasurementTask> tasks,
    std::vector<fault::ConfigQuality>* quality) const {
  std::vector<InferenceResult> results(tasks.size());
  if (quality != nullptr) quality->assign(tasks.size(), {});
  if (tasks.empty()) return results;

  const std::size_t workers =
      options_.workers == 0 ? util::default_worker_count() : options_.workers;
  const std::size_t slots =
      std::max<std::size_t>(1, std::min(workers, tasks.size()));
  OBS_GAUGE("measure.driver.workers", slots);
  OBS_COUNT("measure.driver.tasks", tasks.size());

  std::vector<Scratch> scratch(slots);

  auto run_slot = [&](std::size_t slot) {
    Scratch& s = scratch[slot];
    for (std::size_t t = slot; t < tasks.size(); t += slots) {
      const MeasurementTask& task = tasks[t];
      fault::ConfigQuality* q = quality != nullptr ? &(*quality)[t] : nullptr;
      if (q != nullptr) q->feed_faults = task.feed_faults;
      results[t] = measure_one(task.config_index, *task.feeds,
                               *task.probe_paths, s, q);
    }
  };

  // slots - 1 pool threads; the calling thread claims the remaining slot.
  util::WorkerPool pool(slots - 1);
  pool.run(slots, run_slot);
  return results;
}

}  // namespace spooftrack::measure
