// Public BGP feed simulation (RouteViews / RIPE RIS stand-in): a set of
// collector-peer ASes export their full AS-path toward the experiment
// prefix after each configuration converges. Paths are exactly what the
// routing engine computed — including origin prepending and PEERING's
// poison sandwich — so downstream inference must strip them, as the paper
// does.
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/engine.hpp"
#include "fault/fault.hpp"
#include "topology/as_graph.hpp"

namespace spooftrack::measure {

struct FeedEntry {
  topology::AsId peer = topology::kInvalidAsId;
  /// AS-path as exported by the peer: [peer, ..., origin].
  std::vector<topology::Asn> as_path;
};

struct FeedOptions {
  /// Number of collector-peer ASes (RouteViews+RIS peer with hundreds).
  std::uint32_t peer_count = 250;
  /// Fraction of peers drawn from the largest-cone ASes (collectors peer
  /// predominantly with large transit networks).
  double large_cone_bias = 0.6;
  std::uint64_t seed = 17;
};

class FeedSimulator {
 public:
  FeedSimulator(const topology::AsGraph& graph, const FeedOptions& options);

  const std::vector<topology::AsId>& peers() const noexcept { return peers_; }

  /// Collects one RIB snapshot: one entry per peer that currently has a
  /// route. Thread-safe (const, no mutable state).
  std::vector<FeedEntry> collect(const bgp::RoutingOutcome& outcome) const;

  /// As `collect`, overwriting `entries` in place: surviving slots (and
  /// their AS-path storage) are recycled, so a streaming deploy reuses a
  /// small buffer pool instead of allocating one snapshot per
  /// configuration. Output is identical to collect().
  void collect_into(const bgp::RoutingOutcome& outcome,
                    std::vector<FeedEntry>& entries) const;

  /// Applies deterministic collector faults to a clean snapshot: per
  /// (salt, peer), an *outage* drops the peer's entry entirely and a
  /// *stale* snapshot truncates its AS-path before the first occurrence of
  /// `origin_asn` (the collector dumped a RIB that predates the
  /// announcement, so the entry yields no catchment votes). `salt` is the
  /// configuration index. Fault draws are stateless, so degrading a
  /// snapshot shared by several configurations (campaign memo fan-out)
  /// stays per-config deterministic. With both feed probabilities zero the
  /// input is returned unchanged. Increments *faulted (when given) once
  /// per dropped or staled entry.
  static std::vector<FeedEntry> degrade(const std::vector<FeedEntry>& entries,
                                        const fault::FaultInjector& injector,
                                        std::uint64_t salt,
                                        topology::Asn origin_asn,
                                        std::uint32_t* faulted = nullptr);

  /// As `degrade`, writing the surviving entries into `out` (overwritten in
  /// place, slot storage recycled). `out` must not alias `entries`. Output
  /// is identical to degrade().
  static void degrade_into(const std::vector<FeedEntry>& entries,
                           const fault::FaultInjector& injector,
                           std::uint64_t salt, topology::Asn origin_asn,
                           std::uint32_t* faulted,
                           std::vector<FeedEntry>& out);

 private:
  const topology::AsGraph& graph_;
  std::vector<topology::AsId> peers_;
};

}  // namespace spooftrack::measure
