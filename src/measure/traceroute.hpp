// Data-plane traceroute simulation (RIPE Atlas stand-in).
//
// A traceroute follows the forwarding chain induced by the routing outcome
// from a probe AS toward the experiment prefix, emitting router-level hops
// with the realistic addressing artifacts the paper's §IV-b pipeline must
// survive:
//   * border interfaces numbered from the neighbor AS's prefix,
//   * hops on IXP LANs (mapping to no AS),
//   * transiently unresponsive hops and wholly silent ASes,
//   * truncated traces when the probe has no route.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bgp/engine.hpp"
#include "fault/fault.hpp"
#include "measure/address_plan.hpp"
#include "measure/ixp_table.hpp"
#include "netcore/ipv4.hpp"
#include "topology/as_graph.hpp"

namespace spooftrack::measure {

struct TracerouteHop {
  std::optional<netcore::Ipv4Addr> address;  // nullopt = '*' (no reply)

  bool responsive() const noexcept { return address.has_value(); }
};

/// Bits set in Traceroute::fault when injected faults altered the trace.
inline constexpr std::uint8_t kTraceFaultLost = 0x1;
inline constexpr std::uint8_t kTraceFaultTruncated = 0x2;

struct Traceroute {
  topology::AsId probe = topology::kInvalidAsId;
  std::vector<TracerouteHop> hops;
  bool reached = false;      // destination answered
  std::uint8_t fault = 0;    // kTraceFault* bits (0 = clean measurement)
};

struct TracerouteOptions {
  /// Probability a single hop does not answer (transient).
  double hop_unresponsive_prob = 0.05;
  /// Probability an AS never answers traceroute at all (persistent).
  double as_silent_prob = 0.02;
  /// Probability a border interface is numbered from the neighbor's space.
  double border_foreign_addr_prob = 0.35;
  /// Mean number of extra internal router hops per AS (0 => exactly one).
  double extra_internal_hops = 0.6;
  std::uint64_t seed = 99;
};

class TracerouteSim {
 public:
  TracerouteSim(const topology::AsGraph& graph, const AddressPlan& plan,
                const IxpTable& ixps, const TracerouteOptions& options);

  /// Runs one traceroute from `probe` under `outcome`. `salt` varies
  /// transient effects between measurement rounds while keeping the
  /// simulation deterministic; persistent effects (silent ASes, border
  /// numbering) depend only on the seed. Thread-safe.
  Traceroute run(const bgp::RoutingOutcome& outcome, topology::AsId probe,
                 topology::AsId origin, std::uint64_t salt) const;

  /// Runs one traceroute along a precomputed forwarding path (the result of
  /// bgp::forwarding_path(outcome, probe, origin)), writing hops into
  /// `trace` (previous contents are discarded; hop storage is reused).
  /// Callers measuring many rounds per configuration walk the routing
  /// outcome once and replay the path here; equivalent to run() for the
  /// same (path, salt). Thread-safe.
  void run_on_path(std::span<const topology::AsId> path, topology::AsId probe,
                   topology::AsId origin, std::uint64_t salt,
                   Traceroute& trace) const;

  /// Whether an AS is persistently silent under this option seed.
  bool as_silent(topology::AsId id) const noexcept;

  /// Installs a fault source (not owned; may be nullptr to disable).
  /// Per (salt, probe), a *loss* fault swallows the whole traceroute
  /// (empty hops, kTraceFaultLost) and a *truncate* fault cuts the trace
  /// at a hash-derived hop before the destination (kTraceFaultTruncated).
  /// A disabled injector leaves every trace bit-identical.
  void set_fault_injector(const fault::FaultInjector* injector) noexcept {
    faults_ = injector;
  }

 private:
  const topology::AsGraph& graph_;
  const AddressPlan& plan_;
  const IxpTable& ixps_;
  TracerouteOptions options_;
  std::vector<std::uint8_t> silent_;  // per-AsId persistent silence bitmap
  const fault::FaultInjector* faults_ = nullptr;
};

}  // namespace spooftrack::measure
