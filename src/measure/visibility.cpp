#include "measure/visibility.hpp"

#include <algorithm>

namespace spooftrack::measure {

std::vector<topology::AsId> baseline_sources(const InferenceResult& first) {
  std::vector<topology::AsId> sources;
  for (topology::AsId id = 0; id < first.observed.size(); ++id) {
    if (first.observed[id] &&
        first.catchments.link_of[id] != bgp::kNoCatchment) {
      sources.push_back(id);
    }
  }
  return sources;
}

CatchmentMatrix build_matrix(const std::vector<InferenceResult>& per_config,
                             const std::vector<topology::AsId>& sources) {
  CatchmentMatrix matrix(per_config.size(),
                         std::vector<bgp::LinkId>(sources.size(),
                                                  bgp::kNoCatchment));
  for (std::size_t c = 0; c < per_config.size(); ++c) {
    const auto& inferred = per_config[c];
    for (std::size_t s = 0; s < sources.size(); ++s) {
      const topology::AsId id = sources[s];
      if (inferred.observed[id]) {
        matrix[c][s] = inferred.catchments.link_of[id];
      }
    }
  }
  impute_missing(matrix);
  return matrix;
}

namespace {

/// Number of configurations where both sources were observed in the same
/// catchment.
std::uint32_t co_catchment_count(const CatchmentMatrix& matrix,
                                 std::size_t s, std::size_t t) {
  std::uint32_t count = 0;
  for (const auto& row : matrix) {
    const bgp::LinkId a = row[s];
    const bgp::LinkId b = row[t];
    if (a != bgp::kNoCatchment && a == b) ++count;
  }
  return count;
}

}  // namespace

void impute_missing(CatchmentMatrix& matrix) {
  if (matrix.empty()) return;
  const std::size_t source_count = matrix[0].size();

  // Sources with at least one missing cell.
  std::vector<std::size_t> incomplete;
  for (std::size_t s = 0; s < source_count; ++s) {
    for (const auto& row : matrix) {
      if (row[s] == bgp::kNoCatchment) {
        incomplete.push_back(s);
        break;
      }
    }
  }
  if (incomplete.empty()) return;

  // Two passes: the second can read values the first filled in.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t s : incomplete) {
      // s_max: the other source most frequently sharing s's catchment.
      std::size_t smax = source_count;
      std::uint32_t best = 0;
      for (std::size_t t = 0; t < source_count; ++t) {
        if (t == s) continue;
        const std::uint32_t count = co_catchment_count(matrix, s, t);
        if (count > best) {
          best = count;
          smax = t;
        }
      }
      if (smax == source_count) continue;  // never co-observed with anyone
      for (auto& row : matrix) {
        if (row[s] == bgp::kNoCatchment && row[smax] != bgp::kNoCatchment) {
          row[s] = row[smax];
        }
      }
    }
  }
}

}  // namespace spooftrack::measure
