#include "measure/visibility.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <numeric>

#include "obs/obs.hpp"

namespace spooftrack::measure {

std::vector<topology::AsId> baseline_sources(const InferenceResult& first) {
  std::vector<topology::AsId> sources;
  for (topology::AsId id = 0; id < first.observed.size(); ++id) {
    if (first.observed[id] &&
        first.catchments.link_of[id] != bgp::kNoCatchment) {
      sources.push_back(id);
    }
  }
  return sources;
}

CatchmentStore build_matrix(const std::vector<InferenceResult>& per_config,
                            const std::vector<topology::AsId>& sources) {
  CatchmentStore matrix(per_config.size(), sources.size());
  for (std::size_t c = 0; c < per_config.size(); ++c) {
    const auto& inferred = per_config[c];
    for (std::size_t s = 0; s < sources.size(); ++s) {
      const topology::AsId id = sources[s];
      if (inferred.observed[id]) {
        matrix.set(c, s, inferred.catchments.link_of[id]);
      }
    }
  }
  impute_missing(matrix);
  OBS_GAUGE("analysis.matrix_bytes", matrix.size_bytes());
  return matrix;
}

namespace {

constexpr std::uint64_t kLow7 = 0x7F7F7F7F7F7F7F7FULL;

/// 0x80 in every byte lane of `v` that is zero; exact per lane (the
/// (v & 0x7F) + 0x7F add cannot carry across lanes).
inline std::uint64_t zero_byte_mask(std::uint64_t v) noexcept {
  return ~(((v & kLow7) + kLow7) | v | kLow7);
}

/// Number of configurations where both sources were observed in the same
/// catchment, over contiguous (pre-gathered) columns: eight cells per
/// iteration via SWAR equality + missing masks.
std::uint32_t co_catchment_count(const std::uint8_t* a, const std::uint8_t* b,
                                 std::size_t configs) {
  std::uint32_t count = 0;
  std::size_t c = 0;
  for (; c + 8 <= configs; c += 8) {
    std::uint64_t x;
    std::uint64_t y;
    std::memcpy(&x, a + c, sizeof x);
    std::memcpy(&y, b + c, sizeof y);
    const std::uint64_t equal = zero_byte_mask(x ^ y);
    const std::uint64_t missing = zero_byte_mask(~x);
    count += static_cast<std::uint32_t>(std::popcount(equal & ~missing));
  }
  for (; c < configs; ++c) {
    if (a[c] != kNoCatchment8 && a[c] == b[c]) ++count;
  }
  return count;
}

}  // namespace

void impute_missing(CatchmentStore& matrix) {
  if (matrix.empty()) return;
  const std::size_t source_count = matrix.sources();
  const std::size_t configs = matrix.size();

  // Columns gathered contiguous once (tiled word-gather) and kept in sync
  // with every fill below — the second pass must see the first pass's
  // imputed values, exactly as the strided in-place walk did.
  std::vector<std::uint32_t> all_sources(source_count);
  std::iota(all_sources.begin(), all_sources.end(), 0u);
  std::vector<std::uint8_t> cols(source_count * configs);
  matrix.gather_columns(all_sources, cols.data());
  const auto col = [&](std::size_t s) { return cols.data() + s * configs; };

  // Sources with at least one missing cell.
  std::vector<std::size_t> incomplete;
  for (std::size_t s = 0; s < source_count; ++s) {
    if (std::memchr(col(s), kNoCatchment8, configs) != nullptr) {
      incomplete.push_back(s);
    }
  }
  if (incomplete.empty()) return;

  // Two passes: the second can read values the first filled in.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t s : incomplete) {
      // s_max: the other source most frequently sharing s's catchment.
      std::size_t smax = source_count;
      std::uint32_t best = 0;
      for (std::size_t t = 0; t < source_count; ++t) {
        if (t == s) continue;
        const std::uint32_t count = co_catchment_count(col(s), col(t),
                                                       configs);
        if (count > best) {
          best = count;
          smax = t;
        }
      }
      if (smax == source_count) continue;  // never co-observed with anyone
      for (std::size_t c = 0; c < configs; ++c) {
        const std::uint8_t donor = col(smax)[c];
        if (col(s)[c] == kNoCatchment8 && donor != kNoCatchment8) {
          matrix.row(c)[s] = donor;
          col(s)[c] = donor;
        }
      }
    }
  }
}

}  // namespace spooftrack::measure
