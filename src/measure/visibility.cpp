#include "measure/visibility.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace spooftrack::measure {

std::vector<topology::AsId> baseline_sources(const InferenceResult& first) {
  std::vector<topology::AsId> sources;
  for (topology::AsId id = 0; id < first.observed.size(); ++id) {
    if (first.observed[id] &&
        first.catchments.link_of[id] != bgp::kNoCatchment) {
      sources.push_back(id);
    }
  }
  return sources;
}

CatchmentStore build_matrix(const std::vector<InferenceResult>& per_config,
                            const std::vector<topology::AsId>& sources) {
  CatchmentStore matrix(per_config.size(), sources.size());
  for (std::size_t c = 0; c < per_config.size(); ++c) {
    const auto& inferred = per_config[c];
    for (std::size_t s = 0; s < sources.size(); ++s) {
      const topology::AsId id = sources[s];
      if (inferred.observed[id]) {
        matrix.set(c, s, inferred.catchments.link_of[id]);
      }
    }
  }
  impute_missing(matrix);
  OBS_GAUGE("analysis.matrix_bytes", matrix.size_bytes());
  return matrix;
}

namespace {

/// Number of configurations where both sources were observed in the same
/// catchment. Columns are strided views over the row-major store.
std::uint32_t co_catchment_count(const CatchmentStore& matrix,
                                 std::size_t s, std::size_t t) {
  const auto col_s = matrix.column(s);
  const auto col_t = matrix.column(t);
  std::uint32_t count = 0;
  for (std::size_t c = 0; c < matrix.size(); ++c) {
    const std::uint8_t a = col_s[c];
    if (a != kNoCatchment8 && a == col_t[c]) ++count;
  }
  return count;
}

}  // namespace

void impute_missing(CatchmentStore& matrix) {
  if (matrix.empty()) return;
  const std::size_t source_count = matrix.sources();

  // Sources with at least one missing cell.
  std::vector<std::size_t> incomplete;
  for (std::size_t s = 0; s < source_count; ++s) {
    const auto col = matrix.column(s);
    for (std::size_t c = 0; c < matrix.size(); ++c) {
      if (col[c] == kNoCatchment8) {
        incomplete.push_back(s);
        break;
      }
    }
  }
  if (incomplete.empty()) return;

  // Two passes: the second can read values the first filled in.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t s : incomplete) {
      // s_max: the other source most frequently sharing s's catchment.
      std::size_t smax = source_count;
      std::uint32_t best = 0;
      for (std::size_t t = 0; t < source_count; ++t) {
        if (t == s) continue;
        const std::uint32_t count = co_catchment_count(matrix, s, t);
        if (count > best) {
          best = count;
          smax = t;
        }
      }
      if (smax == source_count) continue;  // never co-observed with anyone
      for (std::size_t c = 0; c < matrix.size(); ++c) {
        if (matrix.cell(c, s) == kNoCatchment8 &&
            matrix.cell(c, smax) != kNoCatchment8) {
          matrix.row(c)[s] = matrix.cell(c, smax);
        }
      }
    }
  }
}

}  // namespace spooftrack::measure
