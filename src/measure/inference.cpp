#include "measure/inference.hpp"

#include <algorithm>
#include <array>

#include "obs/obs.hpp"

namespace spooftrack::measure {

std::optional<bgp::LinkId> link_from_as_path(
    std::span<const topology::Asn> path, const bgp::OriginSpec& origin) {
  const auto it = std::find(path.begin(), path.end(), origin.asn);
  if (it == path.end() || it == path.begin()) return std::nullopt;
  const topology::Asn provider = *(it - 1);
  const bgp::PeeringLink* link = origin.link_by_provider(provider);
  if (link == nullptr) return std::nullopt;
  return link->id;
}

CatchmentInference::CatchmentInference(const topology::AsGraph& graph,
                                       const bgp::OriginSpec& origin)
    : graph_(graph), origin_(origin) {}

InferenceResult CatchmentInference::infer(
    std::span<const FeedEntry> feeds,
    std::span<const AsLevelPath> traces) const {
  Scratch scratch;
  return infer(feeds, traces, scratch);
}

InferenceResult CatchmentInference::infer(std::span<const FeedEntry> feeds,
                                          std::span<const AsLevelPath> traces,
                                          Scratch& scratch) const {
  OBS_TIMER("measure.inference.infer_ns");
  const std::size_t link_count = origin_.links.size();
  // Vote counts per AS: [link * 2 + type], type 0 = BGP, type 1 = trace.
  std::vector<std::uint16_t>& votes = scratch.votes;
  votes.assign(graph_.size() * link_count * 2, 0);
  std::vector<std::uint8_t>& observed = scratch.observed;
  observed.assign(graph_.size(), 0);

  auto add_votes = [&](std::span<const topology::Asn> path, int type) {
    const auto link = link_from_as_path(path, origin_);
    if (!link) return;
    const auto seed_start =
        std::find(path.begin(), path.end(), origin_.asn) - path.begin();
    for (std::ptrdiff_t i = 0; i < seed_start; ++i) {
      const auto id = graph_.id_of(path[i]);
      if (!id) continue;
      observed[*id] = 1;
      auto& count =
          votes[(*id * link_count + *link) * 2 + static_cast<std::size_t>(type)];
      if (count < std::numeric_limits<std::uint16_t>::max()) {
        ++count;
      } else {
        // The u16 ceiling can silently flatten majorities on pathological
        // batches; surface it instead of absorbing it.
        OBS_COUNT("measure.inference.votes_saturated", 1);
      }
    }
  };

  for (const FeedEntry& feed : feeds) add_votes(feed.as_path, 0);
  for (const AsLevelPath& trace : traces) {
    if (trace.complete) add_votes(trace.path, 1);
  }

  InferenceResult result;
  result.observed = std::move(observed);
  result.catchments.link_of.assign(graph_.size(), bgp::kNoCatchment);

  std::size_t multi = 0;
  for (topology::AsId id = 0; id < graph_.size(); ++id) {
    if (!result.observed[id]) continue;
    ++result.covered_count;

    // Count catchments named by any vote (for the multi-catchment stat).
    std::size_t distinct = 0;
    bool has_bgp = false;
    for (std::size_t link = 0; link < link_count; ++link) {
      const std::uint32_t bgp_votes = votes[(id * link_count + link) * 2];
      const std::uint32_t trace_votes = votes[(id * link_count + link) * 2 + 1];
      if (bgp_votes + trace_votes > 0) ++distinct;
      if (bgp_votes > 0) has_bgp = true;
    }
    if (distinct > 1) ++multi;

    // Resolution: majority among BGP votes when any exist, else among
    // traceroute votes; ties go to the lowest link id (deterministic).
    const int type = has_bgp ? 0 : 1;
    std::uint32_t best_count = 0;
    bgp::LinkId best_link = bgp::kNoCatchment;
    for (std::size_t link = 0; link < link_count; ++link) {
      const std::uint32_t count =
          votes[(id * link_count + link) * 2 + static_cast<std::size_t>(type)];
      if (count > best_count) {
        best_count = count;
        best_link = static_cast<bgp::LinkId>(link);
      }
    }
    result.catchments.link_of[id] = best_link;
  }

  result.multi_catchment_fraction =
      result.covered_count == 0
          ? 0.0
          : static_cast<double>(multi) /
                static_cast<double>(result.covered_count);
  return result;
}

}  // namespace spooftrack::measure
