#include "measure/repair.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "obs/obs.hpp"

namespace spooftrack::measure {

namespace {

// Maximum gap width considered by the substitution steps.
constexpr std::size_t kWindow = PathRepair::kSubstitutionWindow;

std::uint64_t pack(std::uint64_t a, std::uint64_t b) noexcept {
  return (a << 32) | (b & 0xFFFFFFFFULL);
}

/// An interior sequence stored as a slice of a batch-wide pool instead of
/// an owned vector: index building is the hottest part of repair, and
/// per-entry vector allocations dominated it.
struct SeqRef {
  std::uint32_t offset = 0;
  std::uint32_t len = 0;
  bool conflict = false;
};

using SeqMap = std::unordered_map<std::uint64_t, SeqRef>;

/// Records the pool slice [offset, offset + len) for `key`; marks the key
/// conflicting when a different interior was seen before.
template <typename T>
void record(SeqMap& map, const std::vector<T>& pool, std::uint64_t key,
            std::uint32_t offset, std::uint32_t len) {
  const auto [it, inserted] = map.try_emplace(key, SeqRef{offset, len, false});
  if (inserted) return;
  SeqRef& ref = it->second;
  if (ref.conflict) return;
  if (ref.len != len ||
      !std::equal(pool.begin() + ref.offset, pool.begin() + ref.offset + ref.len,
                  pool.begin() + offset)) {
    ref.conflict = true;
  }
}

}  // namespace

/// All repair intermediates: step-2/step-4 indexes with their sequence
/// pools, plus per-trace buffers. Everything is reset per batch; capacity
/// persists across batches.
struct PathRepair::Scratch::Impl {
  SeqMap address_index;                     // step 2, into address_pool
  std::vector<netcore::Ipv4Addr> address_pool;
  SeqMap feed_index;                        // step 4, into asn_pool
  std::vector<topology::Asn> asn_pool;
  std::vector<topology::Asn> collapsed;     // feed-path collapse buffer
  std::vector<TracerouteHop> substituted;   // step-2 output per trace
  std::vector<std::optional<topology::Asn>> mapped;  // step-1 per trace
  std::vector<topology::Asn> as_hops;       // steps 3-4 per trace

  // Step-1 LPM memo. ip2as lookups are pure, and measurement batches hit
  // the same router addresses over and over, so unlike the indexes above
  // this cache survives across batches — unless the scratch is reused
  // against a different Ip2AsMap, which invalidates it.
  const Ip2AsMap* memo_for = nullptr;
  std::unordered_map<std::uint32_t, std::optional<topology::Asn>> ip2as_memo;
};

PathRepair::Scratch::Scratch() : impl_(std::make_unique<Impl>()) {}
PathRepair::Scratch::~Scratch() = default;
PathRepair::Scratch::Scratch(Scratch&&) noexcept = default;
PathRepair::Scratch& PathRepair::Scratch::operator=(Scratch&&) noexcept =
    default;

namespace {

using ScratchImpl = PathRepair::Scratch::Impl;

/// Step-2 index: responsive address sequences between pairs of responsive
/// addresses, across all traceroutes of the batch. Every maximal
/// responsive run is appended to the pool once; the recorded interiors are
/// slices of it.
void build_address_index(std::span<const Traceroute> traces, ScratchImpl& s) {
  s.address_index.clear();
  s.address_pool.clear();
  for (const Traceroute& trace : traces) {
    const auto& hops = trace.hops;
    std::size_t i = 0;
    while (i < hops.size()) {
      if (!hops[i].responsive()) {
        ++i;
        continue;
      }
      // Maximal responsive run [i, end).
      const auto base = static_cast<std::uint32_t>(s.address_pool.size());
      std::size_t end = i;
      while (end < hops.size() && hops[end].responsive()) {
        s.address_pool.push_back(*hops[end].address);
        ++end;
      }
      for (std::size_t a = i; a < end; ++a) {
        for (std::size_t b = a + 1; b < end && b - a <= kWindow + 1; ++b) {
          record(s.address_index, s.address_pool,
                 pack(hops[a].address->value(), hops[b].address->value()),
                 base + static_cast<std::uint32_t>(a - i) + 1,
                 static_cast<std::uint32_t>(b - a - 1));
        }
      }
      i = end;
    }
  }
}

/// Step-4 index: unique AS sequences between AS pairs in feed paths.
void build_feed_index(std::span<const FeedEntry> feeds,
                      topology::Asn origin_asn, ScratchImpl& s) {
  s.feed_index.clear();
  s.asn_pool.clear();
  for (const FeedEntry& feed : feeds) {
    // Collapse prepending before indexing.
    auto& path = s.collapsed;
    path.clear();
    for (topology::Asn asn : feed.as_path) {
      if (path.empty() || path.back() != asn) path.push_back(asn);
    }
    const auto base = static_cast<std::uint32_t>(s.asn_pool.size());
    s.asn_pool.insert(s.asn_pool.end(), path.begin(), path.end());
    for (std::size_t i = 0; i < path.size(); ++i) {
      for (std::size_t j = i + 1; j < path.size() && j - i <= kWindow + 1;
           ++j) {
        // Interiors crossing the origin (poison sandwiches) are artifacts
        // of the announcement encoding, not real topology.
        if (j - i >= 2 && path[j - 1] == origin_asn) break;
        record(s.feed_index, s.asn_pool, pack(path[i], path[j]),
               base + static_cast<std::uint32_t>(i) + 1,
               static_cast<std::uint32_t>(j - i - 1));
      }
    }
  }
}

/// Applies step 2 to one trace: substitutes unresponsive runs using the
/// batch-wide address index. Writes into `out`; returns the number of runs
/// substituted.
std::size_t substitute_unresponsive(const std::vector<TracerouteHop>& hops,
                                    const SeqMap& index,
                                    const std::vector<netcore::Ipv4Addr>& pool,
                                    std::vector<TracerouteHop>& out) {
  out.clear();
  out.reserve(hops.size());
  std::size_t substitutions = 0;
  std::size_t i = 0;
  while (i < hops.size()) {
    if (hops[i].responsive()) {
      out.push_back(hops[i]);
      ++i;
      continue;
    }
    // Maximal unresponsive run [i, j).
    std::size_t j = i;
    while (j < hops.size() && !hops[j].responsive()) ++j;
    const bool has_left = !out.empty() && out.back().responsive();
    const bool has_right = j < hops.size();
    bool substituted = false;
    if (has_left && has_right && j - i <= kWindow) {
      const auto it = index.find(pack(out.back().address->value(),
                                      hops[j].address->value()));
      if (it != index.end() && !it->second.conflict) {
        const SeqRef& ref = it->second;
        for (std::uint32_t k = 0; k < ref.len; ++k) {
          out.push_back({pool[ref.offset + k]});
        }
        substituted = true;
        ++substitutions;
      }
    }
    if (!substituted) {
      for (std::size_t k = i; k < j; ++k) out.push_back(hops[k]);
    }
    i = j;
  }
  return substitutions;
}

/// Steps 1, 3, 5: map hops to ASes, bridge unknown runs, collapse. The
/// feed index (step 4) is optional; `mapped` and `as_hops` are reused
/// buffers. Increments *feed_bridges per gap bridged from feeds.
AsLevelPath finish_mapping(const topology::AsGraph& graph,
                           const Ip2AsMap& ip2as, const IxpTable& ixps,
                           topology::Asn origin_asn, topology::AsId probe,
                           const std::vector<TracerouteHop>& hops,
                           const SeqMap* feed_index,
                           const std::vector<topology::Asn>& asn_pool,
                           std::vector<std::optional<topology::Asn>>& mapped,
                           std::vector<topology::Asn>& as_hops,
                           std::size_t* feed_bridges,
                           std::unordered_map<std::uint32_t,
                                              std::optional<topology::Asn>>*
                               ip2as_memo) {
  // Step 1: per-hop AS (nullopt = unresponsive or unmapped); IXP hops are
  // dropped entirely (they belong to the fabric, not an AS).
  mapped.clear();
  mapped.reserve(hops.size());
  for (const TracerouteHop& hop : hops) {
    if (!hop.responsive()) {
      mapped.push_back(std::nullopt);
      continue;
    }
    if (ixps.is_ixp_address(*hop.address)) continue;
    if (ip2as_memo != nullptr) {
      const auto [it, inserted] =
          ip2as_memo->try_emplace(hop.address->value());
      if (inserted) it->second = ip2as.lookup(*hop.address);
      mapped.push_back(it->second);
    } else {
      mapped.push_back(ip2as.lookup(*hop.address));
    }
  }

  // Steps 3 and 4: bridge unknown runs between known ASes.
  as_hops.clear();
  std::size_t i = 0;
  while (i < mapped.size()) {
    if (mapped[i]) {
      as_hops.push_back(*mapped[i]);
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < mapped.size() && !mapped[j]) ++j;
    const bool has_left = !as_hops.empty();
    const bool has_right = j < mapped.size();
    if (has_left && has_right) {
      const topology::Asn left = as_hops.back();
      const topology::Asn right = *mapped[j];
      if (left == right) {
        // Same AS on both sides: the gap is internal to that AS.
      } else if (feed_index != nullptr && j - i <= kWindow) {
        const auto it = feed_index->find(pack(left, right));
        if (it != feed_index->end() && !it->second.conflict) {
          const SeqRef& ref = it->second;
          for (std::uint32_t k = 0; k < ref.len; ++k) {
            as_hops.push_back(asn_pool[ref.offset + k]);
          }
          if (feed_bridges != nullptr) ++*feed_bridges;
        }
        // No unique sequence: hops stay dropped (step 5).
      }
    }
    i = j;
  }

  // Step 5 + finalization: collapse duplicates, anchor at the probe AS.
  AsLevelPath result;
  result.probe = probe;
  result.path.push_back(graph.asn_of(probe));
  for (topology::Asn asn : as_hops) {
    if (result.path.back() != asn) result.path.push_back(asn);
  }
  result.complete = result.path.back() == origin_asn;
  return result;
}

}  // namespace

PathRepair::PathRepair(const topology::AsGraph& graph, const Ip2AsMap& ip2as,
                       const IxpTable& ixps, topology::Asn origin_asn)
    : graph_(graph), ip2as_(ip2as), ixps_(ixps), origin_asn_(origin_asn) {}

AsLevelPath PathRepair::map_only(const Traceroute& trace) const {
  std::vector<std::optional<topology::Asn>> mapped;
  std::vector<topology::Asn> as_hops;
  return finish_mapping(graph_, ip2as_, ixps_, origin_asn_, trace.probe,
                        trace.hops, nullptr, {}, mapped, as_hops, nullptr,
                        nullptr);
}

std::vector<AsLevelPath> PathRepair::repair(
    std::span<const Traceroute> traces,
    std::span<const FeedEntry> feeds) const {
  Scratch scratch;
  std::vector<AsLevelPath> out;
  repair(traces, feeds, scratch, out);
  return out;
}

void PathRepair::repair(std::span<const Traceroute> traces,
                        std::span<const FeedEntry> feeds, Scratch& scratch,
                        std::vector<AsLevelPath>& out) const {
  OBS_TIMER("measure.repair.batch_ns");
  OBS_COUNT("measure.repair.traces", traces.size());
  Scratch::Impl& s = *scratch.impl_;
  build_address_index(traces, s);
  build_feed_index(feeds, origin_asn_, s);
  if (s.memo_for != &ip2as_) {
    s.ip2as_memo.clear();
    s.memo_for = &ip2as_;
  }

  out.clear();
  out.reserve(traces.size());
  std::size_t substitutions = 0;
  std::size_t feed_bridges = 0;
  for (const Traceroute& trace : traces) {
    substitutions += substitute_unresponsive(trace.hops, s.address_index,
                                             s.address_pool, s.substituted);
    out.push_back(finish_mapping(graph_, ip2as_, ixps_, origin_asn_,
                                 trace.probe, s.substituted, &s.feed_index,
                                 s.asn_pool, s.mapped, s.as_hops,
                                 &feed_bridges, &s.ip2as_memo));
  }
  OBS_COUNT("measure.repair.substitutions", substitutions);
  OBS_COUNT("measure.repair.feed_bridges", feed_bridges);
}

}  // namespace spooftrack::measure
