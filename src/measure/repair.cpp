#include "measure/repair.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "obs/obs.hpp"

namespace spooftrack::measure {

namespace {

// Maximum gap width considered by the substitution steps.
constexpr std::size_t kWindow = 5;

std::uint64_t pack(std::uint64_t a, std::uint64_t b) noexcept {
  return (a << 32) | (b & 0xFFFFFFFFULL);
}

template <typename T>
struct SeqEntry {
  std::vector<T> seq;
  bool conflict = false;
};

/// Records `interior` for key (a, b); marks the key conflicting when a
/// different interior was seen before.
template <typename T>
void record(std::unordered_map<std::uint64_t, SeqEntry<T>>& map,
            std::uint64_t key, const std::vector<T>& interior) {
  const auto it = map.find(key);
  if (it == map.end()) {
    map.emplace(key, SeqEntry<T>{interior});
    return;
  }
  if (!it->second.conflict && it->second.seq != interior) {
    it->second.conflict = true;
  }
}

using AddrSeqMap =
    std::unordered_map<std::uint64_t, SeqEntry<netcore::Ipv4Addr>>;
using AsnSeqMap = std::unordered_map<std::uint64_t, SeqEntry<topology::Asn>>;

/// Step-2 index: responsive address sequences between pairs of responsive
/// addresses, across all traceroutes of the batch.
AddrSeqMap build_address_index(std::span<const Traceroute> traces) {
  AddrSeqMap map;
  for (const Traceroute& trace : traces) {
    const auto& hops = trace.hops;
    for (std::size_t i = 0; i < hops.size(); ++i) {
      if (!hops[i].responsive()) continue;
      std::vector<netcore::Ipv4Addr> interior;
      for (std::size_t j = i + 1; j < hops.size() && j - i <= kWindow + 1;
           ++j) {
        if (!hops[j].responsive()) break;  // interior must stay responsive
        record(map, pack(hops[i].address->value(), hops[j].address->value()),
               interior);
        interior.push_back(*hops[j].address);
      }
    }
  }
  return map;
}

/// Step-4 index: unique AS sequences between AS pairs in feed paths.
AsnSeqMap build_feed_index(std::span<const FeedEntry> feeds,
                           topology::Asn origin_asn) {
  AsnSeqMap map;
  for (const FeedEntry& feed : feeds) {
    // Collapse prepending before indexing.
    std::vector<topology::Asn> path;
    for (topology::Asn asn : feed.as_path) {
      if (path.empty() || path.back() != asn) path.push_back(asn);
    }
    for (std::size_t i = 0; i < path.size(); ++i) {
      std::vector<topology::Asn> interior;
      for (std::size_t j = i + 1; j < path.size() && j - i <= kWindow + 1;
           ++j) {
        // Interiors crossing the origin (poison sandwiches) are artifacts
        // of the announcement encoding, not real topology.
        if (j >= 1 && j - i >= 2 && path[j - 1] == origin_asn) break;
        record(map, pack(path[i], path[j]), interior);
        interior.push_back(path[j]);
      }
    }
  }
  return map;
}

/// Applies step 2 to one trace: substitutes unresponsive runs using the
/// batch-wide address index.
std::vector<TracerouteHop> substitute_unresponsive(
    const std::vector<TracerouteHop>& hops, const AddrSeqMap& index) {
  std::vector<TracerouteHop> out;
  out.reserve(hops.size());
  std::size_t i = 0;
  while (i < hops.size()) {
    if (hops[i].responsive()) {
      out.push_back(hops[i]);
      ++i;
      continue;
    }
    // Maximal unresponsive run [i, j).
    std::size_t j = i;
    while (j < hops.size() && !hops[j].responsive()) ++j;
    const bool has_left = !out.empty() && out.back().responsive();
    const bool has_right = j < hops.size();
    bool substituted = false;
    if (has_left && has_right && j - i <= kWindow) {
      const auto it = index.find(pack(out.back().address->value(),
                                      hops[j].address->value()));
      if (it != index.end() && !it->second.conflict) {
        for (netcore::Ipv4Addr addr : it->second.seq) {
          out.push_back({addr});
        }
        substituted = true;
      }
    }
    if (!substituted) {
      for (std::size_t k = i; k < j; ++k) out.push_back(hops[k]);
    }
    i = j;
  }
  return out;
}

}  // namespace

PathRepair::PathRepair(const topology::AsGraph& graph, const Ip2AsMap& ip2as,
                       const IxpTable& ixps, topology::Asn origin_asn)
    : graph_(graph), ip2as_(ip2as), ixps_(ixps), origin_asn_(origin_asn) {}

namespace {

/// Steps 1, 3, 5: map hops to ASes, bridge unknown runs, collapse.
AsLevelPath finish_mapping(const topology::AsGraph& graph,
                           const Ip2AsMap& ip2as, const IxpTable& ixps,
                           topology::Asn origin_asn, topology::AsId probe,
                           const std::vector<TracerouteHop>& hops,
                           const AsnSeqMap* feed_index) {
  // Step 1: per-hop AS (nullopt = unresponsive or unmapped); IXP hops are
  // dropped entirely (they belong to the fabric, not an AS).
  std::vector<std::optional<topology::Asn>> mapped;
  mapped.reserve(hops.size());
  for (const TracerouteHop& hop : hops) {
    if (!hop.responsive()) {
      mapped.push_back(std::nullopt);
      continue;
    }
    if (ixps.is_ixp_address(*hop.address)) continue;
    mapped.push_back(ip2as.lookup(*hop.address));
  }

  // Steps 3 and 4: bridge unknown runs between known ASes.
  std::vector<topology::Asn> as_hops;
  std::size_t i = 0;
  while (i < mapped.size()) {
    if (mapped[i]) {
      as_hops.push_back(*mapped[i]);
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < mapped.size() && !mapped[j]) ++j;
    const bool has_left = !as_hops.empty();
    const bool has_right = j < mapped.size();
    if (has_left && has_right) {
      const topology::Asn left = as_hops.back();
      const topology::Asn right = *mapped[j];
      if (left == right) {
        // Same AS on both sides: the gap is internal to that AS.
      } else if (feed_index != nullptr && j - i <= kWindow) {
        const auto it = feed_index->find(pack(left, right));
        if (it != feed_index->end() && !it->second.conflict) {
          for (topology::Asn asn : it->second.seq) as_hops.push_back(asn);
        }
        // No unique sequence: hops stay dropped (step 5).
      }
    }
    i = j;
  }

  // Step 5 + finalization: collapse duplicates, anchor at the probe AS.
  AsLevelPath result;
  result.probe = probe;
  result.path.push_back(graph.asn_of(probe));
  for (topology::Asn asn : as_hops) {
    if (result.path.back() != asn) result.path.push_back(asn);
  }
  result.complete = result.path.back() == origin_asn;
  return result;
}

}  // namespace

AsLevelPath PathRepair::map_only(const Traceroute& trace) const {
  return finish_mapping(graph_, ip2as_, ixps_, origin_asn_, trace.probe,
                        trace.hops, nullptr);
}

std::vector<AsLevelPath> PathRepair::repair(
    std::span<const Traceroute> traces,
    std::span<const FeedEntry> feeds) const {
  OBS_TIMER("measure.repair.batch_ns");
  OBS_COUNT("measure.repair.traces", traces.size());
  const AddrSeqMap address_index = build_address_index(traces);
  const AsnSeqMap feed_index = build_feed_index(feeds, origin_asn_);

  std::vector<AsLevelPath> out;
  out.reserve(traces.size());
  for (const Traceroute& trace : traces) {
    const auto hops = substitute_unresponsive(trace.hops, address_index);
    out.push_back(finish_mapping(graph_, ip2as_, ixps_, origin_asn_,
                                 trace.probe, hops, &feed_index));
  }
  return out;
}

}  // namespace spooftrack::measure
