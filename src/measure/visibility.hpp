// Source visibility handling (§IV-d).
//
// A source observed in some configurations may be missing from others
// (route changes, poisoning, measurement loss). The paper (1) restricts the
// analysis to sources observed in the first all-locations announcement, and
// (2) fills each missing (source, configuration) cell with the catchment of
// s_max — the source that most frequently shared a catchment with s across
// the configurations where s was observed.
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/catchment.hpp"
#include "measure/catchment_store.hpp"
#include "measure/inference.hpp"
#include "topology/as_graph.hpp"

namespace spooftrack::measure {

/// The paper's baseline source set: ASes observed under the first
/// (all-locations, no prepending, no poisoning) configuration.
std::vector<topology::AsId> baseline_sources(const InferenceResult& first);

/// Builds the columnar matrix (row per configuration, column per source,
/// indexed as in `sources`) from per-configuration inference results, then
/// imputes missing cells via s_max. Two imputation passes run so that a
/// cell can be filled from a value the first pass produced; cells that
/// remain missing (e.g. s_max unobserved in the same configurations) stay
/// kNoCatchment8.
CatchmentStore build_matrix(const std::vector<InferenceResult>& per_config,
                            const std::vector<topology::AsId>& sources);

/// The imputation step alone, exposed for tests: fills missing cells of
/// `matrix` in place using s_max co-catchment frequency.
void impute_missing(CatchmentStore& matrix);

}  // namespace spooftrack::measure
