#include "measure/verfploeter.hpp"

#include "obs/obs.hpp"
#include "util/rng.hpp"

namespace spooftrack::measure {

namespace {
double unit_hash(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return static_cast<double>(
             util::hash_combine(util::hash_combine(a, b), c) >> 11) *
         0x1.0p-53;
}

/// Clamps nonsensical options into their valid ranges rather than letting
/// them silently zero out coverage (rounds == 0 probed nothing at all).
VerfploeterOptions validated(VerfploeterOptions options) {
  bool clamped = false;
  if (options.rounds == 0) {
    options.rounds = 1;
    clamped = true;
  }
  const auto clamp01 = [&](double& p) {
    if (!(p >= 0.0)) {  // also catches NaN
      p = 0.0;
      clamped = true;
    } else if (p > 1.0) {
      p = 1.0;
      clamped = true;
    }
  };
  clamp01(options.responsive_prob);
  clamp01(options.loss_prob);
  if (clamped) OBS_COUNT("measure.verfploeter.options_clamped", 1);
  return options;
}
}  // namespace

VerfploeterProber::VerfploeterProber(const topology::AsGraph& graph,
                                     const AddressPlan& plan,
                                     const VerfploeterOptions& options)
    : graph_(graph), plan_(plan), options_(validated(options)) {}

bool VerfploeterProber::responsive(topology::AsId id) const noexcept {
  return unit_hash(options_.seed, 0xEC40, id) < options_.responsive_prob;
}

std::uint16_t VerfploeterProber::session_id() const noexcept {
  return static_cast<std::uint16_t>(util::mix64(options_.seed));
}

netcore::Datagram VerfploeterProber::make_probe(
    topology::AsId target, std::uint16_t sequence) const {
  return netcore::make_icmp_echo(AddressPlan::experiment_target(),
                                 plan_.router_address(target, 0),
                                 /*is_reply=*/false, session_id(), sequence);
}

bool VerfploeterProber::is_probe_reply(
    const netcore::Datagram& datagram) const {
  const auto ip = datagram.ip();
  if (!ip || ip->destination != AddressPlan::experiment_target()) {
    return false;
  }
  const auto echo = netcore::parse_icmp_echo(datagram);
  return echo && echo->is_reply && echo->identifier == session_id();
}

InferenceResult VerfploeterProber::probe(const bgp::RoutingOutcome& outcome,
                                         const bgp::Configuration& config,
                                         topology::AsId origin,
                                         std::uint64_t salt) const {
  InferenceResult result;
  result.observed.assign(graph_.size(), 0);
  result.catchments.link_of.assign(graph_.size(), bgp::kNoCatchment);

  for (topology::AsId target = 0; target < graph_.size(); ++target) {
    if (target == origin || !responsive(target)) continue;

    // The reply follows the responder's best route toward the prefix; no
    // route, no reply. (plan_ supplies the probed host address; the
    // address itself does not influence AS-level forwarding.)
    const bgp::Route& route = outcome.best[target];
    if (!route.valid()) continue;

    // Transient loss, retried across rounds.
    bool heard = false;
    for (std::uint32_t round = 0; round < options_.rounds && !heard;
         ++round) {
      heard = unit_hash(options_.seed ^ salt, round * 0x9341 + 7, target) >=
              options_.loss_prob;
    }
    if (!heard) continue;

    result.observed[target] = 1;
    ++result.covered_count;
    result.catchments.link_of[target] =
        config.announcements[route.ann].link;
  }
  // Active probing assigns exactly one catchment per responder: the
  // multi-catchment ambiguity of path-based inference does not arise.
  result.multi_catchment_fraction = 0.0;
  return result;
}

}  // namespace spooftrack::measure
