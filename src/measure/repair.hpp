// §IV-b traceroute-to-AS-path pipeline, including the paper's repair steps:
//
//  1. Map hop addresses to ASes (longest-prefix match) and flag IXP hops.
//  2. If consecutive unresponsive hops are surrounded by responsive ones,
//     and the surrounding addresses have a *single* responsive sequence
//     between them in other traceroutes, substitute it.
//  3. Map remaining unresponsive/unmapped hops to the surrounding AS when
//     both sides agree.
//  4. When the sides disagree, substitute the unique AS sequence between
//     them in public BGP feed paths, if one exists.
//  5. Drop hops that remain unknown; collapse consecutive duplicates.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bgp/announcement.hpp"
#include "measure/feed.hpp"
#include "measure/ip2as.hpp"
#include "measure/ixp_table.hpp"
#include "measure/traceroute.hpp"
#include "topology/as_graph.hpp"

namespace spooftrack::measure {

/// AS-level view of one traceroute after repair.
struct AsLevelPath {
  topology::AsId probe = topology::kInvalidAsId;
  /// Collapsed AS path: probe ASN first; ends with the origin ASN when the
  /// trace reached the experiment prefix.
  std::vector<topology::Asn> path;
  bool complete = false;  // reaches the origin ASN

  friend bool operator==(const AsLevelPath&, const AsLevelPath&) = default;
};

class PathRepair {
 public:
  /// Maximum gap width (in hops) the substitution steps bridge. A run of
  /// exactly this many unresponsive hops between responsive anchors is
  /// still substitutable; one more never is.
  static constexpr std::size_t kSubstitutionWindow = 5;

  /// Reusable per-batch working memory: the step-2/step-4 indexes, their
  /// backing sequence pools, and the per-trace mapping buffers. A Scratch
  /// may be reused across any number of repair() batches (each batch
  /// resets it) but must not be shared between concurrent calls; results
  /// are identical to a fresh Scratch. Contents are opaque.
  class Scratch {
   public:
    Scratch();
    ~Scratch();
    Scratch(Scratch&&) noexcept;
    Scratch& operator=(Scratch&&) noexcept;

    struct Impl;  // defined in repair.cpp

   private:
    friend class PathRepair;
    std::unique_ptr<Impl> impl_;
  };

  PathRepair(const topology::AsGraph& graph, const Ip2AsMap& ip2as,
             const IxpTable& ixps, topology::Asn origin_asn);

  /// Repairs a batch of traceroutes measured under the same configuration,
  /// using the batch itself for step 2 and the feed snapshot for step 4.
  std::vector<AsLevelPath> repair(
      std::span<const Traceroute> traces,
      std::span<const FeedEntry> feeds) const;

  /// As above, reusing `scratch` for all intermediate state and writing the
  /// repaired paths into `out` (replaced, capacity reused). This is the
  /// allocation-free steady-state form the measurement driver uses.
  void repair(std::span<const Traceroute> traces,
              std::span<const FeedEntry> feeds, Scratch& scratch,
              std::vector<AsLevelPath>& out) const;

  /// Single-trace AS mapping without cross-trace substitution (steps 1, 3,
  /// 5 only); exposed for tests and diagnostics.
  AsLevelPath map_only(const Traceroute& trace) const;

 private:
  const topology::AsGraph& graph_;
  const Ip2AsMap& ip2as_;
  const IxpTable& ixps_;
  topology::Asn origin_asn_;
};

}  // namespace spooftrack::measure
