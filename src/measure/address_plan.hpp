// Address plan: assigns every AS an IPv4 prefix for its routers and models
// border-interface numbering. Traceroute hops at AS boundaries frequently
// respond with an address numbered out of the *neighbor's* prefix (the
// incoming interface of an inter-AS link) — the classic IP-to-AS mapping
// pitfall §IV-b repairs. The experiment prefix itself is PEERING's real
// 184.164.224.0/24.
#pragma once

#include <cstdint>

#include "netcore/ipv4.hpp"
#include "netcore/prefix.hpp"
#include "topology/as_graph.hpp"

namespace spooftrack::measure {

class AddressPlan {
 public:
  explicit AddressPlan(const topology::AsGraph& graph);

  /// The /20 owned by an AS.
  netcore::Ipv4Prefix prefix_of(topology::AsId id) const noexcept;

  /// Address of the k-th internal router of an AS.
  netcore::Ipv4Addr router_address(topology::AsId id,
                                   std::uint32_t router) const noexcept;

  /// Address of the interface of `on` facing `toward`, numbered from
  /// `owner`'s prefix (owner is `on` or `toward`, the link-subnet owner).
  netcore::Ipv4Addr border_address(topology::AsId owner, topology::AsId on,
                                   topology::AsId toward) const noexcept;

  /// The announced experiment prefix (PEERING's 184.164.224.0/24).
  static netcore::Ipv4Prefix experiment_prefix() noexcept;
  /// The in-prefix address probes target / the honeypot listens on.
  static netcore::Ipv4Addr experiment_target() noexcept;

  std::size_t as_count() const noexcept { return as_count_; }

 private:
  std::size_t as_count_;
};

}  // namespace spooftrack::measure
