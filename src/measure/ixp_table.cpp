#include "measure/ixp_table.hpp"

#include "util/rng.hpp"

namespace spooftrack::measure {

namespace {
// IXP LANs carved from 185.1.0.0/16, one /22 each (matches the flavour of
// real European IXP allocations).
netcore::Ipv4Prefix ixp_prefix(std::uint32_t index) {
  const std::uint32_t base =
      (185u << 24) | (1u << 16) | (index << 10);
  return netcore::Ipv4Prefix::make(netcore::Ipv4Addr{base}, 22);
}
}  // namespace

IxpTable::IxpTable(const topology::AsGraph& graph, std::uint32_t ixp_count,
                   double edge_fraction, std::uint64_t seed) {
  if (ixp_count > 64) ixp_count = 64;  // keep LANs inside 185.1.0.0/16
  prefixes_.reserve(ixp_count);
  for (std::uint32_t i = 0; i < ixp_count; ++i) {
    prefixes_.push_back(ixp_prefix(i));
  }
  if (ixp_count == 0) return;

  util::Rng rng{seed};
  for (topology::AsId a = 0; a < graph.size(); ++a) {
    for (const topology::Neighbor& n : graph.neighbors(a)) {
      if (n.rel != topology::Rel::kPeer || n.id < a) continue;
      if (!rng.chance(edge_fraction)) continue;
      edge_ixp_.emplace(key(a, n.id),
                        static_cast<std::uint32_t>(rng.next_below(ixp_count)));
    }
  }
}

std::uint64_t IxpTable::key(topology::AsId a, topology::AsId b) noexcept {
  if (a > b) std::swap(a, b);
  return (std::uint64_t{a} << 32) | b;
}

std::optional<std::uint32_t> IxpTable::ixp_of_edge(
    topology::AsId a, topology::AsId b) const noexcept {
  const auto it = edge_ixp_.find(key(a, b));
  if (it == edge_ixp_.end()) return std::nullopt;
  return it->second;
}

bool IxpTable::is_ixp_address(netcore::Ipv4Addr addr) const noexcept {
  for (const auto& prefix : prefixes_) {
    if (prefix.contains(addr)) return true;
  }
  return false;
}

netcore::Ipv4Addr IxpTable::member_address(std::uint32_t ixp,
                                           topology::AsId as) const noexcept {
  const auto& lan = prefixes_[ixp];
  // Stable member address: hash the AS into the LAN, away from .0/.1.
  const std::uint64_t slot =
      2 + util::hash_combine(ixp, as) % (lan.size() - 4);
  return lan.nth(slot);
}

}  // namespace spooftrack::measure
