// BGP convergence-time model (§IV-a).
//
// The paper keeps each configuration active for 70 minutes because route
// convergence "takes less than 2.5 minutes 99% of the time" (LIFEGUARD's
// measurement) and three traceroute rounds must land after convergence.
// The routing engine's Jacobi rounds approximate update ripples: an AS
// settling in round k heard k waves of updates, each paced by its
// neighbors' MRAI batching. This model turns settle rounds into seconds —
// per-AS MRAI draws around a configurable mean — yielding per-AS and
// per-configuration convergence-time distributions that can be checked
// against the paper's dwell-time budget.
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/engine.hpp"

namespace spooftrack::measure {

struct ConvergenceOptions {
  /// Per-AS update pacing window (BGP MRAI defaults range 5-30 s; modern
  /// deployments pace well below the classic 30 s).
  double mrai_seconds = 10.0;
  /// Per-AS pacing spread: each AS's effective MRAI is drawn uniformly in
  /// [mean * (1 - spread), mean * (1 + spread)].
  double spread = 0.5;
  std::uint64_t seed = 31337;
};

class ConvergenceModel {
 public:
  explicit ConvergenceModel(const ConvergenceOptions& options = {});

  /// Seconds until each AS last changed its route (0 for ASes that never
  /// changed): each update ripple hop waits a uniform fraction of the
  /// AS's pacing window, so an AS settling in round k accumulates k
  /// partial windows. Deterministic per (options.seed, AS id, round).
  std::vector<double> per_as_seconds(
      const bgp::RoutingOutcome& outcome) const;

  /// Seconds until the whole configuration settled (max over ASes).
  double settle_seconds(const bgp::RoutingOutcome& outcome) const;

  /// Whether a measurement scheduled `wait_seconds` after the announcement
  /// sees fully converged routes.
  bool converged_by(const bgp::RoutingOutcome& outcome,
                    double wait_seconds) const {
    return settle_seconds(outcome) <= wait_seconds;
  }

 private:
  double mrai_of(std::uint32_t as_id) const;

  ConvergenceOptions options_;
};

}  // namespace spooftrack::measure
