// Bit-sliced mirror of the catchment matrix.
//
// CatchmentStore proves every cell fits 6 bits (62 link ids + the 0xFF
// missing sentinel), yet the analysis kernels used to read cells one byte
// at a time. BitplaneStore transposes each row into bit planes: plane b
// holds bit b of every cell's 6-bit slot, packed 64 sources per 64-bit
// word, so word-parallel kernels (cluster partition, greedy count_after)
// touch 64 cells per instruction instead of one. A seventh plane marks the
// missing sentinel explicitly; missing cells additionally read as slot 63
// (all six value bits set) in the value planes — exactly the slot
// core::slot_of assigns them — so partition kernels need no special case.
//
// Layout: row-major blocks of kPlanes contiguous plane arrays, each
// words() u64s — one candidate row's planes (7 × ceil(sources/64) words)
// stay cache-resident for the whole scan of that row. Built once from a
// CatchmentStore with full validation (cells other than 0..61 / 0xFF
// throw) and a validated round trip back (to_store()).
//
// Construction dispatches between a portable u64 kernel and a wide
// (AVX2/NEON) kernel via util::active_simd_level(); both are bit-identical
// (tests/test_bitplane_store.cpp fuzzes the equivalence).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "measure/catchment_store.hpp"

namespace spooftrack::measure {

class BitplaneStore {
 public:
  /// Planes 0..5 hold the cell slot bits; plane 6 marks missing cells.
  static constexpr std::size_t kValuePlanes = 6;
  static constexpr std::size_t kMissingPlane = 6;
  static constexpr std::size_t kPlanes = 7;

  BitplaneStore() = default;

  /// Builds (and validates) the bit-sliced mirror of `store`. Throws
  /// std::out_of_range on any cell byte that is neither a valid link id
  /// (< bgp::kMaxCatchmentLinks) nor the 0xFF missing sentinel.
  explicit BitplaneStore(const CatchmentStore& store);

  std::size_t configs() const noexcept { return rows_; }
  std::size_t sources() const noexcept { return cols_; }
  /// Words per plane row: ceil(sources / 64). Padding lanes beyond
  /// sources() are zero in every plane.
  std::size_t words() const noexcept { return words_; }
  bool empty() const noexcept { return rows_ == 0; }
  std::size_t size_bytes() const noexcept {
    return bits_.size() * sizeof(std::uint64_t);
  }

  /// One configuration's plane block: kPlanes contiguous plane arrays of
  /// words() u64s each (value planes first, missing plane last).
  const std::uint64_t* row_planes(std::size_t config) const noexcept {
    return bits_.data() + config * kPlanes * words_;
  }
  const std::uint64_t* plane(std::size_t config,
                             std::size_t plane_index) const noexcept {
    return row_planes(config) + plane_index * words_;
  }
  std::span<const std::uint64_t> plane_span(
      std::size_t config, std::size_t plane_index) const noexcept {
    return {plane(config, plane_index), words_};
  }

  /// Reassembled 6-bit slot of one cell (63 = missing), as
  /// core::slot_of would fold it.
  std::uint32_t slot_at(std::size_t config, std::size_t source) const noexcept {
    const std::uint64_t* planes = row_planes(config);
    const std::size_t word = source >> 6;
    const std::uint64_t bit = std::uint64_t{1} << (source & 63);
    std::uint32_t slot = 0;
    for (std::size_t b = 0; b < kValuePlanes; ++b) {
      slot |= ((planes[b * words_ + word] & bit) != 0 ? 1u : 0u) << b;
    }
    return slot;
  }

  bool missing_at(std::size_t config, std::size_t source) const noexcept {
    const std::uint64_t bit = std::uint64_t{1} << (source & 63);
    return (plane(config, kMissingPlane)[source >> 6] & bit) != 0;
  }

  /// Reassembled encoded cell byte (0xFF missing), as CatchmentStore
  /// stores it.
  std::uint8_t cell(std::size_t config, std::size_t source) const noexcept {
    if (missing_at(config, source)) return kNoCatchment8;
    return static_cast<std::uint8_t>(slot_at(config, source));
  }

  /// Total missing cells (popcount of the missing plane).
  std::uint64_t missing_cells() const noexcept;

  /// Word-parallel decode of one configuration row back to its encoded
  /// cell bytes (0xFF missing), via 8x8 bit transposes — the exact byte
  /// row the source CatchmentStore holds. `out` must have room for
  /// sources() bytes.
  void decode_row(std::size_t config, std::uint8_t* out) const noexcept;

  /// Exact round trip back to the byte layout.
  CatchmentStore to_store() const;

  friend bool operator==(const BitplaneStore&,
                         const BitplaneStore&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> bits_;  // rows × kPlanes × words
};

}  // namespace spooftrack::measure
