// Catchment inference (§IV-b/§IV-c): turns measured AS-paths — BGP feed
// entries and repaired traceroutes — into a per-AS catchment assignment.
//
// Every AS appearing on a measured path before the announcement seed voted
// for the catchment that path descends into (its own best route is the
// path's suffix). Conflicting votes are resolved per the paper: BGP votes
// outrank traceroute votes; within a type, the most common catchment wins.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bgp/announcement.hpp"
#include "bgp/catchment.hpp"
#include "measure/feed.hpp"
#include "measure/repair.hpp"
#include "topology/as_graph.hpp"

namespace spooftrack::measure {

/// Identifies the peering link a measured AS-path descends into, by
/// locating the announcement seed (the first occurrence of the origin ASN)
/// and mapping the preceding AS to a link provider. Returns nullopt when
/// the path does not reach the origin or the provider is unknown.
std::optional<bgp::LinkId> link_from_as_path(
    std::span<const topology::Asn> path, const bgp::OriginSpec& origin);

struct InferenceResult {
  /// Measured catchments (kNoCatchment where the AS was not observed).
  bgp::CatchmentMap catchments;
  /// Per AsId: 1 when the AS was observed on any measured path.
  std::vector<std::uint8_t> observed;
  std::size_t covered_count = 0;
  /// Fraction of observed ASes whose votes named more than one catchment
  /// (the paper reports 2.28% on the real Internet).
  double multi_catchment_fraction = 0.0;

  friend bool operator==(const InferenceResult&,
                         const InferenceResult&) = default;
};

class CatchmentInference {
 public:
  /// Reusable vote-accumulation buffers; one per worker. Reuse across
  /// infer() calls never changes results (each call resets the buffers).
  struct Scratch {
    std::vector<std::uint16_t> votes;
    std::vector<std::uint8_t> observed;
  };

  CatchmentInference(const topology::AsGraph& graph,
                     const bgp::OriginSpec& origin);

  /// Infers catchments for one configuration from its measurements.
  InferenceResult infer(std::span<const FeedEntry> feeds,
                        std::span<const AsLevelPath> traces) const;

  /// As above, reusing `scratch` instead of allocating vote buffers.
  InferenceResult infer(std::span<const FeedEntry> feeds,
                        std::span<const AsLevelPath> traces,
                        Scratch& scratch) const;

 private:
  const topology::AsGraph& graph_;
  const bgp::OriginSpec& origin_;
};

}  // namespace spooftrack::measure
