#include "measure/ip2as.hpp"

#include "util/rng.hpp"

namespace spooftrack::measure {

Ip2AsMap Ip2AsMap::from_plan(const topology::AsGraph& graph,
                             const AddressPlan& plan,
                             topology::Asn origin_asn,
                             const Ip2AsOptions& options) {
  Ip2AsMap map;
  util::Rng rng{options.seed};
  for (topology::AsId id = 0; id < graph.size(); ++id) {
    if (rng.chance(options.missing_fraction)) continue;
    map.add(plan.prefix_of(id), graph.asn_of(id));
  }
  map.add(AddressPlan::experiment_prefix(), origin_asn);
  return map;
}

void Ip2AsMap::add(const netcore::Ipv4Prefix& prefix, topology::Asn asn) {
  table_.insert(prefix, asn);
}

std::optional<topology::Asn> Ip2AsMap::lookup(netcore::Ipv4Addr addr) const {
  return table_.lookup(addr);
}

}  // namespace spooftrack::measure
