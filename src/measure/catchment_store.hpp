// Columnar catchment storage.
//
// The analysis half of the pipeline — clustering, scheduling, attribution,
// prediction — iterates catchment matrices of up to 705 configurations x
// thousands of sources over and over (greedy scheduling alone scans every
// remaining row once per step). A vector-of-vectors of 32-bit LinkIds
// pointer-chases one heap allocation per row and wastes 4 bytes per cell;
// CatchmentStore packs the same matrix into a single row-major buffer of
// one byte per cell. Link ids fit losslessly: the cluster refinement folds
// catchments into 6-bit slots (bgp::kMaxCatchmentLinks == 62), so a byte
// with a 0xFF missing sentinel (bgp::kNoCatchment8 — the exact encoding the
// artifact format already uses on disk) covers the full value range.
//
// Rows are contiguous spans with O(1) stride; columns are strided views.
// Construction validates every link id — out-of-range values throw instead
// of silently aliasing into the last cluster slot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "bgp/catchment.hpp"

namespace spooftrack::measure {

using bgp::kNoCatchment8;

/// Legacy nested-vector matrix shape: row per configuration, column per
/// source, cells are LinkIds or bgp::kNoCatchment. Kept as an interchange
/// type (tests and tools build rows incrementally); analysis code consumes
/// CatchmentStore.
using CatchmentMatrix = std::vector<std::vector<bgp::LinkId>>;

/// Flat row-major catchment matrix with one byte per cell.
class CatchmentStore {
 public:
  /// Strided read-only view of one source's catchment across all
  /// configurations.
  class ColumnView {
   public:
    ColumnView(const std::uint8_t* base, std::size_t rows,
               std::size_t stride) noexcept
        : base_(base), rows_(rows), stride_(stride) {}

    std::uint8_t operator[](std::size_t config) const noexcept {
      return base_[config * stride_];
    }
    std::size_t size() const noexcept { return rows_; }

   private:
    const std::uint8_t* base_;
    std::size_t rows_;
    std::size_t stride_;
  };

  /// Forward iterator over rows, yielding std::span<const std::uint8_t>.
  class RowIterator {
   public:
    using value_type = std::span<const std::uint8_t>;

    RowIterator(const CatchmentStore* store, std::size_t row) noexcept
        : store_(store), row_(row) {}

    value_type operator*() const noexcept { return store_->row(row_); }
    RowIterator& operator++() noexcept {
      ++row_;
      return *this;
    }
    friend bool operator==(const RowIterator&, const RowIterator&) = default;

   private:
    const CatchmentStore* store_;
    std::size_t row_;
  };

  CatchmentStore() = default;

  /// configs x sources matrix with every cell missing.
  CatchmentStore(std::size_t configs, std::size_t sources);

  /// Converts (and validates) a legacy nested-vector matrix. Implicit on
  /// purpose: row-literal call sites keep working against store-taking
  /// APIs. Throws std::invalid_argument on ragged rows, std::out_of_range
  /// on link ids >= bgp::kMaxCatchmentLinks.
  CatchmentStore(const CatchmentMatrix& rows);  // NOLINT(google-explicit-constructor)

  /// Encodes one LinkId into a cell byte; throws std::out_of_range for
  /// links >= bgp::kMaxCatchmentLinks (other than kNoCatchment).
  static std::uint8_t encode(bgp::LinkId link);
  /// Decodes one cell byte back into a LinkId.
  static bgp::LinkId decode(std::uint8_t cell) noexcept {
    return cell == kNoCatchment8 ? bgp::kNoCatchment : cell;
  }

  /// Number of rows (configurations). `size()` mirrors the legacy
  /// vector-of-rows spelling.
  std::size_t size() const noexcept { return rows_; }
  std::size_t configs() const noexcept { return rows_; }
  /// Number of columns (sources); the row stride.
  std::size_t sources() const noexcept { return cols_; }
  bool empty() const noexcept { return rows_ == 0; }
  std::size_t size_bytes() const noexcept { return cells_.size(); }

  std::span<const std::uint8_t> row(std::size_t config) const noexcept {
    return {cells_.data() + config * cols_, cols_};
  }
  std::span<std::uint8_t> row(std::size_t config) noexcept {
    return {cells_.data() + config * cols_, cols_};
  }
  std::span<const std::uint8_t> operator[](std::size_t config) const noexcept {
    return row(config);
  }
  ColumnView column(std::size_t source) const noexcept {
    return {cells_.data() + source, rows_, cols_};
  }

  std::uint8_t cell(std::size_t config, std::size_t source) const noexcept {
    return cells_[config * cols_ + source];
  }
  /// Decoded cell.
  bgp::LinkId link_at(std::size_t config, std::size_t source) const noexcept {
    return decode(cell(config, source));
  }
  /// Encodes (validating) and stores one cell.
  void set(std::size_t config, std::size_t source, bgp::LinkId link) {
    cells_[config * cols_ + source] = encode(link);
  }

  /// Appends one row of LinkIds (validating each). The first row fixes the
  /// column count; later rows must match it.
  void append_row(std::span<const bgp::LinkId> links);
  /// Appends one row of already-encoded cells (validating each).
  void append_row(std::span<const std::uint8_t> cells);

  /// Resets to configs x sources, every cell missing.
  void assign(std::size_t configs, std::size_t sources);

  /// Gathers one source's trajectory into a contiguous buffer:
  /// out[c] = cell(c, source). `out` must hold configs() bytes.
  void gather_column(std::size_t source, std::uint8_t* out) const;

  /// Tiled word-gather of several columns at once: out[j * configs() + c]
  /// = cell(c, sources[j]). Walks the matrix in 64-row tiles, packing 8
  /// cells per column into one u64 store, so the matrix rows are streamed
  /// with cache reuse across columns instead of one cache-hostile strided
  /// walk per column (the ColumnView pattern this replaces).
  void gather_columns(std::span<const std::uint32_t> sources,
                      std::uint8_t* out) const;

  /// Whole-buffer access for bulk serialization. Cells are stored exactly
  /// as the artifact format writes them (encoded bytes, 0xFF missing).
  const std::uint8_t* data() const noexcept { return cells_.data(); }
  std::uint8_t* data() noexcept { return cells_.data(); }

  RowIterator begin() const noexcept { return {this, 0}; }
  RowIterator end() const noexcept { return {this, rows_}; }

  /// Legacy export (decoded nested vectors).
  CatchmentMatrix to_rows() const;

  friend bool operator==(const CatchmentStore&,
                         const CatchmentStore&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint8_t> cells_;
};

}  // namespace spooftrack::measure
