// IXP fabric model (PeeringDB stand-in): a set of IXP LAN prefixes and an
// assignment of peer-peer AS edges to IXPs. Traceroute hops crossing an
// IXP-assigned edge respond with an address from the IXP LAN, which maps to
// no AS — exactly the artifact the paper handles with PeeringDB data.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "netcore/ipv4.hpp"
#include "netcore/prefix.hpp"
#include "topology/as_graph.hpp"

namespace spooftrack::measure {

class IxpTable {
 public:
  /// Creates `ixp_count` IXPs with /22 LAN prefixes and assigns each
  /// peer-peer edge of `graph` to a random IXP with probability
  /// `edge_fraction`. Deterministic in `seed`.
  IxpTable(const topology::AsGraph& graph, std::uint32_t ixp_count,
           double edge_fraction, std::uint64_t seed);

  std::uint32_t ixp_count() const noexcept {
    return static_cast<std::uint32_t>(prefixes_.size());
  }
  const netcore::Ipv4Prefix& prefix(std::uint32_t ixp) const noexcept {
    return prefixes_[ixp];
  }

  /// IXP the edge (a, b) crosses, if any (order-insensitive).
  std::optional<std::uint32_t> ixp_of_edge(topology::AsId a,
                                           topology::AsId b) const noexcept;

  /// True when the address belongs to an IXP LAN.
  bool is_ixp_address(netcore::Ipv4Addr addr) const noexcept;

  /// An address for member `as` on the given IXP LAN.
  netcore::Ipv4Addr member_address(std::uint32_t ixp,
                                   topology::AsId as) const noexcept;

 private:
  static std::uint64_t key(topology::AsId a, topology::AsId b) noexcept;

  std::vector<netcore::Ipv4Prefix> prefixes_;
  std::unordered_map<std::uint64_t, std::uint32_t> edge_ixp_;
};

}  // namespace spooftrack::measure
