#include "measure/catchment_store.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "obs/obs.hpp"

namespace spooftrack::measure {

namespace {

[[noreturn]] void throw_out_of_range(std::uint32_t link) {
  throw std::out_of_range(
      "link id " + std::to_string(link) + " exceeds the " +
      std::to_string(bgp::kMaxCatchmentLinks) +
      "-link analysis limit (would alias in the 6-bit cluster slots)");
}

}  // namespace

CatchmentStore::CatchmentStore(std::size_t configs, std::size_t sources)
    : rows_(configs),
      cols_(sources),
      cells_(configs * sources, kNoCatchment8) {}

CatchmentStore::CatchmentStore(const CatchmentMatrix& rows) {
  if (rows.empty()) return;
  cols_ = rows[0].size();
  cells_.reserve(rows.size() * cols_);
  for (const auto& row : rows) append_row(std::span<const bgp::LinkId>(row));
}

std::uint8_t CatchmentStore::encode(bgp::LinkId link) {
  if (link == bgp::kNoCatchment) return kNoCatchment8;
  if (link >= bgp::kMaxCatchmentLinks) throw_out_of_range(link);
  return static_cast<std::uint8_t>(link);
}

void CatchmentStore::append_row(std::span<const bgp::LinkId> links) {
  if (rows_ == 0) {
    cols_ = links.size();
  } else if (links.size() != cols_) {
    throw std::invalid_argument("catchment row width does not match matrix");
  }
  for (bgp::LinkId link : links) cells_.push_back(encode(link));
  ++rows_;
}

void CatchmentStore::append_row(std::span<const std::uint8_t> cells) {
  if (rows_ == 0) {
    cols_ = cells.size();
  } else if (cells.size() != cols_) {
    throw std::invalid_argument("catchment row width does not match matrix");
  }
  for (std::uint8_t cell : cells) {
    if (cell != kNoCatchment8 && cell >= bgp::kMaxCatchmentLinks) {
      throw_out_of_range(cell);
    }
    cells_.push_back(cell);
  }
  ++rows_;
}

void CatchmentStore::assign(std::size_t configs, std::size_t sources) {
  rows_ = configs;
  cols_ = sources;
  cells_.assign(configs * sources, kNoCatchment8);
}

void CatchmentStore::gather_column(std::size_t source,
                                   std::uint8_t* out) const {
  const std::uint32_t sources[] = {static_cast<std::uint32_t>(source)};
  gather_columns(sources, out);
}

void CatchmentStore::gather_columns(std::span<const std::uint32_t> sources,
                                    std::uint8_t* out) const {
  OBS_TIMER("analysis.kernel.gather_ns");
  constexpr std::size_t kTile = 64;
  for (std::size_t c0 = 0; c0 < rows_; c0 += kTile) {
    const std::size_t c1 = std::min(rows_, c0 + kTile);
    for (std::size_t j = 0; j < sources.size(); ++j) {
      const std::uint8_t* base = cells_.data() + sources[j];
      std::uint8_t* dst = out + j * rows_ + c0;
      std::size_t c = c0;
      for (; c + 8 <= c1; c += 8) {
        std::uint64_t pack = 0;
        for (std::size_t k = 0; k < 8; ++k) {
          pack |= static_cast<std::uint64_t>(base[(c + k) * cols_]) << (8 * k);
        }
        std::memcpy(dst + (c - c0), &pack, 8);
      }
      for (; c < c1; ++c) dst[c - c0] = base[c * cols_];
    }
  }
}

CatchmentMatrix CatchmentStore::to_rows() const {
  CatchmentMatrix out(rows_, std::vector<bgp::LinkId>(cols_));
  for (std::size_t c = 0; c < rows_; ++c) {
    for (std::size_t s = 0; s < cols_; ++s) {
      out[c][s] = link_at(c, s);
    }
  }
  return out;
}

}  // namespace spooftrack::measure
