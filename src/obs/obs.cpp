#include "obs/obs.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace spooftrack::obs {

namespace {

constexpr std::uint64_t kNoMin = ~std::uint64_t{0};

/// Single-writer relaxed read-modify-write: only the owning thread writes
/// a cell, so a plain load/store pair is race-free and cheaper than a
/// fetch_add.
inline void bump(std::atomic<std::uint64_t>& cell, std::uint64_t delta) {
  cell.store(cell.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

inline std::size_t bin_of(std::uint64_t value) noexcept {
  return static_cast<std::size_t>(std::bit_width(value));
}

/// Upper bound of histogram bin b (inclusive).
inline std::uint64_t bin_upper(std::size_t b) noexcept {
  if (b == 0) return 0;
  if (b >= 64) return kNoMin;
  return (std::uint64_t{1} << b) - 1;
}

}  // namespace

std::string_view kind_name(Kind kind) noexcept {
  switch (kind) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kHistogram: return "histogram";
  }
  return "unknown";
}

double MetricSnapshot::mean() const noexcept {
  if (count == 0) return 0.0;
  return static_cast<double>(sum) / static_cast<double>(count);
}

double MetricSnapshot::percentile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  const auto rank = static_cast<std::uint64_t>(std::max(
      1.0, std::ceil(q / 100.0 * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kHistogramBins; ++b) {
    seen += bins[b];
    if (seen >= rank) {
      // Never report beyond the observed maximum (the top bin's upper
      // bound can overshoot it by up to 2x).
      return static_cast<double>(std::min(bin_upper(b), max));
    }
  }
  return static_cast<double>(max);
}

const MetricSnapshot* Snapshot::find(std::string_view name) const noexcept {
  for (const MetricSnapshot& metric : metrics) {
    if (metric.name == name) return &metric;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct Registry::Cell {
  std::atomic<std::uint64_t> primary{0};  // counter total / gauge / hist count
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> min{kNoMin};
  std::atomic<std::uint64_t> max{0};
  std::atomic<std::uint64_t> seq{0};  // gauge last-write sequence (0 = unset)
  std::array<std::atomic<std::uint64_t>, kHistogramBins> bins{};
};

struct Registry::Shard {
  std::array<Cell, kMaxMetrics> cells;
};

Registry::Registry() = default;
Registry::~Registry() = default;

Registry& Registry::global() {
  // Leaked on purpose: thread-local shard handles may release during late
  // shutdown, after function-local statics would have been destroyed.
  static Registry* const registry = new Registry();
  return *registry;
}

MetricId Registry::intern(std::string_view name, Kind kind,
                          std::string_view unit) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    if (defs_[i].name == name) {
      if (defs_[i].kind != kind) {
        throw std::logic_error("obs metric '" + std::string(name) +
                               "' re-interned with a different kind");
      }
      return static_cast<MetricId>(i);
    }
  }
  if (defs_.size() >= kMaxMetrics) {
    throw std::length_error("obs registry full (kMaxMetrics)");
  }
  defs_.push_back({std::string(name), std::string(unit), kind});
  return static_cast<MetricId>(defs_.size() - 1);
}

Registry::Shard& Registry::acquire_shard() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!free_shards_.empty()) {
    Shard* shard = free_shards_.back();
    free_shards_.pop_back();
    return *shard;
  }
  shards_.push_back(std::make_unique<Shard>());
  return *shards_.back();
}

void Registry::release_shard(Shard& shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  free_shards_.push_back(&shard);
}

Registry::Shard& Registry::local_shard() {
  // The lease keeps the shard bound to this thread and retires it (totals
  // intact — the registry owns the storage) when the thread exits, so a
  // later thread can reuse it instead of growing the shard list forever.
  struct Lease {
    Registry* owner = nullptr;
    Shard* shard = nullptr;
    ~Lease() {
      if (owner != nullptr && shard != nullptr) owner->release_shard(*shard);
    }
  };
  thread_local Lease lease;
  if (lease.shard == nullptr) {
    lease.owner = this;
    lease.shard = &acquire_shard();
  }
  return *lease.shard;
}

void Registry::add(MetricId id, std::uint64_t delta) {
  bump(local_shard().cells[id].primary, delta);
}

void Registry::set(MetricId id, std::uint64_t value) {
  Cell& cell = local_shard().cells[id];
  cell.primary.store(value, std::memory_order_relaxed);
  cell.seq.store(1 + gauge_seq_.fetch_add(1, std::memory_order_relaxed),
                 std::memory_order_relaxed);
}

void Registry::record(MetricId id, std::uint64_t value) {
  Cell& cell = local_shard().cells[id];
  bump(cell.primary, 1);
  bump(cell.sum, value);
  if (value < cell.min.load(std::memory_order_relaxed)) {
    cell.min.store(value, std::memory_order_relaxed);
  }
  if (value > cell.max.load(std::memory_order_relaxed)) {
    cell.max.store(value, std::memory_order_relaxed);
  }
  bump(cell.bins[bin_of(value)], 1);
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.metrics.resize(defs_.size());
  std::vector<std::uint64_t> best_seq(defs_.size(), 0);
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    MetricSnapshot& metric = snap.metrics[i];
    metric.name = defs_[i].name;
    metric.unit = defs_[i].unit;
    metric.kind = defs_[i].kind;
    if (metric.kind == Kind::kHistogram) metric.min = kNoMin;
  }
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i < defs_.size(); ++i) {
      const Cell& cell = shard->cells[i];
      MetricSnapshot& metric = snap.metrics[i];
      switch (defs_[i].kind) {
        case Kind::kCounter:
          metric.value += cell.primary.load(std::memory_order_relaxed);
          break;
        case Kind::kGauge: {
          const std::uint64_t seq = cell.seq.load(std::memory_order_relaxed);
          if (seq > best_seq[i]) {
            best_seq[i] = seq;
            metric.value = cell.primary.load(std::memory_order_relaxed);
          }
          break;
        }
        case Kind::kHistogram: {
          metric.count += cell.primary.load(std::memory_order_relaxed);
          metric.sum += cell.sum.load(std::memory_order_relaxed);
          metric.min = std::min(metric.min,
                                cell.min.load(std::memory_order_relaxed));
          metric.max = std::max(metric.max,
                                cell.max.load(std::memory_order_relaxed));
          for (std::size_t b = 0; b < kHistogramBins; ++b) {
            metric.bins[b] += cell.bins[b].load(std::memory_order_relaxed);
          }
          break;
        }
      }
    }
  }
  for (MetricSnapshot& metric : snap.metrics) {
    if (metric.kind == Kind::kHistogram && metric.count == 0) metric.min = 0;
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    for (Cell& cell : shard->cells) {
      cell.primary.store(0, std::memory_order_relaxed);
      cell.sum.store(0, std::memory_order_relaxed);
      cell.min.store(kNoMin, std::memory_order_relaxed);
      cell.max.store(0, std::memory_order_relaxed);
      cell.seq.store(0, std::memory_order_relaxed);
      for (auto& bin : cell.bins) bin.store(0, std::memory_order_relaxed);
    }
  }
}

std::size_t Registry::metric_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return defs_.size();
}

}  // namespace spooftrack::obs
