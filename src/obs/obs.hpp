// spooftrack::obs — zero-dependency observability layer.
//
// The paper's method lives or dies on per-configuration cost (705
// configurations, ~20 minutes of BGP convergence each on the real
// Internet), so knowing where simulation time goes is the prerequisite for
// every scaling change. This subsystem provides named monotonic counters,
// last-write-wins gauges, and log₂-binned histograms (which double as
// timers), recorded through the OBS_* macros below and exported as a
// machine-readable RunReport (see obs/report.hpp).
//
// Threading model: recording never takes a lock. Each thread owns a
// private shard of cells (single writer); readers merge all shards under
// the registry mutex. Shards outlive their threads — a thread's totals are
// retired into a free list on exit and the next thread reuses them — so
// counts survive the short-lived workers `util::parallel_for` spawns per
// call. All cell accesses are relaxed atomics: the merged view is a sum of
// per-thread monotonic values, so no ordering between threads is needed.
//
// Compile-time kill switch: building with -DSPOOFTRACK_OBS=OFF (CMake)
// defines SPOOFTRACK_OBS_ENABLED=0 and every OBS_* macro expands to a
// no-op that does not evaluate its arguments. The Registry API itself
// stays available (an instrumented binary links either way); only the
// macros are gated. The documented telemetry contract lives in
// docs/observability.md, and tests/test_obs.cpp enforces that every
// metric name emitted by the code is documented there.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef SPOOFTRACK_OBS_ENABLED
#define SPOOFTRACK_OBS_ENABLED 1
#endif

namespace spooftrack::obs {

enum class Kind : std::uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

/// "counter" / "gauge" / "histogram".
std::string_view kind_name(Kind kind) noexcept;

/// Dense id returned by Registry::intern; stable for the process lifetime.
using MetricId = std::uint32_t;

/// Hard cap on distinct metrics; intern() throws beyond it. Generous for a
/// hand-curated vocabulary (~40 metrics today) while keeping shards small
/// enough to preallocate.
inline constexpr std::size_t kMaxMetrics = 256;

/// Histogram bins: bin index is std::bit_width(value), so bin 0 holds
/// zeros and bin b >= 1 holds values in [2^(b-1), 2^b - 1].
inline constexpr std::size_t kHistogramBins = 65;

/// Merged view of one metric. For counters and gauges only `value` is
/// meaningful; histograms use count/sum/min/max/bins.
struct MetricSnapshot {
  std::string name;
  std::string unit;  // free-form: "ns", "rounds", "ases", "" for counts
  Kind kind = Kind::kCounter;
  std::uint64_t value = 0;  // counter total / gauge last-set value
  std::uint64_t count = 0;  // histogram samples
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistogramBins> bins{};

  /// sum / count (0 when empty).
  double mean() const noexcept;
  /// Nearest-rank percentile over the log₂ bins, reported as the upper
  /// bound of the selected bin (an upper estimate with ≤ 2x resolution);
  /// q in [0, 100]. 0 when empty.
  double percentile(double q) const noexcept;

  friend bool operator==(const MetricSnapshot&,
                         const MetricSnapshot&) = default;
};

/// A merged, self-contained copy of the registry (in intern order).
struct Snapshot {
  std::vector<MetricSnapshot> metrics;

  const MetricSnapshot* find(std::string_view name) const noexcept;

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

class Registry {
 public:
  /// The process-wide registry used by the OBS_* macros. Never destroyed
  /// (intentionally leaked) so thread-local shard handles can release
  /// safely during any shutdown order.
  static Registry& global();

  /// Returns the id for `name`, creating the metric on first use. Throws
  /// std::logic_error when the name is already interned with a different
  /// kind (two subsystems colliding on one name) and std::length_error at
  /// kMaxMetrics.
  MetricId intern(std::string_view name, Kind kind, std::string_view unit);

  /// Counter increment. Lock-free: writes this thread's shard only.
  void add(MetricId id, std::uint64_t delta);
  /// Gauge set, last write (across all threads) wins.
  void set(MetricId id, std::uint64_t value);
  /// Histogram sample (timers record elapsed nanoseconds here).
  void record(MetricId id, std::uint64_t value);

  /// Merges every shard into a stable snapshot. Deterministic: counters
  /// and histograms are commutative sums, gauges resolve by a global
  /// write sequence.
  Snapshot snapshot() const;

  /// Zeroes all cells in all shards. Callers must quiesce recording
  /// threads first (intended for tests and between bench phases).
  void reset();

  std::size_t metric_count() const;

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;
  ~Registry();

 private:
  struct Cell;
  struct Shard;
  struct MetricDef {
    std::string name;
    std::string unit;
    Kind kind = Kind::kCounter;
  };

  Registry();

  Shard& local_shard();
  Shard& acquire_shard();
  void release_shard(Shard& shard);

  mutable std::mutex mutex_;
  std::vector<MetricDef> defs_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<Shard*> free_shards_;
  std::atomic<std::uint64_t> gauge_seq_{0};
};

/// Plain steady-clock stopwatch (always available, independent of the
/// SPOOFTRACK_OBS switch) — the replacement for hand-rolled
/// std::chrono timing in benches that need the elapsed value itself.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(std::chrono::steady_clock::now()) {}
  void restart() noexcept { start_ = std::chrono::steady_clock::now(); }
  std::uint64_t elapsed_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }
  double elapsed_ms() const noexcept {
    return static_cast<double>(elapsed_ns()) / 1e6;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Records elapsed nanoseconds into a histogram metric on destruction.
/// Use through OBS_TIMER so the timer disappears in no-op builds.
class ScopedTimer {
 public:
  explicit ScopedTimer(MetricId id) noexcept : id_(id) {}
  ~ScopedTimer() { Registry::global().record(id_, watch_.elapsed_ns()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricId id_;
  Stopwatch watch_;
};

}  // namespace spooftrack::obs

#define SPOOFTRACK_OBS_CONCAT_INNER_(a, b) a##b
#define SPOOFTRACK_OBS_CONCAT_(a, b) SPOOFTRACK_OBS_CONCAT_INNER_(a, b)

#if SPOOFTRACK_OBS_ENABLED

// Interns once per call site (thread-safe static init), then records
// through the cached id — the steady-state cost is one thread-local load
// plus a few relaxed atomic stores.
#define SPOOFTRACK_OBS_ID_(name, kind, unit)                             \
  ([]() -> ::spooftrack::obs::MetricId {                                 \
    static const ::spooftrack::obs::MetricId spooftrack_obs_metric_id =  \
        ::spooftrack::obs::Registry::global().intern((name), (kind),     \
                                                     (unit));            \
    return spooftrack_obs_metric_id;                                     \
  }())

/// Monotonic counter increment: OBS_COUNT("engine.cold_runs", 1).
#define OBS_COUNT(name, delta)                                             \
  ::spooftrack::obs::Registry::global().add(                               \
      SPOOFTRACK_OBS_ID_((name), ::spooftrack::obs::Kind::kCounter, ""),   \
      static_cast<std::uint64_t>(delta))

/// Gauge set (last write wins): OBS_GAUGE("deploy.sources", n).
#define OBS_GAUGE(name, value)                                             \
  ::spooftrack::obs::Registry::global().set(                               \
      SPOOFTRACK_OBS_ID_((name), ::spooftrack::obs::Kind::kGauge, ""),     \
      static_cast<std::uint64_t>(value))

/// Histogram sample: OBS_HIST("engine.frontier", "ases", frontier.size()).
#define OBS_HIST(name, unit, value)                                          \
  ::spooftrack::obs::Registry::global().record(                              \
      SPOOFTRACK_OBS_ID_((name), ::spooftrack::obs::Kind::kHistogram,        \
                         (unit)),                                            \
      static_cast<std::uint64_t>(value))

/// Scope timer recording nanoseconds into a histogram when the enclosing
/// scope exits: { OBS_TIMER("campaign.config_ns"); ...work... }
#define OBS_TIMER(name)                                                      \
  ::spooftrack::obs::ScopedTimer SPOOFTRACK_OBS_CONCAT_(                     \
      spooftrack_obs_scoped_timer_, __LINE__)(SPOOFTRACK_OBS_ID_(            \
      (name), ::spooftrack::obs::Kind::kHistogram, "ns"))

#else  // SPOOFTRACK_OBS=OFF: macros vanish; arguments are never evaluated
       // (sizeof keeps them semantically checked and silences unused-var
       // warnings without generating code).

#define OBS_COUNT(name, delta) ((void)sizeof((delta)), (void)0)
#define OBS_GAUGE(name, value) ((void)sizeof((value)), (void)0)
#define OBS_HIST(name, unit, value) ((void)sizeof((value)), (void)0)
#define OBS_TIMER(name) ((void)0)

#endif  // SPOOFTRACK_OBS_ENABLED
