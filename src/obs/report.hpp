// Structured run reports: a machine-readable telemetry blob every bench
// and the CLI can emit next to their results.
//
// The JSON schema ("spooftrack.obs.v1") is documented in
// docs/observability.md; write_json's output is deterministic (fixed key
// order, round-trippable number formatting), so
// write_json → parse_json → write_json is byte-identical — the property
// tests/test_obs.cpp locks down and CI validates against a real bench run.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/obs.hpp"

namespace spooftrack::obs {

inline constexpr std::string_view kReportSchema = "spooftrack.obs.v1";

struct RunReport {
  std::string schema = std::string(kReportSchema);
  /// Which binary/run produced the report, e.g. "perf_campaign_warm".
  std::string name;
  /// Whether the producing binary was compiled with SPOOFTRACK_OBS=ON —
  /// lets consumers distinguish "no work happened" from "not recorded".
  bool obs_enabled = SPOOFTRACK_OBS_ENABLED != 0;
  /// Free-form string annotations (mode, equivalence verdicts, ...).
  std::vector<std::pair<std::string, std::string>> labels;
  /// Free-form scalar results (wall_ms, speedup, ...): the place for
  /// run-level numbers that are not registry metrics.
  std::vector<std::pair<std::string, double>> values;
  /// Merged registry metrics at capture time.
  Snapshot metrics;

  /// Snapshot of Registry::global() under `run_name`.
  static RunReport capture(std::string_view run_name);

  RunReport& label(std::string_view key, std::string_view value);
  RunReport& value(std::string_view key, double v);

  void write_json(std::ostream& out) const;
  /// One row per metric: name,kind,unit,count,value,sum,min,max,mean,
  /// p50,p90,p99.
  void write_csv(std::ostream& out) const;
  /// Throws std::runtime_error on write failure.
  void save_json_file(const std::string& path) const;

  /// Strict parser for the subset of JSON write_json emits (any key order,
  /// unknown keys ignored). Throws std::runtime_error on malformed input
  /// or a schema string other than kReportSchema.
  static RunReport parse_json(std::istream& in);
  static RunReport parse_json_file(const std::string& path);

  friend bool operator==(const RunReport&, const RunReport&) = default;
};

}  // namespace spooftrack::obs
