#include "obs/report.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace spooftrack::obs {

namespace {

// ---- JSON writing --------------------------------------------------------

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest decimal representation that parses back to the same double —
/// keeps the JSON human-readable ("12.5", not "12.500000000000000") while
/// making write → parse → write byte-identical.
std::string fmt_number(double value) {
  char buf[64];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

std::string fmt_u64(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, value);
  return buf;
}

void write_metric(std::ostream& out, const MetricSnapshot& metric) {
  out << "    {\"name\": \"" << escape(metric.name) << "\", \"kind\": \""
      << kind_name(metric.kind) << "\", \"unit\": \"" << escape(metric.unit)
      << "\"";
  if (metric.kind == Kind::kHistogram) {
    out << ", \"count\": " << fmt_u64(metric.count)
        << ", \"sum\": " << fmt_u64(metric.sum)
        << ", \"min\": " << fmt_u64(metric.min)
        << ", \"max\": " << fmt_u64(metric.max)
        << ", \"mean\": " << fmt_number(metric.mean())
        << ", \"p50\": " << fmt_number(metric.percentile(50.0))
        << ", \"p90\": " << fmt_number(metric.percentile(90.0))
        << ", \"p99\": " << fmt_number(metric.percentile(99.0))
        << ", \"bins\": [";
    bool first = true;
    for (std::size_t b = 0; b < kHistogramBins; ++b) {
      if (metric.bins[b] == 0) continue;
      if (!first) out << ", ";
      first = false;
      out << "[" << b << ", " << fmt_u64(metric.bins[b]) << "]";
    }
    out << "]";
  } else {
    out << ", \"value\": " << fmt_u64(metric.value);
  }
  out << "}";
}

// ---- JSON parsing (strict subset) ---------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::uint64_t integer = 0;
  bool is_integer = false;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* get(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("obs report JSON, offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't':
      case 'f': return parse_bool();
      case 'n': return parse_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      JsonValue key = parse_string();
      expect(':');
      value.object.emplace_back(std::move(key.string), parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array.push_back(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  JsonValue parse_string() {
    expect('"');
    JsonValue value;
    value.type = JsonValue::Type::kString;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return value;
      if (c != '\\') {
        value.string += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': value.string += '"'; break;
        case '\\': value.string += '\\'; break;
        case '/': value.string += '/'; break;
        case 'n': value.string += '\n'; break;
        case 't': value.string += '\t'; break;
        case 'r': value.string += '\r'; break;
        case 'b': value.string += '\b'; break;
        case 'f': value.string += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Minimal UTF-8 encoding (BMP only — all we ever emit).
          if (code < 0x80) {
            value.string += static_cast<char>(code);
          } else if (code < 0x800) {
            value.string += static_cast<char>(0xC0 | (code >> 6));
            value.string += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            value.string += static_cast<char>(0xE0 | (code >> 12));
            value.string += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            value.string += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_bool() {
    JsonValue value;
    value.type = JsonValue::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      value.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      value.boolean = false;
      pos_ += 5;
    } else {
      fail("expected boolean");
    }
    return value;
  }

  JsonValue parse_null() {
    if (text_.compare(pos_, 4, "null") != 0) fail("expected null");
    pos_ += 4;
    return JsonValue{};
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    bool floating = false;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        floating = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected number");
    const std::string token = text_.substr(start, pos_ - start);
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    value.number = std::strtod(token.c_str(), nullptr);
    if (!floating && token[0] != '-') {
      value.integer = std::strtoull(token.c_str(), nullptr, 10);
      value.is_integer = true;
    }
    return value;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

std::uint64_t as_u64(const JsonValue* value, std::string_view what) {
  if (value == nullptr || value->type != JsonValue::Type::kNumber) {
    throw std::runtime_error("obs report: missing numeric field '" +
                             std::string(what) + "'");
  }
  if (value->is_integer) return value->integer;
  return static_cast<std::uint64_t>(value->number);
}

std::string as_string(const JsonValue* value, std::string_view what) {
  if (value == nullptr || value->type != JsonValue::Type::kString) {
    throw std::runtime_error("obs report: missing string field '" +
                             std::string(what) + "'");
  }
  return value->string;
}

Kind kind_from_name(std::string_view name) {
  for (const Kind kind :
       {Kind::kCounter, Kind::kGauge, Kind::kHistogram}) {
    if (kind_name(kind) == name) return kind;
  }
  throw std::runtime_error("obs report: unknown metric kind '" +
                           std::string(name) + "'");
}

MetricSnapshot metric_from_json(const JsonValue& json) {
  if (json.type != JsonValue::Type::kObject) {
    throw std::runtime_error("obs report: metric entry is not an object");
  }
  MetricSnapshot metric;
  metric.name = as_string(json.get("name"), "name");
  metric.unit = as_string(json.get("unit"), "unit");
  metric.kind = kind_from_name(as_string(json.get("kind"), "kind"));
  if (metric.kind == Kind::kHistogram) {
    metric.count = as_u64(json.get("count"), "count");
    metric.sum = as_u64(json.get("sum"), "sum");
    metric.min = as_u64(json.get("min"), "min");
    metric.max = as_u64(json.get("max"), "max");
    const JsonValue* bins = json.get("bins");
    if (bins == nullptr || bins->type != JsonValue::Type::kArray) {
      throw std::runtime_error("obs report: histogram without bins");
    }
    for (const JsonValue& pair : bins->array) {
      if (pair.type != JsonValue::Type::kArray || pair.array.size() != 2) {
        throw std::runtime_error("obs report: malformed bin entry");
      }
      const std::uint64_t bin = as_u64(&pair.array[0], "bin index");
      if (bin >= kHistogramBins) {
        throw std::runtime_error("obs report: bin index out of range");
      }
      metric.bins[bin] = as_u64(&pair.array[1], "bin count");
    }
  } else {
    metric.value = as_u64(json.get("value"), "value");
  }
  return metric;
}

}  // namespace

RunReport RunReport::capture(std::string_view run_name) {
  RunReport report;
  report.name = std::string(run_name);
  report.metrics = Registry::global().snapshot();
  return report;
}

RunReport& RunReport::label(std::string_view key, std::string_view value) {
  labels.emplace_back(std::string(key), std::string(value));
  return *this;
}

RunReport& RunReport::value(std::string_view key, double v) {
  values.emplace_back(std::string(key), v);
  return *this;
}

void RunReport::write_json(std::ostream& out) const {
  out << "{\n";
  out << "  \"schema\": \"" << escape(schema) << "\",\n";
  out << "  \"name\": \"" << escape(name) << "\",\n";
  out << "  \"obs_enabled\": " << (obs_enabled ? "true" : "false") << ",\n";
  out << "  \"labels\": {";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out << ", ";
    out << "\"" << escape(labels[i].first) << "\": \""
        << escape(labels[i].second) << "\"";
  }
  out << "},\n";
  out << "  \"values\": {";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out << ", ";
    out << "\"" << escape(values[i].first)
        << "\": " << fmt_number(values[i].second);
  }
  out << "},\n";
  out << "  \"metrics\": [";
  for (std::size_t i = 0; i < metrics.metrics.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    write_metric(out, metrics.metrics[i]);
  }
  if (!metrics.metrics.empty()) out << "\n  ";
  out << "]\n";
  out << "}\n";
}

void RunReport::write_csv(std::ostream& out) const {
  out << "name,kind,unit,count,value,sum,min,max,mean,p50,p90,p99\n";
  for (const MetricSnapshot& metric : metrics.metrics) {
    out << metric.name << "," << kind_name(metric.kind) << "," << metric.unit
        << "," << metric.count << "," << metric.value << "," << metric.sum
        << "," << metric.min << "," << metric.max << ","
        << fmt_number(metric.mean()) << ","
        << fmt_number(metric.percentile(50.0)) << ","
        << fmt_number(metric.percentile(90.0)) << ","
        << fmt_number(metric.percentile(99.0)) << "\n";
  }
}

void RunReport::save_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  write_json(out);
  out.flush();
  if (!out) throw std::runtime_error("write to " + path + " failed");
}

RunReport RunReport::parse_json(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  JsonParser parser(std::move(buffer).str());
  const JsonValue root = parser.parse();
  if (root.type != JsonValue::Type::kObject) {
    throw std::runtime_error("obs report: top level is not an object");
  }

  RunReport report;
  report.schema = as_string(root.get("schema"), "schema");
  if (report.schema != kReportSchema) {
    throw std::runtime_error("obs report: unsupported schema '" +
                             report.schema + "'");
  }
  report.name = as_string(root.get("name"), "name");
  const JsonValue* enabled = root.get("obs_enabled");
  if (enabled == nullptr || enabled->type != JsonValue::Type::kBool) {
    throw std::runtime_error("obs report: missing obs_enabled");
  }
  report.obs_enabled = enabled->boolean;

  if (const JsonValue* labels = root.get("labels"); labels != nullptr) {
    for (const auto& [key, value] : labels->object) {
      report.labels.emplace_back(key, as_string(&value, key));
    }
  }
  if (const JsonValue* values = root.get("values"); values != nullptr) {
    for (const auto& [key, value] : values->object) {
      if (value.type != JsonValue::Type::kNumber) {
        throw std::runtime_error("obs report: value '" + key +
                                 "' is not a number");
      }
      report.values.emplace_back(key, value.number);
    }
  }
  const JsonValue* metrics = root.get("metrics");
  if (metrics == nullptr || metrics->type != JsonValue::Type::kArray) {
    throw std::runtime_error("obs report: missing metrics array");
  }
  for (const JsonValue& metric : metrics->array) {
    report.metrics.metrics.push_back(metric_from_json(metric));
  }
  return report;
}

RunReport RunReport::parse_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return parse_json(in);
}

}  // namespace spooftrack::obs
