#include "traffic/background.hpp"

#include <algorithm>
#include <cmath>

namespace spooftrack::traffic {

namespace {
double unit_hash(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return static_cast<double>(
             util::hash_combine(util::hash_combine(a, b), c) >> 11) *
         0x1.0p-53;
}
}  // namespace

BackgroundTrafficModel::BackgroundTrafficModel(
    const topology::AsGraph& graph, const measure::AddressPlan& plan,
    const BackgroundOptions& options)
    : graph_(graph), plan_(plan), options_(options) {}

bool BackgroundTrafficModel::active(topology::AsId id) const noexcept {
  return unit_hash(options_.seed, 0xBA5E, id) < options_.active_fraction;
}

std::size_t BackgroundTrafficModel::active_count() const noexcept {
  std::size_t count = 0;
  for (topology::AsId id = 0; id < graph_.size(); ++id) {
    count += active(id);
  }
  return count;
}

netcore::Ipv4Addr BackgroundTrafficModel::client_address(
    topology::AsId id, std::uint32_t host) const noexcept {
  // Clients live above the router block of the AS prefix.
  return plan_.prefix_of(id).nth(2048 + host % 1024);
}

std::vector<ArrivedPacket> BackgroundTrafficModel::generate(
    const bgp::CatchmentMap& catchments, std::uint64_t salt) const {
  std::vector<ArrivedPacket> arrivals;
  util::Rng rng{util::hash_combine(options_.seed, salt)};
  for (topology::AsId id = 0; id < graph_.size() && id < catchments.size();
       ++id) {
    if (!active(id)) continue;
    const bgp::LinkId link = catchments[id];
    if (link == bgp::kNoCatchment) continue;

    const auto count = static_cast<std::uint32_t>(std::min(
        64.0, std::floor(options_.packets_per_as + rng.uniform01())));
    for (std::uint32_t k = 0; k < count; ++k) {
      const std::uint32_t host =
          static_cast<std::uint32_t>(rng.next_below(
              std::max<std::uint32_t>(options_.hosts_per_as, 1)));
      ArrivedPacket packet;
      packet.link = link;
      packet.true_source = id;
      packet.timestamp = rng.uniform01();
      packet.datagram = netcore::Datagram::make_udp(
          client_address(id, host),
          measure::AddressPlan::experiment_target(),
          static_cast<std::uint16_t>(1024 + rng.next_below(60000)), 443, {});
      arrivals.push_back(std::move(packet));
    }
  }
  return arrivals;
}

void BackgroundTrafficModel::train(
    ValidSourceInference& inference,
    const bgp::CatchmentMap& catchments) const {
  for (topology::AsId id = 0; id < graph_.size() && id < catchments.size();
       ++id) {
    if (!active(id)) continue;
    const bgp::LinkId link = catchments[id];
    if (link == bgp::kNoCatchment) continue;
    for (std::uint32_t host = 0; host < options_.hosts_per_as; ++host) {
      inference.learn(link, client_address(id, host));
    }
  }
}

}  // namespace spooftrack::traffic
