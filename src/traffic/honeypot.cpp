#include "traffic/honeypot.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace spooftrack::traffic {

AmpPotHoneypot::AmpPotHoneypot(std::size_t link_count,
                               HoneypotOptions options)
    : options_(options),
      packets_(link_count, 0),
      bytes_(link_count, 0),
      bucket_tokens_(options.response_rate_limit_pps) {}

void AmpPotHoneypot::receive(bgp::LinkId link,
                             const netcore::Datagram& datagram,
                             double timestamp) {
  const std::uint64_t seq = ingest_seq_++;
  if (faults_ != nullptr) {
    if (faults_->fires(fault::Site::kHoneypotDrop, fault_salt_, seq)) {
      // The capture pipeline lost the packet before the honeypot saw it:
      // no accounting at all, not even the malformed counter.
      ++fault_dropped_;
      OBS_COUNT("fault.honeypot.dropped", 1);
      return;
    }
    if (faults_->fires(fault::Site::kHoneypotDuplicate, fault_salt_, seq)) {
      ++fault_duplicated_;
      OBS_COUNT("fault.honeypot.duplicated", 1);
      ingest(link, datagram, timestamp);
    }
  }
  ingest(link, datagram, timestamp);
}

void AmpPotHoneypot::ingest(bgp::LinkId link,
                            const netcore::Datagram& datagram,
                            double timestamp) {
  const auto ip = datagram.ip();
  const auto udp = datagram.udp();
  if (!ip || !udp || link >= packets_.size()) {
    ++malformed_;
    return;
  }

  ++packets_[link];
  bytes_[link] += ip->total_length;

  auto& victim = victims_[ip->source.value()];
  if (victim.packets == 0) {
    victim.victim = ip->source;
    victim.first_seen = timestamp;
  } else {
    // Capture replay and multi-link merge deliver packets out of order;
    // the observation window must not depend on arrival order.
    victim.first_seen = std::min(victim.first_seen, timestamp);
  }
  ++victim.packets;
  victim.last_seen = std::max(victim.last_seen, timestamp);

  // Emulated response under a token bucket: AmpPot answers slowly enough
  // to look alive to scanners without amplifying real attacks.
  const auto payload = datagram.payload();
  const AmpProtocol protocol =
      payload.empty() ? AmpProtocol::kDnsAny
                      : static_cast<AmpProtocol>(
                            payload[0] %
                            amplification_table().size());
  if (timestamp > bucket_updated_) {
    bucket_tokens_ = std::min(
        options_.response_rate_limit_pps,
        bucket_tokens_ +
            (timestamp - bucket_updated_) * options_.response_rate_limit_pps);
    bucket_updated_ = timestamp;
  } else if (timestamp < bucket_updated_) {
    // Out-of-order arrival: charge the bucket at its current fill instead
    // of rewinding the refill clock (which would double-grant tokens when
    // time catches back up).
    ++out_of_order_;
    OBS_COUNT("traffic.honeypot.out_of_order", 1);
  }
  if (bucket_tokens_ >= 1.0) {
    bucket_tokens_ -= 1.0;
    ++responses_sent_;
  } else {
    ++responses_suppressed_;
    reflection_avoided_ += response_bytes(protocol);
  }
}

std::uint64_t AmpPotHoneypot::packets_on(bgp::LinkId link) const noexcept {
  return link < packets_.size() ? packets_[link] : 0;
}

std::uint64_t AmpPotHoneypot::bytes_on(bgp::LinkId link) const noexcept {
  return link < bytes_.size() ? bytes_[link] : 0;
}

std::uint64_t AmpPotHoneypot::total_packets() const noexcept {
  std::uint64_t total = 0;
  for (std::uint64_t p : packets_) total += p;
  return total;
}

std::vector<double> AmpPotHoneypot::volume_by_link() const {
  std::vector<double> share(packets_.size(), 0.0);
  const auto total = static_cast<double>(total_packets());
  if (total == 0.0) return share;
  for (std::size_t i = 0; i < packets_.size(); ++i) {
    share[i] = static_cast<double>(packets_[i]) / total;
  }
  return share;
}

std::vector<AmpPotHoneypot::VictimStats> AmpPotHoneypot::attacks() const {
  std::vector<VictimStats> out;
  for (const auto& [addr, stats] : victims_) {
    if (stats.packets >= options_.attack_min_packets) out.push_back(stats);
  }
  std::sort(out.begin(), out.end(),
            [](const VictimStats& a, const VictimStats& b) {
              return a.packets > b.packets;
            });
  return out;
}

}  // namespace spooftrack::traffic
