#include "traffic/spoofer.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"

namespace spooftrack::traffic {

std::vector<SpoofedFlow> SpoofedTrafficGenerator::flows(
    const std::vector<topology::AsId>& sources,
    const std::vector<double>& volume, netcore::Ipv4Addr victim,
    AmpProtocol protocol, double total_pps) const {
  std::vector<SpoofedFlow> out;
  const std::size_t n = std::min(sources.size(), volume.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (volume[i] <= 0.0) continue;
    SpoofedFlow flow;
    flow.source_as = sources[i];
    flow.victim = victim;
    flow.protocol = protocol;
    flow.packets_per_second = volume[i] * total_pps;
    out.push_back(flow);
  }
  return out;
}

netcore::Datagram SpoofedTrafficGenerator::make_packet(
    const SpoofedFlow& flow, std::uint16_t src_port) const {
  const auto payload = make_query_payload(flow.protocol);
  return netcore::Datagram::make_udp(
      flow.victim, measure::AddressPlan::experiment_target(), src_port,
      info(flow.protocol).udp_port, payload);
}

std::vector<ArrivedPacket> SpoofedTrafficGenerator::deliver(
    const std::vector<SpoofedFlow>& flows,
    const bgp::CatchmentMap& catchments, double duration,
    double max_packets) {
  OBS_TIMER("traffic.deliver_ns");
  std::vector<ArrivedPacket> arrivals;
  for (const SpoofedFlow& flow : flows) {
    if (flow.source_as >= catchments.size()) continue;
    const bgp::LinkId link = catchments[flow.source_as];
    if (link == bgp::kNoCatchment) continue;  // source has no route

    const double expected = flow.packets_per_second * duration;
    const auto count = static_cast<std::uint64_t>(
        std::min(max_packets, std::floor(expected + rng_.uniform01())));
    for (std::uint64_t k = 0; k < count; ++k) {
      ArrivedPacket arrived;
      arrived.link = link;
      arrived.true_source = flow.source_as;
      arrived.timestamp = rng_.uniform(0.0, duration);
      arrived.datagram = make_packet(
          flow, static_cast<std::uint16_t>(1024 + rng_.next_below(60000)));
      arrivals.push_back(std::move(arrived));
    }
  }
  OBS_COUNT("traffic.spoofed_packets", arrivals.size());
  std::sort(arrivals.begin(), arrivals.end(),
            [](const ArrivedPacket& a, const ArrivedPacket& b) {
              return a.timestamp < b.timestamp;
            });
  return arrivals;
}

}  // namespace spooftrack::traffic
