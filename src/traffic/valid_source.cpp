#include "traffic/valid_source.hpp"

namespace spooftrack::traffic {

const char* to_string(SourceVerdict verdict) noexcept {
  switch (verdict) {
    case SourceVerdict::kLegitimate: return "legitimate";
    case SourceVerdict::kSpoofedWrongLink: return "spoofed-wrong-link";
    case SourceVerdict::kSpoofedUnknownSource: return "spoofed-unknown-source";
  }
  return "?";
}

ValidSourceInference::ValidSourceInference(std::uint8_t prefix_bits)
    : prefix_bits_(prefix_bits > 32 ? 32 : prefix_bits) {}

std::uint32_t ValidSourceInference::prefix_key(
    netcore::Ipv4Addr addr) const noexcept {
  if (prefix_bits_ == 0) return 0;
  return addr.value() >> (32 - prefix_bits_);
}

void ValidSourceInference::learn(bgp::LinkId link, netcore::Ipv4Addr source) {
  if (link >= 64) return;  // bitmask capacity; far above any real link count
  seen_[prefix_key(source)] |= std::uint64_t{1} << link;
}

SourceVerdict ValidSourceInference::classify(
    bgp::LinkId link, netcore::Ipv4Addr source) const {
  const auto it = seen_.find(prefix_key(source));
  if (it == seen_.end()) return SourceVerdict::kSpoofedUnknownSource;
  if (link < 64 && (it->second & (std::uint64_t{1} << link)) != 0) {
    return SourceVerdict::kLegitimate;
  }
  return SourceVerdict::kSpoofedWrongLink;
}

}  // namespace spooftrack::traffic
