// Legitimate background traffic toward the origin's prefix.
//
// The paper's §III-C names two ways to estimate spoofed volume per link:
// an amplification honeypot (no legitimate traffic at all) or — for
// production prefixes — inferring the set of valid sources per link and
// labelling everything else as spoofed (Lichtblau et al.). This model
// produces the legitimate side of that picture: a stable population of
// client ASes sending genuine packets from their own address space, which
// arrive on their catchment's link and train a ValidSourceInference.
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/catchment.hpp"
#include "measure/address_plan.hpp"
#include "traffic/spoofer.hpp"
#include "traffic/valid_source.hpp"
#include "util/rng.hpp"

namespace spooftrack::traffic {

struct BackgroundOptions {
  /// Fraction of ASes that host clients of the origin's services.
  double active_fraction = 0.8;
  /// Distinct client hosts per active AS.
  std::uint32_t hosts_per_as = 3;
  /// Mean legitimate packets per active AS per generated window.
  double packets_per_as = 4.0;
  std::uint64_t seed = 555;
};

class BackgroundTrafficModel {
 public:
  BackgroundTrafficModel(const topology::AsGraph& graph,
                         const measure::AddressPlan& plan,
                         const BackgroundOptions& options);

  /// Whether an AS hosts clients (persistent per seed).
  bool active(topology::AsId id) const noexcept;
  std::size_t active_count() const noexcept;

  /// A stable client address of an AS (host < hosts_per_as).
  netcore::Ipv4Addr client_address(topology::AsId id,
                                   std::uint32_t host) const noexcept;

  /// Generates one window of legitimate arrivals under `catchments`:
  /// every active, routed AS emits packets from its clients, ingressing
  /// on its catchment link. `salt` varies packet counts across windows.
  std::vector<ArrivedPacket> generate(const bgp::CatchmentMap& catchments,
                                      std::uint64_t salt) const;

  /// Trains a classifier with every (client prefix, link) pair the
  /// catchments imply — the steady state after observing enough windows.
  void train(ValidSourceInference& inference,
             const bgp::CatchmentMap& catchments) const;

 private:
  const topology::AsGraph& graph_;
  const measure::AddressPlan& plan_;
  BackgroundOptions options_;
};

}  // namespace spooftrack::traffic
