// Spoofed-source placements (§V-D): how many sources of spoofed traffic
// each AS hosts. The paper evaluates three distributions — uniform, Pareto
// shaped for an 80/20 concentration, and a single randomly-placed source —
// with traffic volume proportional to the source count.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace spooftrack::traffic {

enum class PlacementKind : std::uint8_t {
  kUniform = 0,
  kPareto8020,
  kSingleSource,
};

const char* to_string(PlacementKind kind) noexcept;

/// Pareto shape with 80% of mass in the top 20% of ASes
/// (alpha = log(5)/log(4) ~ 1.16).
inline constexpr double kPareto8020Shape = 1.160964;

struct Placement {
  /// Normalized traffic volume per source index; sums to 1.
  std::vector<double> volume;
  /// Indices of ASes hosting at least one source.
  std::vector<std::size_t> active;
};

/// Draws one placement over `source_count` sources.
Placement generate_placement(PlacementKind kind, std::size_t source_count,
                             util::Rng& rng);

}  // namespace spooftrack::traffic
