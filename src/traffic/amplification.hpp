// Amplification protocol catalogue. Factors follow the measurement
// literature the paper builds on (Rossow's "Amplification Hell" and the
// AmpPot paper): attackers send small queries with the victim's address as
// the spoofed source; reflectors answer the victim with much larger
// responses.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace spooftrack::traffic {

enum class AmpProtocol : std::uint8_t {
  kDnsAny = 0,
  kNtpMonlist,
  kSsdp,
  kChargen,
  kSnmp,
  kMemcached,
};

struct AmpProtocolInfo {
  AmpProtocol protocol;
  const char* name;
  std::uint16_t udp_port;
  std::uint16_t request_bytes;  // UDP payload of the query
  double amplification;         // response bytes / request bytes
};

/// All supported protocols, ordered by enum value.
std::span<const AmpProtocolInfo> amplification_table() noexcept;

const AmpProtocolInfo& info(AmpProtocol protocol) noexcept;

/// Bytes a reflector would send the victim for one query.
std::uint32_t response_bytes(AmpProtocol protocol) noexcept;

/// A deterministic, protocol-tagged query payload of the catalogue size;
/// byte 0 encodes the protocol so honeypot tests can round-trip it.
std::vector<std::uint8_t> make_query_payload(AmpProtocol protocol);

}  // namespace spooftrack::traffic
