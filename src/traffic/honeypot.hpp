// AmpPot-style amplification honeypot (§III-C).
//
// The honeypot emulates a vulnerable reflector inside the experiment
// prefix: it never serves legitimate traffic, so every query it receives is
// spoofed (scanning or attack). It tallies traffic per ingress peering
// link — the signal the localization techniques correlate with catchments —
// and rate-limits emulated responses so it does not itself contribute to
// attacks (the AmpPot design requirement the paper's footnote discusses).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bgp/announcement.hpp"
#include "bgp/catchment.hpp"
#include "fault/fault.hpp"
#include "netcore/packet.hpp"
#include "traffic/amplification.hpp"

namespace spooftrack::traffic {

struct HoneypotOptions {
  /// Emulated responses per second (token bucket); AmpPot keeps this low.
  double response_rate_limit_pps = 10.0;
  /// Minimum sustained packets from one victim to classify as an attack
  /// (fewer looks like scanning).
  std::uint64_t attack_min_packets = 100;
};

class AmpPotHoneypot {
 public:
  AmpPotHoneypot(std::size_t link_count, HoneypotOptions options = {});

  /// Ingests one packet arriving on `link` at `timestamp` seconds.
  /// Malformed datagrams (bad checksum, not UDP) are counted separately
  /// and otherwise ignored. Timestamps need not be monotone (multi-link
  /// capture merge): victim windows are min/max-merged and the response
  /// token bucket never rewinds; out-of-order arrivals are counted.
  void receive(bgp::LinkId link, const netcore::Datagram& datagram,
               double timestamp);

  /// Installs a fault source (not owned; may be nullptr to disable) with a
  /// per-honeypot salt. Faults model the capture pipeline in front of the
  /// honeypot: per ingest sequence number, a *drop* loses the packet
  /// before any processing (not counted as malformed) and a *duplicate*
  /// delivers it twice (capture merge artifact). Sequence numbers count
  /// receive() calls, so a fault schedule depends only on arrival order.
  void set_fault_injector(const fault::FaultInjector* injector,
                          std::uint64_t salt) noexcept {
    faults_ = injector;
    fault_salt_ = salt;
  }
  std::uint64_t fault_dropped() const noexcept { return fault_dropped_; }
  std::uint64_t fault_duplicated() const noexcept {
    return fault_duplicated_;
  }

  std::uint64_t packets_on(bgp::LinkId link) const noexcept;
  std::uint64_t bytes_on(bgp::LinkId link) const noexcept;
  std::uint64_t total_packets() const noexcept;
  std::uint64_t malformed_packets() const noexcept { return malformed_; }
  /// Packets whose timestamp preceded an already-processed packet's.
  std::uint64_t out_of_order_packets() const noexcept {
    return out_of_order_;
  }

  /// Per-link share of received packets (sums to 1 when any arrived).
  std::vector<double> volume_by_link() const;

  /// Response accounting under the rate limit.
  std::uint64_t responses_sent() const noexcept { return responses_sent_; }
  std::uint64_t responses_suppressed() const noexcept {
    return responses_suppressed_;
  }
  /// Bytes the rate limiter prevented from being reflected at victims.
  std::uint64_t reflection_bytes_avoided() const noexcept {
    return reflection_avoided_;
  }

  struct VictimStats {
    netcore::Ipv4Addr victim;
    std::uint64_t packets = 0;
    double first_seen = 0;
    double last_seen = 0;
  };
  /// Victims (spoofed sources) whose packet count crosses the attack
  /// threshold, ordered by packet count descending.
  std::vector<VictimStats> attacks() const;

 private:
  void ingest(bgp::LinkId link, const netcore::Datagram& datagram,
              double timestamp);

  HoneypotOptions options_;
  std::vector<std::uint64_t> packets_;
  std::vector<std::uint64_t> bytes_;
  const fault::FaultInjector* faults_ = nullptr;
  std::uint64_t fault_salt_ = 0;
  std::uint64_t ingest_seq_ = 0;
  std::uint64_t fault_dropped_ = 0;
  std::uint64_t fault_duplicated_ = 0;
  std::uint64_t malformed_ = 0;
  std::uint64_t out_of_order_ = 0;
  std::uint64_t responses_sent_ = 0;
  std::uint64_t responses_suppressed_ = 0;
  std::uint64_t reflection_avoided_ = 0;

  // Token bucket for response rate limiting.
  double bucket_tokens_ = 0;
  double bucket_updated_ = 0;

  std::unordered_map<std::uint32_t, VictimStats> victims_;
};

}  // namespace spooftrack::traffic
