// Spoofed traffic generation: attacker hosts inside source ASes emit
// amplification queries whose IPv4 source address is forged to the victim.
// Packets are real datagrams (netcore::Datagram); delivery to the origin's
// peering links follows the data plane computed by the routing engine.
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/catchment.hpp"
#include "measure/address_plan.hpp"
#include "netcore/packet.hpp"
#include "topology/as_graph.hpp"
#include "traffic/amplification.hpp"
#include "util/rng.hpp"

namespace spooftrack::traffic {

/// One attacker's sustained stream of spoofed queries.
struct SpoofedFlow {
  topology::AsId source_as = topology::kInvalidAsId;
  netcore::Ipv4Addr victim;       // forged source address
  AmpProtocol protocol = AmpProtocol::kDnsAny;
  double packets_per_second = 0;
};

/// A packet as it arrives at the origin: the datagram plus the peering
/// link it ingressed on and the true source AS (ground truth available
/// only to the simulator, never to the inference code).
struct ArrivedPacket {
  bgp::LinkId link = bgp::kNoCatchment;
  topology::AsId true_source = topology::kInvalidAsId;
  double timestamp = 0;
  netcore::Datagram datagram;
};

class SpoofedTrafficGenerator {
 public:
  explicit SpoofedTrafficGenerator(std::uint64_t seed) : rng_(seed) {}

  /// Builds flows for a placement: `sources[i]` sends volume[i] fraction
  /// of `total_pps`. Zero-volume sources yield no flow.
  std::vector<SpoofedFlow> flows(
      const std::vector<topology::AsId>& sources,
      const std::vector<double>& volume, netcore::Ipv4Addr victim,
      AmpProtocol protocol, double total_pps) const;

  /// One spoofed query datagram for a flow.
  netcore::Datagram make_packet(const SpoofedFlow& flow,
                                std::uint16_t src_port) const;

  /// Simulates `duration` seconds of the flows arriving at the origin:
  /// each flow's packets ingress on the link of its source AS's catchment.
  /// Flows whose source AS has no catchment are dropped (no route).
  std::vector<ArrivedPacket> deliver(const std::vector<SpoofedFlow>& flows,
                                     const bgp::CatchmentMap& catchments,
                                     double duration,
                                     double max_packets = 50000);

 private:
  util::Rng rng_;
};

}  // namespace spooftrack::traffic
