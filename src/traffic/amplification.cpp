#include "traffic/amplification.hpp"

namespace spooftrack::traffic {

namespace {
constexpr AmpProtocolInfo kTable[] = {
    {AmpProtocol::kDnsAny, "dns-any", 53, 64, 54.0},
    {AmpProtocol::kNtpMonlist, "ntp-monlist", 123, 8, 556.9},
    {AmpProtocol::kSsdp, "ssdp", 1900, 90, 30.8},
    {AmpProtocol::kChargen, "chargen", 19, 1, 358.8},
    {AmpProtocol::kSnmp, "snmp-v2", 161, 87, 6.3},
    {AmpProtocol::kMemcached, "memcached", 11211, 15, 10000.0},
};
}  // namespace

std::span<const AmpProtocolInfo> amplification_table() noexcept {
  return kTable;
}

const AmpProtocolInfo& info(AmpProtocol protocol) noexcept {
  return kTable[static_cast<std::size_t>(protocol)];
}

std::uint32_t response_bytes(AmpProtocol protocol) noexcept {
  const AmpProtocolInfo& p = info(protocol);
  return static_cast<std::uint32_t>(p.request_bytes * p.amplification);
}

std::vector<std::uint8_t> make_query_payload(AmpProtocol protocol) {
  const AmpProtocolInfo& p = info(protocol);
  std::vector<std::uint8_t> payload(p.request_bytes, 0);
  payload[0] = static_cast<std::uint8_t>(protocol);
  for (std::size_t i = 1; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(0x40 + (i & 0x3F));
  }
  return payload;
}

}  // namespace spooftrack::traffic
