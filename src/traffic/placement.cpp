#include "traffic/placement.hpp"

#include <cmath>

namespace spooftrack::traffic {

const char* to_string(PlacementKind kind) noexcept {
  switch (kind) {
    case PlacementKind::kUniform: return "uniform";
    case PlacementKind::kPareto8020: return "pareto-80/20";
    case PlacementKind::kSingleSource: return "single-source";
  }
  return "?";
}

Placement generate_placement(PlacementKind kind, std::size_t source_count,
                             util::Rng& rng) {
  Placement placement;
  placement.volume.assign(source_count, 0.0);
  if (source_count == 0) return placement;

  switch (kind) {
    case PlacementKind::kUniform:
      // Source count per AS drawn uniformly; every AS hosts some sources.
      for (double& v : placement.volume) {
        v = static_cast<double>(rng.uniform_int(1, 10));
      }
      break;
    case PlacementKind::kPareto8020:
      for (double& v : placement.volume) {
        v = rng.pareto(kPareto8020Shape);
      }
      break;
    case PlacementKind::kSingleSource: {
      const auto index =
          static_cast<std::size_t>(rng.next_below(source_count));
      placement.volume[index] = 1.0;
      break;
    }
  }

  double total = 0.0;
  for (double v : placement.volume) total += v;
  for (std::size_t i = 0; i < source_count; ++i) {
    placement.volume[i] /= total;
    if (placement.volume[i] > 0.0) placement.active.push_back(i);
  }
  return placement;
}

}  // namespace spooftrack::traffic
