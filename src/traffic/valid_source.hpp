// Valid-source inference (§III-C alternative to the honeypot): learn the
// set of (source prefix -> ingress link) pairs from legitimate traffic and
// label traffic whose source arrives on an unexpected link — or from a
// never-seen prefix — as spoofed. This follows Lichtblau et al.'s
// passive spoofed-traffic detection approach.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bgp/announcement.hpp"
#include "netcore/ipv4.hpp"

namespace spooftrack::traffic {

enum class SourceVerdict : std::uint8_t {
  kLegitimate = 0,        // prefix seen before on this link
  kSpoofedWrongLink,      // prefix known, but never via this link
  kSpoofedUnknownSource,  // prefix never seen in legitimate traffic
};

const char* to_string(SourceVerdict verdict) noexcept;

class ValidSourceInference {
 public:
  /// Prefix granularity in bits (default /20, matching the address plan).
  explicit ValidSourceInference(std::uint8_t prefix_bits = 20);

  /// Observes legitimate traffic: `source` was seen ingressing on `link`.
  void learn(bgp::LinkId link, netcore::Ipv4Addr source);

  SourceVerdict classify(bgp::LinkId link, netcore::Ipv4Addr source) const;

  std::size_t known_prefixes() const noexcept { return seen_.size(); }

 private:
  std::uint32_t prefix_key(netcore::Ipv4Addr addr) const noexcept;

  std::uint8_t prefix_bits_;
  /// Prefix -> bitmask of links the prefix legitimately arrived on.
  std::unordered_map<std::uint32_t, std::uint64_t> seen_;
};

}  // namespace spooftrack::traffic
