#include "pipeline/pipeline.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "obs/obs.hpp"
#include "util/parallel.hpp"

namespace spooftrack::pipeline {

std::size_t effective_workers(const ExecutorOptions& options) noexcept {
  const std::size_t workers = options.workers == 0
                                  ? util::default_worker_count()
                                  : options.workers;
  return std::max<std::size_t>(workers, 1);
}

namespace {

enum class Kind : std::uint8_t { kNone, kProduce, kWork, kCommit };

struct Claim {
  Kind kind = Kind::kNone;
  std::size_t chain = 0;  // produce
  std::size_t step = 0;   // produce
  std::size_t item = 0;   // work / commit
};

/// All scheduler state, guarded by one mutex. Tasks are coarse (a BGP
/// propagation, a full measurement pipeline), so a single lock + condvar
/// is nowhere near contention; the complexity budget goes into the claim
/// priority and the backpressure bound instead.
class Scheduler {
 public:
  Scheduler(const GraphPlan& plan, const Stages& stages,
            std::size_t queue_depth)
      : plan_(plan), stages_(stages), queue_depth_(queue_depth) {
    const std::size_t chains = plan.chains();
    next_step_.assign(chains, 0);
    producing_.assign(chains, 0);
    inflight_steps_.assign(chains, 0);
    unworked_.resize(chains);
    item_chain_.assign(plan.items, 0);
    item_step_.assign(plan.items, 0);
    worked_.assign(plan.items, 0);
    std::vector<char> seen(plan.items, 0);
    std::size_t total = 0;
    for (std::size_t c = 0; c < chains; ++c) {
      unworked_[c].assign(plan.chain_steps[c].size(), 0);
      for (std::size_t s = 0; s < plan.chain_steps[c].size(); ++s) {
        for (std::size_t item : plan.chain_steps[c][s]) {
          if (item >= plan.items || seen[item]) {
            throw std::invalid_argument(
                "pipeline: plan items must form a permutation of [0, items)");
          }
          seen[item] = 1;
          item_chain_[item] = c;
          item_step_[item] = s;
          ++total;
        }
      }
    }
    if (total != plan.items) {
      throw std::invalid_argument(
          "pipeline: plan items must form a permutation of [0, items)");
    }
  }

  void worker(std::size_t worker_index) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      Claim claim = try_claim();
      while (claim.kind == Kind::kNone && !done()) {
        OBS_COUNT("pipeline.stalls", 1);
        cv_.wait(lock);
        claim = try_claim();
      }
      if (claim.kind == Kind::kNone) return;
      ++running_;
      lock.unlock();
      execute(claim, worker_index);
      lock.lock();
      --running_;
      settle(claim);
      cv_.notify_all();
    }
  }

  void rethrow_if_failed() {
    if (first_error_) std::rethrow_exception(first_error_);
  }

 private:
  bool done() const {
    if (running_ != 0) return false;
    if (aborted_) return true;
    if (next_commit_ != plan_.items) return false;
    for (std::size_t c = 0; c < plan_.chains(); ++c) {
      if (next_step_[c] != plan_.chain_steps[c].size()) return false;
    }
    return true;
  }

  Claim try_claim() {
    if (aborted_) return {};
    // Commits first: they retire the global frontier and unblock nothing
    // downstream of themselves, so deferring one only grows live state.
    if (!committing_ && next_commit_ < plan_.items &&
        worked_[next_commit_]) {
      committing_ = true;
      Claim claim;
      claim.kind = Kind::kCommit;
      claim.item = next_commit_++;
      return claim;
    }
    if (!ready_.empty()) {
      OBS_HIST("pipeline.ready_items", "items", ready_.size());
      Claim claim;
      claim.kind = Kind::kWork;
      claim.item = ready_.front();
      ready_.erase(ready_.begin());
      return claim;
    }
    for (std::size_t c = 0; c < plan_.chains(); ++c) {
      if (producing_[c] || next_step_[c] >= plan_.chain_steps[c].size() ||
          inflight_steps_[c] >= queue_depth_) {
        continue;
      }
      producing_[c] = 1;
      Claim claim;
      claim.kind = Kind::kProduce;
      claim.chain = c;
      claim.step = next_step_[c]++;
      return claim;
    }
    return {};
  }

  void execute(const Claim& claim, std::size_t worker_index) {
    try {
      switch (claim.kind) {
        case Kind::kProduce:
          if (stages_.produce) {
            OBS_TIMER("pipeline.produce_ns");
            stages_.produce(claim.chain, claim.step);
          }
          OBS_COUNT("pipeline.produce_tasks", 1);
          break;
        case Kind::kWork:
          if (stages_.work) {
            OBS_TIMER("pipeline.work_ns");
            stages_.work(claim.item, worker_index);
          }
          OBS_COUNT("pipeline.work_tasks", 1);
          break;
        case Kind::kCommit:
          if (stages_.commit) {
            OBS_TIMER("pipeline.commit_ns");
            stages_.commit(claim.item);
          }
          OBS_COUNT("pipeline.commit_tasks", 1);
          break;
        case Kind::kNone:
          break;
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (!pending_error_) pending_error_ = std::current_exception();
    }
  }

  /// State transition after a task returned, under the scheduler lock.
  void settle(const Claim& claim) {
    {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (pending_error_ && !first_error_) {
        first_error_ = pending_error_;
        aborted_ = true;
      }
    }
    switch (claim.kind) {
      case Kind::kProduce: {
        producing_[claim.chain] = 0;
        const auto& items = plan_.chain_steps[claim.chain][claim.step];
        unworked_[claim.chain][claim.step] = items.size();
        if (!items.empty()) {
          ++inflight_steps_[claim.chain];
          ready_.insert(ready_.end(), items.begin(), items.end());
        }
        break;
      }
      case Kind::kWork: {
        worked_[claim.item] = 1;
        const std::size_t c = item_chain_[claim.item];
        const std::size_t s = item_step_[claim.item];
        if (--unworked_[c][s] == 0) --inflight_steps_[c];
        break;
      }
      case Kind::kCommit:
        committing_ = false;
        break;
      case Kind::kNone:
        break;
    }
  }

  const GraphPlan& plan_;
  const Stages& stages_;
  const std::size_t queue_depth_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::size_t> next_step_;
  std::vector<char> producing_;
  std::vector<std::size_t> inflight_steps_;
  std::vector<std::vector<std::size_t>> unworked_;
  std::vector<std::size_t> item_chain_;
  std::vector<std::size_t> item_step_;
  std::vector<std::size_t> ready_;  // FIFO of workable items
  std::vector<char> worked_;
  std::size_t next_commit_ = 0;
  bool committing_ = false;
  std::size_t running_ = 0;
  bool aborted_ = false;

  // A throwing task records its exception here first (outside the
  // scheduler lock), then settle() promotes it to first_error_ and aborts.
  std::mutex error_mutex_;
  std::exception_ptr pending_error_;
  std::exception_ptr first_error_;
};

}  // namespace

void run_graph(const GraphPlan& plan, const Stages& stages,
               const ExecutorOptions& options) {
  OBS_COUNT("pipeline.runs", 1);
  OBS_COUNT("pipeline.items", plan.items);
  const std::size_t workers = effective_workers(options);
  const std::size_t queue_depth = std::max<std::size_t>(options.queue_depth, 1);
  OBS_GAUGE("pipeline.workers", workers);
  OBS_GAUGE("pipeline.queue_depth", queue_depth);

  Scheduler scheduler(plan, stages, queue_depth);
  if (workers == 1) {
    // Fully inline: the caller drains the canonical serial schedule
    // (commit > work > produce); no threads, no waits.
    scheduler.worker(0);
    scheduler.rethrow_if_failed();
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) {
    pool.emplace_back([&scheduler, w] { scheduler.worker(w); });
  }
  scheduler.worker(0);
  for (auto& t : pool) t.join();
  scheduler.rethrow_if_failed();
}

}  // namespace spooftrack::pipeline
