// spooftrack::pipeline — a small deterministic task-graph executor for
// producer/worker/committer stage graphs.
//
// The campaign deploy path is inherently a pipeline: propagation of
// configuration i+1 can overlap measurement of configuration i and the
// analysis commit of configuration i-1. This executor expresses that shape
// once, with the determinism contract the rest of the codebase already
// follows: every task writes only state it owns (produce: per-chain state,
// work: the item's own output slot, commit: globally serialized state), so
// the assembled result is byte-identical for any worker count and any
// queue depth — scheduling freedom never reaches the outputs.
//
// Stage semantics over a static GraphPlan:
//
//   produce(chain, step)   serial per chain, ascending step order; step s+1
//                          of a chain never starts before step s returned.
//                          Different chains may produce concurrently.
//   work(item, worker)     runs once the step that lists the item has been
//                          produced; items run concurrently and in any
//                          order. `worker` < effective_workers(options) is
//                          a stable scratch-slot id for the executing
//                          worker (scratch reuse must be result-neutral,
//                          as with measure::MeasurementDriver).
//   commit(item)           serialized, globally ascending item order:
//                          commit(i) runs after work(i) completed and
//                          commit(i-1) returned.
//
// Backpressure: a chain may have at most `queue_depth` produced steps with
// not-yet-worked items outstanding; producing further steps blocks until a
// step drains. This bounds the live measurement snapshots per chain. The
// scheduler is deadlock-free: when every chain is blocked on backpressure
// there is by definition workable inventory, workers prefer commits over
// work over produce, and the smallest uncommitted item is always
// eventually reachable.
//
// Exceptions: the first stage exception wins; no new task is claimed,
// running tasks drain, and run_graph rethrows on the caller. With
// effective_workers == 1 the whole graph runs inline on the calling
// thread — no threads are spawned and no synchronization is paid.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace spooftrack::pipeline {

struct ExecutorOptions {
  /// Worker threads including the caller (0 = util::default_worker_count()).
  std::size_t workers = 0;
  /// Per-chain bound on produced-but-not-fully-worked steps (min 1).
  std::size_t queue_depth = 2;
};

/// Resolved worker count run_graph will use: options.workers, defaulted
/// and clamped to >= 1. Size per-worker scratch arrays with this.
std::size_t effective_workers(const ExecutorOptions& options) noexcept;

/// Static stage graph: chain_steps[chain][step] lists the item ids that
/// step makes workable. Every item id in [0, items) must appear exactly
/// once across all steps of all chains (steps may be empty).
struct GraphPlan {
  std::vector<std::vector<std::vector<std::size_t>>> chain_steps;
  std::size_t items = 0;

  std::size_t chains() const noexcept { return chain_steps.size(); }
};

struct Stages {
  std::function<void(std::size_t chain, std::size_t step)> produce;
  std::function<void(std::size_t item, std::size_t worker)> work;
  std::function<void(std::size_t item)> commit;
};

/// Runs the graph to completion (or first exception). Any stage callback
/// may be empty (treated as a no-op). Throws std::invalid_argument when
/// the plan's item ids do not form a permutation of [0, items).
void run_graph(const GraphPlan& plan, const Stages& stages,
               const ExecutorOptions& options = {});

}  // namespace spooftrack::pipeline
