#include "core/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/config_gen.hpp"
#include "obs/obs.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace spooftrack::core {

double CampaignModel::total_minutes(std::size_t configs) const noexcept {
  if (configs == 0 || concurrent_prefixes == 0) return 0.0;
  const auto batches = static_cast<double>(
      (configs + concurrent_prefixes - 1) / concurrent_prefixes);
  return batches * minutes_per_config;
}

std::uint32_t CampaignModel::prefixes_for_deadline(
    std::size_t configs, double budget_days) const noexcept {
  if (configs == 0) return 1;
  if (budget_days <= 0.0 || minutes_per_config <= 0.0) return 0;
  const double budget_minutes = budget_days * 24.0 * 60.0;
  const double batches = std::floor(budget_minutes / minutes_per_config);
  if (batches < 1.0) return 0;  // even one batch does not fit
  const double prefixes =
      std::ceil(static_cast<double>(configs) / batches);
  return static_cast<std::uint32_t>(prefixes);
}

namespace {

/// Prefix-free binary key over a configuration's announcement list — the
/// exact inputs that determine its seed table (and hence its routing
/// outcome). Labels are deliberately excluded.
std::string announcement_key(const bgp::Configuration& config) {
  std::string key;
  const auto push = [&key](std::uint32_t v) {
    char bytes[sizeof v];
    std::memcpy(bytes, &v, sizeof v);
    key.append(bytes, sizeof v);
  };
  push(static_cast<std::uint32_t>(config.announcements.size()));
  for (const bgp::AnnouncementSpec& spec : config.announcements) {
    push(spec.link);
    push(spec.prepend);
    push(static_cast<std::uint32_t>(spec.poisoned.size()));
    for (topology::Asn asn : spec.poisoned) push(asn);
    push(static_cast<std::uint32_t>(spec.no_export_to.size()));
    for (topology::Asn asn : spec.no_export_to) push(asn);
  }
  return key;
}

}  // namespace

std::size_t campaign_chain_count(std::size_t config_count,
                                 const CampaignRunnerOptions& options) {
  std::size_t workers =
      options.workers == 0 ? util::default_worker_count() : options.workers;
  workers = std::max<std::size_t>(workers, 1);
  return std::max<std::size_t>(1, std::min(workers, config_count));
}

CampaignPlan plan_campaign(const std::vector<bgp::Configuration>& configs,
                           const CampaignRunnerOptions& options) {
  CampaignPlan plan;
  plan.warm_start = options.warm_start;
  if (configs.empty()) return plan;

  // 1. Memoization: one propagation per distinct announcement list, fanned
  //    out to every configuration index that shares it.
  if (options.memoize) {
    std::unordered_map<std::string, std::size_t> by_key;
    by_key.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
      const auto [it, inserted] =
          by_key.emplace(announcement_key(configs[i]), plan.unique.size());
      if (inserted) {
        plan.unique.push_back(i);
        plan.fanout.emplace_back();
      }
      plan.fanout[it->second].push_back(i);
    }
  } else {
    plan.unique.resize(configs.size());
    plan.fanout.resize(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
      plan.unique[i] = i;
      plan.fanout[i] = {i};
    }
  }
  OBS_COUNT("campaign.unique_configs", plan.unique.size());
  OBS_COUNT("campaign.memo_hits", configs.size() - plan.unique.size());

  // 2. Similarity ordering over the unique configurations so consecutive
  //    chain steps differ in as few seeds as possible.
  std::vector<std::size_t> order(plan.unique.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (options.order_chains && plan.unique.size() > 2 &&
      plan.unique.size() <= options.max_ordering_configs) {
    OBS_TIMER("campaign.order_ns");
    std::vector<bgp::Configuration> view;
    view.reserve(plan.unique.size());
    for (std::size_t u : plan.unique) view.push_back(configs[u]);
    order = order_by_similarity(view);
    plan.ordered = true;
  }

  // 3. Chain partitioning. The chain count depends only on the worker
  //    option and the unique-config count — never on who executes the plan
  //    — so the barrier and pipelined drivers produce identical chains
  //    (and therefore identical warm-start schedules and round counts).
  const std::size_t chains =
      std::min(campaign_chain_count(configs.size(), options),
               plan.unique.size());
  plan.chain_steps.resize(chains);
  if (options.warm_start) {
    // Contiguous runs of the ordered plan; only chain heads pay a cold
    // propagation.
    for (std::size_t c = 0; c < chains; ++c) {
      const std::size_t begin = c * plan.unique.size() / chains;
      const std::size_t end = (c + 1) * plan.unique.size() / chains;
      plan.chain_steps[c].assign(order.begin() + begin, order.begin() + end);
    }
  } else {
    // Cold baseline: strided static chains over unique configurations
    // (every step is a cold run, so similarity order buys nothing).
    for (std::size_t u = 0; u < plan.unique.size(); ++u) {
      plan.chain_steps[u % chains].push_back(u);
    }
  }
  return plan;
}

ChainStepper::ChainStepper(const bgp::Engine& engine,
                           const bgp::OriginSpec& origin,
                           const std::vector<bgp::Configuration>& configs,
                           const CampaignPlan& plan, std::size_t chain)
    : engine_(&engine),
      origin_(&origin),
      configs_(&configs),
      plan_(&plan),
      steps_(&plan.chain_steps[chain]) {}

std::shared_ptr<bgp::RoutingOutcome> ChainStepper::step(
    bool consume_baseline) {
  const std::size_t u = (*steps_)[pos_++];
  const bgp::Configuration& config = (*configs_)[plan_->unique[u]];
  OBS_TIMER("campaign.config_ns");
  // Each configuration's seed table is prepared exactly once and handed to
  // the next step as the baseline table — chained warm runs never
  // re-validate or rebuild one.
  bgp::Engine::Prepared prep = engine_->prepare(*origin_, config);
  std::shared_ptr<bgp::RoutingOutcome> outcome;
  if (plan_->warm_start && prev_config_ != nullptr && prev_->converged) {
    outcome = std::make_shared<bgp::RoutingOutcome>(engine_->run_warm_leased(
        *origin_, config, prep, *prev_config_, *prev_prep_, prev_,
        consume_baseline));
    ++stats_.warm_runs;
  } else {
    outcome = std::make_shared<bgp::RoutingOutcome>(
        engine_->run(*origin_, config, prep));
    ++stats_.cold_runs;
  }
  stats_.total_rounds += outcome->rounds;
  if (plan_->warm_start) {
    prev_ = outcome;
    prev_config_ = &config;
    prev_prep_ = std::move(prep);
  }
  return outcome;
}

CampaignRunStats propagate_campaign(const bgp::Engine& engine,
                                    const bgp::OriginSpec& origin,
                                    const std::vector<bgp::Configuration>& configs,
                                    const CampaignOutcomeSink& sink,
                                    const CampaignRunnerOptions& options) {
  OBS_TIMER("campaign.total_ns");
  OBS_COUNT("campaign.runs", 1);
  OBS_COUNT("campaign.configs", configs.size());
  CampaignRunStats stats;
  stats.configs = configs.size();
  if (configs.empty()) return stats;

  const CampaignPlan plan = plan_campaign(configs, options);
  stats.unique_configs = plan.unique.size();
  stats.memo_hits = configs.size() - plan.unique.size();
  stats.ordered = plan.ordered;

  std::size_t workers =
      options.workers == 0 ? util::default_worker_count() : options.workers;
  workers = std::max<std::size_t>(workers, 1);
  OBS_GAUGE("campaign.workers", workers);
  const std::size_t chains = plan.chains();
  OBS_COUNT("campaign.chains", chains);

  // Each chain runs to completion behind this call (the barrier driver);
  // nothing leases an outcome past its sink call, so every warm step
  // consumes its baseline.
  std::vector<CampaignRunStats> chain_stats(chains);
  util::parallel_for(
      chains,
      [&](std::size_t c) {
        OBS_HIST("campaign.chain_length", "configs",
                 plan.chain_steps[c].size());
        ChainStepper stepper(engine, origin, configs, plan, c);
        while (!stepper.done()) {
          const std::size_t u = stepper.next_slot();
          const auto outcome = stepper.step(/*consume_baseline=*/true);
          for (std::size_t idx : plan.fanout[u]) sink(c, idx, *outcome);
        }
        chain_stats[c] = stepper.stats();
      },
      chains);
  for (const CampaignRunStats& cs : chain_stats) {
    stats.cold_runs += cs.cold_runs;
    stats.warm_runs += cs.warm_runs;
    stats.total_rounds += cs.total_rounds;
  }
  return stats;
}

std::vector<bgp::RoutingOutcome> propagate_campaign_collect(
    const bgp::Engine& engine, const bgp::OriginSpec& origin,
    const std::vector<bgp::Configuration>& configs,
    const CampaignRunnerOptions& options, CampaignRunStats* stats) {
  std::vector<bgp::RoutingOutcome> outcomes(configs.size());
  const CampaignRunStats run_stats = propagate_campaign(
      engine, origin, configs,
      [&outcomes](std::size_t, std::size_t i,
                  const bgp::RoutingOutcome& outcome) {
        outcomes[i] = outcome;
      },
      options);
  if (stats != nullptr) *stats = run_stats;
  return outcomes;
}

std::string CampaignModel::describe(std::size_t configs) const {
  std::string out;
  out += std::to_string(configs) + " configs x " +
         util::fmt_double(minutes_per_config, 0) + " min";
  if (concurrent_prefixes > 1) {
    out += " / " + std::to_string(concurrent_prefixes) + " prefixes";
  }
  out += " = " + util::fmt_double(total_days(configs), 1) + " days";
  return out;
}

}  // namespace spooftrack::core
