#include "core/campaign.hpp"

#include <cmath>

#include "util/table.hpp"

namespace spooftrack::core {

double CampaignModel::total_minutes(std::size_t configs) const noexcept {
  if (configs == 0 || concurrent_prefixes == 0) return 0.0;
  const auto batches = static_cast<double>(
      (configs + concurrent_prefixes - 1) / concurrent_prefixes);
  return batches * minutes_per_config;
}

std::uint32_t CampaignModel::prefixes_for_deadline(
    std::size_t configs, double budget_days) const noexcept {
  if (configs == 0) return 1;
  if (budget_days <= 0.0 || minutes_per_config <= 0.0) return 0;
  const double budget_minutes = budget_days * 24.0 * 60.0;
  const double batches = std::floor(budget_minutes / minutes_per_config);
  if (batches < 1.0) return 0;  // even one batch does not fit
  const double prefixes =
      std::ceil(static_cast<double>(configs) / batches);
  return static_cast<std::uint32_t>(prefixes);
}

std::string CampaignModel::describe(std::size_t configs) const {
  std::string out;
  out += std::to_string(configs) + " configs x " +
         util::fmt_double(minutes_per_config, 0) + " min";
  if (concurrent_prefixes > 1) {
    out += " / " + std::to_string(concurrent_prefixes) + " prefixes";
  }
  out += " = " + util::fmt_double(total_days(configs), 1) + " days";
  return out;
}

}  // namespace spooftrack::core
