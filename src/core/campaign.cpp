#include "core/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/config_gen.hpp"
#include "obs/obs.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace spooftrack::core {

double CampaignModel::total_minutes(std::size_t configs) const noexcept {
  if (configs == 0 || concurrent_prefixes == 0) return 0.0;
  const auto batches = static_cast<double>(
      (configs + concurrent_prefixes - 1) / concurrent_prefixes);
  return batches * minutes_per_config;
}

std::uint32_t CampaignModel::prefixes_for_deadline(
    std::size_t configs, double budget_days) const noexcept {
  if (configs == 0) return 1;
  if (budget_days <= 0.0 || minutes_per_config <= 0.0) return 0;
  const double budget_minutes = budget_days * 24.0 * 60.0;
  const double batches = std::floor(budget_minutes / minutes_per_config);
  if (batches < 1.0) return 0;  // even one batch does not fit
  const double prefixes =
      std::ceil(static_cast<double>(configs) / batches);
  return static_cast<std::uint32_t>(prefixes);
}

namespace {

/// Prefix-free binary key over a configuration's announcement list — the
/// exact inputs that determine its seed table (and hence its routing
/// outcome). Labels are deliberately excluded.
std::string announcement_key(const bgp::Configuration& config) {
  std::string key;
  const auto push = [&key](std::uint32_t v) {
    char bytes[sizeof v];
    std::memcpy(bytes, &v, sizeof v);
    key.append(bytes, sizeof v);
  };
  push(static_cast<std::uint32_t>(config.announcements.size()));
  for (const bgp::AnnouncementSpec& spec : config.announcements) {
    push(spec.link);
    push(spec.prepend);
    push(static_cast<std::uint32_t>(spec.poisoned.size()));
    for (topology::Asn asn : spec.poisoned) push(asn);
    push(static_cast<std::uint32_t>(spec.no_export_to.size()));
    for (topology::Asn asn : spec.no_export_to) push(asn);
  }
  return key;
}

}  // namespace

std::size_t campaign_chain_count(std::size_t config_count,
                                 const CampaignRunnerOptions& options) {
  std::size_t workers =
      options.workers == 0 ? util::default_worker_count() : options.workers;
  workers = std::max<std::size_t>(workers, 1);
  return std::max<std::size_t>(1, std::min(workers, config_count));
}

CampaignRunStats propagate_campaign(const bgp::Engine& engine,
                                    const bgp::OriginSpec& origin,
                                    const std::vector<bgp::Configuration>& configs,
                                    const CampaignOutcomeSink& sink,
                                    const CampaignRunnerOptions& options) {
  OBS_TIMER("campaign.total_ns");
  OBS_COUNT("campaign.runs", 1);
  OBS_COUNT("campaign.configs", configs.size());
  CampaignRunStats stats;
  stats.configs = configs.size();
  if (configs.empty()) return stats;

  // 1. Memoization: one propagation per distinct announcement list, fanned
  //    out to every configuration index that shares it.
  std::vector<std::size_t> unique;                 // representative indices
  std::vector<std::vector<std::size_t>> fanout;    // per unique: all indices
  if (options.memoize) {
    std::unordered_map<std::string, std::size_t> by_key;
    by_key.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
      const auto [it, inserted] =
          by_key.emplace(announcement_key(configs[i]), unique.size());
      if (inserted) {
        unique.push_back(i);
        fanout.emplace_back();
      }
      fanout[it->second].push_back(i);
    }
  } else {
    unique.resize(configs.size());
    fanout.resize(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
      unique[i] = i;
      fanout[i] = {i};
    }
  }
  stats.unique_configs = unique.size();
  stats.memo_hits = configs.size() - unique.size();
  OBS_COUNT("campaign.unique_configs", stats.unique_configs);
  OBS_COUNT("campaign.memo_hits", stats.memo_hits);

  // 2. Similarity ordering over the unique configurations so consecutive
  //    chain steps differ in as few seeds as possible.
  std::vector<std::size_t> order(unique.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (options.order_chains && unique.size() > 2 &&
      unique.size() <= options.max_ordering_configs) {
    OBS_TIMER("campaign.order_ns");
    std::vector<bgp::Configuration> view;
    view.reserve(unique.size());
    for (std::size_t u : unique) view.push_back(configs[u]);
    order = order_by_similarity(view);
    stats.ordered = true;
  }

  std::size_t workers =
      options.workers == 0 ? util::default_worker_count() : options.workers;
  workers = std::max<std::size_t>(workers, 1);
  OBS_GAUGE("campaign.workers", workers);

  if (!options.warm_start) {
    // Cold baseline: strided static chains over unique configurations, so
    // the sink's per-chain serialization guarantee holds here too (chain c
    // cold-propagates u = c, c + chains, ... serially).
    const std::size_t chains = std::min(workers, unique.size());
    OBS_COUNT("campaign.chains", chains);
    std::vector<std::uint32_t> rounds(unique.size(), 0);
    util::parallel_for(
        chains,
        [&](std::size_t c) {
          for (std::size_t u = c; u < unique.size(); u += chains) {
            OBS_TIMER("campaign.config_ns");
            const bgp::RoutingOutcome outcome =
                engine.run(origin, configs[unique[u]]);
            rounds[u] = outcome.rounds;
            for (std::size_t idx : fanout[u]) sink(c, idx, outcome);
          }
        },
        chains);
    stats.cold_runs = unique.size();
    for (std::uint32_t r : rounds) stats.total_rounds += r;
    return stats;
  }

  // 3. Warm-start chains: contiguous runs of the ordered plan, one per
  //    worker; only chain heads pay a cold propagation.
  const std::size_t chains = std::min(workers, unique.size());
  OBS_COUNT("campaign.chains", chains);
  std::vector<CampaignRunStats> chain_stats(chains);
  util::parallel_for(
      chains,
      [&](std::size_t c) {
        CampaignRunStats& cs = chain_stats[c];
        const std::size_t begin = c * unique.size() / chains;
        const std::size_t end = (c + 1) * unique.size() / chains;
        OBS_HIST("campaign.chain_length", "configs", end - begin);
        bgp::RoutingOutcome prev;
        const bgp::Configuration* prev_config = nullptr;
        std::optional<bgp::Engine::Prepared> prev_prep;
        for (std::size_t pos = begin; pos < end; ++pos) {
          const std::size_t u = order[pos];
          const bgp::Configuration& config = configs[unique[u]];
          OBS_TIMER("campaign.config_ns");
          // Each configuration's seed table is prepared exactly once and
          // handed to the next step as the baseline table — chained warm
          // runs never re-validate or rebuild one.
          bgp::Engine::Prepared prep = engine.prepare(origin, config);
          bgp::RoutingOutcome outcome;
          if (prev_config != nullptr && prev.converged) {
            // The baseline is discarded after this step: let run_warm
            // consume it (routing state AND path arena) instead of
            // deep-copying every route.
            outcome = engine.run_warm(origin, config, prep, *prev_config,
                                      *prev_prep, std::move(prev));
            ++cs.warm_runs;
          } else {
            outcome = engine.run(origin, config, prep);
            ++cs.cold_runs;
          }
          cs.total_rounds += outcome.rounds;
          for (std::size_t idx : fanout[u]) sink(c, idx, outcome);
          prev = std::move(outcome);
          prev_config = &config;
          prev_prep = std::move(prep);
        }
      },
      chains);
  for (const CampaignRunStats& cs : chain_stats) {
    stats.cold_runs += cs.cold_runs;
    stats.warm_runs += cs.warm_runs;
    stats.total_rounds += cs.total_rounds;
  }
  return stats;
}

std::vector<bgp::RoutingOutcome> propagate_campaign_collect(
    const bgp::Engine& engine, const bgp::OriginSpec& origin,
    const std::vector<bgp::Configuration>& configs,
    const CampaignRunnerOptions& options, CampaignRunStats* stats) {
  std::vector<bgp::RoutingOutcome> outcomes(configs.size());
  const CampaignRunStats run_stats = propagate_campaign(
      engine, origin, configs,
      [&outcomes](std::size_t, std::size_t i,
                  const bgp::RoutingOutcome& outcome) {
        outcomes[i] = outcome;
      },
      options);
  if (stats != nullptr) *stats = run_stats;
  return outcomes;
}

std::string CampaignModel::describe(std::size_t configs) const {
  std::string out;
  out += std::to_string(configs) + " configs x " +
         util::fmt_double(minutes_per_config, 0) + " min";
  if (concurrent_prefixes > 1) {
    out += " / " + std::to_string(concurrent_prefixes) + " prefixes";
  }
  out += " = " + util::fmt_double(total_days(configs), 1) + " days";
  return out;
}

}  // namespace spooftrack::core
