#include "core/config_gen.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>

namespace spooftrack::core {

namespace {

std::string links_label(const std::vector<std::uint32_t>& links) {
  std::string out = "{";
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (i != 0) out += ',';
    out += 'l' + std::to_string(links[i]);
  }
  out += '}';
  return out;
}

std::uint64_t binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    result = result * (n - k + i) / i;
  }
  return result;
}

}  // namespace

std::vector<std::vector<std::uint32_t>> combinations(std::uint32_t n,
                                                     std::uint32_t k) {
  std::vector<std::vector<std::uint32_t>> out;
  if (k > n) return out;
  std::vector<std::uint32_t> current(k);
  for (std::uint32_t i = 0; i < k; ++i) current[i] = i;
  while (true) {
    out.push_back(current);
    // Advance to the next lexicographic combination.
    std::int64_t pos = static_cast<std::int64_t>(k) - 1;
    while (pos >= 0 && current[pos] == n - k + pos) --pos;
    if (pos < 0) break;
    ++current[pos];
    for (std::uint32_t i = static_cast<std::uint32_t>(pos) + 1; i < k; ++i) {
      current[i] = current[i - 1] + 1;
    }
  }
  return out;
}

ConfigGenerator::ConfigGenerator(const bgp::OriginSpec& origin,
                                 GeneratorOptions options)
    : origin_(origin), options_(options) {
  if (origin_.links.empty()) {
    throw std::invalid_argument("origin has no peering links");
  }
  if (options_.max_removals >= origin_.links.size()) {
    throw std::invalid_argument(
        "max_removals must be smaller than the number of links");
  }
}

std::vector<bgp::Configuration> ConfigGenerator::location_phase() const {
  const auto total = static_cast<std::uint32_t>(origin_.links.size());
  std::vector<bgp::Configuration> configs;
  for (std::uint32_t removed = 0; removed <= options_.max_removals;
       ++removed) {
    for (const auto& subset : combinations(total, total - removed)) {
      bgp::Configuration config;
      config.label = "loc " + links_label(subset);
      for (std::uint32_t link : subset) {
        config.announcements.push_back({link, 0, {}, {}});
      }
      configs.push_back(std::move(config));
    }
  }
  return configs;
}

std::vector<bgp::Configuration> ConfigGenerator::prepend_phase(
    const std::vector<bgp::Configuration>& bases) const {
  std::vector<bgp::Configuration> configs;
  for (const auto& base : bases) {
    const auto active = static_cast<std::uint32_t>(base.announcements.size());
    for (std::uint32_t set_size = 1;
         set_size <= std::min(options_.max_prepend_set, active); ++set_size) {
      for (const auto& subset : combinations(active, set_size)) {
        bgp::Configuration config = base;
        std::vector<std::uint32_t> prepended_links;
        for (std::uint32_t index : subset) {
          config.announcements[index].prepend = options_.prepend_count;
          prepended_links.push_back(config.announcements[index].link);
        }
        config.label = base.label + " prep " + links_label(prepended_links);
        configs.push_back(std::move(config));
      }
    }
  }
  return configs;
}

namespace {

/// Steering targets per link: neighbors of the link's provider, excluding
/// the origin and the other link providers (shared by the poisoning and
/// community phases — both move traffic off first-hop links).
std::vector<std::vector<topology::Asn>> steering_targets(
    const bgp::OriginSpec& origin, const topology::AsGraph& graph) {
  std::set<topology::Asn> excluded{origin.asn};
  for (const auto& link : origin.links) excluded.insert(link.provider);

  std::vector<std::vector<topology::Asn>> targets(origin.links.size());
  for (const auto& link : origin.links) {
    const auto provider_id = graph.id_of(link.provider);
    if (!provider_id) {
      throw std::invalid_argument("link provider AS " +
                                  std::to_string(link.provider) +
                                  " not present in topology");
    }
    for (const topology::Neighbor& n : graph.neighbors(*provider_id)) {
      const topology::Asn asn = graph.asn_of(n.id);
      if (!excluded.contains(asn)) targets[link.id].push_back(asn);
    }
    std::sort(targets[link.id].begin(), targets[link.id].end());
  }
  return targets;
}

/// Round-robin across links so capping keeps balanced coverage;
/// `make_config(link, target)` builds each configuration.
template <typename MakeConfig>
std::vector<bgp::Configuration> round_robin_targets(
    const std::vector<std::vector<topology::Asn>>& targets, std::size_t cap,
    MakeConfig&& make_config) {
  std::vector<bgp::Configuration> configs;
  std::vector<std::size_t> cursor(targets.size(), 0);
  bool progressed = true;
  while (progressed && configs.size() < cap) {
    progressed = false;
    for (std::size_t l = 0; l < targets.size() && configs.size() < cap; ++l) {
      if (cursor[l] >= targets[l].size()) continue;
      const topology::Asn target = targets[l][cursor[l]++];
      progressed = true;
      configs.push_back(make_config(l, target));
    }
  }
  return configs;
}

}  // namespace

std::vector<bgp::Configuration> ConfigGenerator::poison_phase(
    const topology::AsGraph& graph) const {
  return round_robin_targets(
      steering_targets(origin_, graph), options_.max_poison_configs,
      [&](std::size_t l, topology::Asn target) {
        bgp::Configuration config;
        config.label =
            "poison l" + std::to_string(l) + " AS" + std::to_string(target);
        for (const auto& link : origin_.links) {
          bgp::AnnouncementSpec spec{link.id, 0, {}, {}};
          if (link.id == l) spec.poisoned.push_back(target);
          config.announcements.push_back(std::move(spec));
        }
        return config;
      });
}

std::vector<bgp::Configuration> ConfigGenerator::community_phase(
    const topology::AsGraph& graph) const {
  return round_robin_targets(
      steering_targets(origin_, graph), options_.max_community_configs,
      [&](std::size_t l, topology::Asn target) {
        bgp::Configuration config;
        config.label =
            "no-export l" + std::to_string(l) + " AS" + std::to_string(target);
        for (const auto& link : origin_.links) {
          bgp::AnnouncementSpec spec{link.id, 0, {}, {}};
          if (link.id == l) spec.no_export_to.push_back(target);
          config.announcements.push_back(std::move(spec));
        }
        return config;
      });
}

std::vector<bgp::Configuration> ConfigGenerator::full_plan(
    const topology::AsGraph& graph) const {
  auto plan = location_phase();
  const auto prepends = prepend_phase(plan);
  plan.insert(plan.end(), prepends.begin(), prepends.end());
  const auto poisons = poison_phase(graph);
  plan.insert(plan.end(), poisons.begin(), poisons.end());
  if (options_.max_community_configs > 0) {
    const auto communities = community_phase(graph);
    plan.insert(plan.end(), communities.begin(), communities.end());
  }
  return plan;
}

std::size_t ConfigGenerator::location_phase_size(std::size_t links,
                                                 std::uint32_t removals) {
  std::size_t total = 0;
  for (std::uint32_t x = 0; x <= removals; ++x) {
    total += binomial(links, links - x);
  }
  return total;
}

std::size_t ConfigGenerator::location_and_prepend_size(
    std::size_t links, std::uint32_t removals) {
  std::size_t total = 0;
  for (std::uint32_t x = 0; x <= removals; ++x) {
    total += binomial(links, links - x) * (1 + (links - x));
  }
  return total;
}

std::uint32_t seed_distance(const bgp::Configuration& a,
                            const bgp::Configuration& b) {
  // Per link: (announcement id, spec) in each configuration, or "absent".
  // Links are small ids in practice (one per PEERING mux), so a flat map
  // over the maximum link id would also work; a sorted scan keeps this
  // robust to sparse ids.
  std::uint32_t distance = 0;
  auto spec_index = [](const bgp::Configuration& c) {
    std::vector<std::pair<bgp::LinkId, std::uint32_t>> by_link;
    by_link.reserve(c.announcements.size());
    for (std::uint32_t ann = 0; ann < c.announcements.size(); ++ann) {
      by_link.emplace_back(c.announcements[ann].link, ann);
    }
    std::sort(by_link.begin(), by_link.end());
    return by_link;
  };
  const auto la = spec_index(a);
  const auto lb = spec_index(b);
  std::size_t i = 0, j = 0;
  while (i < la.size() || j < lb.size()) {
    if (j == lb.size() || (i < la.size() && la[i].first < lb[j].first)) {
      ++distance;  // announced only in a
      ++i;
    } else if (i == la.size() || lb[j].first < la[i].first) {
      ++distance;  // announced only in b
      ++j;
    } else {
      if (la[i].second != lb[j].second ||
          !(a.announcements[la[i].second] == b.announcements[lb[j].second])) {
        ++distance;
      }
      ++i;
      ++j;
    }
  }
  return distance;
}

std::vector<std::size_t> order_by_similarity(
    const std::vector<bgp::Configuration>& configs, std::size_t start) {
  const std::size_t n = configs.size();
  std::vector<std::size_t> order;
  if (n == 0) return order;
  if (start >= n) throw std::invalid_argument("similarity start out of range");

  order.reserve(n);
  std::vector<bool> visited(n, false);
  std::size_t current = start;
  visited[current] = true;
  order.push_back(current);
  for (std::size_t step = 1; step < n; ++step) {
    std::size_t best = n;
    std::uint32_t best_distance = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (visited[i]) continue;
      const std::uint32_t d = seed_distance(configs[current], configs[i]);
      if (best == n || d < best_distance) {
        best = i;
        best_distance = d;
      }
    }
    visited[best] = true;
    order.push_back(best);
    current = best;
  }
  return order;
}

}  // namespace spooftrack::core
