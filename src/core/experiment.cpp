#include "core/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_set>

#include "core/campaign.hpp"
#include "obs/obs.hpp"
#include "pipeline/pipeline.hpp"
#include "topology/metrics.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace spooftrack::core {

namespace {

constexpr MuxInfo kTable1[] = {
    {"AMS-IX", "Bit BV", 12859},
    {"GRNet", "GRNet", 5408},
    {"USC/ISI", "Los Nettos", 226},
    {"NEU", "Northeastern University", 156},
    {"Seattle-IX", "RGnet", 3130},
    {"UFMG", "RNP", 1916},
    {"UW", "Pacific Northwest GigaPoP", 101},
};

topology::SynthTopology build_topology(const TestbedConfig& config) {
  topology::SynthConfig synth;
  synth.seed = config.seed;
  synth.tier1_count = config.tier1_count;
  synth.transit_count = config.transit_count;
  synth.stub_count = config.stub_count;
  synth.transit_extra_providers = config.transit_extra_providers;
  synth.stub_extra_providers = config.stub_extra_providers;
  synth.transit_peering_prob = config.transit_peering_prob;
  synth.stub_tier1_provider_prob = config.stub_tier1_provider_prob;
  synth.reserved_attract_bonus = config.provider_attract_bonus;
  synth.reserved_position_fraction = config.provider_position_fraction;
  synth.origin_asn = kPeeringAsn;
  for (const MuxInfo& mux : kTable1) {
    synth.reserved_transit_asns.push_back(mux.provider_asn);
  }
  return topology::synthesize(synth);
}

bgp::OriginSpec build_origin() {
  bgp::OriginSpec origin;
  origin.asn = kPeeringAsn;
  bgp::LinkId id = 0;
  for (const MuxInfo& mux : kTable1) {
    origin.links.push_back({id++, mux.mux, mux.provider_asn});
  }
  return origin;
}

bgp::PolicyConfig patched_policy(const TestbedConfig& config) {
  bgp::PolicyConfig p = config.policy;
  p.seed = util::hash_combine(config.seed, p.seed);
  return p;
}

measure::TracerouteOptions patched_traceroute(const TestbedConfig& config) {
  measure::TracerouteOptions t = config.traceroute;
  t.seed = util::hash_combine(config.seed, t.seed);
  return t;
}

fault::FaultPlan patched_faults(const TestbedConfig& config) {
  fault::FaultPlan f = config.faults;
  f.seed = util::hash_combine(config.seed, f.seed);
  return f;
}

}  // namespace

std::span<const MuxInfo> table1_muxes() noexcept { return kTable1; }

PeeringTestbed::PeeringTestbed(TestbedConfig config)
    : config_(config),
      topo_(build_topology(config_)),
      origin_(build_origin()),
      policy_(topo_.graph, patched_policy(config_)),
      engine_(topo_.graph, policy_, config_.engine),
      plan_(topo_.graph),
      ixps_(topo_.graph, config_.ixp_count, config_.ixp_edge_fraction,
            util::hash_combine(config_.seed, 0x1A9)),
      ip2as_(measure::Ip2AsMap::from_plan(
          topo_.graph, plan_, kPeeringAsn,
          {config_.ip2as.missing_fraction,
           util::hash_combine(config_.seed, config_.ip2as.seed)})),
      feeds_(topo_.graph,
             {config_.feed.peer_count, config_.feed.large_cone_bias,
              util::hash_combine(config_.seed, config_.feed.seed)}),
      tracer_(topo_.graph, plan_, ixps_, patched_traceroute(config_)),
      repair_(topo_.graph, ip2as_, ixps_, kPeeringAsn),
      inference_(topo_.graph, origin_),
      injector_(patched_faults(config_)) {
  const auto id = topo_.graph.id_of(kPeeringAsn);
  if (!id) throw std::logic_error("origin missing from topology");
  origin_id_ = *id;

  // The traceroute simulator consults the injector on every run; with an
  // all-zero plan fires() is constant-false, so traces stay bit-identical.
  tracer_.set_fault_injector(&injector_);

  // RIPE Atlas probes: distinct ASes, 80% stubs / 20% transit.
  util::Rng rng{util::hash_combine(config_.seed, 0x9806E5ULL)};
  std::unordered_set<topology::AsId> chosen;
  const std::uint32_t want = std::min<std::uint32_t>(
      config_.probe_count,
      static_cast<std::uint32_t>(topo_.graph.size() - 1));
  std::size_t attempts = 0;
  while (chosen.size() < want && attempts < std::size_t{want} * 20) {
    ++attempts;
    const bool stub = !topo_.stubs.empty() && rng.uniform01() < 0.8;
    const auto& pool = stub || topo_.transit.empty()
                           ? topo_.stubs
                           : topo_.transit;
    if (pool.empty()) break;
    const topology::Asn asn = pool[rng.next_below(pool.size())];
    const auto probe_id = topo_.graph.id_of(asn);
    if (probe_id && *probe_id != origin_id_) chosen.insert(*probe_id);
  }
  probes_.assign(chosen.begin(), chosen.end());
  std::sort(probes_.begin(), probes_.end());
}

bgp::RoutingOutcome PeeringTestbed::route(
    const bgp::Configuration& config) const {
  bgp::RoutingOutcome outcome = engine_.run(origin_, config);
  if (!outcome.converged) {
    throw std::runtime_error("routing did not converge for configuration '" +
                             config.label + "'");
  }
  return outcome;
}

namespace {

/// Collapsed AS-hop distance to the origin along a route's AS-path:
/// consecutive duplicates (prepending) collapse, and counting stops at the
/// first origin occurrence (ignoring the poison sandwich).
std::uint32_t collapsed_distance(bgp::PathArena::View path,
                                 topology::Asn origin_asn) {
  std::uint32_t count = 0;
  topology::Asn prev = 0;
  for (topology::Asn asn : path) {
    if (asn == prev) continue;
    ++count;
    prev = asn;
    if (asn == origin_asn) break;
  }
  return count;
}

/// Folds the driver's per-task fault accounting into the deploy-level
/// quality record (which already knows deployment attempts) and grades it.
void merge_quality(fault::ConfigQuality& into,
                   const fault::ConfigQuality& measured,
                   const fault::FaultPlan& plan) {
  into.feed_entries = measured.feed_entries;
  into.feed_faults = measured.feed_faults;
  into.traces = measured.traces;
  into.trace_faults = measured.trace_faults;
  into.grade = fault::grade_config(into, plan);
}

std::uint64_t hash_double(std::uint64_t h, double value) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return util::hash_combine(h, bits);
}

/// The campaign identity recorded in every journal segment header. Covers
/// everything that determines deployment *results* — testbed seed, topology
/// shape, measurement plan, fault probabilities/budget/thresholds, and the
/// full configuration plan — and deliberately excludes execution shape
/// (measure_workers, pipeline mode/depth, kill-point settings, the journal
/// options themselves): resuming with different parallelism is supported
/// and byte-identical, while resuming into a different campaign is a
/// deterministic JournalError.
journal::CampaignIdentity campaign_identity(
    const TestbedConfig& config,
    const std::vector<bgp::Configuration>& configs) {
  std::uint64_t h = util::mix64(0x0CA3'BA16ULL ^ config.seed);
  h = util::hash_combine(h, config.tier1_count);
  h = util::hash_combine(h, config.transit_count);
  h = util::hash_combine(h, config.stub_count);
  h = hash_double(h, config.transit_extra_providers);
  h = hash_double(h, config.stub_extra_providers);
  h = hash_double(h, config.transit_peering_prob);
  h = hash_double(h, config.stub_tier1_provider_prob);
  h = hash_double(h, config.provider_attract_bonus);
  h = hash_double(h, config.provider_position_fraction);
  h = util::hash_combine(h, config.probe_count);
  h = util::hash_combine(h, config.traceroute_rounds);
  h = util::hash_combine(h, config.ixp_count);
  h = hash_double(h, config.ixp_edge_fraction);
  h = util::hash_combine(h, (config.measured_catchments ? 1u : 0u) |
                                (config.audit_policies ? 2u : 0u) |
                                (config.warm_campaign ? 4u : 0u));
  const fault::FaultPlan& f = config.faults;
  h = util::hash_combine(h, f.seed);
  h = hash_double(h, f.feed_outage_prob);
  h = hash_double(h, f.feed_stale_prob);
  h = hash_double(h, f.traceroute_loss_prob);
  h = hash_double(h, f.traceroute_truncate_prob);
  h = hash_double(h, f.honeypot_drop_prob);
  h = hash_double(h, f.honeypot_duplicate_prob);
  h = hash_double(h, f.deploy_failure_prob);
  h = util::hash_combine(h, f.deploy_retry_budget);
  h = hash_double(h, f.degraded_feed_fraction);
  h = hash_double(h, f.degraded_trace_fraction);
  for (const bgp::Configuration& c : configs) {
    h = util::hash_combine(h, journal::config_hash(c));
  }
  return {h, configs.size()};
}

}  // namespace

/// Per-deploy journaling context: the writer, the records recovered on
/// resume (validated against the re-derived plan), their loaded partial
/// measurements, and each configuration's warm-chain coordinates.
struct DeployJournal {
  DeployJournal(const journal::JournalOptions& options,
                const journal::CampaignIdentity& identity,
                const fault::FaultInjector* injector)
      : writer(options, identity, injector),
        dir(options.dir),
        fsync(options.fsync) {}

  journal::JournalWriter writer;
  std::string dir;
  bool fsync;
  std::vector<char> completed;                       // per config index
  std::vector<journal::ConfigRecord> records;        // valid when completed
  std::vector<journal::PartialMeasurement> loaded;   // " and not abandoned
  std::vector<std::uint32_t> chain_of;
  std::vector<std::uint32_t> chain_pos;
  std::uint64_t skipped = 0;

  /// Commits configuration i: saves its partial measurement atomically,
  /// then appends the journal record. No-op for configurations recovered
  /// from the journal (idempotent resume). Called in ascending config
  /// order from both deploy schedules, so kill-point barrier ordinals are
  /// invariant to workers, depth and pipeline mode.
  void append_config(std::size_t i, const DeploymentResult& result,
                     const std::vector<char>& abandoned, bool faulty) {
    if (completed[i]) return;
    journal::ConfigRecord record;
    record.config_index = i;
    record.config_hash = journal::config_hash(result.configs[i]);
    record.chain = chain_of[i];
    record.chain_pos = chain_pos[i];
    if (faulty) {
      const fault::ConfigQuality& quality = result.quality[i];
      record.grade = quality.grade;
      record.deploy_attempts = quality.deploy_attempts;
      record.feed_entries = quality.feed_entries;
      record.feed_faults = quality.feed_faults;
      record.traces = quality.traces;
      record.trace_faults = quality.trace_faults;
    }
    if (!abandoned[i]) {
      journal::PartialMeasurement partial;
      partial.inference = result.measured[i];
      partial.feed_entries = record.feed_entries;
      partial.feed_faults = record.feed_faults;
      partial.traces = record.traces;
      partial.trace_faults = record.trace_faults;
      record.row_digest = journal::save_partial(dir, i, partial, fsync);
    }
    writer.append(record);
  }
};

DeploymentResult PeeringTestbed::deploy(
    std::vector<bgp::Configuration> configs) const {
  OBS_TIMER("deploy.total_ns");
  DeploymentResult result;
  result.configs = std::move(configs);
  const std::size_t n = result.configs.size();
  OBS_COUNT("deploy.configs", n);

  const bool journaling = !config_.journal.dir.empty();
  if (journaling && !config_.measured_catchments) {
    throw std::invalid_argument(
        "journaling requires measured catchments: ground-truth deployments "
        "have no per-configuration measurement to checkpoint");
  }

  result.truth.resize(n);
  result.engine_rounds.assign(n, 0);
  if (config_.measured_catchments) result.measured.resize(n);
  if (config_.audit_policies) result.compliance.resize(n);

  // Transient deployment failures with a retry budget. Attempts are drawn
  // up front — draws are stateless, so this serial loop is free and the
  // fault layer never perturbs propagation order or chain assignment. An
  // abandoned configuration keeps its ground truth (faults model the
  // measurement plane, not routing) but gets no measurement.
  const bool faulty = injector_.enabled();
  std::vector<char> abandoned(n, 0);
  if (faulty) {
    result.quality.assign(n, {});
    if (config_.faults.any_deploy()) {
      const std::uint32_t max_attempts =
          1 + config_.faults.deploy_retry_budget;
      std::uint64_t failures = 0;
      std::uint64_t retries = 0;
      std::uint64_t gave_up = 0;
      std::uint64_t backoff_steps = 0;
      std::uint64_t backoff_ms = 0;
      const fault::FaultPlan& fault_plan = injector_.plan();
      for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t failed_attempts = 0;
        while (failed_attempts < max_attempts &&
               injector_.fires(fault::Site::kDeployFailure, i,
                               failed_attempts)) {
          ++failed_attempts;
        }
        failures += failed_attempts;
        // Retry pacing (docs/faults.md): each failed attempt k waits
        // min(cap, base << (k-1)) ms of simulated time, equal-jitter
        // (half fixed, half a seeded uniform draw). The clock never
        // sleeps — the schedule feeds the campaign wall-clock model and
        // the deploy.retry.backoff_* metrics, deterministically.
        for (std::uint32_t k = 1; k <= failed_attempts; ++k) {
          const std::uint64_t raw = std::min<std::uint64_t>(
              fault_plan.deploy_backoff_cap_ms,
              std::uint64_t{fault_plan.deploy_backoff_base_ms}
                  << std::min<std::uint32_t>(k - 1, 32));
          const std::uint64_t half = raw / 2;
          const std::uint64_t jitter =
              half == 0
                  ? 0
                  : injector_.mix(fault::Site::kDeployFailure, i,
                                  0xB0FF'0000ULL + k) %
                        (half + 1);
          backoff_ms += half + jitter;
          ++backoff_steps;
        }
        if (failed_attempts == max_attempts) {
          abandoned[i] = 1;
          ++gave_up;
          retries += max_attempts - 1;
          result.quality[i].deploy_attempts = max_attempts;
          result.quality[i].grade = fault::Grade::kFailed;
        } else {
          retries += failed_attempts;
          result.quality[i].deploy_attempts = failed_attempts + 1;
          // Graded now so ground-truth deployments (no measurement pass)
          // still mark retried configs; re-graded with feed/trace counts
          // after measurement.
          result.quality[i].grade =
              fault::grade_config(result.quality[i], config_.faults);
        }
      }
      OBS_COUNT("fault.deploy.failures", failures);
      OBS_COUNT("fault.deploy.retries", retries);
      OBS_COUNT("fault.deploy.gave_up", gave_up);
      OBS_COUNT("deploy.retry.backoff_steps", backoff_steps);
      OBS_COUNT("deploy.retry.backoff_ms", backoff_ms);
    }
  }

  // Journal setup. A fresh journal just starts segment 0; a resume replays
  // the directory, cross-checks every recovered record against the
  // re-derived plan (config hashes, abandonment, attempt counts — all
  // stateless re-derivations), and loads the digest-verified partial
  // measurement of every committed configuration. Any disagreement is a
  // JournalError, never a silently different campaign.
  std::unique_ptr<DeployJournal> journal;
  if (journaling) {
    journal = std::make_unique<DeployJournal>(
        config_.journal, campaign_identity(config_, result.configs),
        &injector_);
    journal->completed.assign(n, 0);
    journal->records.resize(n);
    journal->loaded.resize(n);
    for (const journal::ConfigRecord& record : journal->writer.recovered()) {
      const std::size_t i = record.config_index;  // < n (scan-validated)
      const bgp::Configuration& config = result.configs[i];
      if (record.config_hash != journal::config_hash(config)) {
        throw journal::JournalError(
            "journal record does not match configuration '" + config.label +
            "'");
      }
      const std::uint32_t expect_attempts =
          faulty ? result.quality[i].deploy_attempts : 1;
      if (record.abandoned() != (abandoned[i] != 0) ||
          record.deploy_attempts != expect_attempts) {
        throw journal::JournalError(
            "journal record disagrees with the re-derived deploy schedule "
            "for configuration '" +
            config.label + "'");
      }
      if (!record.abandoned()) {
        journal->loaded[i] =
            journal::load_partial(journal->dir, i, record.row_digest);
        if (journal->loaded[i].feed_entries != record.feed_entries ||
            journal->loaded[i].feed_faults != record.feed_faults ||
            journal->loaded[i].traces != record.traces ||
            journal->loaded[i].trace_faults != record.trace_faults) {
          throw journal::JournalError(
              "partial artifact quality counts disagree with the journal "
              "record for configuration '" +
              config.label + "'");
        }
      }
      journal->records[i] = record;
      journal->completed[i] = 1;
      ++journal->skipped;
    }
    result.resumed_configs = journal->skipped;
    if (config_.journal.resume) {
      OBS_COUNT("deploy.resume.runs", 1);
      OBS_COUNT("deploy.resume.skipped_configs", journal->skipped);
    }

    // Warm-chain coordinates for the records (recovery-runbook metadata:
    // which chain, and how deep, each configuration committed from). The
    // plan is pure — same partitioning both deploy schedules use.
    CampaignRunnerOptions runner;
    runner.warm_start = config_.warm_campaign;
    const CampaignPlan plan = plan_campaign(result.configs, runner);
    journal->chain_of.assign(n, 0);
    journal->chain_pos.assign(n, 0);
    for (std::size_t c = 0; c < plan.chains(); ++c) {
      for (std::size_t pos = 0; pos < plan.chain_steps[c].size(); ++pos) {
        for (const std::size_t idx : plan.fanout[plan.chain_steps[c][pos]]) {
          journal->chain_of[idx] = static_cast<std::uint32_t>(c);
          journal->chain_pos[idx] = static_cast<std::uint32_t>(pos);
        }
      }
    }
  }

  // Streaming only pays off when there is a measurement stage to overlap
  // and more than one configuration to stream; otherwise barrier mode is
  // the same work without the executor.
  const bool streaming = config_.pipeline != PipelineMode::kOff &&
                         config_.measured_catchments && n > 1;
  if (streaming) {
    deploy_pipelined(result, abandoned, faulty, journal.get());
  } else {
    deploy_barrier(result, abandoned, faulty, journal.get());
  }

  if (faulty) {
    std::uint64_t degraded = 0;
    std::uint64_t failed = 0;
    for (const fault::ConfigQuality& q : result.quality) {
      degraded += q.grade == fault::Grade::kDegraded ? 1 : 0;
      failed += q.grade == fault::Grade::kFailed ? 1 : 0;
    }
    OBS_COUNT("measure.degraded.configs", degraded);
    OBS_COUNT("measure.degraded.failed_configs", failed);
  }
  return result;
}

void PeeringTestbed::deploy_barrier(DeploymentResult& result,
                                    const std::vector<char>& abandoned,
                                    bool faulty,
                                    DeployJournal* journal) const {
  const std::size_t n = result.configs.size();
  const std::size_t as_count = topo_.graph.size();

  // Configurations that need no measurement: abandoned ones, plus — on a
  // journal resume — configurations whose committed measurement will be
  // spliced back in from their partial artifact. Propagation still runs
  // for all of them (it re-seeds the warm chains bit-identically and
  // rebuilds truth/compliance/distances, which the journal does not store).
  const std::vector<char>* skip = &abandoned;
  std::vector<char> skip_storage;
  if (journal != nullptr && journal->skipped > 0) {
    skip_storage = abandoned;
    for (std::size_t i = 0; i < n; ++i) {
      if (journal->completed[i]) skip_storage[i] = 1;
    }
    skip = &skip_storage;
  }

  // Propagation runs through the campaign runner: memoized, ordered by
  // seed similarity, warm-started along per-worker chains (cold per-config
  // when warm_campaign is off). Outcomes are bit-identical either way; the
  // sink only extracts truth/compliance and snapshots measurement inputs,
  // writing to disjoint slots.
  CampaignRunnerOptions runner;
  runner.warm_start = config_.warm_campaign;

  // Per-AS route distances stream into per-chain min accumulators inside
  // the sink (calls sharing a chain never run concurrently, so no mutex)
  // and are min-merged afterwards — min is order-independent, so the
  // result matches a per-config materialization without the n x as_count
  // temporary rows.
  const std::size_t chain_count = campaign_chain_count(n, runner);
  std::vector<std::vector<std::uint32_t>> chain_min_distance(chain_count);

  // Measurement inputs are snapshotted per configuration inside the sink;
  // the heavy §IV pipeline itself runs in the measurement driver after
  // propagation. Memoized fan-out delivers identical configurations
  // consecutively per chain, so a one-deep per-chain cache lets them share
  // one feed collection and one forwarding-path set.
  struct OutcomeSnapshot {
    bool valid = false;
    std::vector<bgp::AnnouncementSpec> announcements;
    std::shared_ptr<const std::vector<measure::FeedEntry>> feeds;
    std::shared_ptr<const measure::ProbePathSet> probe_paths;
  };
  std::vector<measure::MeasurementTask> tasks;
  std::vector<OutcomeSnapshot> chain_snapshot;
  if (config_.measured_catchments) {
    tasks.resize(n);
    chain_snapshot.resize(chain_count);
  }

  propagate_campaign(engine_, origin_, result.configs,
                     [&](std::size_t chain, std::size_t i,
                         const bgp::RoutingOutcome& outcome) {
    OBS_TIMER("deploy.config_pipeline_ns");
    const bgp::Configuration& config = result.configs[i];
    if (!outcome.converged) {
      throw std::runtime_error("routing did not converge for '" +
                               config.label + "'");
    }
    result.engine_rounds[i] = outcome.rounds;
    result.truth[i] = bgp::extract_catchments(outcome, config);

    auto& distances = chain_min_distance[chain];
    if (distances.empty()) distances.assign(as_count, topology::kUnreachable);
    for (topology::AsId id = 0; id < as_count; ++id) {
      const bgp::Route& route = outcome.best[id];
      if (route.valid()) {
        distances[id] = std::min(
            distances[id],
            collapsed_distance(outcome.paths->view(route.path), origin_.asn));
      }
    }

    if (config_.audit_policies) {
      result.compliance[i] =
          audit_compliance(engine_, origin_, config, outcome);
    }

    if (config_.measured_catchments && !(*skip)[i]) {
      auto& snap = chain_snapshot[chain];
      if (!snap.valid || snap.announcements != config.announcements) {
        snap.valid = true;
        snap.announcements = config.announcements;
        snap.feeds = std::make_shared<const std::vector<measure::FeedEntry>>(
            feeds_.collect(outcome));
        snap.probe_paths = std::make_shared<const measure::ProbePathSet>(
            measure::ProbePathSet::extract(outcome, probes_, origin_id_));
      }
      tasks[i] = {i, snap.feeds, snap.probe_paths};
      if (config_.faults.any_feed()) {
        // Collector faults filter the (possibly shared) clean snapshot
        // per configuration; degrade() is stateless in i, so memo fan-out
        // sharing stays deterministic.
        std::uint32_t faulted = 0;
        tasks[i].feeds =
            std::make_shared<const std::vector<measure::FeedEntry>>(
                measure::FeedSimulator::degrade(*snap.feeds, injector_, i,
                                                origin_.asn, &faulted));
        tasks[i].feed_faults = faulted;
      }
    }
  }, runner);

  // Distance: min-merge the per-chain accumulators (chains that never ran
  // a configuration stay empty).
  result.min_route_distance.assign(as_count, topology::kUnreachable);
  for (const auto& chain : chain_min_distance) {
    if (chain.empty()) continue;
    for (topology::AsId id = 0; id < as_count; ++id) {
      result.min_route_distance[id] =
          std::min(result.min_route_distance[id], chain[id]);
    }
  }

  // The §IV measurement pipeline: embarrassingly parallel across
  // configurations, fanned out by the driver (scratch reuse per worker,
  // byte-identical for any worker count).
  if (config_.measured_catchments && n > 0) {
    measure::MeasurementDriverOptions driver_options;
    driver_options.workers = config_.measure_workers;
    driver_options.traceroute_rounds = config_.traceroute_rounds;
    const measure::MeasurementDriver driver(tracer_, repair_, inference_,
                                            probes_, origin_id_,
                                            driver_options);
    std::vector<fault::ConfigQuality> measured_quality;
    const bool any_skip =
        std::find(skip->begin(), skip->end(), char{1}) != skip->end();
    if (!any_skip) {
      result.measured = driver.run(tasks, faulty ? &measured_quality : nullptr);
      for (std::size_t i = 0; faulty && i < n; ++i) {
        merge_quality(result.quality[i], measured_quality[i], config_.faults);
      }
    } else {
      // Compact to live configurations; tasks keep their original
      // config_index, so salts — and thus fault and traceroute schedules —
      // are unchanged by the compaction.
      std::vector<measure::MeasurementTask> live;
      std::vector<std::size_t> live_idx;
      live.reserve(n);
      live_idx.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        if ((*skip)[i]) continue;
        live.push_back(std::move(tasks[i]));
        live_idx.push_back(i);
      }
      auto live_results = driver.run(live, faulty ? &measured_quality : nullptr);
      // Abandoned configurations get a sized-but-empty inference: nothing
      // observed, every catchment missing, so build_matrix leaves their
      // rows all-missing and imputation cannot resurrect them.
      measure::InferenceResult missing;
      missing.catchments.link_of.assign(as_count, bgp::kNoCatchment);
      missing.observed.assign(as_count, 0);
      for (std::size_t i = 0; i < n; ++i) {
        if (abandoned[i]) result.measured[i] = missing;
      }
      // Journal-committed configurations splice their recorded measurement
      // (and quality counts) back in instead of re-measuring.
      if (journal != nullptr) {
        for (std::size_t i = 0; i < n; ++i) {
          if (!journal->completed[i] || abandoned[i]) continue;
          result.measured[i] = std::move(journal->loaded[i].inference);
          if (faulty) {
            fault::ConfigQuality measured;
            const journal::ConfigRecord& record = journal->records[i];
            measured.feed_entries = record.feed_entries;
            measured.feed_faults = record.feed_faults;
            measured.traces = record.traces;
            measured.trace_faults = record.trace_faults;
            merge_quality(result.quality[i], measured, config_.faults);
          }
        }
      }
      for (std::size_t k = 0; k < live_idx.size(); ++k) {
        result.measured[live_idx[k]] = std::move(live_results[k]);
        if (faulty) {
          merge_quality(result.quality[live_idx[k]], measured_quality[k],
                        config_.faults);
        }
      }
    }
  }

  // Analysis sources (§IV-d) and the catchment matrix.
  if (config_.measured_catchments) {
    if (!result.measured.empty()) {
      // Quorum-aware baseline: the first configuration that actually has a
      // measurement anchors the source set. With every config abandoned
      // the source set is empty and the matrix has zero columns.
      std::size_t first = 0;
      while (first < n && abandoned[first]) ++first;
      if (first < n) {
        result.sources = measure::baseline_sources(result.measured[first]);
      }
      OBS_GAUGE("deploy.sources", result.sources.size());
      result.matrix = measure::build_matrix(result.measured, result.sources);
      double multi = 0.0;
      double coverage = 0.0;
      for (const auto& inferred : result.measured) {
        multi += inferred.multi_catchment_fraction;
        coverage += static_cast<double>(inferred.covered_count);
      }
      result.mean_multi_catchment = multi / static_cast<double>(n);
      result.mean_coverage = coverage / static_cast<double>(n);
    }
  } else if (!result.truth.empty()) {
    // Ground truth: sources are the ASes routed in the first configuration
    // (excluding the origin itself).
    for (topology::AsId id = 0; id < as_count; ++id) {
      if (id != origin_id_ && result.truth[0].link_of[id] != bgp::kNoCatchment) {
        result.sources.push_back(id);
      }
    }
    OBS_GAUGE("deploy.sources", result.sources.size());
    result.matrix.assign(n, result.sources.size());
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t s = 0; s < result.sources.size(); ++s) {
        result.matrix.set(i, s, result.truth[i].link_of[result.sources[s]]);
      }
    }
    OBS_GAUGE("analysis.matrix_bytes", result.matrix.size_bytes());
  }

  // Commit every newly measured configuration to the journal, ascending —
  // the same order the pipelined schedule's serialized commit stage uses,
  // so kill-point barrier ordinals are mode-invariant.
  if (journal != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      journal->append_config(i, result, abandoned, faulty);
    }
  }
}

void PeeringTestbed::deploy_pipelined(DeploymentResult& result,
                                      const std::vector<char>& abandoned,
                                      bool faulty,
                                      DeployJournal* journal) const {
  OBS_COUNT("deploy.pipelined_runs", 1);
  const std::size_t n = result.configs.size();
  const std::size_t as_count = topo_.graph.size();

  // As in barrier mode: skip the measurement (work stage) of abandoned and
  // journal-committed configurations; propagation and commits still cover
  // every index, so chain state and commit order are unchanged.
  const std::vector<char>* skip = &abandoned;
  std::vector<char> skip_storage;
  if (journal != nullptr && journal->skipped > 0) {
    skip_storage = abandoned;
    for (std::size_t i = 0; i < n; ++i) {
      if (journal->completed[i]) skip_storage[i] = 1;
    }
    skip = &skip_storage;
  }

  // Same plan as the barrier path: chain partitioning depends only on the
  // runner options and the unique-config count, never on the executor, so
  // every propagation (and therefore every outcome and round count) is
  // identical to deploy_barrier's.
  CampaignRunnerOptions runner;
  runner.warm_start = config_.warm_campaign;
  const CampaignPlan plan = plan_campaign(result.configs, runner);
  const std::size_t chains = plan.chains();
  const std::size_t unique_count = plan.unique.size();

  pipeline::ExecutorOptions exec;
  exec.workers = config_.measure_workers;
  exec.queue_depth = config_.pipeline_depth;
  const std::size_t workers = pipeline::effective_workers(exec);

  // Executor graph: produce = one warm-chain propagation step, work = the
  // §IV measurement of one configuration, commit = its analysis row. Every
  // configuration index is an item (abandoned ones no-op their work stage
  // so the commit order stays the full ascending index sequence).
  pipeline::GraphPlan graph;
  graph.items = n;
  graph.chain_steps.resize(chains);
  std::vector<std::size_t> slot_of(n, 0);  // config index -> unique slot
  for (std::size_t c = 0; c < chains; ++c) {
    graph.chain_steps[c].reserve(plan.chain_steps[c].size());
    for (const std::size_t u : plan.chain_steps[c]) {
      graph.chain_steps[c].push_back(plan.fanout[u]);
      for (const std::size_t idx : plan.fanout[u]) slot_of[idx] = u;
    }
  }

  // Streaming handoff: the produce stage leases its outcome to the step's
  // measurement items through a Handoff slot. The first work item to run
  // extracts the feed snapshot and probe paths into recycled buffers and
  // drops the outcome (release-publishing `extracted` so the chain may
  // consume — move, not copy — its warm baseline on the next step); the
  // last of the step's live items returns the buffers to the pool. Peak
  // memory is therefore O(chains * queue_depth) outcomes/snapshots instead
  // of O(n), even with a single worker.
  struct HandoffBuffers {
    std::vector<measure::FeedEntry> feeds;
    measure::ProbePathSet paths;
  };
  struct Handoff {
    std::shared_ptr<bgp::RoutingOutcome> outcome;
    std::once_flag once;
    std::atomic<bool> extracted{false};
    std::unique_ptr<HandoffBuffers> buffers;
    std::atomic<std::uint32_t> remaining{0};
  };
  std::vector<Handoff> handoffs(unique_count);

  class BufferPool {
   public:
    std::unique_ptr<HandoffBuffers> acquire() {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++live_;
      peak_ = std::max(peak_, live_);
      if (free_.empty()) return std::make_unique<HandoffBuffers>();
      auto buffers = std::move(free_.back());
      free_.pop_back();
      return buffers;
    }
    void release(std::unique_ptr<HandoffBuffers> buffers) {
      const std::lock_guard<std::mutex> lock(mutex_);
      --live_;
      free_.push_back(std::move(buffers));
    }
    std::size_t peak() const noexcept { return peak_; }

   private:
    std::mutex mutex_;
    std::vector<std::unique_ptr<HandoffBuffers>> free_;
    std::size_t live_ = 0;
    std::size_t peak_ = 0;
  };
  BufferPool pool;

  // Per-chain propagation state (produce calls for one chain are
  // serialized by the executor) and per-chain distance accumulators, as in
  // barrier mode.
  std::vector<ChainStepper> steppers;
  steppers.reserve(chains);
  for (std::size_t c = 0; c < chains; ++c) {
    steppers.emplace_back(engine_, origin_, result.configs, plan, c);
  }
  std::vector<Handoff*> last_handoff(chains, nullptr);
  std::vector<std::vector<std::uint32_t>> chain_min_distance(chains);

  measure::MeasurementDriverOptions driver_options;
  driver_options.workers = config_.measure_workers;
  driver_options.traceroute_rounds = config_.traceroute_rounds;
  const measure::MeasurementDriver driver(tracer_, repair_, inference_,
                                          probes_, origin_id_,
                                          driver_options);
  std::vector<measure::MeasurementDriver::Scratch> scratch(workers);
  std::vector<std::vector<measure::FeedEntry>> degraded_feeds(workers);
  std::vector<fault::ConfigQuality> measured_quality;
  if (faulty) measured_quality.assign(n, {});

  // Commit-stage state: commits run serialized in ascending config order,
  // so the first live configuration anchors the source set before any later
  // row is written — exactly build_matrix's shape.
  bool anchored = false;
  double multi = 0.0;
  double coverage = 0.0;
  measure::InferenceResult missing;  // shared template for abandoned rows
  missing.catchments.link_of.assign(as_count, bgp::kNoCatchment);
  missing.observed.assign(as_count, 0);

  pipeline::Stages stages;
  stages.produce = [&](std::size_t chain, std::size_t) {
    ChainStepper& stepper = steppers[chain];
    const std::size_t u = stepper.next_slot();
    Handoff* prev = last_handoff[chain];
    // Consume the warm baseline only once its lease is provably dropped
    // (acquire pairs with the extractor's release); otherwise the engine
    // copies it — byte-identical either way.
    const bool consume =
        prev == nullptr || prev->extracted.load(std::memory_order_acquire);
    const std::shared_ptr<bgp::RoutingOutcome> outcome =
        stepper.step(consume);
    if (!outcome->converged) {
      throw std::runtime_error(
          "routing did not converge for '" +
          result.configs[plan.unique[u]].label + "'");
    }

    auto& distances = chain_min_distance[chain];
    if (distances.empty()) distances.assign(as_count, topology::kUnreachable);
    for (topology::AsId id = 0; id < as_count; ++id) {
      const bgp::Route& route = outcome->best[id];
      if (route.valid()) {
        distances[id] = std::min(
            distances[id],
            collapsed_distance(outcome->paths->view(route.path), origin_.asn));
      }
    }

    std::uint32_t live = 0;
    for (const std::size_t idx : plan.fanout[u]) {
      OBS_TIMER("deploy.config_pipeline_ns");
      const bgp::Configuration& config = result.configs[idx];
      result.engine_rounds[idx] = outcome->rounds;
      result.truth[idx] = bgp::extract_catchments(*outcome, config);
      if (config_.audit_policies) {
        result.compliance[idx] =
            audit_compliance(engine_, origin_, config, *outcome);
      }
      live += (*skip)[idx] ? 0u : 1u;
    }

    if (live > 0) {
      Handoff& handoff = handoffs[u];
      handoff.outcome = outcome;
      handoff.remaining.store(live, std::memory_order_relaxed);
      last_handoff[chain] = &handoff;
    } else {
      // Nothing will measure this step, so no lease exists: the next step
      // may consume the baseline outright.
      last_handoff[chain] = nullptr;
    }
  };

  stages.work = [&](std::size_t i, std::size_t worker) {
    if ((*skip)[i]) return;
    Handoff& handoff = handoffs[slot_of[i]];
    std::call_once(handoff.once, [&] {
      handoff.buffers = pool.acquire();
      feeds_.collect_into(*handoff.outcome, handoff.buffers->feeds);
      measure::ProbePathSet::extract_into(*handoff.outcome, probes_,
                                          origin_id_, handoff.buffers->paths);
      handoff.outcome.reset();
      handoff.extracted.store(true, std::memory_order_release);
    });
    const std::vector<measure::FeedEntry>* feeds = &handoff.buffers->feeds;
    std::uint32_t feed_faults = 0;
    if (config_.faults.any_feed()) {
      // Collector faults filter the (possibly shared) clean snapshot per
      // configuration; degrade is stateless in i, so memo fan-out sharing
      // stays deterministic.
      std::vector<measure::FeedEntry>& buffer = degraded_feeds[worker];
      measure::FeedSimulator::degrade_into(handoff.buffers->feeds, injector_,
                                           i, origin_.asn, &feed_faults,
                                           buffer);
      feeds = &buffer;
    }
    fault::ConfigQuality* quality = faulty ? &measured_quality[i] : nullptr;
    if (quality != nullptr) quality->feed_faults = feed_faults;
    result.measured[i] =
        driver.measure_one(i, *feeds, handoff.buffers->paths, scratch[worker],
                           quality);
    if (handoff.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      pool.release(std::move(handoff.buffers));
    }
  };

  stages.commit = [&](std::size_t i) {
    const bool from_journal =
        journal != nullptr && journal->completed[i] && !abandoned[i];
    if (abandoned[i]) {
      // Sized-but-empty inference: nothing observed, row stays all-missing.
      result.measured[i] = missing;
    } else {
      if (from_journal) {
        // Splice the journaled measurement (and its recorded quality
        // counts); the work stage never ran for this index.
        result.measured[i] = std::move(journal->loaded[i].inference);
        if (faulty) {
          fault::ConfigQuality measured;
          const journal::ConfigRecord& record = journal->records[i];
          measured.feed_entries = record.feed_entries;
          measured.feed_faults = record.feed_faults;
          measured.traces = record.traces;
          measured.trace_faults = record.trace_faults;
          merge_quality(result.quality[i], measured, config_.faults);
        }
      } else if (faulty) {
        merge_quality(result.quality[i], measured_quality[i], config_.faults);
      }
      const measure::InferenceResult& inferred = result.measured[i];
      if (!anchored) {
        anchored = true;
        result.sources = measure::baseline_sources(inferred);
        result.matrix.assign(n, result.sources.size());
      }
      for (std::size_t s = 0; s < result.sources.size(); ++s) {
        const topology::AsId id = result.sources[s];
        if (inferred.observed[id]) {
          result.matrix.set(i, s, inferred.catchments.link_of[id]);
        }
      }
    }
    multi += result.measured[i].multi_catchment_fraction;
    coverage += static_cast<double>(result.measured[i].covered_count);
    if (journal != nullptr) {
      journal->append_config(i, result, abandoned, faulty);
    }
  };

  pipeline::run_graph(graph, stages, exec);
  OBS_GAUGE("pipeline.buffer_peak", pool.peak());

  // Post-run reductions, identical to barrier mode's epilogue.
  result.min_route_distance.assign(as_count, topology::kUnreachable);
  for (const auto& chain : chain_min_distance) {
    if (chain.empty()) continue;
    for (topology::AsId id = 0; id < as_count; ++id) {
      result.min_route_distance[id] =
          std::min(result.min_route_distance[id], chain[id]);
    }
  }

  // With every configuration abandoned no row ever anchored the sources:
  // the matrix has n rows and zero columns, as in barrier mode.
  if (!anchored) result.matrix.assign(n, 0);
  OBS_GAUGE("deploy.sources", result.sources.size());
  measure::impute_missing(result.matrix);
  OBS_GAUGE("analysis.matrix_bytes", result.matrix.size_bytes());
  result.mean_multi_catchment = multi / static_cast<double>(n);
  result.mean_coverage = coverage / static_cast<double>(n);
}

}  // namespace spooftrack::core
