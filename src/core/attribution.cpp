#include "core/attribution.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/stats.hpp"
#include <stdexcept>

namespace spooftrack::core {

TrafficBySize traffic_by_cluster_size(const Clustering& clustering,
                                      std::span<const double> volume) {
  if (volume.size() != clustering.cluster_of.size()) {
    throw std::invalid_argument("volume size does not match source count");
  }
  const auto sizes = clustering.sizes();

  // Volume per cluster, then aggregate by cluster size.
  std::vector<double> cluster_volume(clustering.cluster_count, 0.0);
  for (std::size_t s = 0; s < volume.size(); ++s) {
    cluster_volume[clustering.cluster_of[s]] += volume[s];
  }

  std::vector<std::pair<std::uint64_t, double>> by_size;
  by_size.reserve(clustering.cluster_count);
  for (std::uint32_t c = 0; c < clustering.cluster_count; ++c) {
    by_size.emplace_back(sizes[c], cluster_volume[c]);
  }
  std::sort(by_size.begin(), by_size.end());

  TrafficBySize out;
  double running = 0.0;
  for (std::size_t i = 0; i < by_size.size(); ++i) {
    running += by_size[i].second;
    const bool last_of_size =
        i + 1 == by_size.size() || by_size[i + 1].first != by_size[i].first;
    if (last_of_size) {
      out.cluster_size.push_back(by_size[i].first);
      out.cumulative_volume.push_back(running);
    }
  }
  return out;
}

AttributionResult attribute_clusters(
    const measure::CatchmentStore& matrix, const Clustering& clustering,
    const std::vector<std::vector<double>>& link_volume_per_config) {
  if (matrix.size() != link_volume_per_config.size()) {
    throw std::invalid_argument(
        "one link-volume vector is required per configuration");
  }
  AttributionResult result;
  result.score.assign(clustering.cluster_count,
                      -std::numeric_limits<double>::infinity());
  if (clustering.cluster_count == 0) return result;

  // Representative source per cluster (all members share the trajectory by
  // construction of the clustering).
  std::vector<std::uint32_t> representative(clustering.cluster_count,
                                            std::numeric_limits<std::uint32_t>::max());
  for (std::uint32_t s = 0; s < clustering.cluster_of.size(); ++s) {
    auto& rep = representative[clustering.cluster_of[s]];
    if (rep == std::numeric_limits<std::uint32_t>::max()) rep = s;
  }

  // Tiled word-gather of every representative trajectory up front:
  // scoring then streams contiguous bytes instead of one strided column
  // walk per cluster. Memberless cluster ids (possible in hand-built
  // clusterings) keep their -inf score.
  constexpr auto kNoRep = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> gathered;
  std::vector<std::uint32_t> slot(clustering.cluster_count, kNoRep);
  gathered.reserve(clustering.cluster_count);
  for (std::uint32_t c = 0; c < clustering.cluster_count; ++c) {
    if (representative[c] == kNoRep) continue;
    slot[c] = static_cast<std::uint32_t>(gathered.size());
    gathered.push_back(representative[c]);
  }
  std::vector<std::uint8_t> trajectories(gathered.size() * matrix.size());
  matrix.gather_columns(gathered, trajectories.data());

  constexpr double kEpsilon = 1e-6;
  for (std::uint32_t c = 0; c < clustering.cluster_count; ++c) {
    if (slot[c] == kNoRep) continue;
    const std::uint8_t* trajectory =
        trajectories.data() + std::size_t{slot[c]} * matrix.size();
    double score = 0.0;
    for (std::size_t k = 0; k < matrix.size(); ++k) {
      const std::uint8_t link = trajectory[k];
      const auto& volumes = link_volume_per_config[k];
      double observed = kEpsilon;
      if (link != bgp::kNoCatchment8 && link < volumes.size()) {
        observed += volumes[link];
      }
      score += std::log(observed);
    }
    result.score[c] = score;
  }

  result.ranking.resize(clustering.cluster_count);
  std::iota(result.ranking.begin(), result.ranking.end(), 0u);
  std::sort(result.ranking.begin(), result.ranking.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (result.score[a] != result.score[b]) {
                return result.score[a] > result.score[b];
              }
              return a < b;
            });
  return result;
}

MixtureResult attribute_mixture(
    const measure::CatchmentStore& matrix, const Clustering& clustering,
    const std::vector<std::vector<double>>& link_volume_per_config,
    double min_weight, std::size_t max_components,
    double robustness_quantile) {
  if (matrix.size() != link_volume_per_config.size()) {
    throw std::invalid_argument(
        "one link-volume vector is required per configuration");
  }
  MixtureResult result;
  result.residual_fraction = 1.0;
  if (clustering.cluster_count == 0 || matrix.empty()) return result;

  // Representative source per cluster (members share the trajectory).
  constexpr auto kNone = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> representative(clustering.cluster_count, kNone);
  for (std::uint32_t s = 0; s < clustering.cluster_of.size(); ++s) {
    auto& rep = representative[clustering.cluster_of[s]];
    if (rep == kNone) rep = s;
  }

  // Normalise volumes so weights are fractions of the total per config.
  auto residual = link_volume_per_config;
  for (auto& per_link : residual) {
    double total = 0.0;
    for (double v : per_link) total += v;
    if (total > 0.0) {
      for (double& v : per_link) v /= total;
    }
  }

  // Representative trajectories gathered contiguous once (tiled
  // word-gather); the greedy extraction below re-reads each one every
  // round, so the strided column walk was the hot path here.
  std::vector<std::uint32_t> gathered;
  std::vector<std::uint32_t> slot(clustering.cluster_count, kNone);
  gathered.reserve(clustering.cluster_count);
  for (std::uint32_t k = 0; k < clustering.cluster_count; ++k) {
    if (representative[k] == kNone) continue;
    slot[k] = static_cast<std::uint32_t>(gathered.size());
    gathered.push_back(representative[k]);
  }
  std::vector<std::uint8_t> trajectories(gathered.size() * matrix.size());
  matrix.gather_columns(gathered, trajectories.data());
  auto trajectory_of = [&](std::uint32_t cluster) {
    return trajectories.data() + std::size_t{slot[cluster]} * matrix.size();
  };

  // Consistent weight of one cluster against the residual: a robust low
  // quantile of the residual volume along the cluster's trajectory.
  std::vector<double> along_trajectory;
  auto weight_of = [&](std::uint32_t cluster) {
    const std::uint8_t* trajectory = trajectory_of(cluster);
    along_trajectory.clear();
    for (std::size_t c = 0; c < matrix.size(); ++c) {
      const std::uint8_t link = trajectory[c];
      along_trajectory.push_back(
          (link != bgp::kNoCatchment8 && link < residual[c].size())
              ? residual[c][link]
              : 0.0);
    }
    if (along_trajectory.empty()) return 0.0;
    return util::percentile(along_trajectory,
                            robustness_quantile * 100.0);
  };

  std::vector<bool> used(clustering.cluster_count, false);
  while (result.components.size() < max_components) {
    std::uint32_t best_cluster = kNone;
    double best_weight = 0.0;
    for (std::uint32_t k = 0; k < clustering.cluster_count; ++k) {
      if (used[k] || representative[k] == kNone) continue;
      const double w = weight_of(k);
      if (w > best_weight) {
        best_weight = w;
        best_cluster = k;
      }
    }
    if (best_cluster == kNone || best_weight < min_weight) break;

    used[best_cluster] = true;
    result.components.push_back({best_cluster, best_weight});
    const std::uint8_t* trajectory = trajectory_of(best_cluster);
    for (std::size_t c = 0; c < matrix.size(); ++c) {
      const std::uint8_t link = trajectory[c];
      if (link != bgp::kNoCatchment8 && link < residual[c].size()) {
        residual[c][link] = std::max(0.0, residual[c][link] - best_weight);
      }
    }
    result.residual_fraction -= best_weight;
  }
  result.residual_fraction = std::max(0.0, result.residual_fraction);
  return result;
}

}  // namespace spooftrack::core
