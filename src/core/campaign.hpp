// Measurement-campaign time model (§IV-a, §V-C).
//
// The paper keeps each announcement configuration active for 70 minutes:
// BGP convergence (under 2.5 minutes 99% of the time, per LIFEGUARD) plus
// enough time for three traceroute rounds at the RIPE Atlas 20-minute
// cadence. Deploying 705 configurations therefore takes weeks — unless the
// origin splits the plan across multiple experiment prefixes announced
// concurrently (§V-C), trading IPv4 space for wall-clock time.
#pragma once

#include <cstdint>
#include <string>

namespace spooftrack::core {

struct CampaignModel {
  /// Minutes each configuration stays deployed.
  double minutes_per_config = 70.0;
  /// Of which: worst-case convergence wait before measuring.
  double convergence_minutes = 2.5;
  /// Traceroute rounds per configuration and their cadence.
  std::uint32_t traceroute_rounds = 3;
  double traceroute_cadence_minutes = 20.0;
  /// Concurrently announced experiment prefixes (1 = the paper's setup).
  std::uint32_t concurrent_prefixes = 1;

  /// Whether the dwell time actually fits the measurement schedule.
  bool feasible() const noexcept {
    return minutes_per_config >=
           convergence_minutes +
               traceroute_rounds * traceroute_cadence_minutes;
  }

  /// Total wall-clock minutes to deploy `configs` configurations.
  double total_minutes(std::size_t configs) const noexcept;
  double total_days(std::size_t configs) const noexcept {
    return total_minutes(configs) / (60.0 * 24.0);
  }

  /// Prefixes needed to finish `configs` configurations within
  /// `budget_days`; 0 when even infinite parallelism cannot help
  /// (degenerate inputs).
  std::uint32_t prefixes_for_deadline(std::size_t configs,
                                      double budget_days) const noexcept;

  std::string describe(std::size_t configs) const;
};

}  // namespace spooftrack::core
