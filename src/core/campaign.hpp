// Measurement-campaign time model (§IV-a, §V-C).
//
// The paper keeps each announcement configuration active for 70 minutes:
// BGP convergence (under 2.5 minutes 99% of the time, per LIFEGUARD) plus
// enough time for three traceroute rounds at the RIPE Atlas 20-minute
// cadence. Deploying 705 configurations therefore takes weeks — unless the
// origin splits the plan across multiple experiment prefixes announced
// concurrently (§V-C), trading IPv4 space for wall-clock time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bgp/engine.hpp"

namespace spooftrack::core {

struct CampaignModel {
  /// Minutes each configuration stays deployed.
  double minutes_per_config = 70.0;
  /// Of which: worst-case convergence wait before measuring.
  double convergence_minutes = 2.5;
  /// Traceroute rounds per configuration and their cadence.
  std::uint32_t traceroute_rounds = 3;
  double traceroute_cadence_minutes = 20.0;
  /// Concurrently announced experiment prefixes (1 = the paper's setup).
  std::uint32_t concurrent_prefixes = 1;

  /// Whether the dwell time actually fits the measurement schedule.
  bool feasible() const noexcept {
    return minutes_per_config >=
           convergence_minutes +
               traceroute_rounds * traceroute_cadence_minutes;
  }

  /// Total wall-clock minutes to deploy `configs` configurations.
  double total_minutes(std::size_t configs) const noexcept;
  double total_days(std::size_t configs) const noexcept {
    return total_minutes(configs) / (60.0 * 24.0);
  }

  /// Prefixes needed to finish `configs` configurations within
  /// `budget_days`; 0 when even infinite parallelism cannot help
  /// (degenerate inputs).
  std::uint32_t prefixes_for_deadline(std::size_t configs,
                                      double budget_days) const noexcept;

  std::string describe(std::size_t configs) const;
};

// ---------------------------------------------------------------------------
// Campaign propagation runner
//
// Configurations within a campaign differ only in their seed routes (link
// subsets, prepends, poisons, no-export targets), so re-propagating every AS
// from scratch per configuration wastes almost all of the work. The runner
// amortizes it three ways:
//
//   1. memoization — configurations with identical announcement lists have
//      identical seed tables, hence identical routing outcomes: propagate
//      once, fan the outcome out;
//   2. similarity ordering — greedy nearest-neighbor over announcement
//      specs (config_gen's seed_distance) so consecutive configurations
//      differ in as few seeds as possible;
//   3. warm-start chains — each worker propagates a contiguous run of the
//      ordered plan with Engine::run_warm, re-routing only the delta ripple
//      of each step; only chain heads pay a cold propagation.
//
// Outcomes are bit-identical to per-config cold propagation (best routes,
// next hops, announcement ids — Engine::run_warm's equivalence guarantee),
// so the runner is a drop-in replacement on any campaign hot path.
// ---------------------------------------------------------------------------

struct CampaignRunnerOptions {
  /// Worker threads (0 = util::default_worker_count()).
  std::size_t workers = 0;
  /// Warm-start each configuration from its chain predecessor; false
  /// cold-propagates every configuration (ablation / comparison baseline).
  bool warm_start = true;
  /// Propagate each distinct announcement list once and share the outcome.
  bool memoize = true;
  /// Reorder (unique) configurations by seed similarity before chaining.
  bool order_chains = true;
  /// Similarity ordering is O(n^2); plans larger than this keep their input
  /// order (the cap is reported through CampaignRunStats::ordered).
  std::size_t max_ordering_configs = 4096;
};

struct CampaignRunStats {
  std::size_t configs = 0;         // configurations submitted
  std::size_t unique_configs = 0;  // distinct announcement lists propagated
  std::size_t memo_hits = 0;       // configs served from a shared outcome
  std::size_t cold_runs = 0;       // chain heads (full propagation)
  std::size_t warm_runs = 0;       // warm-started propagations
  bool ordered = false;            // similarity ordering was applied
  /// Sum of Jacobi rounds across all propagations (cold + warm); the
  /// headline measure of how much iteration work warm-starting saved.
  std::uint64_t total_rounds = 0;
};

/// Called once per submitted configuration index with its routing outcome.
/// Invoked concurrently from worker threads, each index exactly once;
/// memoized configurations receive a reference to the shared outcome. The
/// sink must not retain the reference beyond the call unless it copies.
///
/// `chain` identifies the propagation chain delivering the outcome:
/// calls sharing a chain id never run concurrently, and chain ids are
/// always < campaign_chain_count(configs.size(), options). Sinks can
/// therefore keep mutex-free per-chain accumulators (e.g. streaming
/// min/sum reductions) and merge them after propagate_campaign returns.
using CampaignOutcomeSink =
    std::function<void(std::size_t chain, std::size_t config_index,
                       const bgp::RoutingOutcome& outcome)>;

/// Upper bound on the chain ids a campaign over `config_count`
/// configurations can deliver under `options` (memoization may shrink the
/// actual count). Size per-chain sink accumulators with this.
std::size_t campaign_chain_count(std::size_t config_count,
                                 const CampaignRunnerOptions& options = {});

// ---------------------------------------------------------------------------
// Static campaign plan + resumable chain stepper
//
// propagate_campaign's memoize → order → chain logic, exposed as data so a
// caller can drive the chains itself — the pipelined deploy path
// (core/experiment) interleaves chain steps with measurement and analysis
// through the pipeline executor instead of running chains to completion
// behind a barrier. propagate_campaign itself is implemented on the same
// plan + stepper, so both paths share one propagation schedule: chain
// partitioning (and therefore every outcome, warm-start round count and
// memo fan-out) is identical whichever driver runs it.
// ---------------------------------------------------------------------------

struct CampaignPlan {
  /// Representative configuration index per distinct announcement list.
  std::vector<std::size_t> unique;
  /// Per unique slot: every configuration index sharing its outcome.
  std::vector<std::vector<std::size_t>> fanout;
  /// Per chain: the unique slots it propagates, in step order. Warm plans
  /// take contiguous slices of the similarity order; cold plans stride over
  /// the unique slots (matching the historical cold baseline).
  std::vector<std::vector<std::size_t>> chain_steps;
  bool warm_start = true;
  bool ordered = false;  // similarity ordering was applied

  std::size_t chains() const noexcept { return chain_steps.size(); }
};

/// Builds the campaign plan for `configs` under `options`: memoization,
/// similarity ordering, chain partitioning. Pure planning — no propagation
/// runs. chain_steps.size() == campaign_chain_count(configs.size(), options)
/// clamped by the number of unique configurations.
CampaignPlan plan_campaign(const std::vector<bgp::Configuration>& configs,
                           const CampaignRunnerOptions& options = {});

/// Steps one chain of a CampaignPlan: each step() propagates the chain's
/// next unique slot (warm-started from the previous step when the plan
/// says so) and returns the outcome as a shared_ptr the caller may lease
/// to concurrent consumers. The plan and configs must outlive the stepper;
/// a stepper is driven from one thread at a time (the executor's per-chain
/// produce serialization provides exactly that).
class ChainStepper {
 public:
  ChainStepper(const bgp::Engine& engine, const bgp::OriginSpec& origin,
               const std::vector<bgp::Configuration>& configs,
               const CampaignPlan& plan, std::size_t chain);

  bool done() const noexcept { return pos_ >= steps_->size(); }
  std::size_t position() const noexcept { return pos_; }
  /// Unique slot the next step() will propagate (undefined when done()).
  std::size_t next_slot() const noexcept { return (*steps_)[pos_]; }

  /// Propagates the next step and returns its outcome. `consume_baseline`
  /// declares that nobody will read the previous step's outcome again
  /// (every lease was dropped), letting the engine move its routing state
  /// and arena into the warm run; pass false while a lease is still live
  /// and the engine deep-copies the baseline instead — results are
  /// byte-identical either way (Engine::run_warm_leased).
  std::shared_ptr<bgp::RoutingOutcome> step(bool consume_baseline);

  /// Cold/warm run and round accounting for the steps taken so far.
  const CampaignRunStats& stats() const noexcept { return stats_; }

 private:
  const bgp::Engine* engine_;
  const bgp::OriginSpec* origin_;
  const std::vector<bgp::Configuration>* configs_;
  const CampaignPlan* plan_;
  const std::vector<std::size_t>* steps_;
  std::size_t pos_ = 0;
  std::shared_ptr<bgp::RoutingOutcome> prev_;
  const bgp::Configuration* prev_config_ = nullptr;
  std::optional<bgp::Engine::Prepared> prev_prep_;
  CampaignRunStats stats_;
};

/// Propagates every configuration of a campaign through the engine using
/// memoization + similarity-ordered warm-start chains (see above) and
/// streams the outcomes to `sink`. Outcomes are delivered in chain order,
/// not input order; use the index argument to place results. Throws
/// whatever the engine throws (first error wins, propagation stops).
CampaignRunStats propagate_campaign(const bgp::Engine& engine,
                                    const bgp::OriginSpec& origin,
                                    const std::vector<bgp::Configuration>& configs,
                                    const CampaignOutcomeSink& sink,
                                    const CampaignRunnerOptions& options = {});

/// Convenience wrapper collecting the outcomes in input order.
std::vector<bgp::RoutingOutcome> propagate_campaign_collect(
    const bgp::Engine& engine, const bgp::OriginSpec& origin,
    const std::vector<bgp::Configuration>& configs,
    const CampaignRunnerOptions& options = {},
    CampaignRunStats* stats = nullptr);

}  // namespace spooftrack::core
