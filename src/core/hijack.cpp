#include "core/hijack.hpp"

#include <stdexcept>

namespace spooftrack::core {

std::vector<HijackScenario> hijack_coverage(
    const bgp::CatchmentMap& map, const bgp::Configuration& config) {
  const std::size_t n = config.announcements.size();
  if (n == 0 || n > 20) {
    throw std::invalid_argument("hijack coverage needs 1..20 announcements");
  }

  // Routed ASes per announcement index, from one pass over the catchment
  // map (CatchmentMap::counts) instead of an announcements-per-AS scan.
  // Duplicate links credit only the first announcement, matching the old
  // first-match loop.
  const std::vector<std::size_t> link_counts =
      map.counts(bgp::kMaxCatchmentLinks);
  std::vector<std::uint64_t> per_announcement(n, 0);
  const std::uint64_t routed = map.routed_count();
  for (std::size_t a = 0; a < n; ++a) {
    const bgp::LinkId link = config.announcements[a].link;
    bool duplicate = false;
    for (std::size_t b = 0; b < a && !duplicate; ++b) {
      duplicate = config.announcements[b].link == link;
    }
    if (!duplicate && link < link_counts.size()) {
      per_announcement[a] = link_counts[link];
    }
  }

  std::vector<HijackScenario> scenarios;
  if (routed == 0) return scenarios;
  const auto total = static_cast<double>(routed);
  const std::uint32_t masks = 1u << n;
  for (std::uint32_t mask = 1; mask + 1 < masks; ++mask) {
    HijackScenario scenario;
    scenario.hijacker_mask = mask;
    std::uint64_t captured = 0;
    for (std::size_t a = 0; a < n; ++a) {
      if (mask & (1u << a)) {
        ++scenario.hijacker_announcements;
        captured += per_announcement[a];
      }
    }
    scenario.captured_fraction = static_cast<double>(captured) / total;
    scenarios.push_back(scenario);
  }
  return scenarios;
}

}  // namespace spooftrack::core
