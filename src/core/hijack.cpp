#include "core/hijack.hpp"

#include <stdexcept>

namespace spooftrack::core {

std::vector<HijackScenario> hijack_coverage(
    const bgp::CatchmentMap& map, const bgp::Configuration& config) {
  const std::size_t n = config.announcements.size();
  if (n == 0 || n > 20) {
    throw std::invalid_argument("hijack coverage needs 1..20 announcements");
  }

  // Routed ASes per announcement index.
  std::vector<std::uint64_t> per_announcement(n, 0);
  std::uint64_t routed = 0;
  for (bgp::LinkId link : map.link_of) {
    if (link == bgp::kNoCatchment) continue;
    ++routed;
    for (std::size_t a = 0; a < n; ++a) {
      if (config.announcements[a].link == link) {
        ++per_announcement[a];
        break;
      }
    }
  }

  std::vector<HijackScenario> scenarios;
  if (routed == 0) return scenarios;
  const auto total = static_cast<double>(routed);
  const std::uint32_t masks = 1u << n;
  for (std::uint32_t mask = 1; mask + 1 < masks; ++mask) {
    HijackScenario scenario;
    scenario.hijacker_mask = mask;
    std::uint64_t captured = 0;
    for (std::size_t a = 0; a < n; ++a) {
      if (mask & (1u << a)) {
        ++scenario.hijacker_announcements;
        captured += per_announcement[a];
      }
    }
    scenario.captured_fraction = static_cast<double>(captured) / total;
    scenarios.push_back(scenario);
  }
  return scenarios;
}

}  // namespace spooftrack::core
