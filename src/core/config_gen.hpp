// Systematic announcement-configuration generation (§III-A): the paper's
// three techniques for inducing route and catchment changes.
//
//  (a) Location phase: announce from all subsets of peering links of size
//      >= |L| - max_removals, in decreasing size order — deterministically
//      uncovers at least max_removals+1 routes per source.
//  (b) Prepending phase: for each location-phase configuration, prepend the
//      origin ASN (4x by default) on subsets of the active links, in
//      increasing subset-size order — forces BGP's length tiebreak to
//      expose alternate equal-LocalPref routes.
//  (c) Poisoning phase: announce from all links and poison one neighbor of
//      one directly-connected transit provider on that provider's link —
//      moves traffic off the heavily-used first-hop links.
//
// With 7 links, max_removals = 3 and single-link prepend sets this yields
// the paper's 64 + 294 + (up to) 347 = 705 configurations.
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/announcement.hpp"
#include "topology/as_graph.hpp"

namespace spooftrack::core {

struct GeneratorOptions {
  /// Location phase: maximum number of links removed from L.
  std::uint32_t max_removals = 3;
  /// Prepending phase: maximum size of the prepended subset P.
  std::uint32_t max_prepend_set = 1;
  /// Times the origin ASN is prepended (paper: 4, longer than most paths).
  std::uint32_t prepend_count = 4;
  /// Poisoning phase: cap on generated configurations (paper found 347).
  std::size_t max_poison_configs = 347;
  /// Community phase (§VIII future work): cap on no-export configurations
  /// (0 disables the phase; it is an extension beyond the paper's plan).
  std::size_t max_community_configs = 0;
};

class ConfigGenerator {
 public:
  explicit ConfigGenerator(const bgp::OriginSpec& origin,
                           GeneratorOptions options = {});

  /// §III-A(a). The first configuration announces from every link.
  std::vector<bgp::Configuration> location_phase() const;

  /// §III-A(b): for each base configuration, one extra configuration per
  /// non-empty subset of its active links with size <= max_prepend_set,
  /// in increasing subset-size order.
  std::vector<bgp::Configuration> prepend_phase(
      const std::vector<bgp::Configuration>& bases) const;

  /// §III-A(c): per (link, provider-neighbor) pair, announce everywhere and
  /// poison that neighbor on that link. Neighbors are drawn from the
  /// topology (CAIDA + traceroute + feeds in the paper); the origin and the
  /// other link providers are excluded. Pairs are interleaved round-robin
  /// across links so a cap keeps balanced link coverage.
  std::vector<bgp::Configuration> poison_phase(
      const topology::AsGraph& graph) const;

  /// §VIII future work: like the poisoning phase, but steering with a
  /// no-export community honoured by the link's provider instead of path
  /// poisoning. Moves the same first-hop traffic without tripping loop
  /// prevention exemptions or tier-1 route-leak filters.
  std::vector<bgp::Configuration> community_phase(
      const topology::AsGraph& graph) const;

  /// All enabled phases concatenated in deployment order.
  std::vector<bgp::Configuration> full_plan(
      const topology::AsGraph& graph) const;

  /// Number of configurations the location (+ prepending) phases produce
  /// for `links` peering links and `removals` maximum removals — the
  /// paper's closed forms (e.g. 64 and 358 for 7 links, 3 removals).
  static std::size_t location_phase_size(std::size_t links,
                                         std::uint32_t removals);
  static std::size_t location_and_prepend_size(std::size_t links,
                                               std::uint32_t removals);

  const bgp::OriginSpec& origin() const noexcept { return origin_; }
  const GeneratorOptions& options() const noexcept { return options_; }

 private:
  bgp::OriginSpec origin_;
  GeneratorOptions options_;
};

/// All size-k subsets of {0..n-1} in lexicographic order.
std::vector<std::vector<std::uint32_t>> combinations(std::uint32_t n,
                                                     std::uint32_t k);

/// Seed-edit distance between two configurations: the number of peering
/// links whose announcement differs — absent vs announced, a different
/// announcement id (index within the configuration), or a different spec
/// (prepend count, poison set, no-export set). This counts exactly the
/// link providers whose seed entry the routing engine would see change,
/// i.e. the round-0 active set of a warm-started propagation between the
/// two configurations (before neighbor expansion).
std::uint32_t seed_distance(const bgp::Configuration& a,
                            const bgp::Configuration& b);

/// Greedy nearest-neighbor order over `configs` by seed_distance, starting
/// from index `start`: repeatedly appends the unvisited configuration
/// closest to the last appended one (ties resolved toward the lower
/// index, so the order is deterministic). Returns a permutation of
/// [0, configs.size()). Campaign runners use this to chain warm-started
/// propagations over minimal seed deltas; O(n^2) in the number of
/// configurations.
std::vector<std::size_t> order_by_similarity(
    const std::vector<bgp::Configuration>& configs, std::size_t start = 0);

}  // namespace spooftrack::core
