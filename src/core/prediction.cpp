#include "core/prediction.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace spooftrack::core {

ConfigDescriptor ConfigDescriptor::from(const bgp::Configuration& config) {
  ConfigDescriptor descriptor;
  for (const auto& spec : config.announcements) {
    descriptor.active_mask |= 1u << spec.link;
    if (spec.prepend > 0) descriptor.prepend_mask |= 1u << spec.link;
  }
  return descriptor;
}

CatchmentPredictor::CatchmentPredictor(std::size_t source_count,
                                       std::size_t link_count)
    : links_(link_count),
      wins_(source_count * link_count * link_count, 0),
      strong_wins_(source_count * link_count * link_count, 0),
      seen_(source_count, 0) {
  if (link_count > 16) {
    throw std::invalid_argument("predictor supports at most 16 links");
  }
}

void CatchmentPredictor::observe_source(const ConfigDescriptor& config,
                                        std::size_t source,
                                        bgp::LinkId chosen) {
  if (chosen == bgp::kNoCatchment || chosen >= links_ ||
      !config.active(chosen)) {
    return;
  }
  seen_[source] = 1;
  for (bgp::LinkId other = 0; other < links_; ++other) {
    if (other == chosen || !config.active(other)) continue;
    auto& count = wins_[index(source, chosen, other)];
    if (count < std::numeric_limits<std::uint16_t>::max()) ++count;
    if (config.prepended(chosen) && !config.prepended(other)) {
      auto& strong = strong_wins_[index(source, chosen, other)];
      if (strong < std::numeric_limits<std::uint16_t>::max()) ++strong;
    }
  }
}

void CatchmentPredictor::observe(const ConfigDescriptor& config,
                                 std::span<const bgp::LinkId> row) {
  if (row.size() != seen_.size()) {
    throw std::invalid_argument("row size does not match source count");
  }
  ++observed_;
  for (std::size_t s = 0; s < row.size(); ++s) {
    observe_source(config, s, row[s]);
  }
}

void CatchmentPredictor::observe(const ConfigDescriptor& config,
                                 std::span<const std::uint8_t> row) {
  if (row.size() != seen_.size()) {
    throw std::invalid_argument("row size does not match source count");
  }
  ++observed_;
  const std::size_t n = row.size();
  std::size_t s = 0;
  while (s < n) {
    if (s + 8 <= n) {
      // Missing cells contribute nothing; skip saturated-missing stretches
      // eight encoded cells per 64-bit load.
      std::uint64_t word;
      std::memcpy(&word, row.data() + s, sizeof word);
      if (word == ~std::uint64_t{0}) {
        s += 8;
        continue;
      }
    }
    observe_source(config, s, measure::CatchmentStore::decode(row[s]));
    ++s;
  }
}

double CatchmentPredictor::accuracy(
    const ConfigDescriptor& config,
    std::span<const std::uint8_t> actual) const {
  std::size_t total = 0, correct = 0;
  const std::size_t n = std::min(actual.size(), seen_.size());
  std::size_t s = 0;
  while (s < n) {
    if (s + 8 <= n) {
      // Word-skip stretches of missing cells (they are excluded from the
      // accuracy denominator anyway).
      std::uint64_t word;
      std::memcpy(&word, actual.data() + s, sizeof word);
      if (word == ~std::uint64_t{0}) {
        s += 8;
        continue;
      }
    }
    if (actual[s] != bgp::kNoCatchment8) {
      ++total;
      correct += predict(config, s) == actual[s];
    }
    ++s;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) /
                          static_cast<double>(total);
}

bgp::LinkId CatchmentPredictor::copeland(std::size_t source,
                                         std::uint32_t candidates) const {
  bgp::LinkId best = bgp::kNoCatchment;
  int best_score = std::numeric_limits<int>::min();
  std::uint32_t best_wins = 0;
  for (bgp::LinkId link = 0; link < links_; ++link) {
    if (!((candidates >> link) & 1u)) continue;
    int score = 0;
    std::uint32_t total_wins = 0;
    for (bgp::LinkId other = 0; other < links_; ++other) {
      if (other == link || !((candidates >> other) & 1u)) continue;
      const int w = wins_[index(source, link, other)];
      const int l = wins_[index(source, other, link)];
      if (w > l) ++score;
      else if (w < l) --score;
      total_wins += static_cast<std::uint32_t>(w);
    }
    if (best == bgp::kNoCatchment || score > best_score ||
        (score == best_score && total_wins > best_wins)) {
      best = link;
      best_score = score;
      best_wins = total_wins;
    }
  }
  return best;
}

bgp::LinkId CatchmentPredictor::predict(const ConfigDescriptor& config,
                                        std::size_t source) const {
  if (!seen_[source] || config.active_mask == 0) return bgp::kNoCatchment;
  // First tier: active links without prepending; fall back to all active
  // links when everything active is prepended.
  const std::uint32_t unprepended =
      config.active_mask & ~config.prepend_mask;
  const std::uint32_t first_tier =
      unprepended != 0 ? unprepended : config.active_mask;
  const bgp::LinkId choice = copeland(source, first_tier);

  // LocalPref override: if the source historically beats every first-tier
  // candidate with a prepended link (it keeps choosing that link even when
  // longer alternatives exist), keep it. Approximated by checking whether
  // some prepended active link dominates the chosen one head-to-head.
  const std::uint32_t prepended_active =
      config.active_mask & config.prepend_mask;
  if (choice != bgp::kNoCatchment && prepended_active != 0) {
    for (bgp::LinkId link = 0; link < links_; ++link) {
      if (!((prepended_active >> link) & 1u)) continue;
      // LocalPref loyalty: the link won against the first-tier choice
      // even while prepended, and never lost to it.
      if (strong_wins_[index(source, link, choice)] > 0 &&
          wins_[index(source, choice, link)] == 0) {
        return link;
      }
    }
  }
  return choice;
}

std::vector<bgp::LinkId> CatchmentPredictor::predict_row(
    const ConfigDescriptor& config) const {
  std::vector<bgp::LinkId> row(seen_.size(), bgp::kNoCatchment);
  for (std::size_t s = 0; s < seen_.size(); ++s) {
    row[s] = predict(config, s);
  }
  return row;
}

double CatchmentPredictor::accuracy(
    const ConfigDescriptor& config,
    std::span<const bgp::LinkId> actual) const {
  std::size_t total = 0, correct = 0;
  for (std::size_t s = 0; s < actual.size() && s < seen_.size(); ++s) {
    if (actual[s] == bgp::kNoCatchment) continue;
    ++total;
    correct += predict(config, s) == actual[s];
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) /
                          static_cast<double>(total);
}

}  // namespace spooftrack::core
