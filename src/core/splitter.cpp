#include "core/splitter.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "bgp/catchment.hpp"

namespace spooftrack::core {

namespace {

bgp::Configuration all_links_config(const bgp::OriginSpec& origin,
                                    const std::string& label) {
  bgp::Configuration config;
  config.label = label;
  for (const auto& link : origin.links) {
    config.announcements.push_back({link.id, 0, {}, {}});
  }
  return config;
}

}  // namespace

bgp::Configuration SplitProposal::to_poison_config(
    const bgp::OriginSpec& origin) const {
  auto config = all_links_config(
      origin, "split-poison l" + std::to_string(link) + " AS" +
                  std::to_string(target));
  config.announcements[link].poisoned.push_back(target);
  return config;
}

bgp::Configuration SplitProposal::to_community_config(
    const bgp::OriginSpec& origin) const {
  auto config = all_links_config(
      origin, "split-noexport l" + std::to_string(link) + " AS" +
                  std::to_string(target));
  config.announcements[link].no_export_to.push_back(target);
  return config;
}

std::vector<SplitProposal> propose_splits(
    const bgp::Engine& engine, const bgp::OriginSpec& origin,
    const bgp::Configuration& baseline, const bgp::RoutingOutcome& outcome,
    const Clustering& clustering,
    const std::vector<topology::AsId>& sources,
    const SplitterOptions& options) {
  const auto& graph = engine.graph();
  const auto origin_id = graph.id_of(origin.asn);
  if (!origin_id) return {};

  const auto catchments = bgp::extract_catchments(outcome, baseline);

  // ASNs that cannot be steering targets: the origin and link providers.
  std::unordered_set<topology::Asn> excluded{origin.asn};
  for (const auto& link : origin.links) excluded.insert(link.provider);

  const auto members_by_cluster = clustering.members();
  std::vector<SplitProposal> proposals;

  for (std::uint32_t cluster = 0; cluster < clustering.cluster_count;
       ++cluster) {
    const auto& members = members_by_cluster[cluster];
    if (members.size() < options.min_cluster_size) continue;

    // Count, per on-path AS, how many members traverse it; track the link
    // each member ingresses on (cluster members share it under the
    // baseline configuration by construction, but be defensive).
    std::unordered_map<topology::Asn, std::uint32_t> crossings;
    bgp::LinkId cluster_link = bgp::kNoCatchment;
    std::uint32_t routed_members = 0;
    for (std::uint32_t member : members) {
      const topology::AsId source = sources[member];
      if (catchments[source] == bgp::kNoCatchment) continue;
      ++routed_members;
      if (cluster_link == bgp::kNoCatchment) {
        cluster_link = catchments[source];
      }
      const auto path = bgp::forwarding_path(outcome, source, *origin_id);
      for (topology::AsId hop : path) {
        const topology::Asn asn = graph.asn_of(hop);
        if (hop == source || excluded.contains(asn)) continue;
        ++crossings[asn];
      }
    }
    if (routed_members < options.min_cluster_size ||
        cluster_link == bgp::kNoCatchment) {
      continue;
    }

    // Keep the best-balanced strict subsets.
    std::vector<SplitProposal> local;
    for (const auto& [asn, count] : crossings) {
      if (count == 0 || count >= routed_members) continue;
      SplitProposal proposal;
      proposal.cluster = cluster;
      proposal.cluster_size = routed_members;
      proposal.target = asn;
      proposal.link = cluster_link;
      proposal.members_moved = count;
      proposal.balance =
          static_cast<double>(count) *
          static_cast<double>(routed_members - count) /
          (static_cast<double>(routed_members) *
           static_cast<double>(routed_members));
      local.push_back(proposal);
    }
    std::sort(local.begin(), local.end(),
              [](const SplitProposal& a, const SplitProposal& b) {
                if (a.balance != b.balance) return a.balance > b.balance;
                return a.target < b.target;
              });
    // With verification on, keep extra heuristic candidates per cluster so
    // the simulator has alternatives when the top pick fails to split.
    const std::size_t local_cap =
        options.verify_with_engine
            ? options.per_cluster *
                  std::max<std::size_t>(options.candidate_factor, 1)
            : options.per_cluster;
    if (local.size() > local_cap) {
      local.resize(local_cap);
    }
    proposals.insert(proposals.end(), local.begin(), local.end());
  }

  auto by_gain = [](const SplitProposal& a, const SplitProposal& b) {
    // Prioritise big clusters, then balance.
    const double ga = a.balance * a.cluster_size;
    const double gb = b.balance * b.cluster_size;
    if (ga != gb) return ga > gb;
    return a.target < b.target;
  };
  std::sort(proposals.begin(), proposals.end(), by_gain);

  if (!options.verify_with_engine) {
    if (proposals.size() > options.max_proposals) {
      proposals.resize(options.max_proposals);
    }
    return proposals;
  }

  // Look-ahead verification: simulate the most promising candidates and
  // keep only those whose deployment actually partitions their cluster,
  // re-scoring by the realised split (Gini impurity of the new buckets).
  const std::size_t budget =
      std::min(proposals.size(),
               options.max_proposals *
                   std::max<std::size_t>(options.candidate_factor, 1));
  std::vector<SplitProposal> verified;
  for (std::size_t i = 0; i < budget; ++i) {
    SplitProposal proposal = proposals[i];
    const auto candidate_outcome = engine.run(
        origin, options.use_communities ? proposal.to_community_config(origin)
                                        : proposal.to_poison_config(origin));
    if (!candidate_outcome.converged) continue;
    const auto candidate_map =
        bgp::extract_catchments(candidate_outcome, baseline);

    // New catchment buckets of the proposal's cluster members.
    std::unordered_map<bgp::LinkId, std::uint32_t> buckets;
    std::uint32_t routed = 0;
    std::uint32_t moved = 0;
    for (std::uint32_t member : members_by_cluster[proposal.cluster]) {
      const topology::AsId source = sources[member];
      const bgp::LinkId link = candidate_map[source];
      ++buckets[link];
      if (link != bgp::kNoCatchment) ++routed;
      if (link != catchments[source]) ++moved;
    }
    if (buckets.size() < 2 || routed == 0) continue;  // no realised split

    double gini = 1.0;
    for (const auto& [link, count] : buckets) {
      const double share = static_cast<double>(count) /
                           static_cast<double>(proposal.cluster_size);
      gini -= share * share;
    }
    proposal.members_moved = moved;
    proposal.balance = gini;
    verified.push_back(proposal);
  }
  std::sort(verified.begin(), verified.end(), by_gain);

  // Keep per-cluster caps after verification, then the global cap.
  std::unordered_map<std::uint32_t, std::size_t> kept_per_cluster;
  std::vector<SplitProposal> kept;
  for (const auto& proposal : verified) {
    if (kept.size() >= options.max_proposals) break;
    auto& count = kept_per_cluster[proposal.cluster];
    if (count >= options.per_cluster) continue;
    ++count;
    kept.push_back(proposal);
  }
  return kept;
}

}  // namespace spooftrack::core
