#include "core/mitigation.hpp"

#include <algorithm>

namespace spooftrack::core {

const char* to_string(MitigationKind kind) noexcept {
  switch (kind) {
    case MitigationKind::kBlackhole: return "blackhole";
    case MitigationKind::kFlowspecFilter: return "flowspec-filter";
  }
  return "?";
}

std::string MitigationAction::describe() const {
  std::string out = to_string(kind);
  out += " on link " + std::to_string(link);
  out += " (attack share " +
         std::to_string(static_cast<int>(spoofed_share * 100.0 + 0.5)) +
         "%, collateral " +
         std::to_string(static_cast<int>(collateral_share * 100.0 + 0.5)) +
         "%), notify:";
  for (topology::Asn asn : suspects) out += " AS" + std::to_string(asn);
  return out;
}

MitigationPlan plan_mitigation(
    const MixtureResult& mixture, const Clustering& clustering,
    const std::vector<topology::AsId>& sources,
    const topology::AsGraph& graph, const bgp::CatchmentMap& live_catchments,
    const std::vector<double>& legit_volume_by_link,
    const MitigationOptions& options) {
  MitigationPlan plan;
  plan.unattributed = mixture.residual_fraction;

  // Normalize the legitimate volumes once.
  double legit_total = 0.0;
  for (double v : legit_volume_by_link) legit_total += v;

  const auto members_by_cluster = clustering.members();
  for (const MixtureComponent& component : mixture.components) {
    if (plan.actions.size() >= options.max_actions) break;
    if (component.cluster >= members_by_cluster.size()) continue;
    const auto& members = members_by_cluster[component.cluster];
    if (members.empty()) continue;

    MitigationAction action;
    action.cluster = component.cluster;
    action.spoofed_share = component.weight;

    // Ingress link under the live configuration: all members share it by
    // construction; take the first routed member.
    for (std::uint32_t member : members) {
      const topology::AsId source = sources[member];
      if (source < live_catchments.size() &&
          live_catchments[source] != bgp::kNoCatchment) {
        action.link = live_catchments[source];
        break;
      }
    }
    if (action.link == bgp::kNoCatchment) continue;  // not actionable now

    action.collateral_share =
        (legit_total > 0.0 && action.link < legit_volume_by_link.size())
            ? legit_volume_by_link[action.link] / legit_total
            : 0.0;
    action.kind =
        action.collateral_share <= options.blackhole_collateral_threshold
            ? MitigationKind::kBlackhole
            : MitigationKind::kFlowspecFilter;

    action.suspects.reserve(members.size());
    for (std::uint32_t member : members) {
      action.suspects.push_back(graph.asn_of(sources[member]));
    }
    std::sort(action.suspects.begin(), action.suspects.end());

    plan.covered_weight += component.weight;
    plan.actions.push_back(std::move(action));
  }
  return plan;
}

}  // namespace spooftrack::core
