#include "core/cluster.hpp"

#include <cstring>
#include <limits>
#include <stdexcept>

#include "core/cluster_slots.hpp"
#include "measure/bitplane_store.hpp"
#include "obs/obs.hpp"

namespace spooftrack::core {

std::vector<std::uint32_t> Clustering::sizes() const {
  std::vector<std::uint32_t> out(cluster_count, 0);
  for (std::uint32_t c : cluster_of) ++out[c];
  return out;
}

double Clustering::mean_size() const noexcept {
  if (cluster_count == 0) return 0.0;
  return static_cast<double>(cluster_of.size()) /
         static_cast<double>(cluster_count);
}

std::vector<std::vector<std::uint32_t>> Clustering::members() const {
  std::vector<std::vector<std::uint32_t>> out(cluster_count);
  for (std::uint32_t s = 0; s < cluster_of.size(); ++s) {
    out[cluster_of[s]].push_back(s);
  }
  return out;
}

ClusterTracker::ClusterTracker(std::size_t source_count) {
  clustering_.cluster_of.assign(source_count, 0);
  clustering_.cluster_count = source_count == 0 ? 0 : 1;
  // Epoch-stamped remap table: avoids clearing between refines.
  table_.assign(source_count * kSlots, 0);  // epoch<<32 | id per bucket
  epoch_ = 0;
  singleton_mask_.assign(source_count, 0);
}

void ClusterTracker::ensure_singletons() {
  // Sticky: once a caller relies on the mask, keep it fresh after every
  // refine; trackers that never ask pay nothing.
  track_singletons_ = true;
  if (!singletons_valid_) rebuild_singletons();
}

void ClusterTracker::rebuild_singletons() {
  const auto& cluster_of = clustering_.cluster_of;
  size_scratch_.assign(clustering_.cluster_count, 0);
  for (std::uint32_t c : cluster_of) ++size_scratch_[c];
  singleton_count_ = 0;
  for (std::size_t s = 0; s < cluster_of.size(); ++s) {
    const bool single = size_scratch_[cluster_of[s]] == 1;
    singleton_mask_[s] = single ? 0xFF : 0x00;
    singleton_count_ += single ? 1u : 0u;
  }
  singletons_valid_ = true;
}

template <typename Cell>
std::uint32_t ClusterTracker::refine_impl(
    std::span<const Cell> catchment_row) {
  OBS_TIMER("analysis.refine_ns");
  auto& cluster_of = clustering_.cluster_of;
  if (catchment_row.size() != cluster_of.size()) {
    throw std::invalid_argument(
        "catchment row size does not match source count");
  }
  if (cluster_of.empty()) return 0;

  ++epoch_;
  if ((epoch_ & 0xFFFFFFFFULL) == 0) [[unlikely]] {
    // The table keeps only the low 32 epoch bits; on wrap, clear it so
    // stale entries cannot alias the restarted epoch.
    std::fill(table_.begin(), table_.end(), 0);
    ++epoch_;
  }
  const std::uint64_t stamp = (epoch_ & 0xFFFFFFFFULL) << 32;
  std::uint32_t next_id = 0;
  const std::size_t n = cluster_of.size();
  if (!track_singletons_) {
    // Lean fold: no caller depends on the saturation mask, so skip both
    // the singleton fast path and the post-refine mask rebuild.
    for (std::size_t s = 0; s < n; ++s) {
      const std::uint32_t slot = slot_of(catchment_row[s]);
      const std::size_t key = std::size_t{cluster_of[s]} * kSlots + slot;
      std::uint64_t entry = table_[key];
      if ((entry >> 32) != (stamp >> 32)) {
        entry = stamp | next_id++;
        table_[key] = entry;
      }
      cluster_of[s] = static_cast<std::uint32_t>(entry);
    }
    clustering_.cluster_count = next_id;
    singletons_valid_ = false;
    return next_id;
  }
  std::size_t s = 0;
  while (s < n) {
    if (s + 8 <= n) {
      // Word-packed fast path: eight consecutive singleton-saturated
      // sources. A size-one cluster is the only toucher of its (cluster,
      // slot) bucket this epoch, so each member just takes the next dense
      // id — no stamp-table traffic, whatever the catchment cell holds.
      std::uint64_t word;
      std::memcpy(&word, singleton_mask_.data() + s, sizeof word);
      if (word == ~std::uint64_t{0}) {
        for (std::size_t k = 0; k < 8; ++k) cluster_of[s + k] = next_id++;
        s += 8;
        continue;
      }
    }
    if (singleton_mask_[s] != 0) {
      cluster_of[s] = next_id++;
      ++s;
      continue;
    }
    const std::uint32_t slot = slot_of(catchment_row[s]);
    const std::size_t key = std::size_t{cluster_of[s]} * kSlots + slot;
    std::uint64_t entry = table_[key];
    if ((entry >> 32) != (stamp >> 32)) {
      entry = stamp | next_id++;
      table_[key] = entry;
    }
    cluster_of[s] = static_cast<std::uint32_t>(entry);
    ++s;
  }
  clustering_.cluster_count = next_id;
  rebuild_singletons();
  return next_id;
}

std::uint32_t ClusterTracker::refine(
    std::span<const std::uint8_t> catchment_row) {
  return refine_impl(catchment_row);
}

std::uint32_t ClusterTracker::refine(
    std::span<const bgp::LinkId> catchment_row) {
  return refine_impl(catchment_row);
}

std::uint32_t ClusterTracker::refine(const measure::BitplaneStore& planes,
                                     std::size_t config) {
  if (planes.sources() != clustering_.cluster_of.size()) {
    throw std::invalid_argument(
        "bitplane source count does not match tracker");
  }
  // Decode the row back to cell bytes word-parallel (8x8 bit transposes)
  // and fold it through the byte refine — trivially bit-identical to
  // refining the source CatchmentStore row.
  decoded_.resize(planes.sources());
  planes.decode_row(config, decoded_.data());
  return refine_impl(std::span<const std::uint8_t>(decoded_));
}

Clustering cluster_sources(const measure::CatchmentStore& matrix) {
  if (matrix.empty()) return Clustering{};
  ClusterTracker tracker(matrix.sources());
  for (std::size_t c = 0; c < matrix.size(); ++c) {
    tracker.refine(matrix.row(c));
  }
  return tracker.current();
}

Clustering cluster_sources(const measure::BitplaneStore& planes) {
  if (planes.empty()) return Clustering{};
  ClusterTracker tracker(planes.sources());
  for (std::size_t c = 0; c < planes.configs(); ++c) {
    tracker.refine(planes, c);
  }
  return tracker.current();
}

}  // namespace spooftrack::core
