#include "core/cluster.hpp"

#include <algorithm>
#include <stdexcept>

namespace spooftrack::core {

namespace {
// Catchment values are folded into 6 bits per refine step; links beyond 62
// would alias, so we cap supported link counts well above any deployment.
constexpr std::uint32_t kSlotBits = 6;
constexpr std::uint32_t kSlots = 1u << kSlotBits;  // 64
constexpr std::uint32_t kMissingSlot = kSlots - 1;
}  // namespace

std::vector<std::uint32_t> Clustering::sizes() const {
  std::vector<std::uint32_t> out(cluster_count, 0);
  for (std::uint32_t c : cluster_of) ++out[c];
  return out;
}

double Clustering::mean_size() const noexcept {
  if (cluster_count == 0) return 0.0;
  return static_cast<double>(cluster_of.size()) /
         static_cast<double>(cluster_count);
}

std::vector<std::vector<std::uint32_t>> Clustering::members() const {
  std::vector<std::vector<std::uint32_t>> out(cluster_count);
  for (std::uint32_t s = 0; s < cluster_of.size(); ++s) {
    out[cluster_of[s]].push_back(s);
  }
  return out;
}

ClusterTracker::ClusterTracker(std::size_t source_count) {
  clustering_.cluster_of.assign(source_count, 0);
  clustering_.cluster_count = source_count == 0 ? 0 : 1;
  // Epoch-stamped remap table: avoids clearing between refines.
  keys_.assign(source_count * kSlots, 0);    // epoch per (cluster, slot)
  order_.assign(source_count * kSlots, 0);   // new id per (cluster, slot)
  epoch_ = 0;
}

std::uint32_t ClusterTracker::refine(
    std::span<const bgp::LinkId> catchment_row) {
  auto& cluster_of = clustering_.cluster_of;
  if (catchment_row.size() != cluster_of.size()) {
    throw std::invalid_argument(
        "catchment row size does not match source count");
  }
  if (cluster_of.empty()) return 0;

  ++epoch_;
  std::uint32_t next_id = 0;
  for (std::uint32_t s = 0; s < cluster_of.size(); ++s) {
    const bgp::LinkId link = catchment_row[s];
    const std::uint32_t slot =
        link == bgp::kNoCatchment
            ? kMissingSlot
            : std::min<std::uint32_t>(link, kMissingSlot - 1);
    const std::size_t key = std::size_t{cluster_of[s]} * kSlots + slot;
    if (keys_[key] != epoch_) {
      keys_[key] = epoch_;
      order_[key] = next_id++;
    }
    cluster_of[s] = order_[key];
  }
  clustering_.cluster_count = next_id;
  return next_id;
}

Clustering cluster_sources(
    const std::vector<std::vector<bgp::LinkId>>& matrix) {
  if (matrix.empty()) return Clustering{};
  ClusterTracker tracker(matrix[0].size());
  for (const auto& row : matrix) tracker.refine(row);
  return tracker.current();
}

}  // namespace spooftrack::core
