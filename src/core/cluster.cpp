#include "core/cluster.hpp"

#include <cstring>
#include <stdexcept>

#include "core/cluster_slots.hpp"
#include "obs/obs.hpp"

namespace spooftrack::core {

std::vector<std::uint32_t> Clustering::sizes() const {
  std::vector<std::uint32_t> out(cluster_count, 0);
  for (std::uint32_t c : cluster_of) ++out[c];
  return out;
}

double Clustering::mean_size() const noexcept {
  if (cluster_count == 0) return 0.0;
  return static_cast<double>(cluster_of.size()) /
         static_cast<double>(cluster_count);
}

std::vector<std::vector<std::uint32_t>> Clustering::members() const {
  std::vector<std::vector<std::uint32_t>> out(cluster_count);
  for (std::uint32_t s = 0; s < cluster_of.size(); ++s) {
    out[cluster_of[s]].push_back(s);
  }
  return out;
}

ClusterTracker::ClusterTracker(std::size_t source_count) {
  clustering_.cluster_of.assign(source_count, 0);
  clustering_.cluster_count = source_count == 0 ? 0 : 1;
  // Epoch-stamped remap table: avoids clearing between refines.
  keys_.assign(source_count * kSlots, 0);    // epoch per (cluster, slot)
  order_.assign(source_count * kSlots, 0);   // new id per (cluster, slot)
  epoch_ = 0;
  singleton_mask_.assign(source_count, 0);
  rebuild_singletons();
}

void ClusterTracker::rebuild_singletons() {
  const auto& cluster_of = clustering_.cluster_of;
  size_scratch_.assign(clustering_.cluster_count, 0);
  for (std::uint32_t c : cluster_of) ++size_scratch_[c];
  singleton_count_ = 0;
  for (std::size_t s = 0; s < cluster_of.size(); ++s) {
    const bool single = size_scratch_[cluster_of[s]] == 1;
    singleton_mask_[s] = single ? 0xFF : 0x00;
    singleton_count_ += single ? 1u : 0u;
  }
}

template <typename Cell>
std::uint32_t ClusterTracker::refine_impl(
    std::span<const Cell> catchment_row) {
  OBS_TIMER("analysis.refine_ns");
  auto& cluster_of = clustering_.cluster_of;
  if (catchment_row.size() != cluster_of.size()) {
    throw std::invalid_argument(
        "catchment row size does not match source count");
  }
  if (cluster_of.empty()) return 0;

  ++epoch_;
  std::uint32_t next_id = 0;
  const std::size_t n = cluster_of.size();
  std::size_t s = 0;
  while (s < n) {
    if (s + 8 <= n) {
      // Word-packed fast path: eight consecutive singleton-saturated
      // sources. A size-one cluster is the only toucher of its (cluster,
      // slot) bucket this epoch, so each member just takes the next dense
      // id — no stamp-table traffic, whatever the catchment cell holds.
      std::uint64_t word;
      std::memcpy(&word, singleton_mask_.data() + s, sizeof word);
      if (word == ~std::uint64_t{0}) {
        for (std::size_t k = 0; k < 8; ++k) cluster_of[s + k] = next_id++;
        s += 8;
        continue;
      }
    }
    if (singleton_mask_[s] != 0) {
      cluster_of[s] = next_id++;
      ++s;
      continue;
    }
    const std::uint32_t slot = slot_of(catchment_row[s]);
    const std::size_t key = std::size_t{cluster_of[s]} * kSlots + slot;
    if (keys_[key] != epoch_) {
      keys_[key] = epoch_;
      order_[key] = next_id++;
    }
    cluster_of[s] = order_[key];
    ++s;
  }
  clustering_.cluster_count = next_id;
  rebuild_singletons();
  return next_id;
}

std::uint32_t ClusterTracker::refine(
    std::span<const std::uint8_t> catchment_row) {
  return refine_impl(catchment_row);
}

std::uint32_t ClusterTracker::refine(
    std::span<const bgp::LinkId> catchment_row) {
  return refine_impl(catchment_row);
}

Clustering cluster_sources(const measure::CatchmentStore& matrix) {
  if (matrix.empty()) return Clustering{};
  ClusterTracker tracker(matrix.sources());
  for (std::size_t c = 0; c < matrix.size(); ++c) {
    tracker.refine(matrix.row(c));
  }
  return tracker.current();
}

}  // namespace spooftrack::core
