// Hijack-scenario coverage (§VI): a configuration announcing from n
// locations doubles as 2^n prefix-hijack experiments — each subset of the
// locations can be read as "the hijacker's sites", with the catchments
// telling how much of the Internet the hijacker would capture.
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/catchment.hpp"

namespace spooftrack::core {

struct HijackScenario {
  /// Bit i set = announcement i (by index in the configuration) belongs to
  /// the hijacker.
  std::uint32_t hijacker_mask = 0;
  std::uint32_t hijacker_announcements = 0;
  /// Fraction of routed ASes whose traffic the hijacker captures.
  double captured_fraction = 0.0;
};

/// Enumerates every hijacker/legitimate split of a configuration's
/// announcements (masks 1 .. 2^n-2; all-hijacker and all-legitimate are
/// degenerate) and scores the captured fraction from the catchments.
std::vector<HijackScenario> hijack_coverage(const bgp::CatchmentMap& map,
                                            const bgp::Configuration& config);

}  // namespace spooftrack::core
