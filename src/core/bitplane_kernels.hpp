// Word-parallel cluster kernels over measure::BitplaneStore planes.
//
// The greedy scheduler's count_after reduces to: how many distinct 6-bit
// slots does a candidate row take within each cluster? Every slot fits
// one bit of a 64-bit presence bitmap, so counting is exact bit-setting —
// no sources x kSlots stamp table, no per-source scratch. Two kernels
// share that idea and ClusterMasks picks between them per step:
//
// * count_after_bitplane (cluster-major) walks each cluster's sparse
//   (word, lane mask) membership pairs and keeps its presence bitmap in a
//   register. Mask words with many member lanes are resolved by recursive
//   plane partition (OR the selected lanes per value plane; split on
//   mixed planes; each leaf is one distinct slot), touching 64 members in
//   a handful of word ops. It wins while clusters are few and their mask
//   words dense (early steps).
// * count_after_members (member-list) walks each cluster's contiguous
//   member indices, folding row cells into a register-resident presence
//   bitmap — two loads, a shift and an OR per member, no stamp table at
//   all. It wins once refinement scatters clusters so thin that
//   per-cluster mask words average a lane or two (every step after the
//   first few).
//
// Both abort once an upper bound on the remaining buckets (suffix sums
// in ClusterMasks) proves the candidate cannot beat the bound, and both
// count the same buckets in a different order, so winner selection stays
// bit-identical to the byte-store path (the PR4 equivalence suite and
// tests/test_bitplane_store.cpp enforce it).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/cluster_slots.hpp"

namespace spooftrack::core {

/// Mask words with at least this many member lanes resolve through the
/// plane partition (cost ~ distinct slots, independent of lane count);
/// sparser words read cells per member. Also the per-step kernel pick:
/// cluster-major pays off only when mask words average this dense.
inline constexpr int kDensePartitionLanes = 16;

/// One 64-lane word of a cluster's membership: `mask` selects the member
/// sources within plane word `word`.
struct ClusterWord {
  std::uint32_t word = 0;
  std::uint64_t mask = 0;

  friend bool operator==(const ClusterWord&, const ClusterWord&) = default;
};

/// Per-step snapshot of cluster memberships as word masks, ordered by
/// descending size (ties: ascending cluster id), plus the suffix upper
/// bounds the greedy bound-abort uses. Built in O(sources + clusters);
/// scratch is reused across builds.
class ClusterMasks {
 public:
  /// Rebuilds from a partition. A non-empty `singleton_mask` (0xFF per
  /// saturated source, the ClusterTracker shape) drops singleton clusters
  /// — they contribute exactly one bucket each, accounted separately by
  /// the callers. Pass an empty mask to include every cluster.
  void build(std::span<const std::uint32_t> cluster_of,
             std::uint32_t cluster_count,
             std::span<const std::uint8_t> singleton_mask);

  /// Number of clusters retained by the last build().
  std::size_t cluster_count() const noexcept { return begin_.size() - 1; }
  /// Membership words of the i-th retained cluster in processing order
  /// (descending size), each cluster's words ascending.
  std::span<const ClusterWord> cluster(std::size_t i) const noexcept {
    return {entries_.data() + begin_[i], begin_[i + 1] - begin_[i]};
  }
  /// Member source indices of the i-th retained cluster, ascending.
  std::span<const std::uint32_t> members(std::size_t i) const noexcept {
    return {members_.data() + mbegin_[i], mbegin_[i + 1] - mbegin_[i]};
  }
  /// Total membership (word, mask) pairs across retained clusters.
  std::size_t entry_total() const noexcept { return entries_.size(); }
  /// Upper bound on buckets contributed by clusters i.. (sum of
  /// min(size, kSlots)): once count + remaining_ub(i) falls to the bound,
  /// a candidate scan can abort.
  std::uint32_t remaining_ub(std::size_t i) const noexcept {
    return remaining_ub_[i];
  }
  /// Total members across retained clusters.
  std::size_t active_sources() const noexcept { return active_sources_; }

  /// True when mask words are dense enough that the plane partition
  /// beats per-member cell reads.
  bool prefer_plane_partition() const noexcept {
    return active_sources_ >=
           static_cast<std::size_t>(kDensePartitionLanes) * entries_.size();
  }

 private:
  std::vector<ClusterWord> entries_;
  std::vector<std::uint32_t> begin_;         // per-cluster entry offsets, +1
  std::vector<std::uint32_t> members_;       // member indices, cluster-grouped
  std::vector<std::uint32_t> mbegin_;        // per-cluster member offsets, +1
  std::vector<std::uint32_t> remaining_ub_;  // suffix sums, trailing 0
  std::size_t active_sources_ = 0;
  // Per-cluster-id build scratch, reused across calls.
  std::vector<std::uint32_t> entry_count_;
  std::vector<std::uint32_t> size_;
  std::vector<std::uint32_t> last_word_;
  std::vector<std::uint32_t> cursor_;
  std::vector<std::uint32_t> mcursor_;
  std::vector<std::uint32_t> order_;       // processing order -> cluster id
  std::vector<std::uint32_t> size_start_;  // counting-sort offsets by size
};

/// Slot-presence bitmap of the `mask` lanes of plane word `word`: bit v is
/// set iff some selected lane holds 6-bit slot v. Recursive plane
/// partition with a fixed-depth stack (levels strictly increase, so depth
/// <= kSlotBits); `planes` is a BitplaneStore::row_planes block.
std::uint64_t plane_values(const std::uint64_t* planes, std::size_t words,
                           std::uint32_t word, std::uint64_t mask) noexcept;

/// Clusters a refinement with the candidate row would produce:
/// `singleton_count` plus the distinct slots of every retained cluster in
/// `masks`, each counted as the popcount of a presence bitmap. `row` and
/// `planes` must describe the same configuration (byte cells and
/// BitplaneStore::row_planes respectively): dense mask words partition
/// plane words, sparse ones read `row` per member. Aborts (returning a
/// partial count <= the true count <= bound) once the suffix upper bound
/// proves the candidate cannot strictly exceed `bound` — identical winner
/// selection to the byte-store count_after under strictly-greater
/// replacement.
std::uint32_t count_after_bitplane(const ClusterMasks& masks,
                                   std::uint32_t singleton_count,
                                   const std::uint8_t* row,
                                   const std::uint64_t* planes,
                                   std::size_t words, std::uint32_t bound);

/// Member-list count of the same buckets: per retained cluster, folds
/// slot_of(row[s]) bits of the contiguous member indices into a
/// register-resident presence bitmap (no stamp tables, no per-worker
/// scratch) and adds its popcount. Same processing order, bound-abort
/// semantics and result as count_after_bitplane.
std::uint32_t count_after_members(const ClusterMasks& masks,
                                  std::uint32_t singleton_count,
                                  const std::uint8_t* row,
                                  std::uint32_t bound);

}  // namespace spooftrack::core
