// Targeted cluster splitting (the paper's §V-B future work: "investigate
// targeted poisoning of distant ASes to induce route changes specific to
// split these large distant clusters").
//
// Members of a cluster are, by definition, in the same catchment under
// every deployed configuration — but their forwarding paths inside that
// catchment differ. Any AS that lies on the paths of a strict subset of a
// cluster's members is a steering lever: making it unavailable (poisoning
// it, or withholding the route from it with a no-export community) forces
// that subset to reroute while the rest stays put, splitting the cluster.
//
// propose_splits() inspects the largest clusters under a baseline
// configuration, enumerates on-path candidate ASes per cluster, and ranks
// them by expected split balance |subset| * |rest|.
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/engine.hpp"
#include "core/cluster.hpp"

namespace spooftrack::core {

struct SplitProposal {
  std::uint32_t cluster = 0;
  std::uint32_t cluster_size = 0;
  topology::Asn target = 0;       // AS to poison / no-export
  bgp::LinkId link = 0;           // link whose announcement is modified
  std::uint32_t members_moved = 0;  // members whose path crosses the target
  double balance = 0.0;           // moved * (size - moved), normalised

  /// The poisoning configuration realising the proposal: announce from
  /// every link of `origin`, poisoning `target` on `link`.
  bgp::Configuration to_poison_config(const bgp::OriginSpec& origin) const;
  /// The community-based variant (no-export instead of poisoning).
  bgp::Configuration to_community_config(const bgp::OriginSpec& origin) const;
};

struct SplitterOptions {
  /// Only clusters with at least this many members are considered.
  std::uint32_t min_cluster_size = 4;
  /// Proposals kept per cluster (the best-balanced ones).
  std::size_t per_cluster = 2;
  /// Total cap across clusters.
  std::size_t max_proposals = 64;
  /// Verify proposals by actually routing them: a member subset rerouting
  /// *around* the poisoned AS frequently lands back on the same peering
  /// link (no catchment change, no split), so path-based heuristics alone
  /// over-promise. With verification on, candidate proposals are simulated
  /// and only those that split their cluster survive, ranked by the
  /// realised split quality.
  bool verify_with_engine = true;
  /// Heuristic candidates simulated per kept proposal.
  std::size_t candidate_factor = 3;
  /// Realise proposals with no-export communities instead of poisoning
  /// (severs the provider-target edge; often splits more diversely and is
  /// immune to loop-prevention exemptions and tier-1 filters).
  bool use_communities = false;
};

/// Proposes split targets from the forwarding paths of `outcome` (a
/// baseline all-links deployment). `sources[i]` maps clustering column i
/// to an AsId. Proposals are ranked by balance, best first.
std::vector<SplitProposal> propose_splits(
    const bgp::Engine& engine, const bgp::OriginSpec& origin,
    const bgp::Configuration& baseline, const bgp::RoutingOutcome& outcome,
    const Clustering& clustering,
    const std::vector<topology::AsId>& sources,
    const SplitterOptions& options = {});

}  // namespace spooftrack::core
