// Campaign report generation: renders a deployment artifact into a
// self-contained Markdown report an operator (or an anti-spoofing body
// driving BCP38 adoption, the paper's §I audience) can read without
// running any code — topology and plan shape, cluster statistics and the
// heavy tail, policy-compliance summary, and localization readiness.
#pragma once

#include <iosfwd>
#include <string>

#include "core/io.hpp"

namespace spooftrack::core {

struct ReportOptions {
  /// Clusters larger than this land in the "requires attention" tail.
  std::uint32_t tail_threshold = 5;
  /// How many of the largest clusters to itemize.
  std::size_t tail_items = 10;
  /// Steps of greedy schedule to include as a runbook.
  std::size_t runbook_steps = 10;
};

/// Writes the Markdown report to `out`.
void write_report(const DeploymentArtifact& artifact, std::ostream& out,
                  const ReportOptions& options = {});

/// Convenience: report as a string.
std::string render_report(const DeploymentArtifact& artifact,
                          const ReportOptions& options = {});

}  // namespace spooftrack::core
