// Routing-policy compliance audit (Figure 9): for each configuration,
// which fraction of ASes chose routes consistent with (i) the
// best-relationship criterion (customer > peer > provider) and (ii) both
// best-relationship and shortest AS-path (the Gao-Rexford model)?
//
// The paper audits observed AS-paths against the alternatives visible in
// its measurements; with the simulator we audit against the exact
// candidate set (the routes an AS's neighbors exported to it), which is
// the same question with perfect visibility.
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/engine.hpp"

namespace spooftrack::core {

struct ComplianceStats {
  std::size_t audited = 0;          // routed ASes with >= 1 candidate
  std::size_t best_relationship = 0;  // chose a max-relationship route
  std::size_t both_criteria = 0;      // ...that is also shortest in class

  double best_relationship_fraction() const noexcept {
    return audited == 0 ? 0.0
                        : static_cast<double>(best_relationship) /
                              static_cast<double>(audited);
  }
  double both_fraction() const noexcept {
    return audited == 0 ? 0.0
                        : static_cast<double>(both_criteria) /
                              static_cast<double>(audited);
  }

  friend bool operator==(const ComplianceStats&,
                         const ComplianceStats&) = default;
};

/// Audits every routed AS under one configuration's outcome.
ComplianceStats audit_compliance(const bgp::Engine& engine,
                                 const bgp::OriginSpec& origin,
                                 const bgp::Configuration& config,
                                 const bgp::RoutingOutcome& outcome);

}  // namespace spooftrack::core
