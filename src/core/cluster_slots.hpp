// Shared catchment-slot constants for the cluster refinement machinery.
//
// Cluster refinement (cluster.cpp) and schedule evaluation (scheduler.cpp)
// both fold catchment values into 6-bit slots per (cluster, catchment)
// bucket. The constants and the folding rule used to be duplicated in both
// translation units — and silently saturated any link id beyond the slot
// range into the last usable slot, aliasing distinct links into one cluster
// bucket. This header is the single definition; out-of-range links throw.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "bgp/catchment.hpp"

namespace spooftrack::core {

inline constexpr std::uint32_t kSlotBits = 6;
inline constexpr std::uint32_t kSlots = 1u << kSlotBits;   // 64
inline constexpr std::uint32_t kMissingSlot = kSlots - 1;  // 63
static_assert(bgp::kMaxCatchmentLinks < kMissingSlot,
              "valid links plus the missing sentinel must fit the slots");

[[noreturn]] inline void throw_slot_out_of_range(std::uint32_t link) {
  throw std::out_of_range(
      "link id " + std::to_string(link) + " exceeds the " +
      std::to_string(bgp::kMaxCatchmentLinks) +
      "-link analysis limit (would alias in the 6-bit cluster slots)");
}

/// Slot of a raw LinkId cell; throws on ids the slots cannot represent.
inline std::uint32_t slot_of(bgp::LinkId link) {
  if (link == bgp::kNoCatchment) return kMissingSlot;
  if (link >= bgp::kMaxCatchmentLinks) throw_slot_out_of_range(link);
  return link;
}

/// Slot of an encoded CatchmentStore cell (byte, 0xFF missing).
inline std::uint32_t slot_of(std::uint8_t cell) {
  if (cell == bgp::kNoCatchment8) return kMissingSlot;
  if (cell >= bgp::kMaxCatchmentLinks) throw_slot_out_of_range(cell);
  return cell;
}

}  // namespace spooftrack::core
