// Spoofed-traffic attribution: correlating per-link spoofed volumes across
// configurations with clusters (§III-C, §V-D, and the paper's future-work
// direction of driving mitigation during attacks).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/cluster.hpp"
#include "measure/catchment_store.hpp"
#include "util/stats.hpp"

namespace spooftrack::core {

/// Figure 10: cumulative fraction of spoofed traffic originating in
/// clusters of at most a given size. `volume[s]` is the (normalized)
/// spoofed volume of source s.
struct TrafficBySize {
  std::vector<std::uint64_t> cluster_size;  // ascending distinct sizes
  std::vector<double> cumulative_volume;    // volume in clusters <= size
};

TrafficBySize traffic_by_cluster_size(const Clustering& clustering,
                                      std::span<const double> volume);

/// Online attribution: given per-configuration per-link spoofed volumes
/// observed at the origin (e.g. honeypot counters), score each cluster by
/// how consistent its catchment trajectory is with the observations.
/// Scores are log-likelihoods (higher = more consistent); `ranking` lists
/// cluster ids best-first.
struct AttributionResult {
  std::vector<double> score;          // per cluster id
  std::vector<std::uint32_t> ranking; // cluster ids, best first
};

AttributionResult attribute_clusters(
    const measure::CatchmentStore& matrix, const Clustering& clustering,
    const std::vector<std::vector<double>>& link_volume_per_config);

/// Multi-source attribution by greedy mixture decomposition (the paper's
/// future-work direction of jointly optimizing cluster choice and traffic
/// volume). Observed per-link volumes are treated as a superposition of
/// per-cluster contributions: a cluster emitting weight w adds w to the
/// link its catchment selects in *every* configuration, so the largest
/// weight consistent with the residual volumes is
///
///    w_k = min over configs of residual[config][link of cluster k]
///
/// The decomposition repeatedly extracts the cluster with the largest
/// consistent weight and subtracts its contribution, until no cluster can
/// explain more than `min_weight` of the total.
struct MixtureComponent {
  std::uint32_t cluster = 0;
  double weight = 0.0;  // fraction of total observed volume
};

struct MixtureResult {
  std::vector<MixtureComponent> components;  // extraction order
  /// Fraction of total volume left unexplained by the components.
  double residual_fraction = 0.0;
};

/// `robustness_quantile` trades false-negative for false-positive risk:
/// 0 (default) demands consistency in *every* configuration — a single
/// catchment-inference error can hide a real attacker, but innocent
/// clusters rarely survive; a small positive value (e.g. 0.1) tolerates
/// the worst ~10% of configurations at the cost of letting look-alike
/// clusters absorb weight first.
MixtureResult attribute_mixture(
    const measure::CatchmentStore& matrix, const Clustering& clustering,
    const std::vector<std::vector<double>>& link_volume_per_config,
    double min_weight = 0.02, std::size_t max_components = 16,
    double robustness_quantile = 0.0);

}  // namespace spooftrack::core
