#include "core/scheduler.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <numeric>
#include <span>
#include <stdexcept>

#include "core/bitplane_kernels.hpp"
#include "core/cluster.hpp"
#include "core/cluster_slots.hpp"
#include "measure/bitplane_store.hpp"
#include "obs/obs.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace spooftrack::core {

namespace {

constexpr auto kNoConfig = std::numeric_limits<std::size_t>::max();

/// Number of clusters a refinement with `row` would produce, without
/// mutating the partition. Uses caller-provided epoch scratch tables.
/// Singleton clusters contribute exactly one bucket each whatever their
/// cell holds, so the scan touches only the pre-gathered active
/// (non-singleton) sources; `active_base` carries each one's
/// `cluster_of * kSlots` so the hot loop is one gather, one add and one
/// stamp probe. Each active source can add at most one bucket, so once
/// `count + remaining <= bound` the candidate provably cannot *strictly*
/// exceed `bound` and the scan aborts early — the returned partial count
/// is then <= the true count <= bound, which compares identically in the
/// strictly-greater replacement the callers use.
std::uint32_t count_after(std::span<const std::uint32_t> active_src,
                          std::span<const std::size_t> active_base,
                          std::uint32_t singleton_count,
                          std::span<const std::uint8_t> row,
                          std::vector<std::uint64_t>& stamp,
                          std::uint64_t& epoch, std::uint32_t bound) {
  ++epoch;
  std::uint32_t count = singleton_count;
  const std::size_t m = active_src.size();
  for (std::size_t k = 0; k < m; ++k) {
    if (count + static_cast<std::uint32_t>(m - k) <= bound) return count;
    const std::size_t key = active_base[k] + slot_of(row[active_src[k]]);
    if (stamp[key] != epoch) {
      stamp[key] = epoch;
      ++count;
    }
  }
  return count;
}

struct Best {
  std::size_t config = kNoConfig;
  std::uint32_t count = 0;
};

/// Work-per-worker threshold: a step whose whole candidate scan is
/// cheaper than ~kMinWorkPerChunk cell-visits runs on fewer chunks (down
/// to inline on the caller — WorkerPool::run(1) wakes no thread), so tiny
/// matrices stop paying thread wake latency per step. Chunk geometry only
/// partitions the candidate range; the strictly-greater merge keeps the
/// schedule bit-identical for any chunk count.
constexpr std::size_t kMinWorkPerChunk = std::size_t{1} << 16;

std::size_t effective_chunks(std::size_t chunks, std::size_t remaining,
                             std::size_t active_sources) {
  const std::size_t work = remaining * (active_sources + 64);
  return std::clamp<std::size_t>(work / kMinWorkPerChunk, 1, chunks);
}

}  // namespace

ScheduleTrace random_schedule(const measure::CatchmentStore& matrix,
                              util::Rng& rng) {
  ScheduleTrace trace;
  if (matrix.empty()) return trace;
  trace.order.resize(matrix.size());
  std::iota(trace.order.begin(), trace.order.end(), std::size_t{0});
  rng.shuffle(trace.order);

  ClusterTracker tracker(matrix.sources());
  // Random schedules saturate the partition early; opt into singleton
  // tracking so refines keep the word-packed saturated fast path.
  tracker.singleton_mask();
  trace.mean_cluster_size.reserve(matrix.size());
  for (std::size_t config : trace.order) {
    tracker.refine(matrix.row(config));
    trace.mean_cluster_size.push_back(tracker.mean_cluster_size());
  }
  return trace;
}

namespace {

ScheduleTrace greedy_schedule_byte(const measure::CatchmentStore& matrix,
                                   std::size_t steps, std::size_t chunks) {
  ScheduleTrace trace;
  const std::size_t n = matrix.size();
  const std::size_t source_count = matrix.sources();

  ClusterTracker tracker(source_count);
  std::vector<bool> used(n, false);

  // One stamp table + epoch per worker so candidate scans never share
  // mutable state; chunk w owns best[w], so dynamic task claiming in the
  // pool cannot affect the result.
  struct Scratch {
    std::vector<std::uint64_t> stamp;
    std::uint64_t epoch = 0;
  };
  std::vector<Scratch> scratch(chunks);
  for (auto& sc : scratch) sc.stamp.assign(source_count * kSlots, 0);
  std::vector<Best> best(chunks);

  // Compact list of non-singleton sources, rebuilt once per step: the
  // per-candidate scan touches only these, so as refinement saturates the
  // partition the inner loop shrinks towards zero. `active_base` holds each
  // active source's `cluster_of * kSlots` so candidates don't re-derive it.
  std::vector<std::uint32_t> active_src;
  std::vector<std::size_t> active_base;
  active_src.reserve(source_count);
  active_base.reserve(source_count);

  util::WorkerPool pool(chunks - 1);

  for (std::size_t step = 0; step < steps; ++step) {
    const auto& cluster_of = tracker.current().cluster_of;
    const auto mask = tracker.singleton_mask();
    const std::uint32_t singles = tracker.singleton_count();

    active_src.clear();
    active_base.clear();
    for (std::size_t s = 0; s < source_count;) {
      if (s + 8 <= source_count) {
        std::uint64_t word;
        std::memcpy(&word, mask.data() + s, sizeof word);
        if (word == ~std::uint64_t{0}) {
          s += 8;
          continue;
        }
      }
      if (mask[s] == 0) {
        active_src.push_back(static_cast<std::uint32_t>(s));
        active_base.push_back(std::size_t{cluster_of[s]} * kSlots);
      }
      ++s;
    }

    Best winner;
    if (active_src.empty()) {
      // Fully saturated partition: every candidate refines to exactly
      // `singles` clusters, so the serial scan would pick the lowest-index
      // unused config. Do that directly.
      for (std::size_t c = 0; c < n; ++c) {
        if (!used[c]) {
          winner = {c, singles};
          break;
        }
      }
    } else {
      const std::size_t eff =
          effective_chunks(chunks, n - step, active_src.size());
      OBS_HIST("analysis.kernel.fanout", "chunks", eff);
      pool.run(eff, [&](std::size_t w) {
        Best b;
        auto& sc = scratch[w];
        const std::size_t begin = w * n / eff;
        const std::size_t end = (w + 1) * n / eff;
        for (std::size_t c = begin; c < end; ++c) {
          if (used[c]) continue;
          const std::uint32_t bound = b.config == kNoConfig ? 0 : b.count;
          const std::uint32_t count =
              count_after(active_src, active_base, singles, matrix.row(c),
                          sc.stamp, sc.epoch, bound);
          if (b.config == kNoConfig || count > b.count) b = {c, count};
        }
        best[w] = b;
      });

      // Deterministic reduction: chunks cover ascending contiguous config
      // ranges, and both the in-chunk scan and this merge replace only on
      // strictly greater counts — so the winner is the lowest-index config
      // with the maximum count, exactly as in a serial scan.
      for (std::size_t w = 0; w < eff; ++w) {
        const Best& b = best[w];
        if (b.config == kNoConfig) continue;
        if (winner.config == kNoConfig || b.count > winner.count) winner = b;
      }
    }
    if (winner.config == kNoConfig) break;
    used[winner.config] = true;
    tracker.refine(matrix.row(winner.config));
    trace.order.push_back(winner.config);
    trace.mean_cluster_size.push_back(tracker.mean_cluster_size());
  }
  return trace;
}

ScheduleTrace greedy_schedule_bitplane(const measure::CatchmentStore& matrix,
                                       std::size_t steps,
                                       std::size_t chunks) {
  ScheduleTrace trace;
  const std::size_t n = matrix.size();

  // Built once per schedule; candidate scans then count distinct slots
  // through per-cluster presence bitmaps — plane-word DFS for dense mask
  // words, direct byte reads for sparse ones — instead of probing the
  // sources x kSlots stamp table the byte kernel walks.
  const measure::BitplaneStore planes(matrix);
  const std::size_t words = planes.words();

  ClusterTracker tracker(matrix.sources());
  std::vector<bool> used(n, false);
  std::vector<Best> best(chunks);
  std::vector<std::vector<std::uint32_t>> order(chunks);
  ClusterMasks masks;
  util::WorkerPool pool(chunks - 1);

  // Best-first candidate ordering: refinement only ever splits clusters,
  // so a candidate's count from an earlier step is a lower bound on its
  // count now. Scanning each chunk in descending last-known count puts a
  // near-maximal bound in place after the first candidate, and losers
  // abort after a fraction of their sources. Aborted scans still return
  // valid lower bounds, so they update the ordering too.
  std::vector<std::uint32_t> last_count(n, 0);

  for (std::size_t step = 0; step < steps; ++step) {
    const auto& cluster_of = tracker.current().cluster_of;
    const auto mask = tracker.singleton_mask();
    const std::uint32_t singles = tracker.singleton_count();
    masks.build(cluster_of, tracker.cluster_count(), mask);

    Best winner;
    if (masks.cluster_count() == 0) {
      // Fully saturated partition: every candidate refines to exactly
      // `singles` clusters; take the lowest-index unused config directly.
      for (std::size_t c = 0; c < n; ++c) {
        if (!used[c]) {
          winner = {c, singles};
          break;
        }
      }
    } else {
      const std::size_t eff =
          effective_chunks(chunks, n - step, masks.active_sources());
      OBS_HIST("analysis.kernel.fanout", "chunks", eff);
      const bool plane_partition = masks.prefer_plane_partition();
      pool.run(eff, [&](std::size_t w) {
        Best b;
        auto& ord = order[w];
        ord.clear();
        const std::size_t begin = w * n / eff;
        const std::size_t end = (w + 1) * n / eff;
        for (std::size_t c = begin; c < end; ++c) {
          if (!used[c]) ord.push_back(static_cast<std::uint32_t>(c));
        }
        std::stable_sort(ord.begin(), ord.end(),
                         [&](std::uint32_t a, std::uint32_t c) {
                           return last_count[a] > last_count[c];
                         });
        for (const std::uint32_t c : ord) {
          // Out-of-index-order scanning: a lower-index candidate beats the
          // incumbent already on a tie, so it may only abort against
          // bound - 1 (b.count >= 1 whenever b is set: every retained
          // cluster contributes at least one bucket).
          const std::uint32_t bound =
              b.config == kNoConfig ? 0 : b.count - (c < b.config ? 1 : 0);
          const std::uint32_t count =
              plane_partition
                  ? count_after_bitplane(masks, singles, matrix.row(c).data(),
                                         planes.row_planes(c), words, bound)
                  : count_after_members(masks, singles, matrix.row(c).data(),
                                        bound);
          if (b.config == kNoConfig || count > b.count ||
              (count == b.count && c < b.config)) {
            b = {c, count};
          }
          if (count > last_count[c]) last_count[c] = count;
        }
        best[w] = b;
      });

      // Deterministic reduction: chunks cover ascending contiguous config
      // ranges and each worker's best is its chunk's lowest-index max, so
      // the strictly-greater merge yields the lowest-index config with
      // the maximum count — exactly the byte kernel's serial winner.
      for (std::size_t w = 0; w < eff; ++w) {
        const Best& b = best[w];
        if (b.config == kNoConfig) continue;
        if (winner.config == kNoConfig || b.count > winner.count) winner = b;
      }
    }
    if (winner.config == kNoConfig) break;
    used[winner.config] = true;
    tracker.refine(planes, winner.config);
    trace.order.push_back(winner.config);
    trace.mean_cluster_size.push_back(tracker.mean_cluster_size());
  }
  return trace;
}

}  // namespace

ScheduleTrace greedy_schedule(const measure::CatchmentStore& matrix,
                              std::size_t steps, std::size_t workers,
                              GreedyKernel kernel) {
  OBS_TIMER("analysis.schedule_ns");
  ScheduleTrace trace;
  if (matrix.empty()) return trace;
  const std::size_t n = matrix.size();
  if (steps == 0 || steps > n) steps = n;
  if (workers == 0) workers = util::default_worker_count();
  const std::size_t chunks = std::max<std::size_t>(1, std::min(workers, n));
  OBS_GAUGE("analysis.schedule_workers", chunks);
  return kernel == GreedyKernel::kByte
             ? greedy_schedule_byte(matrix, steps, chunks)
             : greedy_schedule_bitplane(matrix, steps, chunks);
}

ScheduleTrace weighted_greedy_schedule(
    const measure::CatchmentStore& matrix,
    const std::vector<double>& source_volume, std::size_t steps) {
  OBS_TIMER("analysis.schedule_ns");
  ScheduleTrace trace;
  if (matrix.empty()) return trace;
  const std::size_t source_count = matrix.sources();
  if (source_volume.size() != source_count) {
    throw std::invalid_argument("one volume per source is required");
  }
  if (steps == 0 || steps > matrix.size()) steps = matrix.size();

  double total_volume = 0.0;
  for (double v : source_volume) total_volume += v;
  if (total_volume <= 0.0) total_volume = 1.0;

  ClusterTracker tracker(source_count);
  std::vector<bool> used(matrix.size(), false);
  // Epoch-stamped scratch: bucket id, member count and volume per
  // (cluster, catchment) pair.
  std::vector<std::uint64_t> stamp(source_count * kSlots, 0);
  std::vector<std::uint32_t> bucket_of(source_count * kSlots, 0);
  std::vector<std::uint32_t> bucket_size;
  std::vector<double> bucket_volume;
  std::uint64_t epoch = 0;

  // Volume-weighted expected cluster size of the refinement by `row`.
  auto weighted_after = [&](std::span<const std::uint8_t> row) {
    ++epoch;
    const auto& cluster_of = tracker.current().cluster_of;
    std::uint32_t next_bucket = 0;
    bucket_size.clear();
    bucket_volume.clear();
    for (std::uint32_t s = 0; s < source_count; ++s) {
      const std::size_t key =
          std::size_t{cluster_of[s]} * kSlots + slot_of(row[s]);
      if (stamp[key] != epoch) {
        stamp[key] = epoch;
        bucket_of[key] = next_bucket++;
        bucket_size.push_back(0);
        bucket_volume.push_back(0.0);
      }
      const std::uint32_t bucket = bucket_of[key];
      ++bucket_size[bucket];
      bucket_volume[bucket] += source_volume[s];
    }
    double objective = 0.0;
    for (std::uint32_t b = 0; b < next_bucket; ++b) {
      objective += bucket_volume[b] * static_cast<double>(bucket_size[b]);
    }
    return objective / total_volume;
  };

  for (std::size_t step = 0; step < steps; ++step) {
    std::size_t best_config = kNoConfig;
    double best_objective = 0.0;
    for (std::size_t c = 0; c < matrix.size(); ++c) {
      if (used[c]) continue;
      const double objective = weighted_after(matrix.row(c));
      if (best_config == kNoConfig || objective < best_objective) {
        best_config = c;
        best_objective = objective;
      }
    }
    if (best_config == kNoConfig) break;
    used[best_config] = true;
    tracker.refine(matrix.row(best_config));
    trace.order.push_back(best_config);
    trace.mean_cluster_size.push_back(best_objective);
  }
  return trace;
}

RandomEnsemble random_ensemble(const measure::CatchmentStore& matrix,
                               std::size_t sequences, std::uint64_t seed,
                               std::size_t max_steps) {
  RandomEnsemble ensemble;
  ensemble.sequences = sequences;
  if (matrix.empty() || sequences == 0) return ensemble;
  const std::size_t steps =
      (max_steps == 0 || max_steps > matrix.size()) ? matrix.size()
                                                    : max_steps;

  // One row of step-wise means per sequence; sequences run in parallel
  // with independent deterministic RNG streams.
  std::vector<std::vector<double>> means(sequences);
  util::parallel_for(sequences, [&](std::size_t i) {
    util::Rng rng{util::hash_combine(seed, i)};
    const ScheduleTrace trace = random_schedule(matrix, rng);
    means[i].assign(trace.mean_cluster_size.begin(),
                    trace.mean_cluster_size.begin() +
                        static_cast<std::ptrdiff_t>(steps));
  });

  ensemble.p25.resize(steps);
  ensemble.p50.resize(steps);
  ensemble.p75.resize(steps);
  std::vector<double> column(sequences);
  for (std::size_t k = 0; k < steps; ++k) {
    for (std::size_t i = 0; i < sequences; ++i) column[i] = means[i][k];
    ensemble.p25[k] = util::percentile(column, 25.0);
    ensemble.p50[k] = util::percentile(column, 50.0);
    ensemble.p75[k] = util::percentile(column, 75.0);
  }
  return ensemble;
}

}  // namespace spooftrack::core
