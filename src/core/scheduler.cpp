#include "core/scheduler.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <numeric>
#include <span>
#include <stdexcept>

#include "core/cluster.hpp"
#include "core/cluster_slots.hpp"
#include "obs/obs.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace spooftrack::core {

namespace {

constexpr auto kNoConfig = std::numeric_limits<std::size_t>::max();

/// Number of clusters a refinement with `row` would produce, without
/// mutating the partition. Uses caller-provided epoch scratch tables.
/// Singleton clusters contribute exactly one bucket each whatever their
/// cell holds, so the scan touches only the pre-gathered active
/// (non-singleton) sources; `active_base` carries each one's
/// `cluster_of * kSlots` so the hot loop is one gather, one add and one
/// stamp probe. Each active source can add at most one bucket, so once
/// `count + remaining <= bound` the candidate provably cannot *strictly*
/// exceed `bound` and the scan aborts early — the returned partial count
/// is then <= the true count <= bound, which compares identically in the
/// strictly-greater replacement the callers use.
std::uint32_t count_after(std::span<const std::uint32_t> active_src,
                          std::span<const std::size_t> active_base,
                          std::uint32_t singleton_count,
                          std::span<const std::uint8_t> row,
                          std::vector<std::uint64_t>& stamp,
                          std::uint64_t& epoch, std::uint32_t bound) {
  ++epoch;
  std::uint32_t count = singleton_count;
  const std::size_t m = active_src.size();
  for (std::size_t k = 0; k < m; ++k) {
    if (count + static_cast<std::uint32_t>(m - k) <= bound) return count;
    const std::size_t key = active_base[k] + slot_of(row[active_src[k]]);
    if (stamp[key] != epoch) {
      stamp[key] = epoch;
      ++count;
    }
  }
  return count;
}

}  // namespace

ScheduleTrace random_schedule(const measure::CatchmentStore& matrix,
                              util::Rng& rng) {
  ScheduleTrace trace;
  if (matrix.empty()) return trace;
  trace.order.resize(matrix.size());
  std::iota(trace.order.begin(), trace.order.end(), std::size_t{0});
  rng.shuffle(trace.order);

  ClusterTracker tracker(matrix.sources());
  trace.mean_cluster_size.reserve(matrix.size());
  for (std::size_t config : trace.order) {
    tracker.refine(matrix.row(config));
    trace.mean_cluster_size.push_back(tracker.mean_cluster_size());
  }
  return trace;
}

ScheduleTrace greedy_schedule(const measure::CatchmentStore& matrix,
                              std::size_t steps, std::size_t workers) {
  OBS_TIMER("analysis.schedule_ns");
  ScheduleTrace trace;
  if (matrix.empty()) return trace;
  const std::size_t n = matrix.size();
  const std::size_t source_count = matrix.sources();
  if (steps == 0 || steps > n) steps = n;
  if (workers == 0) workers = util::default_worker_count();
  const std::size_t chunks = std::max<std::size_t>(1, std::min(workers, n));
  OBS_GAUGE("analysis.schedule_workers", chunks);

  ClusterTracker tracker(source_count);
  std::vector<bool> used(n, false);

  // One stamp table + epoch per worker so candidate scans never share
  // mutable state; chunk w owns best[w], so dynamic task claiming in the
  // pool cannot affect the result.
  struct Scratch {
    std::vector<std::uint64_t> stamp;
    std::uint64_t epoch = 0;
  };
  std::vector<Scratch> scratch(chunks);
  for (auto& sc : scratch) sc.stamp.assign(source_count * kSlots, 0);

  struct Best {
    std::size_t config = kNoConfig;
    std::uint32_t count = 0;
  };
  std::vector<Best> best(chunks);

  // Compact list of non-singleton sources, rebuilt once per step: the
  // per-candidate scan touches only these, so as refinement saturates the
  // partition the inner loop shrinks towards zero. `active_base` holds each
  // active source's `cluster_of * kSlots` so candidates don't re-derive it.
  std::vector<std::uint32_t> active_src;
  std::vector<std::size_t> active_base;
  active_src.reserve(source_count);
  active_base.reserve(source_count);

  util::WorkerPool pool(chunks - 1);

  for (std::size_t step = 0; step < steps; ++step) {
    const auto& cluster_of = tracker.current().cluster_of;
    const auto mask = tracker.singleton_mask();
    const std::uint32_t singles = tracker.singleton_count();

    active_src.clear();
    active_base.clear();
    for (std::size_t s = 0; s < source_count;) {
      if (s + 8 <= source_count) {
        std::uint64_t word;
        std::memcpy(&word, mask.data() + s, sizeof word);
        if (word == ~std::uint64_t{0}) {
          s += 8;
          continue;
        }
      }
      if (mask[s] == 0) {
        active_src.push_back(static_cast<std::uint32_t>(s));
        active_base.push_back(std::size_t{cluster_of[s]} * kSlots);
      }
      ++s;
    }

    Best winner;
    if (active_src.empty()) {
      // Fully saturated partition: every candidate refines to exactly
      // `singles` clusters, so the serial scan would pick the lowest-index
      // unused config. Do that directly.
      for (std::size_t c = 0; c < n; ++c) {
        if (!used[c]) {
          winner = {c, singles};
          break;
        }
      }
    } else {
      pool.run(chunks, [&](std::size_t w) {
        Best b;
        auto& sc = scratch[w];
        const std::size_t begin = w * n / chunks;
        const std::size_t end = (w + 1) * n / chunks;
        for (std::size_t c = begin; c < end; ++c) {
          if (used[c]) continue;
          const std::uint32_t bound = b.config == kNoConfig ? 0 : b.count;
          const std::uint32_t count =
              count_after(active_src, active_base, singles, matrix.row(c),
                          sc.stamp, sc.epoch, bound);
          if (b.config == kNoConfig || count > b.count) b = {c, count};
        }
        best[w] = b;
      });

      // Deterministic reduction: chunks cover ascending contiguous config
      // ranges, and both the in-chunk scan and this merge replace only on
      // strictly greater counts — so the winner is the lowest-index config
      // with the maximum count, exactly as in a serial scan.
      for (const Best& b : best) {
        if (b.config == kNoConfig) continue;
        if (winner.config == kNoConfig || b.count > winner.count) winner = b;
      }
    }
    if (winner.config == kNoConfig) break;
    used[winner.config] = true;
    tracker.refine(matrix.row(winner.config));
    trace.order.push_back(winner.config);
    trace.mean_cluster_size.push_back(tracker.mean_cluster_size());
  }
  return trace;
}

ScheduleTrace weighted_greedy_schedule(
    const measure::CatchmentStore& matrix,
    const std::vector<double>& source_volume, std::size_t steps) {
  OBS_TIMER("analysis.schedule_ns");
  ScheduleTrace trace;
  if (matrix.empty()) return trace;
  const std::size_t source_count = matrix.sources();
  if (source_volume.size() != source_count) {
    throw std::invalid_argument("one volume per source is required");
  }
  if (steps == 0 || steps > matrix.size()) steps = matrix.size();

  double total_volume = 0.0;
  for (double v : source_volume) total_volume += v;
  if (total_volume <= 0.0) total_volume = 1.0;

  ClusterTracker tracker(source_count);
  std::vector<bool> used(matrix.size(), false);
  // Epoch-stamped scratch: bucket id, member count and volume per
  // (cluster, catchment) pair.
  std::vector<std::uint64_t> stamp(source_count * kSlots, 0);
  std::vector<std::uint32_t> bucket_of(source_count * kSlots, 0);
  std::vector<std::uint32_t> bucket_size;
  std::vector<double> bucket_volume;
  std::uint64_t epoch = 0;

  // Volume-weighted expected cluster size of the refinement by `row`.
  auto weighted_after = [&](std::span<const std::uint8_t> row) {
    ++epoch;
    const auto& cluster_of = tracker.current().cluster_of;
    std::uint32_t next_bucket = 0;
    bucket_size.clear();
    bucket_volume.clear();
    for (std::uint32_t s = 0; s < source_count; ++s) {
      const std::size_t key =
          std::size_t{cluster_of[s]} * kSlots + slot_of(row[s]);
      if (stamp[key] != epoch) {
        stamp[key] = epoch;
        bucket_of[key] = next_bucket++;
        bucket_size.push_back(0);
        bucket_volume.push_back(0.0);
      }
      const std::uint32_t bucket = bucket_of[key];
      ++bucket_size[bucket];
      bucket_volume[bucket] += source_volume[s];
    }
    double objective = 0.0;
    for (std::uint32_t b = 0; b < next_bucket; ++b) {
      objective += bucket_volume[b] * static_cast<double>(bucket_size[b]);
    }
    return objective / total_volume;
  };

  for (std::size_t step = 0; step < steps; ++step) {
    std::size_t best_config = kNoConfig;
    double best_objective = 0.0;
    for (std::size_t c = 0; c < matrix.size(); ++c) {
      if (used[c]) continue;
      const double objective = weighted_after(matrix.row(c));
      if (best_config == kNoConfig || objective < best_objective) {
        best_config = c;
        best_objective = objective;
      }
    }
    if (best_config == kNoConfig) break;
    used[best_config] = true;
    tracker.refine(matrix.row(best_config));
    trace.order.push_back(best_config);
    trace.mean_cluster_size.push_back(best_objective);
  }
  return trace;
}

RandomEnsemble random_ensemble(const measure::CatchmentStore& matrix,
                               std::size_t sequences, std::uint64_t seed,
                               std::size_t max_steps) {
  RandomEnsemble ensemble;
  ensemble.sequences = sequences;
  if (matrix.empty() || sequences == 0) return ensemble;
  const std::size_t steps =
      (max_steps == 0 || max_steps > matrix.size()) ? matrix.size()
                                                    : max_steps;

  // One row of step-wise means per sequence; sequences run in parallel
  // with independent deterministic RNG streams.
  std::vector<std::vector<double>> means(sequences);
  util::parallel_for(sequences, [&](std::size_t i) {
    util::Rng rng{util::hash_combine(seed, i)};
    const ScheduleTrace trace = random_schedule(matrix, rng);
    means[i].assign(trace.mean_cluster_size.begin(),
                    trace.mean_cluster_size.begin() +
                        static_cast<std::ptrdiff_t>(steps));
  });

  ensemble.p25.resize(steps);
  ensemble.p50.resize(steps);
  ensemble.p75.resize(steps);
  std::vector<double> column(sequences);
  for (std::size_t k = 0; k < steps; ++k) {
    for (std::size_t i = 0; i < sequences; ++i) column[i] = means[i][k];
    ensemble.p25[k] = util::percentile(column, 25.0);
    ensemble.p50[k] = util::percentile(column, 50.0);
    ensemble.p75[k] = util::percentile(column, 75.0);
  }
  return ensemble;
}

}  // namespace spooftrack::core
