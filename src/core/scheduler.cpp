#include "core/scheduler.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <numeric>

#include "core/cluster.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace spooftrack::core {

namespace {

constexpr std::uint32_t kSlots = 64;
constexpr std::uint32_t kMissingSlot = kSlots - 1;

std::uint32_t slot_of(bgp::LinkId link) noexcept {
  return link == bgp::kNoCatchment
             ? kMissingSlot
             : std::min<std::uint32_t>(link, kMissingSlot - 1);
}

/// Number of clusters a refinement with `row` would produce, without
/// mutating the partition. Uses caller-provided epoch scratch tables.
std::uint32_t count_after(const std::vector<std::uint32_t>& cluster_of,
                          std::span<const bgp::LinkId> row,
                          std::vector<std::uint64_t>& stamp,
                          std::uint64_t& epoch) {
  ++epoch;
  std::uint32_t count = 0;
  for (std::uint32_t s = 0; s < cluster_of.size(); ++s) {
    const std::size_t key =
        std::size_t{cluster_of[s]} * kSlots + slot_of(row[s]);
    if (stamp[key] != epoch) {
      stamp[key] = epoch;
      ++count;
    }
  }
  return count;
}

}  // namespace

ScheduleTrace random_schedule(const measure::CatchmentMatrix& matrix,
                              util::Rng& rng) {
  ScheduleTrace trace;
  if (matrix.empty()) return trace;
  trace.order.resize(matrix.size());
  std::iota(trace.order.begin(), trace.order.end(), std::size_t{0});
  rng.shuffle(trace.order);

  ClusterTracker tracker(matrix[0].size());
  trace.mean_cluster_size.reserve(matrix.size());
  for (std::size_t config : trace.order) {
    tracker.refine(matrix[config]);
    trace.mean_cluster_size.push_back(tracker.mean_cluster_size());
  }
  return trace;
}

ScheduleTrace greedy_schedule(const measure::CatchmentMatrix& matrix,
                              std::size_t steps) {
  ScheduleTrace trace;
  if (matrix.empty()) return trace;
  const std::size_t source_count = matrix[0].size();
  if (steps == 0 || steps > matrix.size()) steps = matrix.size();

  ClusterTracker tracker(source_count);
  std::vector<bool> used(matrix.size(), false);
  std::vector<std::uint64_t> stamp(source_count * kSlots, 0);
  std::uint64_t epoch = 0;

  for (std::size_t step = 0; step < steps; ++step) {
    std::size_t best_config = matrix.size();
    std::uint32_t best_count = 0;
    for (std::size_t c = 0; c < matrix.size(); ++c) {
      if (used[c]) continue;
      const std::uint32_t count = count_after(
          tracker.current().cluster_of, matrix[c], stamp, epoch);
      if (best_config == matrix.size() || count > best_count) {
        best_config = c;
        best_count = count;
      }
    }
    if (best_config == matrix.size()) break;
    used[best_config] = true;
    tracker.refine(matrix[best_config]);
    trace.order.push_back(best_config);
    trace.mean_cluster_size.push_back(tracker.mean_cluster_size());
  }
  return trace;
}

ScheduleTrace weighted_greedy_schedule(
    const measure::CatchmentMatrix& matrix,
    const std::vector<double>& source_volume, std::size_t steps) {
  ScheduleTrace trace;
  if (matrix.empty()) return trace;
  const std::size_t source_count = matrix[0].size();
  if (source_volume.size() != source_count) {
    throw std::invalid_argument("one volume per source is required");
  }
  if (steps == 0 || steps > matrix.size()) steps = matrix.size();

  double total_volume = 0.0;
  for (double v : source_volume) total_volume += v;
  if (total_volume <= 0.0) total_volume = 1.0;

  ClusterTracker tracker(source_count);
  std::vector<bool> used(matrix.size(), false);
  // Epoch-stamped scratch: bucket id, member count and volume per
  // (cluster, catchment) pair.
  std::vector<std::uint64_t> stamp(source_count * kSlots, 0);
  std::vector<std::uint32_t> bucket_of(source_count * kSlots, 0);
  std::vector<std::uint32_t> bucket_size;
  std::vector<double> bucket_volume;
  std::uint64_t epoch = 0;

  // Volume-weighted expected cluster size of the refinement by `row`.
  auto weighted_after = [&](std::span<const bgp::LinkId> row) {
    ++epoch;
    const auto& cluster_of = tracker.current().cluster_of;
    std::uint32_t next_bucket = 0;
    bucket_size.clear();
    bucket_volume.clear();
    for (std::uint32_t s = 0; s < source_count; ++s) {
      const std::size_t key =
          std::size_t{cluster_of[s]} * kSlots + slot_of(row[s]);
      if (stamp[key] != epoch) {
        stamp[key] = epoch;
        bucket_of[key] = next_bucket++;
        bucket_size.push_back(0);
        bucket_volume.push_back(0.0);
      }
      const std::uint32_t bucket = bucket_of[key];
      ++bucket_size[bucket];
      bucket_volume[bucket] += source_volume[s];
    }
    double objective = 0.0;
    for (std::uint32_t b = 0; b < next_bucket; ++b) {
      objective += bucket_volume[b] * static_cast<double>(bucket_size[b]);
    }
    return objective / total_volume;
  };

  for (std::size_t step = 0; step < steps; ++step) {
    std::size_t best_config = matrix.size();
    double best_objective = 0.0;
    for (std::size_t c = 0; c < matrix.size(); ++c) {
      if (used[c]) continue;
      const double objective = weighted_after(matrix[c]);
      if (best_config == matrix.size() || objective < best_objective) {
        best_config = c;
        best_objective = objective;
      }
    }
    if (best_config == matrix.size()) break;
    used[best_config] = true;
    tracker.refine(matrix[best_config]);
    trace.order.push_back(best_config);
    trace.mean_cluster_size.push_back(best_objective);
  }
  return trace;
}

RandomEnsemble random_ensemble(const measure::CatchmentMatrix& matrix,
                               std::size_t sequences, std::uint64_t seed,
                               std::size_t max_steps) {
  RandomEnsemble ensemble;
  ensemble.sequences = sequences;
  if (matrix.empty() || sequences == 0) return ensemble;
  const std::size_t steps =
      (max_steps == 0 || max_steps > matrix.size()) ? matrix.size()
                                                    : max_steps;

  // One row of step-wise means per sequence; sequences run in parallel
  // with independent deterministic RNG streams.
  std::vector<std::vector<double>> means(sequences);
  util::parallel_for(sequences, [&](std::size_t i) {
    util::Rng rng{util::hash_combine(seed, i)};
    const ScheduleTrace trace = random_schedule(matrix, rng);
    means[i].assign(trace.mean_cluster_size.begin(),
                    trace.mean_cluster_size.begin() +
                        static_cast<std::ptrdiff_t>(steps));
  });

  ensemble.p25.resize(steps);
  ensemble.p50.resize(steps);
  ensemble.p75.resize(steps);
  std::vector<double> column(sequences);
  for (std::size_t k = 0; k < steps; ++k) {
    for (std::size_t i = 0; i < sequences; ++i) column[i] = means[i][k];
    ensemble.p25[k] = util::percentile(column, 25.0);
    ensemble.p50[k] = util::percentile(column, 50.0);
    ensemble.p75[k] = util::percentile(column, 75.0);
  }
  return ensemble;
}

}  // namespace spooftrack::core
