#include "core/io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <type_traits>

#include "util/crc32c.hpp"
#include "util/fsio.hpp"

namespace spooftrack::core {

namespace {

constexpr std::uint64_t kMagic = 0x53504F4F'46415254ULL;  // "SPOOFART"
// v2: every byte after the magic is covered by a CRC32C trailer, so a
// truncated or bit-flipped artifact is rejected deterministically instead
// of deserializing into garbage.
constexpr std::uint32_t kVersion = 2;

// ---- primitive writers/readers (little-endian native; the artifact is a
// local cache format, not a wire format). Both sides thread a running
// CRC32C over the payload; save appends it as a trailer and load verifies
// it after the last field. ------------------------------------------------

struct Writer {
  std::ostream& out;
  std::uint32_t crc = util::crc32c_init();

  void write(const char* data, std::size_t size) {
    crc = util::crc32c_update(crc, data, size);
    out.write(data, static_cast<std::streamsize>(size));
  }
};

struct Reader {
  std::istream& in;
  std::uint32_t crc = util::crc32c_init();

  void read(char* data, std::size_t size) {
    in.read(data, static_cast<std::streamsize>(size));
    if (!in) throw std::runtime_error("artifact truncated");
    crc = util::crc32c_update(crc, data, size);
  }
};

template <typename T>
void put(Writer& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
T get(Reader& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  return value;
}

void put_string(Writer& out, const std::string& text) {
  put<std::uint64_t>(out, text.size());
  out.write(text.data(), text.size());
}

std::string get_string(Reader& in) {
  const auto size = get<std::uint64_t>(in);
  if (size > (std::uint64_t{1} << 20)) {
    throw std::runtime_error("artifact string too large");
  }
  std::string text(size, '\0');
  in.read(text.data(), size);
  return text;
}

template <typename T>
void put_pod_vector(Writer& out, const std::vector<T>& items) {
  put<std::uint64_t>(out, items.size());
  for (const T& item : items) put(out, item);
}

template <typename T>
std::vector<T> get_pod_vector(Reader& in, std::uint64_t cap) {
  const auto size = get<std::uint64_t>(in);
  if (size > cap) throw std::runtime_error("artifact vector too large");
  std::vector<T> items(size);
  for (T& item : items) item = get<T>(in);
  return items;
}

constexpr std::uint64_t kSaneCap = 1u << 26;  // 64M elements

void put_spec(Writer& out, const bgp::AnnouncementSpec& spec) {
  put(out, spec.link);
  put(out, spec.prepend);
  put_pod_vector(out, spec.poisoned);
  put_pod_vector(out, spec.no_export_to);
}

bgp::AnnouncementSpec get_spec(Reader& in) {
  bgp::AnnouncementSpec spec;
  spec.link = get<bgp::LinkId>(in);
  spec.prepend = get<std::uint32_t>(in);
  spec.poisoned = get_pod_vector<topology::Asn>(in, kSaneCap);
  spec.no_export_to = get_pod_vector<topology::Asn>(in, kSaneCap);
  return spec;
}

}  // namespace

std::uint64_t DeploymentArtifact::annotation(const std::string& key,
                                             std::uint64_t fallback) const {
  for (const auto& [name, value] : annotations) {
    if (name == key) return value;
  }
  return fallback;
}

void DeploymentArtifact::annotate(const std::string& key,
                                  std::uint64_t value) {
  for (auto& [name, stored] : annotations) {
    if (name == key) {
      stored = value;
      return;
    }
  }
  annotations.emplace_back(key, value);
}

DeploymentArtifact make_artifact(const DeploymentResult& result,
                                 std::uint64_t seed, std::size_t as_count,
                                 std::size_t link_count) {
  DeploymentArtifact artifact;
  artifact.seed = seed;
  artifact.as_count = as_count;
  artifact.link_count = link_count;
  artifact.configs = result.configs;
  artifact.sources = result.sources;
  artifact.matrix = result.matrix;
  artifact.compliance = result.compliance;
  artifact.mean_multi_catchment = result.mean_multi_catchment;
  artifact.mean_coverage = result.mean_coverage;
  artifact.source_distance.reserve(result.sources.size());
  for (topology::AsId source : result.sources) {
    artifact.source_distance.push_back(result.min_route_distance[source]);
  }
  return artifact;
}

void save_artifact(const DeploymentArtifact& artifact, std::ostream& stream) {
  Writer out{stream};
  put(out, kMagic);
  put(out, kVersion);
  put(out, artifact.seed);
  put<std::uint64_t>(out, artifact.as_count);
  put<std::uint64_t>(out, artifact.link_count);
  put(out, artifact.mean_multi_catchment);
  put(out, artifact.mean_coverage);

  put<std::uint64_t>(out, artifact.annotations.size());
  for (const auto& [key, value] : artifact.annotations) {
    put_string(out, key);
    put(out, value);
  }

  put<std::uint64_t>(out, artifact.configs.size());
  for (const auto& config : artifact.configs) {
    put_string(out, config.label);
    put<std::uint64_t>(out, config.announcements.size());
    for (const auto& spec : config.announcements) put_spec(out, spec);
  }

  put_pod_vector(out, artifact.sources);
  put_pod_vector(out, artifact.source_distance);

  put<std::uint64_t>(out, artifact.compliance.size());
  for (const auto& stats : artifact.compliance) {
    put<std::uint64_t>(out, stats.audited);
    put<std::uint64_t>(out, stats.best_relationship);
    put<std::uint64_t>(out, stats.both_criteria);
  }

  // Matrix cells as bytes (0xFF = no catchment) — the store's exact
  // in-memory layout, so the buffer writes in one shot.
  put<std::uint64_t>(out, artifact.matrix.size());
  put<std::uint64_t>(out, artifact.matrix.sources());
  out.write(reinterpret_cast<const char*>(artifact.matrix.data()),
            artifact.matrix.size_bytes());

  // Trailer: CRC32C over everything above, written raw (not self-covering).
  const std::uint32_t crc = util::crc32c_final(out.crc);
  stream.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  if (!stream) throw std::runtime_error("artifact write failed");
}

DeploymentArtifact load_artifact(std::istream& stream) {
  Reader in{stream};
  if (get<std::uint64_t>(in) != kMagic) {
    throw std::runtime_error("not a spooftrack artifact");
  }
  if (get<std::uint32_t>(in) != kVersion) {
    throw std::runtime_error("unsupported artifact version");
  }

  DeploymentArtifact artifact;
  artifact.seed = get<std::uint64_t>(in);
  artifact.as_count = get<std::uint64_t>(in);
  artifact.link_count = get<std::uint64_t>(in);
  artifact.mean_multi_catchment = get<double>(in);
  artifact.mean_coverage = get<double>(in);

  const auto annotation_count = get<std::uint64_t>(in);
  if (annotation_count > 4096) {
    throw std::runtime_error("artifact has too many annotations");
  }
  for (std::uint64_t i = 0; i < annotation_count; ++i) {
    std::string key = get_string(in);
    const auto value = get<std::uint64_t>(in);
    artifact.annotations.emplace_back(std::move(key), value);
  }

  const auto config_count = get<std::uint64_t>(in);
  if (config_count > kSaneCap) {
    throw std::runtime_error("artifact has too many configurations");
  }
  artifact.configs.resize(config_count);
  for (auto& config : artifact.configs) {
    config.label = get_string(in);
    const auto spec_count = get<std::uint64_t>(in);
    if (spec_count > 4096) {
      throw std::runtime_error("configuration has too many announcements");
    }
    config.announcements.reserve(spec_count);
    for (std::uint64_t i = 0; i < spec_count; ++i) {
      config.announcements.push_back(get_spec(in));
    }
  }

  artifact.sources = get_pod_vector<topology::AsId>(in, kSaneCap);
  artifact.source_distance = get_pod_vector<std::uint32_t>(in, kSaneCap);

  const auto compliance_count = get<std::uint64_t>(in);
  if (compliance_count > kSaneCap) {
    throw std::runtime_error("artifact has too many compliance entries");
  }
  artifact.compliance.resize(compliance_count);
  for (auto& stats : artifact.compliance) {
    stats.audited = get<std::uint64_t>(in);
    stats.best_relationship = get<std::uint64_t>(in);
    stats.both_criteria = get<std::uint64_t>(in);
  }

  const auto rows = get<std::uint64_t>(in);
  const auto cols = get<std::uint64_t>(in);
  if (rows > kSaneCap || cols > kSaneCap || rows * cols > kSaneCap * 8) {
    throw std::runtime_error("artifact matrix too large");
  }
  artifact.matrix.assign(rows, cols);
  in.read(reinterpret_cast<char*>(artifact.matrix.data()),
          artifact.matrix.size_bytes());
  for (std::size_t c = 0; c < artifact.matrix.size(); ++c) {
    for (std::uint8_t cell : artifact.matrix.row(c)) {
      if (cell != bgp::kNoCatchment8 && cell >= bgp::kMaxCatchmentLinks) {
        throw std::runtime_error("artifact matrix cell out of range");
      }
    }
  }

  const std::uint32_t expect = util::crc32c_final(in.crc);
  std::uint32_t crc = 0;
  stream.read(reinterpret_cast<char*>(&crc), sizeof(crc));
  if (!stream) throw std::runtime_error("artifact truncated");
  if (crc != expect) {
    throw std::runtime_error("artifact checksum mismatch");
  }
  return artifact;
}

void save_artifact_file(const DeploymentArtifact& artifact,
                        const std::string& path) {
  // Atomic: serialize, temp-write, fsync, rename, directory fsync — a crash
  // mid-save can never leave a torn artifact under the final name.
  std::ostringstream out(std::ios::binary);
  save_artifact(artifact, out);
  util::atomic_write_file(path, out.view());
}

DeploymentArtifact load_artifact_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open artifact: " + path);
  return load_artifact(in);
}

}  // namespace spooftrack::core
