#include "core/report.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "core/cluster.hpp"
#include "core/scheduler.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace spooftrack::core {

void write_report(const DeploymentArtifact& artifact, std::ostream& out,
                  const ReportOptions& options) {
  const auto clustering = cluster_sources(artifact.matrix);
  const auto sizes = clustering.sizes();

  out << "# Spoofed-source localization campaign report\n\n";
  out << "Deterministic seed: `" << artifact.seed << "`\n\n";

  // --- campaign shape -------------------------------------------------------
  out << "## Campaign\n\n";
  out << "| | |\n|---|---|\n";
  out << "| topology | " << artifact.as_count << " ASes |\n";
  out << "| peering links | " << artifact.link_count << " |\n";
  out << "| configurations deployed | " << artifact.configs.size() << " |\n";
  const auto location_end = artifact.annotation("location_end");
  const auto prepend_end = artifact.annotation("prepend_end");
  if (prepend_end > 0) {
    out << "| phases | " << location_end << " location / "
        << (prepend_end - location_end) << " prepending / "
        << (artifact.configs.size() - prepend_end) << " steering |\n";
  }
  out << "| analysis sources | " << artifact.sources.size() << " |\n";
  out << "| mean per-config coverage | "
      << util::fmt_double(artifact.mean_coverage, 1) << " ASes |\n";
  out << "| multi-catchment ASes | "
      << util::fmt_percent(artifact.mean_multi_catchment) << " |\n\n";

  // --- localization quality -------------------------------------------------
  std::size_t singletons = 0, tail_clusters = 0, tail_ases = 0;
  std::uint32_t largest = 0;
  for (std::uint32_t s : sizes) {
    singletons += s == 1;
    largest = std::max(largest, s);
    if (s > options.tail_threshold) {
      ++tail_clusters;
      tail_ases += s;
    }
  }
  out << "## Localization quality\n\n";
  out << "| | |\n|---|---|\n";
  out << "| clusters | " << clustering.cluster_count << " |\n";
  out << "| mean cluster size | "
      << util::fmt_double(clustering.mean_size(), 2) << " ASes |\n";
  out << "| singleton clusters | "
      << util::fmt_percent(clustering.cluster_count == 0
                               ? 0.0
                               : static_cast<double>(singletons) /
                                     clustering.cluster_count)
      << " |\n";
  out << "| clusters larger than " << options.tail_threshold << " ASes | "
      << tail_clusters << " (holding " << tail_ases << " ASes) |\n";
  out << "| largest cluster | " << largest << " ASes |\n\n";

  if (tail_clusters > 0) {
    out << "### Heavy tail (candidates for targeted splitting)\n\n";
    std::vector<std::uint32_t> order(clustering.cluster_count);
    for (std::uint32_t c = 0; c < clustering.cluster_count; ++c) order[c] = c;
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return sizes[a] > sizes[b];
              });
    out << "| cluster | ASes |\n|---|---|\n";
    for (std::size_t i = 0;
         i < options.tail_items && i < order.size() &&
         sizes[order[i]] > options.tail_threshold;
         ++i) {
      out << "| " << order[i] << " | " << sizes[order[i]] << " |\n";
    }
    out << "\nUse `core::propose_splits` (or rerun with the community "
           "phase enabled) to attack these.\n\n";
  }

  // --- policy compliance ----------------------------------------------------
  if (!artifact.compliance.empty()) {
    util::Accumulator best_rel, both;
    for (const auto& stats : artifact.compliance) {
      if (stats.audited == 0) continue;
      best_rel.add(stats.best_relationship_fraction());
      both.add(stats.both_fraction());
    }
    out << "## Routing-policy compliance (Gao-Rexford audit)\n\n";
    out << "| criterion | mean | min |\n|---|---|---|\n";
    out << "| best relationship | " << util::fmt_percent(best_rel.mean())
        << " | " << util::fmt_percent(best_rel.min()) << " |\n";
    out << "| + shortest path | " << util::fmt_percent(both.mean()) << " | "
        << util::fmt_percent(both.min()) << " |\n\n";
  }

  // --- runbook ---------------------------------------------------------------
  if (options.runbook_steps > 0 && !artifact.matrix.empty()) {
    const auto schedule =
        greedy_schedule(artifact.matrix, options.runbook_steps);
    out << "## Attack-time runbook (greedy order over pre-measured "
           "catchments)\n\n";
    out << "When spoofed traffic appears, deploy in this order and compare "
           "per-link volumes\nagainst the recorded catchments:\n\n";
    out << "| step | configuration | expected mean cluster size |\n";
    out << "|---|---|---|\n";
    for (std::size_t k = 0; k < schedule.order.size(); ++k) {
      out << "| " << (k + 1) << " | `"
          << artifact.configs[schedule.order[k]].label << "` | "
          << util::fmt_double(schedule.mean_cluster_size[k], 2) << " |\n";
    }
    out << "\n";
  }
}

std::string render_report(const DeploymentArtifact& artifact,
                          const ReportOptions& options) {
  std::ostringstream out;
  write_report(artifact, out, options);
  return out.str();
}

}  // namespace spooftrack::core
