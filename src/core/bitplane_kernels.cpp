#include "core/bitplane_kernels.hpp"

#include <algorithm>
#include <bit>
#include <limits>

namespace spooftrack::core {

namespace {

constexpr std::uint32_t kNoWord = std::numeric_limits<std::uint32_t>::max();

}  // namespace

void ClusterMasks::build(std::span<const std::uint32_t> cluster_of,
                         std::uint32_t cluster_count,
                         std::span<const std::uint8_t> singleton_mask) {
  const std::size_t n = cluster_of.size();
  const bool skip_singletons = !singleton_mask.empty();
  active_sources_ = 0;
  entry_count_.assign(cluster_count, 0);
  size_.assign(cluster_count, 0);
  last_word_.assign(cluster_count, kNoWord);
  std::uint32_t max_size = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (skip_singletons && singleton_mask[s] != 0) continue;
    const std::uint32_t c = cluster_of[s];
    const auto w = static_cast<std::uint32_t>(s >> 6);
    max_size = std::max(max_size, ++size_[c]);
    ++active_sources_;
    if (last_word_[c] != w) {
      last_word_[c] = w;
      ++entry_count_[c];
    }
  }

  // Processing order: descending size, ascending id on ties (counting
  // sort). Large clusters carry most of the abort bound's mass yet yield
  // few distinct slots, so resolving them first lets candidate scans
  // abort earliest; the total is order-independent.
  size_start_.assign(std::size_t{max_size} + 1, 0);
  std::uint32_t retained = 0;
  for (std::uint32_t c = 0; c < cluster_count; ++c) {
    if (entry_count_[c] == 0) continue;
    ++size_start_[size_[c] - 1];
    ++retained;
  }
  std::uint32_t acc = 0;
  for (std::size_t sz = max_size; sz-- > 0;) {
    const std::uint32_t here = size_start_[sz];
    size_start_[sz] = acc;
    acc += here;
  }
  order_.resize(retained);
  for (std::uint32_t c = 0; c < cluster_count; ++c) {
    if (entry_count_[c] == 0) continue;
    order_[size_start_[size_[c] - 1]++] = c;
  }

  begin_.clear();
  mbegin_.clear();
  remaining_ub_.clear();
  cursor_.assign(cluster_count, 0);
  mcursor_.assign(cluster_count, 0);
  std::uint32_t total = 0;
  std::uint32_t mtotal = 0;
  for (const std::uint32_t c : order_) {
    begin_.push_back(total);
    mbegin_.push_back(mtotal);
    remaining_ub_.push_back(std::min<std::uint32_t>(size_[c], kSlots));
    cursor_[c] = total;
    mcursor_[c] = mtotal;
    total += entry_count_[c];
    mtotal += size_[c];
  }
  begin_.push_back(total);
  mbegin_.push_back(mtotal);
  entries_.resize(total);
  members_.resize(mtotal);

  // Second pass fills entries and member lists; sources ascend, so each
  // cluster's words ascend and `cursor_ - 1` is always its in-progress
  // word.
  std::fill(last_word_.begin(), last_word_.end(), kNoWord);
  for (std::size_t s = 0; s < n; ++s) {
    if (skip_singletons && singleton_mask[s] != 0) continue;
    const std::uint32_t c = cluster_of[s];
    const auto w = static_cast<std::uint32_t>(s >> 6);
    const std::uint64_t bit = std::uint64_t{1} << (s & 63);
    members_[mcursor_[c]++] = static_cast<std::uint32_t>(s);
    if (last_word_[c] != w) {
      last_word_[c] = w;
      entries_[cursor_[c]++] = {w, bit};
    } else {
      entries_[cursor_[c] - 1].mask |= bit;
    }
  }

  // remaining_ub_ currently holds per-cluster bounds; fold into suffix
  // sums with a trailing zero so remaining_ub(i) covers clusters i..
  remaining_ub_.push_back(0);
  for (std::size_t i = remaining_ub_.size() - 1; i-- > 0;) {
    remaining_ub_[i] += remaining_ub_[i + 1];
  }
}

std::uint64_t plane_values(const std::uint64_t* planes, std::size_t words,
                           std::uint32_t word, std::uint64_t mask) noexcept {
  // DFS over value planes: a uniform plane appends one value bit, a mixed
  // plane splits the lanes (continue into the zeros side, stack the ones
  // side). Stack levels strictly increase, so depth <= kSlotBits.
  struct Frame {
    std::uint64_t mask;
    std::uint32_t level;
    std::uint32_t value;
  };
  Frame stack[kSlotBits];
  int sp = 0;
  std::uint64_t m = mask;
  std::uint32_t level = 0;
  std::uint32_t value = 0;
  std::uint64_t presence = 0;
  const std::size_t w = word;
  for (;;) {
    while (level < kSlotBits) {
      const std::uint64_t x = planes[level * words + w] & m;
      if (x == m) {
        value |= 1u << level;
      } else if (x != 0) {
        stack[sp++] = {x, level + 1, value | (1u << level)};
        m ^= x;
      }
      ++level;
    }
    presence |= std::uint64_t{1} << value;
    if (sp == 0) return presence;
    --sp;
    m = stack[sp].mask;
    level = stack[sp].level;
    value = stack[sp].value;
  }
}

std::uint32_t count_after_bitplane(const ClusterMasks& masks,
                                   std::uint32_t singleton_count,
                                   const std::uint8_t* row,
                                   const std::uint64_t* planes,
                                   std::size_t words, std::uint32_t bound) {
  std::uint32_t count = singleton_count;
  const std::size_t k = masks.cluster_count();
  for (std::size_t i = 0; i < k; ++i) {
    if (count + masks.remaining_ub(i) <= bound) return count;
    std::uint64_t presence = 0;
    for (const ClusterWord& cw : masks.cluster(i)) {
      if (std::popcount(cw.mask) >= kDensePartitionLanes) {
        presence |= plane_values(planes, words, cw.word, cw.mask);
      } else {
        // Missing cells (0xFF) fold to slot 63 via `& 63`, exactly
        // core::slot_of; valid link ids (< 62) pass through unchanged.
        const std::size_t base = std::size_t{cw.word} << 6;
        std::uint64_t m = cw.mask;
        while (m != 0) {
          const auto lane = static_cast<std::size_t>(std::countr_zero(m));
          presence |= std::uint64_t{1} << (row[base + lane] & 63);
          m &= m - 1;
        }
      }
    }
    count += static_cast<std::uint32_t>(std::popcount(presence));
  }
  return count;
}

std::uint32_t count_after_members(const ClusterMasks& masks,
                                  std::uint32_t singleton_count,
                                  const std::uint8_t* row,
                                  std::uint32_t bound) {
  std::uint32_t count = singleton_count;
  const std::size_t k = masks.cluster_count();
  for (std::size_t i = 0; i < k; ++i) {
    if (count + masks.remaining_ub(i) <= bound) return count;
    const auto members = masks.members(i);
    // Two independent accumulators break the OR dependency chain; the
    // row reads (a few KB) and member indices (sequential) stay in L1.
    std::uint64_t p0 = 0;
    std::uint64_t p1 = 0;
    std::size_t m = 0;
    for (; m + 2 <= members.size(); m += 2) {
      // Missing cells (0xFF) fold to slot 63 via `& 63`, exactly
      // core::slot_of; valid link ids (< 62) pass through unchanged.
      p0 |= std::uint64_t{1} << (row[members[m]] & 63);
      p1 |= std::uint64_t{1} << (row[members[m + 1]] & 63);
    }
    if (m < members.size()) {
      p0 |= std::uint64_t{1} << (row[members[m]] & 63);
    }
    count += static_cast<std::uint32_t>(std::popcount(p0 | p1));
  }
  return count;
}

}  // namespace spooftrack::core
