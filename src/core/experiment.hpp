// PeeringTestbed: the §IV experimental setup as a reusable harness.
//
// Emulates the PEERING platform — AS 47065 announcing an experiment prefix
// through the seven Table I muxes/providers — on top of a synthetic
// Internet, and runs the full measurement pipeline per configuration:
// routing, public BGP feeds, RIPE-Atlas-style traceroutes, §IV-b repair,
// catchment inference, and §IV-d visibility handling. Everything is
// deterministic in TestbedConfig::seed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bgp/announcement.hpp"
#include "bgp/catchment.hpp"
#include "bgp/engine.hpp"
#include "bgp/policy.hpp"
#include "core/config_gen.hpp"
#include "core/policy_audit.hpp"
#include "fault/fault.hpp"
#include "journal/journal.hpp"
#include "measure/address_plan.hpp"
#include "measure/driver.hpp"
#include "measure/feed.hpp"
#include "measure/inference.hpp"
#include "measure/ip2as.hpp"
#include "measure/ixp_table.hpp"
#include "measure/repair.hpp"
#include "measure/traceroute.hpp"
#include "measure/visibility.hpp"
#include "topology/synth.hpp"

namespace spooftrack::core {

/// Per-deploy journaling context (journal writer, recovered records,
/// chain coordinates); defined in experiment.cpp.
struct DeployJournal;

/// How PeeringTestbed::deploy schedules propagation, measurement and
/// analysis (docs/architecture.md, "Pipelined execution"):
///   kOff  — barrier mode: propagate the whole campaign, then measure every
///           configuration, then build the matrix.
///   kOn   — streaming mode: the pipeline executor overlaps propagation of
///           configuration i+1 with measurement of i and the analysis
///           commit of i-1 (falls back to barrier when there is nothing to
///           overlap: ground-truth deployments or fewer than 2 configs).
///   kAuto — streaming whenever it applies, barrier otherwise (default).
/// Results are byte-identical across all three for any worker count and
/// queue depth; tests/test_pipeline.cpp pins the equivalence.
enum class PipelineMode : std::uint8_t { kOff = 0, kOn = 1, kAuto = 2 };

/// Table I: the PEERING muxes and transit providers used in the paper.
struct MuxInfo {
  const char* mux;
  const char* provider_name;
  topology::Asn provider_asn;
};
std::span<const MuxInfo> table1_muxes() noexcept;

/// PEERING's ASN.
inline constexpr topology::Asn kPeeringAsn = 47065;

struct TestbedConfig {
  std::uint64_t seed = 42;

  /// Topology shape; reserved ASNs and origin attachment are filled in by
  /// the testbed from Table I.
  std::uint32_t tier1_count = 8;
  std::uint32_t transit_count = 150;
  std::uint32_t stub_count = 3000;
  /// Path-diversity knobs forwarded to the synthesizer. The defaults give
  /// widespread multihoming and a dense IXP fabric — the Internet's route
  /// diversity is what the paper's techniques feed on.
  double transit_extra_providers = 1.2;
  double stub_extra_providers = 0.9;
  double transit_peering_prob = 0.08;
  double stub_tier1_provider_prob = 0.06;
  /// Attraction bonus for the Table I providers. Large enough to secure a
  /// rich poison-target neighbourhood (paper: 347), small enough that the
  /// providers stay regional networks rather than mega-hubs whose shared
  /// customers would form unsplittable clusters.
  double provider_attract_bonus = 8.0;
  /// Table I providers enter the transit build order at this fraction:
  /// mid-pack regional networks, not global hubs (see synth.hpp).
  double provider_position_fraction = 0.5;

  bgp::PolicyConfig policy;
  bgp::EngineOptions engine;
  measure::FeedOptions feed;
  measure::TracerouteOptions traceroute;
  measure::Ip2AsOptions ip2as;

  /// Fault model for the measurement plane (docs/faults.md). All
  /// probabilities default to zero, which is a provable no-op: every
  /// deployment output is bit-identical to a build without the fault
  /// layer. Faults degrade *measurements* — feeds, traceroutes, deploy
  /// attempts — never the routing ground truth, so `truth`,
  /// `engine_rounds`, and `min_route_distance` are invariant under any
  /// plan. The injector seed is salted with TestbedConfig::seed, like
  /// every other component seed.
  fault::FaultPlan faults;

  /// Crash-consistent campaign journal (docs/checkpointing.md). An empty
  /// dir disables journaling entirely. With a dir set, deploy() commits a
  /// checksummed record (and a digest-verified partial artifact) per
  /// configuration as its measurement completes; with journal.resume it
  /// first replays the journal, skips committed configurations, and splices
  /// their recorded measurements back in — byte-identical to an
  /// uninterrupted run for any worker count, pipeline mode and depth.
  /// Requires measured_catchments (ground-truth deployments have no
  /// per-configuration measurement to checkpoint; deploy() throws
  /// std::invalid_argument).
  journal::JournalOptions journal;

  std::uint32_t probe_count = 1200;      // RIPE Atlas probes (distinct ASes)
  std::uint32_t traceroute_rounds = 3;   // rounds per configuration (§IV-b)
  std::uint32_t ixp_count = 12;
  double ixp_edge_fraction = 0.5;

  /// Worker threads for the parallel measurement driver — and, in
  /// streaming mode, for the pipeline executor (0 = the
  /// util::default_worker_count() default). Results are byte-identical for
  /// any value.
  std::size_t measure_workers = 0;

  /// Deploy scheduling mode (see PipelineMode above).
  PipelineMode pipeline = PipelineMode::kAuto;
  /// Streaming-mode backpressure: how many propagated-but-unmeasured steps
  /// each chain may run ahead (pipeline::ExecutorOptions::queue_depth).
  /// Bounds peak memory; never changes results. Values below 1 clamp to 1.
  std::size_t pipeline_depth = 2;

  /// true: catchments come from the measured pipeline (§IV); false: ground
  /// truth from the routing engine (for validation and ablations).
  bool measured_catchments = true;
  /// Compute Figure 9 compliance statistics during deployment.
  bool audit_policies = false;
  /// Propagate deployments through warm-started, similarity-ordered,
  /// memoized campaign chains (core::propagate_campaign). Routing outcomes
  /// are bit-identical to cold per-configuration propagation; disable for
  /// ablations of the warm-start machinery itself.
  bool warm_campaign = true;
};

struct DeploymentResult {
  std::vector<bgp::Configuration> configs;
  /// Ground-truth catchments per configuration (always available).
  std::vector<bgp::CatchmentMap> truth;
  /// Measured inference per configuration (empty when ground truth is
  /// selected in the config).
  std::vector<measure::InferenceResult> measured;
  /// The analysis source set (§IV-d baseline) and its catchment matrix
  /// (rows = configurations, columns = sources, visibility-imputed).
  std::vector<topology::AsId> sources;
  measure::CatchmentStore matrix;
  /// Per AsId: minimum collapsed AS-hop distance to the origin observed
  /// across all configurations (Figure 7's distance).
  std::vector<std::uint32_t> min_route_distance;
  /// Per-configuration compliance statistics (when audited).
  std::vector<ComplianceStats> compliance;
  /// Jacobi rounds per configuration. Under warm-started deployment
  /// (TestbedConfig::warm_campaign) warm-started configurations report the
  /// rounds of their incremental re-propagation, not a cold convergence.
  std::vector<std::uint32_t> engine_rounds;
  /// Mean over configurations of the multi-catchment fraction (§IV-c).
  double mean_multi_catchment = 0.0;
  /// Mean number of ASes covered by measurements per configuration.
  double mean_coverage = 0.0;
  /// Configurations whose measurement was skipped because a resumed journal
  /// had already committed them (0 unless TestbedConfig::journal.resume).
  std::uint64_t resumed_configs = 0;
  /// Per-configuration measurement quality (empty when the fault plan has
  /// every probability at zero). A kFailed entry means deployment was
  /// abandoned after exhausting the retry budget: its `measured` slot is a
  /// sized-but-empty inference (nothing observed) and its matrix row stays
  /// all-missing — "missing measurement", distinct from a measured config
  /// whose sources merely cast no vote.
  std::vector<fault::ConfigQuality> quality;
};

class PeeringTestbed {
 public:
  explicit PeeringTestbed(TestbedConfig config = {});

  const TestbedConfig& config() const noexcept { return config_; }
  const topology::AsGraph& graph() const noexcept { return topo_.graph; }
  const topology::SynthTopology& topology() const noexcept { return topo_; }
  const bgp::OriginSpec& origin() const noexcept { return origin_; }
  topology::AsId origin_id() const noexcept { return origin_id_; }
  const bgp::Engine& engine() const noexcept { return engine_; }
  const bgp::RoutingPolicy& policy() const noexcept { return policy_; }
  const std::vector<topology::AsId>& probe_ases() const noexcept {
    return probes_;
  }
  /// The testbed's fault source (disabled when the plan is all-zero).
  /// Exposed so traffic-plane components (e.g. AmpPotHoneypot) can share
  /// the same schedule: testbed.fault_injector() with a caller-chosen salt.
  const fault::FaultInjector& fault_injector() const noexcept {
    return injector_;
  }

  /// Configuration generator bound to this testbed's origin.
  ConfigGenerator generator(GeneratorOptions options = {}) const {
    return ConfigGenerator(origin_, options);
  }

  /// Routes a single configuration (ground truth; throws on
  /// non-convergence).
  bgp::RoutingOutcome route(const bgp::Configuration& config) const;

  /// Deploys a sequence of configurations, running the full per-config
  /// measurement pipeline in parallel across configurations.
  DeploymentResult deploy(std::vector<bgp::Configuration> configs) const;

 private:
  /// Barrier schedule: propagate everything, measure everything, analyse.
  void deploy_barrier(DeploymentResult& result,
                      const std::vector<char>& abandoned, bool faulty,
                      DeployJournal* journal) const;
  /// Streaming schedule: pipeline executor overlapping propagation,
  /// measurement and analysis commits. Byte-identical to deploy_barrier.
  void deploy_pipelined(DeploymentResult& result,
                        const std::vector<char>& abandoned, bool faulty,
                        DeployJournal* journal) const;

  TestbedConfig config_;
  topology::SynthTopology topo_;
  bgp::OriginSpec origin_;
  topology::AsId origin_id_ = topology::kInvalidAsId;
  bgp::RoutingPolicy policy_;
  bgp::Engine engine_;
  measure::AddressPlan plan_;
  measure::IxpTable ixps_;
  measure::Ip2AsMap ip2as_;
  measure::FeedSimulator feeds_;
  measure::TracerouteSim tracer_;
  measure::PathRepair repair_;
  measure::CatchmentInference inference_;
  fault::FaultInjector injector_;
  std::vector<topology::AsId> probes_;
};

}  // namespace spooftrack::core
