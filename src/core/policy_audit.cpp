#include "core/policy_audit.hpp"

#include <algorithm>

namespace spooftrack::core {

ComplianceStats audit_compliance(const bgp::Engine& engine,
                                 const bgp::OriginSpec& origin,
                                 const bgp::Configuration& config,
                                 const bgp::RoutingOutcome& outcome) {
  ComplianceStats stats;
  const auto& graph = engine.graph();
  const auto origin_id = graph.id_of(origin.asn);
  // One seed table for the whole audit; the per-AS candidate enumeration
  // below must not re-validate the configuration graph-size times.
  const bgp::Engine::Prepared seeds = engine.prepare(origin, config);

  for (topology::AsId x = 0; x < graph.size(); ++x) {
    if (origin_id && x == *origin_id) continue;
    const bgp::Route& chosen = outcome.best[x];
    if (!chosen.valid()) continue;

    const auto candidates =
        engine.candidates(x, origin, config, seeds, outcome);
    if (candidates.empty()) continue;
    ++stats.audited;

    // Best available relationship class (canonical customer>peer>provider,
    // regardless of the AS's private LocalPref deviations).
    std::uint8_t best_class = 0;
    for (const auto& cand : candidates) {
      best_class =
          std::max(best_class, bgp::canonical_pref(cand.rel_of_sender));
    }
    const std::uint8_t chosen_class = bgp::canonical_pref(chosen.learned_from);
    if (chosen_class != best_class) continue;
    ++stats.best_relationship;

    std::uint32_t shortest_in_class =
        std::numeric_limits<std::uint32_t>::max();
    for (const auto& cand : candidates) {
      if (bgp::canonical_pref(cand.rel_of_sender) == best_class) {
        shortest_in_class = std::min(shortest_in_class, cand.length);
      }
    }
    if (outcome.paths->length(chosen.path) == shortest_in_class) {
      ++stats.both_criteria;
    }
  }
  return stats;
}

}  // namespace spooftrack::core
