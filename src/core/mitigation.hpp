// Mitigation planning (§I): the paper motivates localization as the input
// to "automatic DoS mitigation systems that use, e.g., BGP communities to
// trigger remote traffic blackholing or BGP flowspec to configure traffic
// filters". This module turns an attribution result into such a plan:
//
//  * a cluster whose ingress link carries little legitimate traffic can be
//    blackholed wholesale (RTBH community toward the upstream);
//  * a cluster sharing its link with substantial legitimate traffic gets a
//    targeted flowspec filter (match on the attack signature) instead;
//  * every action lists the suspect ASNs for operator notification (the
//    paper's "targeted intervention" / BCP38 outreach).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bgp/catchment.hpp"
#include "core/attribution.hpp"
#include "core/cluster.hpp"
#include "topology/as_graph.hpp"

namespace spooftrack::core {

enum class MitigationKind : std::uint8_t {
  kBlackhole = 0,      // RTBH: drop everything on the ingress link
  kFlowspecFilter,     // targeted filter: drop only the attack signature
};

const char* to_string(MitigationKind kind) noexcept;

struct MitigationAction {
  MitigationKind kind = MitigationKind::kFlowspecFilter;
  std::uint32_t cluster = 0;
  bgp::LinkId link = bgp::kNoCatchment;  // ingress under the live config
  std::vector<topology::Asn> suspects;   // cluster members, for outreach
  double spoofed_share = 0.0;            // attributed attack weight
  double collateral_share = 0.0;         // legit volume on the same link

  std::string describe() const;
};

struct MitigationPlan {
  std::vector<MitigationAction> actions;
  /// Fraction of the attributed attack volume the plan covers.
  double covered_weight = 0.0;
  /// Fraction left unattributed by the mixture (not actionable).
  double unattributed = 0.0;
};

struct MitigationOptions {
  /// Blackhole when the link's legitimate share is below this; otherwise
  /// fall back to a flowspec filter.
  double blackhole_collateral_threshold = 0.05;
  std::size_t max_actions = 8;
};

/// Builds a plan from a mixture attribution. `live_catchments` is the
/// catchment map of the currently-deployed configuration (actions attach
/// to ingress links); `legit_volume_by_link` is the legitimate traffic
/// share per link under that configuration (normalized or raw).
MitigationPlan plan_mitigation(
    const MixtureResult& mixture, const Clustering& clustering,
    const std::vector<topology::AsId>& sources,
    const topology::AsGraph& graph, const bgp::CatchmentMap& live_catchments,
    const std::vector<double>& legit_volume_by_link,
    const MitigationOptions& options = {});

}  // namespace spooftrack::core
