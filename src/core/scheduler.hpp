// Localization scheduling (§V-C): in how few configurations can clusters be
// shrunk? The paper compares random deployment orders against a greedy
// schedule that — assuming catchments were measured beforehand — always
// deploys the configuration minimising the resulting mean cluster size.
//
// All schedulers consume the columnar measure::CatchmentStore; legacy
// nested-vector matrices convert implicitly. greedy_schedule parallelises
// its per-step candidate scan across workers with per-worker epoch stamp
// tables and a deterministic lowest-index-max reduction, so its output is
// bit-identical for any worker count.
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/catchment.hpp"
#include "measure/catchment_store.hpp"
#include "util/rng.hpp"

namespace spooftrack::core {

/// One deployment order plus the mean cluster size after each step.
struct ScheduleTrace {
  std::vector<std::size_t> order;          // configuration indices
  std::vector<double> mean_cluster_size;   // after deploying order[0..k]
};

/// Deploys all configurations in a uniformly random order (no repetition).
ScheduleTrace random_schedule(const measure::CatchmentStore& matrix,
                              util::Rng& rng);

/// Candidate-evaluation kernel for greedy_schedule. Both kernels produce
/// bit-identical schedules; the byte kernel is kept as the ablation
/// reference.
enum class GreedyKernel {
  kBitplane,  // word-parallel plane-partition kernel (default)
  kByte,      // byte-store stamp-table kernel
};

/// Greedy schedule: at each step deploy the configuration that minimises
/// the mean cluster size of the refined partition (ties: lowest index).
/// Stops after `steps` configurations (0 = all). The candidate scan of each
/// step runs on `workers` threads (0 = util::default_worker_count()),
/// scaled down per step by a work-per-worker threshold so tiny matrices
/// skip thread wake overhead; the schedule is bit-identical for every
/// worker count and for both kernels.
ScheduleTrace greedy_schedule(const measure::CatchmentStore& matrix,
                              std::size_t steps = 0,
                              std::size_t workers = 0,
                              GreedyKernel kernel = GreedyKernel::kBitplane);

/// §VIII future work (i): greedy schedule that jointly optimises cluster
/// size and spoofed volume. Each source carries a volume weight (e.g. the
/// per-link honeypot share attributed to it); the objective minimised at
/// every step is the volume-weighted expected cluster size
///
///     sum_s volume[s] * |cluster(s)|  /  sum_s volume[s]
///
/// so the scheduler spends announcements splitting the clusters that send
/// the most spoofed traffic first. `mean_cluster_size` in the returned
/// trace holds this weighted objective.
ScheduleTrace weighted_greedy_schedule(
    const measure::CatchmentStore& matrix,
    const std::vector<double>& source_volume, std::size_t steps = 0);

/// Percentile band over many random schedules: entry k of each vector is
/// the 25th/50th/75th percentile across sequences of the mean cluster size
/// after k+1 configurations (Figure 8's shaded band and median line).
struct RandomEnsemble {
  std::vector<double> p25;
  std::vector<double> p50;
  std::vector<double> p75;
  std::size_t sequences = 0;
};

RandomEnsemble random_ensemble(const measure::CatchmentStore& matrix,
                               std::size_t sequences, std::uint64_t seed,
                               std::size_t max_steps = 0);

}  // namespace spooftrack::core
