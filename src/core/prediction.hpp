// Catchment prediction (the paper's future-work direction §VIII(ii) and
// §V-C: "predict the catchments of announcement configurations and only
// deploy the most promising ones").
//
// Model: each source reveals, one configuration at a time, a preference
// among the peering links available to it. We accumulate pairwise wins —
// "source s chose link a while link b was also available" — and predict
// the catchment of an unseen configuration by a Copeland ranking over its
// active links. Prepended links are demoted to a second tier (prepending
// loses tiebreaks but not LocalPref decisions, so a source that never
// switches away from a link keeps it even when prepended).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bgp/announcement.hpp"
#include "bgp/catchment.hpp"
#include "measure/catchment_store.hpp"

namespace spooftrack::core {

/// Compact description of a configuration for prediction purposes.
struct ConfigDescriptor {
  std::uint32_t active_mask = 0;
  std::uint32_t prepend_mask = 0;

  static ConfigDescriptor from(const bgp::Configuration& config);

  bool active(bgp::LinkId link) const noexcept {
    return (active_mask >> link) & 1u;
  }
  bool prepended(bgp::LinkId link) const noexcept {
    return (prepend_mask >> link) & 1u;
  }
};

class CatchmentPredictor {
 public:
  /// Supports up to 16 links (pairwise win table is links^2 per source).
  CatchmentPredictor(std::size_t source_count, std::size_t link_count);

  /// Ingests one observed configuration: row[s] is source s's measured
  /// catchment (kNoCatchment cells are skipped).
  void observe(const ConfigDescriptor& config,
               std::span<const bgp::LinkId> row);
  /// Same, over an encoded CatchmentStore row (kNoCatchment8 skipped).
  void observe(const ConfigDescriptor& config,
               std::span<const std::uint8_t> row);

  /// Predicted catchment of one source under a configuration; returns
  /// kNoCatchment when nothing was ever observed for the source.
  bgp::LinkId predict(const ConfigDescriptor& config,
                      std::size_t source) const;

  /// Predicted catchments for every source.
  std::vector<bgp::LinkId> predict_row(const ConfigDescriptor& config) const;

  /// Fraction of non-missing cells of `actual` matched by the prediction.
  double accuracy(const ConfigDescriptor& config,
                  std::span<const bgp::LinkId> actual) const;
  /// Same, over an encoded CatchmentStore row.
  double accuracy(const ConfigDescriptor& config,
                  std::span<const std::uint8_t> actual) const;

  std::size_t observed_configs() const noexcept { return observed_; }

 private:
  std::size_t index(std::size_t source, bgp::LinkId winner,
                    bgp::LinkId loser) const {
    return (source * links_ + winner) * links_ + loser;
  }

  /// Copeland choice among candidate links (bitmask) for one source.
  bgp::LinkId copeland(std::size_t source, std::uint32_t candidates) const;

  /// Accumulates one source's observed choice into the win tables.
  void observe_source(const ConfigDescriptor& config, std::size_t source,
                      bgp::LinkId chosen);

  std::size_t links_ = 0;
  std::size_t observed_ = 0;
  /// Pairwise wins "source chose `winner` while `loser` was available".
  std::vector<std::uint16_t> wins_;
  /// Wins recorded while the winner was prepended and the loser was not —
  /// evidence that LocalPref, not path length, drives the choice.
  std::vector<std::uint16_t> strong_wins_;
  std::vector<std::uint8_t> seen_;  // per source: any observation at all
};

}  // namespace spooftrack::core
