// Persistence for deployment artifacts.
//
// Deploying hundreds of configurations is the expensive step (70 minutes
// each on the real Internet, seconds each in simulation); everything
// downstream — clustering, scheduling, attribution, figure generation — is
// cheap analysis over the catchment matrix. DeploymentArtifact captures
// the deployment's outputs in a versioned binary format so campaigns can
// be measured once and analysed many times (the bench suite and the CLI
// both build on this).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "bgp/announcement.hpp"
#include "core/experiment.hpp"
#include "core/policy_audit.hpp"
#include "measure/catchment_store.hpp"

namespace spooftrack::core {

struct DeploymentArtifact {
  /// Free-form annotations (e.g. phase boundaries, generator options).
  std::vector<std::pair<std::string, std::uint64_t>> annotations;

  std::uint64_t seed = 0;
  std::size_t as_count = 0;
  std::size_t link_count = 0;

  std::vector<bgp::Configuration> configs;
  std::vector<topology::AsId> sources;
  measure::CatchmentStore matrix;  // rows = configs, cols = sources
  std::vector<std::uint32_t> source_distance;
  std::vector<ComplianceStats> compliance;
  double mean_multi_catchment = 0.0;
  double mean_coverage = 0.0;

  std::uint64_t annotation(const std::string& key,
                           std::uint64_t fallback = 0) const;
  void annotate(const std::string& key, std::uint64_t value);

  friend bool operator==(const DeploymentArtifact&,
                         const DeploymentArtifact&) = default;
};

/// Builds an artifact from a deployment (distances restricted to sources).
DeploymentArtifact make_artifact(const DeploymentResult& result,
                                 std::uint64_t seed, std::size_t as_count,
                                 std::size_t link_count);

/// Versioned binary serialization. save throws std::runtime_error on write
/// failure; load throws std::runtime_error on corrupt/mismatched input.
void save_artifact(const DeploymentArtifact& artifact, std::ostream& out);
DeploymentArtifact load_artifact(std::istream& in);

/// File convenience wrappers.
void save_artifact_file(const DeploymentArtifact& artifact,
                        const std::string& path);
DeploymentArtifact load_artifact_file(const std::string& path);

}  // namespace spooftrack::core
