// Cluster computation (§III-B): a cluster is a set of sources that share a
// catchment in *every* deployed announcement configuration. Starting from
// one all-encompassing cluster, each configuration's catchments split any
// cluster they partially overlap.
//
// The implementation refines incrementally: after k configurations a
// source's cluster is identified by the tuple of its first k catchments,
// tracked as a dense cluster id that is re-bucketed per configuration in
// O(sources) — cheap enough for the thousands of random schedules of
// Figure 8. Refinement consumes encoded CatchmentStore rows directly and
// skips singleton-saturated stretches eight sources per 64-bit load (a
// cluster of size one can never split again, so its member's new id is
// just the next dense id).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bgp/catchment.hpp"
#include "measure/catchment_store.hpp"

namespace spooftrack::measure {
class BitplaneStore;
}  // namespace spooftrack::measure

namespace spooftrack::core {

/// A partition of sources into clusters.
struct Clustering {
  /// Dense cluster id per source index.
  std::vector<std::uint32_t> cluster_of;
  std::uint32_t cluster_count = 0;

  std::size_t source_count() const noexcept { return cluster_of.size(); }
  /// Size of each cluster, indexed by cluster id.
  std::vector<std::uint32_t> sizes() const;
  double mean_size() const noexcept;
  /// Members (source indices) of each cluster.
  std::vector<std::vector<std::uint32_t>> members() const;
};

/// Incremental cluster refinement.
class ClusterTracker {
 public:
  /// All sources start in a single cluster.
  explicit ClusterTracker(std::size_t source_count);

  /// Refines with one configuration's encoded catchment row (CatchmentStore
  /// cells; bgp::kNoCatchment8 is treated as a distinct catchment value — a
  /// conservative split). Throws std::out_of_range on cells the 6-bit
  /// cluster slots cannot represent. Returns the new cluster count.
  std::uint32_t refine(std::span<const std::uint8_t> catchment_row);

  /// Same, over raw LinkId cells (legacy row shape).
  std::uint32_t refine(std::span<const bgp::LinkId> catchment_row);

  /// Same partition from a bit-sliced row: the row is decoded back to
  /// cell bytes word-parallel (BitplaneStore::decode_row, 8x8 bit
  /// transposes) and folded through the byte refine — ids are
  /// bit-identical to refining the source CatchmentStore row.
  std::uint32_t refine(const measure::BitplaneStore& planes,
                       std::size_t config);

  const Clustering& current() const noexcept { return clustering_; }
  std::uint32_t cluster_count() const noexcept {
    return clustering_.cluster_count;
  }
  double mean_cluster_size() const noexcept {
    return clustering_.mean_size();
  }

  /// Per-source saturation mask: 0xFF when the source's cluster has exactly
  /// one member (it can never split again), 0x00 otherwise. Schedule
  /// evaluation uses it to skip saturated stretches with 64-bit loads.
  ///
  /// Maintained lazily: the first access switches the tracker into
  /// singleton-tracking mode for good (the mask is then rebuilt after
  /// every refine); trackers that never ask — random schedules, one-shot
  /// clusterings — skip the per-refine rebuild entirely.
  std::span<const std::uint8_t> singleton_mask() {
    ensure_singletons();
    return singleton_mask_;
  }
  /// Number of sources whose cluster is a singleton.
  std::uint32_t singleton_count() {
    ensure_singletons();
    return singleton_count_;
  }

 private:
  template <typename Cell>
  std::uint32_t refine_impl(std::span<const Cell> catchment_row);
  void ensure_singletons();
  void rebuild_singletons();

  Clustering clustering_;
  // Epoch-stamped scratch table reused across refine() calls, one word
  // per (cluster, catchment) bucket: the epoch it was last touched in the
  // high 32 bits, the dense id assigned that epoch in the low 32 — one
  // random access per probe instead of separate key and id tables.
  std::vector<std::uint64_t> table_;
  std::uint64_t epoch_ = 0;
  std::vector<std::uint8_t> singleton_mask_;
  std::uint32_t singleton_count_ = 0;
  bool track_singletons_ = false;
  bool singletons_valid_ = false;
  std::vector<std::uint32_t> size_scratch_;
  std::vector<std::uint8_t> decoded_;  // bitplane-refine row scratch
};

/// Convenience: refine with every row of a catchment matrix
/// (rows = configurations, columns = sources).
Clustering cluster_sources(const measure::CatchmentStore& matrix);

/// Same partition from the bit-sliced mirror (word-parallel refines).
Clustering cluster_sources(const measure::BitplaneStore& planes);

}  // namespace spooftrack::core
