// Cluster computation (§III-B): a cluster is a set of sources that share a
// catchment in *every* deployed announcement configuration. Starting from
// one all-encompassing cluster, each configuration's catchments split any
// cluster they partially overlap.
//
// The implementation refines incrementally: after k configurations a
// source's cluster is identified by the tuple of its first k catchments,
// tracked as a dense cluster id that is re-bucketed per configuration in
// O(sources) — cheap enough for the thousands of random schedules of
// Figure 8. Refinement consumes encoded CatchmentStore rows directly and
// skips singleton-saturated stretches eight sources per 64-bit load (a
// cluster of size one can never split again, so its member's new id is
// just the next dense id).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bgp/catchment.hpp"
#include "measure/catchment_store.hpp"

namespace spooftrack::core {

/// A partition of sources into clusters.
struct Clustering {
  /// Dense cluster id per source index.
  std::vector<std::uint32_t> cluster_of;
  std::uint32_t cluster_count = 0;

  std::size_t source_count() const noexcept { return cluster_of.size(); }
  /// Size of each cluster, indexed by cluster id.
  std::vector<std::uint32_t> sizes() const;
  double mean_size() const noexcept;
  /// Members (source indices) of each cluster.
  std::vector<std::vector<std::uint32_t>> members() const;
};

/// Incremental cluster refinement.
class ClusterTracker {
 public:
  /// All sources start in a single cluster.
  explicit ClusterTracker(std::size_t source_count);

  /// Refines with one configuration's encoded catchment row (CatchmentStore
  /// cells; bgp::kNoCatchment8 is treated as a distinct catchment value — a
  /// conservative split). Throws std::out_of_range on cells the 6-bit
  /// cluster slots cannot represent. Returns the new cluster count.
  std::uint32_t refine(std::span<const std::uint8_t> catchment_row);

  /// Same, over raw LinkId cells (legacy row shape).
  std::uint32_t refine(std::span<const bgp::LinkId> catchment_row);

  const Clustering& current() const noexcept { return clustering_; }
  std::uint32_t cluster_count() const noexcept {
    return clustering_.cluster_count;
  }
  double mean_cluster_size() const noexcept {
    return clustering_.mean_size();
  }

  /// Per-source saturation mask: 0xFF when the source's cluster has exactly
  /// one member (it can never split again), 0x00 otherwise. Schedule
  /// evaluation uses it to skip saturated stretches with 64-bit loads.
  std::span<const std::uint8_t> singleton_mask() const noexcept {
    return singleton_mask_;
  }
  /// Number of sources whose cluster is a singleton.
  std::uint32_t singleton_count() const noexcept { return singleton_count_; }

 private:
  template <typename Cell>
  std::uint32_t refine_impl(std::span<const Cell> catchment_row);
  void rebuild_singletons();

  Clustering clustering_;
  // Epoch-stamped scratch tables reused across refine() calls: keys_ holds
  // the epoch a (cluster, catchment) bucket was last touched, order_ the
  // dense id assigned to it in that epoch.
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> order_;
  std::uint64_t epoch_ = 0;
  std::vector<std::uint8_t> singleton_mask_;
  std::uint32_t singleton_count_ = 0;
  std::vector<std::uint32_t> size_scratch_;
};

/// Convenience: refine with every row of a catchment matrix
/// (rows = configurations, columns = sources).
Clustering cluster_sources(const measure::CatchmentStore& matrix);

}  // namespace spooftrack::core
