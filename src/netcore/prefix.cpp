#include "netcore/prefix.hpp"

#include <charconv>

namespace spooftrack::netcore {

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) noexcept {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) {
    const auto addr = Ipv4Addr::parse(text);
    if (!addr) return std::nullopt;
    return make(*addr, 32);
  }
  const auto addr = Ipv4Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  const auto len_text = text.substr(slash + 1);
  unsigned len = 0;
  auto [next, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
  if (ec != std::errc{} || next != len_text.data() + len_text.size() ||
      len > 32) {
    return std::nullopt;
  }
  return make(*addr, static_cast<std::uint8_t>(len));
}

std::string Ipv4Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(static_cast<unsigned>(len_));
}

}  // namespace spooftrack::netcore
