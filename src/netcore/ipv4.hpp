// IPv4 address value type with parsing/formatting. Addresses are stored in
// host byte order; conversion to network order happens only at the wire
// boundary (netcore/packet.hpp).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace spooftrack::netcore {

class Ipv4Addr {
 public:
  constexpr Ipv4Addr() noexcept = default;
  constexpr explicit Ipv4Addr(std::uint32_t host_order) noexcept
      : value_(host_order) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  constexpr std::uint32_t value() const noexcept { return value_; }
  constexpr std::uint8_t octet(int i) const noexcept {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  /// Parses dotted-quad notation; rejects leading zeros in octets ("01.2.3.4")
  /// and any trailing garbage.
  static std::optional<Ipv4Addr> parse(std::string_view text) noexcept;

  std::string to_string() const;

  constexpr bool is_private() const noexcept;
  constexpr bool is_loopback() const noexcept {
    return (value_ >> 24) == 127;
  }
  constexpr bool is_multicast() const noexcept {
    return (value_ >> 28) == 0xE;
  }

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

constexpr bool Ipv4Addr::is_private() const noexcept {
  const std::uint32_t v = value_;
  return (v >> 24) == 10 ||                      // 10.0.0.0/8
         (v >> 20) == (172u << 4 | 1u) ||        // 172.16.0.0/12
         (v >> 16) == (192u << 8 | 168u);        // 192.168.0.0/16
}

}  // namespace spooftrack::netcore
