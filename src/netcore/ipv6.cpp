#include "netcore/ipv6.hpp"

#include <charconv>
#include <vector>

#include "netcore/ipv4.hpp"

namespace spooftrack::netcore {

namespace {

/// Parses one hextet (1-4 hex digits).
std::optional<std::uint16_t> parse_group(std::string_view field) noexcept {
  if (field.empty() || field.size() > 4) return std::nullopt;
  std::uint16_t value = 0;
  const auto [next, ec] = std::from_chars(
      field.data(), field.data() + field.size(), value, 16);
  if (ec != std::errc{} || next != field.data() + field.size()) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

std::optional<Ipv6Addr> Ipv6Addr::parse(std::string_view text) noexcept {
  if (text.size() < 2) return std::nullopt;

  // Split on "::" (at most once).
  const auto gap = text.find("::");
  if (gap != std::string_view::npos &&
      text.find("::", gap + 1) != std::string_view::npos) {
    return std::nullopt;  // two compressions
  }

  auto split_groups = [](std::string_view part, bool allow_v4_tail,
                         std::vector<std::uint16_t>& out) -> bool {
    if (part.empty()) return true;
    std::size_t start = 0;
    while (true) {
      const auto colon = part.find(':', start);
      const std::string_view field =
          part.substr(start, colon == std::string_view::npos
                                 ? std::string_view::npos
                                 : colon - start);
      const bool last = colon == std::string_view::npos;
      if (last && allow_v4_tail &&
          field.find('.') != std::string_view::npos) {
        const auto v4 = Ipv4Addr::parse(field);
        if (!v4) return false;
        out.push_back(static_cast<std::uint16_t>(v4->value() >> 16));
        out.push_back(static_cast<std::uint16_t>(v4->value()));
        return true;
      }
      const auto group = parse_group(field);
      if (!group) return false;
      out.push_back(*group);
      if (last) return true;
      start = colon + 1;
      if (start >= part.size()) return false;  // trailing single colon
    }
  };

  std::vector<std::uint16_t> head, tail;
  if (gap == std::string_view::npos) {
    if (!split_groups(text, /*allow_v4_tail=*/true, head)) {
      return std::nullopt;
    }
    if (head.size() != 8) return std::nullopt;
  } else {
    if (!split_groups(text.substr(0, gap), false, head)) return std::nullopt;
    if (!split_groups(text.substr(gap + 2), true, tail)) return std::nullopt;
    if (head.size() + tail.size() >= 8) return std::nullopt;  // :: covers >=1
  }

  std::array<std::uint16_t, 8> groups{};
  for (std::size_t i = 0; i < head.size(); ++i) groups[i] = head[i];
  for (std::size_t i = 0; i < tail.size(); ++i) {
    groups[8 - tail.size() + i] = tail[i];
  }
  return from_groups(groups);
}

std::string Ipv6Addr::to_string() const {
  // Find the longest run of zero groups (length >= 2, leftmost wins).
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (group(i) != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && group(j) == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  auto append_hex = [&](std::uint16_t value) {
    char buffer[5];
    const auto [end, ec] =
        std::to_chars(buffer, buffer + sizeof(buffer), value, 16);
    (void)ec;
    out.append(buffer, end);
  };
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    append_hex(group(i));
    ++i;
  }
  if (out.empty()) out = "::";
  return out;
}

bool Ipv6Addr::is_loopback() const noexcept {
  for (int i = 0; i < 15; ++i) {
    if (bytes_[i] != 0) return false;
  }
  return bytes_[15] == 1;
}

bool Ipv6Addr::is_unspecified() const noexcept {
  for (std::uint8_t b : bytes_) {
    if (b != 0) return false;
  }
  return true;
}

bool Ipv6Addr::is_link_local() const noexcept {
  return bytes_[0] == 0xFE && (bytes_[1] & 0xC0) == 0x80;
}

bool Ipv6Addr::is_documentation() const noexcept {
  return group(0) == 0x2001 && group(1) == 0x0db8;
}

Ipv6Prefix Ipv6Prefix::make(const Ipv6Addr& base, std::uint8_t len) noexcept {
  Ipv6Prefix prefix;
  prefix.len_ = len > 128 ? 128 : len;
  std::array<std::uint8_t, 16> masked = base.bytes();
  for (std::size_t bit = prefix.len_; bit < 128; ++bit) {
    masked[bit / 8] &= static_cast<std::uint8_t>(~(1u << (7 - bit % 8)));
  }
  prefix.base_ = Ipv6Addr{masked};
  return prefix;
}

std::optional<Ipv6Prefix> Ipv6Prefix::parse(std::string_view text) noexcept {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) {
    const auto addr = Ipv6Addr::parse(text);
    if (!addr) return std::nullopt;
    return make(*addr, 128);
  }
  const auto addr = Ipv6Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  const auto len_text = text.substr(slash + 1);
  unsigned len = 0;
  const auto [next, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
  if (ec != std::errc{} || next != len_text.data() + len_text.size() ||
      len > 128) {
    return std::nullopt;
  }
  return make(*addr, static_cast<std::uint8_t>(len));
}

bool Ipv6Prefix::contains(const Ipv6Addr& addr) const noexcept {
  for (std::size_t bit = 0; bit < len_; ++bit) {
    if (addr.bit(bit) != base_.bit(bit)) return false;
  }
  return true;
}

std::string Ipv6Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(static_cast<unsigned>(len_));
}

}  // namespace spooftrack::netcore
