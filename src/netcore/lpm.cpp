// LpmTable is header-only (template); this translation unit exists to give
// the template a home in the build graph and to force an instantiation used
// widely across the library, catching template errors at library build time.
#include "netcore/lpm.hpp"

namespace spooftrack::netcore {

template class LpmTable<std::uint32_t>;

}  // namespace spooftrack::netcore
