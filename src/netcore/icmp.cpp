#include "netcore/icmp.hpp"

#include "netcore/checksum.hpp"

namespace spooftrack::netcore {

namespace {
constexpr std::uint8_t kTypeEchoReply = 0;
constexpr std::uint8_t kTypeEchoRequest = 8;
}  // namespace

void IcmpEchoHeader::serialize(
    std::span<std::uint8_t, kIcmpEchoHeaderBytes> out,
    std::span<const std::uint8_t> payload) const noexcept {
  out[0] = is_reply ? kTypeEchoReply : kTypeEchoRequest;
  out[1] = 0;  // code
  out[2] = out[3] = 0;  // checksum placeholder
  out[4] = static_cast<std::uint8_t>(identifier >> 8);
  out[5] = static_cast<std::uint8_t>(identifier);
  out[6] = static_cast<std::uint8_t>(sequence >> 8);
  out[7] = static_cast<std::uint8_t>(sequence);
  std::uint32_t acc = checksum_accumulate(out);
  acc = checksum_accumulate(payload, acc);
  const std::uint16_t sum = checksum_finish(acc);
  out[2] = static_cast<std::uint8_t>(sum >> 8);
  out[3] = static_cast<std::uint8_t>(sum);
}

std::optional<IcmpEchoHeader> IcmpEchoHeader::parse(
    std::span<const std::uint8_t> data) noexcept {
  if (data.size() < kIcmpEchoHeaderBytes) return std::nullopt;
  if (data[0] != kTypeEchoReply && data[0] != kTypeEchoRequest) {
    return std::nullopt;
  }
  if (data[1] != 0) return std::nullopt;  // echo messages use code 0
  if (internet_checksum(data) != 0) return std::nullopt;
  IcmpEchoHeader header;
  header.is_reply = data[0] == kTypeEchoReply;
  header.identifier =
      static_cast<std::uint16_t>((std::uint16_t{data[4]} << 8) | data[5]);
  header.sequence =
      static_cast<std::uint16_t>((std::uint16_t{data[6]} << 8) | data[7]);
  return header;
}

Datagram make_icmp_echo(Ipv4Addr src, Ipv4Addr dst, bool is_reply,
                        std::uint16_t identifier, std::uint16_t sequence,
                        std::span<const std::uint8_t> payload,
                        std::uint8_t ttl) {
  std::vector<std::uint8_t> body(kIcmpEchoHeaderBytes + payload.size());
  if (!payload.empty()) {
    std::copy(payload.begin(), payload.end(),
              body.begin() + kIcmpEchoHeaderBytes);
  }
  IcmpEchoHeader header;
  header.is_reply = is_reply;
  header.identifier = identifier;
  header.sequence = sequence;
  header.serialize(
      std::span<std::uint8_t, kIcmpEchoHeaderBytes>(body.data(),
                                                    kIcmpEchoHeaderBytes),
      payload);
  return Datagram::make_raw(src, dst, kProtoIcmp, body, ttl);
}

std::optional<IcmpEchoHeader> parse_icmp_echo(const Datagram& datagram) {
  const auto ip = datagram.ip();
  if (!ip || ip->protocol != kProtoIcmp) return std::nullopt;
  return IcmpEchoHeader::parse(datagram.ip_payload());
}

std::optional<Datagram> icmp_echo_reply_for(const Datagram& request) {
  const auto ip = request.ip();
  const auto echo = parse_icmp_echo(request);
  if (!ip || !echo || echo->is_reply) return std::nullopt;
  const auto body = request.ip_payload();
  return make_icmp_echo(ip->destination, ip->source, /*is_reply=*/true,
                        echo->identifier, echo->sequence,
                        body.subspan(kIcmpEchoHeaderBytes));
}

}  // namespace spooftrack::netcore
