// IPv6 address and prefix value types.
//
// The AS-level machinery of this library is address-family agnostic, but
// §VI of the paper analyses competing-prefix dynamics for /24 IPv4 *and*
// /48 IPv6 announcements, and real deployments of the techniques announce
// both families. These types mirror netcore/ipv4.hpp: host-order-ish
// big-endian byte arrays, strict parsing, RFC 5952 canonical formatting.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace spooftrack::netcore {

class Ipv6Addr {
 public:
  constexpr Ipv6Addr() noexcept : bytes_{} {}
  constexpr explicit Ipv6Addr(const std::array<std::uint8_t, 16>& bytes)
      noexcept
      : bytes_(bytes) {}

  /// Builds from eight 16-bit groups (the textual hextets).
  static constexpr Ipv6Addr from_groups(
      const std::array<std::uint16_t, 8>& groups) noexcept {
    std::array<std::uint8_t, 16> bytes{};
    for (std::size_t i = 0; i < 8; ++i) {
      bytes[2 * i] = static_cast<std::uint8_t>(groups[i] >> 8);
      bytes[2 * i + 1] = static_cast<std::uint8_t>(groups[i]);
    }
    return Ipv6Addr{bytes};
  }

  const std::array<std::uint8_t, 16>& bytes() const noexcept {
    return bytes_;
  }
  constexpr std::uint16_t group(std::size_t i) const noexcept {
    return static_cast<std::uint16_t>((std::uint16_t{bytes_[2 * i]} << 8) |
                                      bytes_[2 * i + 1]);
  }

  /// Bit at position `i` (0 = most significant).
  constexpr int bit(std::size_t i) const noexcept {
    return (bytes_[i / 8] >> (7 - i % 8)) & 1;
  }

  /// Parses RFC 4291 text: full form, "::" compression, and embedded
  /// dotted-quad tails ("::ffff:192.0.2.1"). Rejects malformed input.
  static std::optional<Ipv6Addr> parse(std::string_view text) noexcept;

  /// RFC 5952 canonical text: lowercase, no leading zeros, the longest
  /// (leftmost, length >= 2) zero run compressed to "::".
  std::string to_string() const;

  bool is_loopback() const noexcept;    // ::1
  bool is_unspecified() const noexcept; // ::
  bool is_link_local() const noexcept;  // fe80::/10
  bool is_multicast() const noexcept {  // ff00::/8
    return bytes_[0] == 0xFF;
  }
  bool is_documentation() const noexcept;  // 2001:db8::/32

  friend constexpr auto operator<=>(const Ipv6Addr&,
                                    const Ipv6Addr&) noexcept = default;

 private:
  std::array<std::uint8_t, 16> bytes_;
};

class Ipv6Prefix {
 public:
  constexpr Ipv6Prefix() noexcept = default;

  /// Builds a prefix, canonicalising host bits to zero (len clamped to 128).
  static Ipv6Prefix make(const Ipv6Addr& base, std::uint8_t len) noexcept;

  /// Parses "addr/len"; a bare address parses as a /128.
  static std::optional<Ipv6Prefix> parse(std::string_view text) noexcept;

  const Ipv6Addr& base() const noexcept { return base_; }
  std::uint8_t length() const noexcept { return len_; }

  bool contains(const Ipv6Addr& addr) const noexcept;
  bool contains(const Ipv6Prefix& other) const noexcept {
    return other.len_ >= len_ && contains(other.base_);
  }

  std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv6Prefix&,
                                    const Ipv6Prefix&) noexcept = default;

 private:
  Ipv6Addr base_{};
  std::uint8_t len_ = 0;
};

}  // namespace spooftrack::netcore
