// Minimal IPv4 + UDP wire formats. The spoofed-traffic substrate builds
// actual byte-accurate datagrams (forged source address and all) so the
// honeypot and the valid-source classifier operate on real packets, not on
// abstract tuples.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netcore/ipv4.hpp"

namespace spooftrack::netcore {

inline constexpr std::uint8_t kProtoUdp = 17;
inline constexpr std::size_t kIpv4HeaderBytes = 20;
inline constexpr std::size_t kUdpHeaderBytes = 8;

struct Ipv4Header {
  std::uint8_t tos = 0;
  std::uint16_t total_length = kIpv4HeaderBytes;
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kProtoUdp;
  Ipv4Addr source;
  Ipv4Addr destination;

  /// Serializes a 20-byte header (no options) with a valid checksum.
  void serialize(std::span<std::uint8_t, kIpv4HeaderBytes> out) const noexcept;

  /// Parses and checksum-verifies a header; nullopt on malformed input.
  static std::optional<Ipv4Header> parse(
      std::span<const std::uint8_t> data) noexcept;
};

struct UdpHeader {
  std::uint16_t source_port = 0;
  std::uint16_t destination_port = 0;
  std::uint16_t length = kUdpHeaderBytes;
  std::uint16_t checksum = 0;  // filled by serialize

  void serialize(std::span<std::uint8_t, kUdpHeaderBytes> out,
                 Ipv4Addr src, Ipv4Addr dst,
                 std::span<const std::uint8_t> payload) const noexcept;

  static std::optional<UdpHeader> parse(
      std::span<const std::uint8_t> data) noexcept;

  /// Verifies the UDP checksum against the IPv4 pseudo-header.
  static bool verify(std::span<const std::uint8_t> datagram, Ipv4Addr src,
                     Ipv4Addr dst) noexcept;
};

/// A fully formed UDP-in-IPv4 datagram.
class Datagram {
 public:
  Datagram() = default;

  /// Builds a datagram with valid lengths and checksums.
  static Datagram make_udp(Ipv4Addr src, Ipv4Addr dst,
                           std::uint16_t src_port, std::uint16_t dst_port,
                           std::span<const std::uint8_t> payload,
                           std::uint8_t ttl = 64);

  /// Builds a raw IPv4 datagram with an arbitrary protocol payload (used
  /// by the ICMP echo support in netcore/icmp.hpp).
  static Datagram make_raw(Ipv4Addr src, Ipv4Addr dst, std::uint8_t protocol,
                           std::span<const std::uint8_t> payload,
                           std::uint8_t ttl = 64);

  const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }

  /// Parses the IPv4 header; nullopt when truncated or corrupted.
  std::optional<Ipv4Header> ip() const noexcept;
  /// Parses the UDP header; nullopt when not UDP or truncated.
  std::optional<UdpHeader> udp() const noexcept;
  /// UDP payload view (empty when not a valid UDP datagram).
  std::span<const std::uint8_t> payload() const noexcept;

  /// Raw IPv4 payload view (everything after the header, any protocol;
  /// empty when the IPv4 header is invalid).
  std::span<const std::uint8_t> ip_payload() const noexcept;

  /// Decrements TTL in place, re-computing the IPv4 checksum. Returns false
  /// (and leaves the packet unchanged) when the TTL would reach zero.
  bool forward_hop() noexcept;

 private:
  std::vector<std::uint8_t> bytes_;
};

}  // namespace spooftrack::netcore
