#include "netcore/checksum.hpp"

namespace spooftrack::netcore {

std::uint32_t checksum_accumulate(std::span<const std::uint8_t> data,
                                  std::uint32_t acc) noexcept {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    acc += (std::uint32_t{data[i]} << 8) | data[i + 1];
  }
  if (i < data.size()) {
    acc += std::uint32_t{data[i]} << 8;  // odd trailing byte, zero-padded
  }
  return acc;
}

std::uint16_t checksum_finish(std::uint32_t acc) noexcept {
  while (acc >> 16) acc = (acc & 0xFFFF) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc & 0xFFFF);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept {
  return checksum_finish(checksum_accumulate(data));
}

}  // namespace spooftrack::netcore
