// IPv4 prefix (CIDR) value type.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "netcore/ipv4.hpp"

namespace spooftrack::netcore {

class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() noexcept = default;

  /// Builds a prefix, canonicalising host bits to zero. Requires len <= 32.
  static constexpr Ipv4Prefix make(Ipv4Addr base, std::uint8_t len) noexcept {
    Ipv4Prefix p;
    p.len_ = len > 32 ? 32 : len;
    p.base_ = Ipv4Addr{base.value() & mask_for(p.len_)};
    return p;
  }

  /// Parses "a.b.c.d/len"; also accepts a bare address as a /32.
  static std::optional<Ipv4Prefix> parse(std::string_view text) noexcept;

  constexpr Ipv4Addr base() const noexcept { return base_; }
  constexpr std::uint8_t length() const noexcept { return len_; }
  constexpr std::uint32_t netmask() const noexcept { return mask_for(len_); }

  constexpr bool contains(Ipv4Addr addr) const noexcept {
    return (addr.value() & netmask()) == base_.value();
  }
  constexpr bool contains(const Ipv4Prefix& other) const noexcept {
    return other.len_ >= len_ && contains(other.base_);
  }

  /// Number of addresses covered (2^(32-len)).
  constexpr std::uint64_t size() const noexcept {
    return std::uint64_t{1} << (32 - len_);
  }

  /// The i-th address inside the prefix (i taken modulo size()).
  constexpr Ipv4Addr nth(std::uint64_t i) const noexcept {
    return Ipv4Addr{base_.value() +
                    static_cast<std::uint32_t>(i & (size() - 1))};
  }

  std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv4Prefix&,
                                    const Ipv4Prefix&) noexcept = default;

 private:
  static constexpr std::uint32_t mask_for(std::uint8_t len) noexcept {
    return len == 0 ? 0u : ~std::uint32_t{0} << (32 - len);
  }

  Ipv4Addr base_{};
  std::uint8_t len_ = 0;
};

}  // namespace spooftrack::netcore
