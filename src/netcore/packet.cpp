#include "netcore/packet.hpp"

#include <array>
#include <cstring>

#include "netcore/checksum.hpp"

namespace spooftrack::netcore {

namespace {

void put16(std::uint8_t* out, std::uint16_t value) noexcept {
  out[0] = static_cast<std::uint8_t>(value >> 8);
  out[1] = static_cast<std::uint8_t>(value);
}

void put32(std::uint8_t* out, std::uint32_t value) noexcept {
  out[0] = static_cast<std::uint8_t>(value >> 24);
  out[1] = static_cast<std::uint8_t>(value >> 16);
  out[2] = static_cast<std::uint8_t>(value >> 8);
  out[3] = static_cast<std::uint8_t>(value);
}

std::uint16_t get16(const std::uint8_t* in) noexcept {
  return static_cast<std::uint16_t>((std::uint16_t{in[0]} << 8) | in[1]);
}

std::uint32_t get32(const std::uint8_t* in) noexcept {
  return (std::uint32_t{in[0]} << 24) | (std::uint32_t{in[1]} << 16) |
         (std::uint32_t{in[2]} << 8) | std::uint32_t{in[3]};
}

std::uint32_t pseudo_header_sum(Ipv4Addr src, Ipv4Addr dst,
                                std::uint16_t udp_length) noexcept {
  std::array<std::uint8_t, 12> pseudo{};
  put32(pseudo.data(), src.value());
  put32(pseudo.data() + 4, dst.value());
  pseudo[8] = 0;
  pseudo[9] = kProtoUdp;
  put16(pseudo.data() + 10, udp_length);
  return checksum_accumulate(pseudo);
}

}  // namespace

void Ipv4Header::serialize(
    std::span<std::uint8_t, kIpv4HeaderBytes> out) const noexcept {
  out[0] = 0x45;  // version 4, IHL 5
  out[1] = tos;
  put16(out.data() + 2, total_length);
  put16(out.data() + 4, identification);
  put16(out.data() + 6, 0);  // flags + fragment offset
  out[8] = ttl;
  out[9] = protocol;
  put16(out.data() + 10, 0);  // checksum placeholder
  put32(out.data() + 12, source.value());
  put32(out.data() + 16, destination.value());
  const std::uint16_t sum = internet_checksum(out);
  put16(out.data() + 10, sum);
}

std::optional<Ipv4Header> Ipv4Header::parse(
    std::span<const std::uint8_t> data) noexcept {
  if (data.size() < kIpv4HeaderBytes) return std::nullopt;
  if (data[0] != 0x45) return std::nullopt;  // options unsupported
  if (internet_checksum(data.first(kIpv4HeaderBytes)) != 0) {
    return std::nullopt;
  }
  Ipv4Header h;
  h.tos = data[1];
  h.total_length = get16(data.data() + 2);
  h.identification = get16(data.data() + 4);
  h.ttl = data[8];
  h.protocol = data[9];
  h.source = Ipv4Addr{get32(data.data() + 12)};
  h.destination = Ipv4Addr{get32(data.data() + 16)};
  if (h.total_length < kIpv4HeaderBytes || h.total_length > data.size()) {
    return std::nullopt;
  }
  return h;
}

void UdpHeader::serialize(std::span<std::uint8_t, kUdpHeaderBytes> out,
                          Ipv4Addr src, Ipv4Addr dst,
                          std::span<const std::uint8_t> payload)
    const noexcept {
  put16(out.data(), source_port);
  put16(out.data() + 2, destination_port);
  const auto udp_len =
      static_cast<std::uint16_t>(kUdpHeaderBytes + payload.size());
  put16(out.data() + 4, udp_len);
  put16(out.data() + 6, 0);  // checksum placeholder
  std::uint32_t acc = pseudo_header_sum(src, dst, udp_len);
  acc = checksum_accumulate(out, acc);
  acc = checksum_accumulate(payload, acc);
  std::uint16_t sum = checksum_finish(acc);
  if (sum == 0) sum = 0xFFFF;  // RFC 768: transmitted zero means "no checksum"
  put16(out.data() + 6, sum);
}

std::optional<UdpHeader> UdpHeader::parse(
    std::span<const std::uint8_t> data) noexcept {
  if (data.size() < kUdpHeaderBytes) return std::nullopt;
  UdpHeader h;
  h.source_port = get16(data.data());
  h.destination_port = get16(data.data() + 2);
  h.length = get16(data.data() + 4);
  h.checksum = get16(data.data() + 6);
  if (h.length < kUdpHeaderBytes || h.length > data.size()) {
    return std::nullopt;
  }
  return h;
}

bool UdpHeader::verify(std::span<const std::uint8_t> datagram, Ipv4Addr src,
                       Ipv4Addr dst) noexcept {
  const auto header = parse(datagram);
  if (!header) return false;
  if (header->checksum == 0) return true;  // checksum not used
  std::uint32_t acc = pseudo_header_sum(src, dst, header->length);
  acc = checksum_accumulate(datagram.first(header->length), acc);
  return checksum_finish(acc) == 0;
}

Datagram Datagram::make_udp(Ipv4Addr src, Ipv4Addr dst,
                            std::uint16_t src_port, std::uint16_t dst_port,
                            std::span<const std::uint8_t> payload,
                            std::uint8_t ttl) {
  Datagram d;
  d.bytes_.resize(kIpv4HeaderBytes + kUdpHeaderBytes + payload.size());

  Ipv4Header ip;
  ip.total_length = static_cast<std::uint16_t>(d.bytes_.size());
  ip.ttl = ttl;
  ip.source = src;
  ip.destination = dst;
  ip.serialize(
      std::span<std::uint8_t, kIpv4HeaderBytes>(d.bytes_.data(),
                                                kIpv4HeaderBytes));

  UdpHeader udp;
  udp.source_port = src_port;
  udp.destination_port = dst_port;
  udp.serialize(std::span<std::uint8_t, kUdpHeaderBytes>(
                    d.bytes_.data() + kIpv4HeaderBytes, kUdpHeaderBytes),
                src, dst, payload);

  if (!payload.empty()) {
    std::memcpy(d.bytes_.data() + kIpv4HeaderBytes + kUdpHeaderBytes,
                payload.data(), payload.size());
  }
  return d;
}

Datagram Datagram::make_raw(Ipv4Addr src, Ipv4Addr dst,
                            std::uint8_t protocol,
                            std::span<const std::uint8_t> payload,
                            std::uint8_t ttl) {
  Datagram d;
  d.bytes_.resize(kIpv4HeaderBytes + payload.size());
  Ipv4Header ip;
  ip.total_length = static_cast<std::uint16_t>(d.bytes_.size());
  ip.ttl = ttl;
  ip.protocol = protocol;
  ip.source = src;
  ip.destination = dst;
  ip.serialize(std::span<std::uint8_t, kIpv4HeaderBytes>(d.bytes_.data(),
                                                         kIpv4HeaderBytes));
  if (!payload.empty()) {
    std::memcpy(d.bytes_.data() + kIpv4HeaderBytes, payload.data(),
                payload.size());
  }
  return d;
}

std::optional<Ipv4Header> Datagram::ip() const noexcept {
  return Ipv4Header::parse(bytes_);
}

std::span<const std::uint8_t> Datagram::ip_payload() const noexcept {
  const auto header = ip();
  if (!header) return {};
  return std::span<const std::uint8_t>(bytes_).subspan(
      kIpv4HeaderBytes, header->total_length - kIpv4HeaderBytes);
}

std::optional<UdpHeader> Datagram::udp() const noexcept {
  const auto header = ip();
  if (!header || header->protocol != kProtoUdp) return std::nullopt;
  return UdpHeader::parse(
      std::span<const std::uint8_t>(bytes_).subspan(kIpv4HeaderBytes));
}

std::span<const std::uint8_t> Datagram::payload() const noexcept {
  const auto udp_header = udp();
  if (!udp_header) return {};
  return std::span<const std::uint8_t>(bytes_).subspan(
      kIpv4HeaderBytes + kUdpHeaderBytes,
      udp_header->length - kUdpHeaderBytes);
}

bool Datagram::forward_hop() noexcept {
  if (bytes_.size() < kIpv4HeaderBytes) return false;
  if (bytes_[8] <= 1) return false;
  bytes_[8] -= 1;
  bytes_[10] = bytes_[11] = 0;
  const std::uint16_t sum = internet_checksum(
      std::span<const std::uint8_t>(bytes_.data(), kIpv4HeaderBytes));
  bytes_[10] = static_cast<std::uint8_t>(sum >> 8);
  bytes_[11] = static_cast<std::uint8_t>(sum);
  return true;
}

}  // namespace spooftrack::netcore
