// RFC 1071 Internet checksum, used by the IPv4 and UDP header serializers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace spooftrack::netcore {

/// One's-complement sum folded to 16 bits; caller complements at the end.
std::uint32_t checksum_accumulate(std::span<const std::uint8_t> data,
                                  std::uint32_t acc = 0) noexcept;

/// Finalize: fold carries and take one's complement.
std::uint16_t checksum_finish(std::uint32_t acc) noexcept;

/// Convenience: full RFC 1071 checksum of a buffer.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept;

}  // namespace spooftrack::netcore
