// Longest-prefix-match table mapping IPv4 prefixes to an arbitrary value.
// Used by the IP-to-AS mapper (Team Cymru stand-in) and by the IXP table.
//
// Implementation: binary trie over address bits. Lookups walk at most 32
// nodes; inserts create at most `len` nodes. The trie owns its nodes via
// unique_ptr — no manual memory management (C++ Core Guidelines R.11).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "netcore/ipv4.hpp"
#include "netcore/prefix.hpp"

namespace spooftrack::netcore {

template <typename Value>
class LpmTable {
 public:
  LpmTable() : root_(std::make_unique<Node>()) {}

  /// Inserts or replaces the value for an exact prefix.
  void insert(const Ipv4Prefix& prefix, Value value) {
    Node* node = root_.get();
    const std::uint32_t bits = prefix.base().value();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      auto& child = node->children[bit];
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    if (!node->value) ++size_;
    node->value = std::move(value);
  }

  /// Longest-prefix lookup; nullopt when no covering prefix exists.
  std::optional<Value> lookup(Ipv4Addr addr) const {
    const Node* node = root_.get();
    std::optional<Value> best = node->value;
    const std::uint32_t bits = addr.value();
    for (int depth = 0; depth < 32 && node; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = node->children[bit].get();
      if (node && node->value) best = node->value;
    }
    return best;
  }

  /// Exact-match lookup (no covering-prefix fallback).
  std::optional<Value> exact(const Ipv4Prefix& prefix) const {
    const Node* node = root_.get();
    const std::uint32_t bits = prefix.base().value();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = node->children[bit].get();
      if (!node) return std::nullopt;
    }
    return node->value;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// All (prefix, value) pairs in lexicographic trie order.
  std::vector<std::pair<Ipv4Prefix, Value>> entries() const {
    std::vector<std::pair<Ipv4Prefix, Value>> out;
    collect(root_.get(), 0, 0, out);
    return out;
  }

 private:
  struct Node {
    std::optional<Value> value;
    std::unique_ptr<Node> children[2];
  };

  void collect(const Node* node, std::uint32_t bits, std::uint8_t depth,
               std::vector<std::pair<Ipv4Prefix, Value>>& out) const {
    if (!node) return;
    if (node->value) {
      out.emplace_back(Ipv4Prefix::make(Ipv4Addr{bits}, depth), *node->value);
    }
    if (depth == 32) return;
    collect(node->children[0].get(), bits, depth + 1, out);
    collect(node->children[1].get(),
            bits | (std::uint32_t{1} << (31 - depth)), depth + 1, out);
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace spooftrack::netcore
