// ICMP echo (ping) wire format — the packet type behind Verfploeter-style
// active catchment measurement: the origin sends echo requests from an
// address inside the anycast prefix; replies ingress on the responder's
// catchment link.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netcore/packet.hpp"

namespace spooftrack::netcore {

inline constexpr std::uint8_t kProtoIcmp = 1;
inline constexpr std::size_t kIcmpEchoHeaderBytes = 8;

struct IcmpEchoHeader {
  bool is_reply = false;          // type 0 (reply) vs 8 (request)
  std::uint16_t identifier = 0;   // probe session id
  std::uint16_t sequence = 0;     // probe sequence number

  /// Serializes the 8-byte echo header with a checksum covering header
  /// and payload.
  void serialize(std::span<std::uint8_t, kIcmpEchoHeaderBytes> out,
                 std::span<const std::uint8_t> payload) const noexcept;

  /// Parses and checksum-verifies an echo message (header + payload).
  static std::optional<IcmpEchoHeader> parse(
      std::span<const std::uint8_t> data) noexcept;
};

/// Builds a full IPv4 ICMP echo datagram.
Datagram make_icmp_echo(Ipv4Addr src, Ipv4Addr dst, bool is_reply,
                        std::uint16_t identifier, std::uint16_t sequence,
                        std::span<const std::uint8_t> payload = {},
                        std::uint8_t ttl = 64);

/// Parses an echo message out of a datagram; nullopt when the datagram is
/// not valid ICMP echo.
std::optional<IcmpEchoHeader> parse_icmp_echo(const Datagram& datagram);

/// Builds the reply a responder would send for a request (addresses
/// swapped, type flipped, identifier/sequence echoed).
std::optional<Datagram> icmp_echo_reply_for(const Datagram& request);

}  // namespace spooftrack::netcore
