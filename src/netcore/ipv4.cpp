#include "netcore/ipv4.hpp"

#include <charconv>

namespace spooftrack::netcore {

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) noexcept {
  std::uint32_t value = 0;
  const char* cursor = text.data();
  const char* end = text.data() + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    if (octet != 0) {
      if (cursor == end || *cursor != '.') return std::nullopt;
      ++cursor;
    }
    if (cursor == end) return std::nullopt;
    // Reject leading zeros ("01") but accept a lone "0".
    if (*cursor == '0' && cursor + 1 != end && cursor[1] >= '0' &&
        cursor[1] <= '9') {
      return std::nullopt;
    }
    unsigned parsed = 0;
    auto [next, ec] = std::from_chars(cursor, end, parsed);
    if (ec != std::errc{} || next == cursor || parsed > 255) {
      return std::nullopt;
    }
    value = (value << 8) | parsed;
    cursor = next;
  }
  if (cursor != end) return std::nullopt;
  return Ipv4Addr{value};
}

std::string Ipv4Addr::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i != 0) out += '.';
    out += std::to_string(static_cast<unsigned>(octet(i)));
  }
  return out;
}

}  // namespace spooftrack::netcore
