// Small statistics toolkit used by the evaluation benches: means,
// percentiles, CDFs and complementary CDFs over cluster sizes and traffic
// volumes, plus a streaming accumulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace spooftrack::util {

/// Arithmetic mean; 0 for an empty range.
double mean(const std::vector<double>& values) noexcept;
double mean_u32(const std::vector<std::uint32_t>& values) noexcept;

/// Percentile by nearest-rank on a copy (q in [0, 100]); 0 for empty input.
double percentile(std::vector<double> values, double q) noexcept;
double percentile_u32(const std::vector<std::uint32_t>& values,
                      double q) noexcept;

/// One (x, y) point of an empirical distribution function.
struct DistPoint {
  double x = 0.0;
  double y = 0.0;
};

/// Empirical CDF: y = P[X <= x] evaluated at each distinct sample value.
std::vector<DistPoint> cdf(std::vector<double> samples);

/// Complementary CDF: y = P[X >= x] at each distinct sample value. This is
/// the convention used by the paper's Figures 3 and 6 (fraction of clusters
/// with at least a given size).
std::vector<DistPoint> ccdf(std::vector<double> samples);

/// Streaming accumulator for count/mean/min/max.
class Accumulator {
 public:
  void add(double value) noexcept;
  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Histogram over integer bucket values (e.g. cluster sizes).
class Histogram {
 public:
  void add(std::uint64_t value, std::uint64_t weight = 1);
  std::uint64_t total() const noexcept { return total_; }
  /// Fraction of mass at values <= x.
  double cumulative_at(std::uint64_t x) const noexcept;
  /// Fraction of mass at values >= x.
  double complementary_at(std::uint64_t x) const noexcept;
  /// Sorted distinct values present in the histogram.
  std::vector<std::uint64_t> values() const;

 private:
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted_() const;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets_;
  std::uint64_t total_ = 0;
};

}  // namespace spooftrack::util
