// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library (topology synthesis, measurement
// noise, traffic placement, random schedules) draws from an explicitly seeded
// Rng so that experiments are reproducible bit-for-bit. We implement
// xoshiro256** seeded via SplitMix64, which is fast, well distributed, and
// has a tiny state that can be forked cheaply for parallel work.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace spooftrack::util {

/// SplitMix64 step; used for seeding and for stateless hash mixing.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless 64-bit mix of a single value (finalizer of SplitMix64).
std::uint64_t mix64(std::uint64_t value) noexcept;

/// Stateless hash of two 64-bit values; used for stable per-pair tiebreaks.
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept;

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator so it can be
/// used with <random> distributions, though the member helpers below cover
/// every use in this library.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5f0047656f726765ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). Requires bound > 0. Uses Lemire's
  /// unbiased multiply-shift rejection method.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool chance(double p) noexcept;

  /// Pareto(shape alpha, scale xm > 0) variate.
  double pareto(double alpha, double xm = 1.0) noexcept;

  /// Geometric-ish integer: 1 + floor(Exp(mean-1)); always >= 1.
  std::uint32_t one_plus_exponential(double mean_extra) noexcept;

  /// Index drawn proportionally to non-negative weights. Requires at least
  /// one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Fork an independent stream; deterministic in the parent state.
  Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace spooftrack::util
