// Console table / CSV rendering used by the bench binaries to print the
// paper's tables and figure series in a uniform, diff-friendly format.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace spooftrack::util {

/// Fixed-precision formatting helpers.
std::string fmt_double(double value, int precision = 3);
std::string fmt_percent(double fraction, int precision = 2);

/// A simple column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);
  std::size_t rows() const noexcept { return rows_.size(); }

  /// Render with padded columns and a header underline.
  void print(std::ostream& os) const;
  /// Render as CSV (quoting cells containing commas or quotes).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner (used between figure series in bench output).
void print_banner(std::ostream& os, const std::string& title);

}  // namespace spooftrack::util
