// Runtime SIMD dispatch for the bit-sliced analysis kernels.
//
// Every kernel ships a portable std::popcount/u64 baseline; hosts with a
// wide vector unit (AVX2 on x86-64, NEON on aarch64) get an optional wide
// path selected once at startup. Both paths are bit-identical by contract
// (enforced by tests/test_bitplane_store.cpp and the perf_analysis
// equivalence gate), so dispatch is purely a throughput decision.
//
// The resolved level honours the environment variable SPOOFTRACK_SIMD:
//   "scalar" forces the portable path, "wide" requests the vector path
//   (clamped to what the CPU actually supports), anything else / unset is
//   "auto" (use the widest supported). CI builds one leg with the wide
//   path forced on (-march=x86-64-v3) and one with it forced off.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace spooftrack::util {

enum class SimdLevel : std::uint8_t {
  kScalar = 0,  // portable u64 + std::popcount kernels
  kWide = 1,    // AVX2 / NEON kernels
};

/// Widest level this binary + CPU can execute (independent of overrides).
SimdLevel detected_simd_level() noexcept;

/// The level kernels dispatch on: detected level clamped by the
/// SPOOFTRACK_SIMD override (or force_simd_level). Cached after the first
/// call; cheap enough for per-call dispatch.
SimdLevel active_simd_level() noexcept;

/// "scalar" / "wide".
std::string_view simd_level_name(SimdLevel level) noexcept;

/// Test/bench hook: pin the active level (clamped to the detected level),
/// or std::nullopt to restore SPOOFTRACK_SIMD/auto resolution.
void force_simd_level(std::optional<SimdLevel> level) noexcept;

/// Total set bits over `count` words. Portable std::popcount baseline with
/// a wide path behind active_simd_level(); bit-identical results.
std::uint64_t popcount_words(const std::uint64_t* words,
                             std::size_t count) noexcept;

/// The baseline implementation, callable directly for ablation benches.
std::uint64_t popcount_words_scalar(const std::uint64_t* words,
                                    std::size_t count) noexcept;

}  // namespace spooftrack::util
