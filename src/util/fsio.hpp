// Crash-consistent file primitives shared by the artifact writer and the
// campaign journal (docs/checkpointing.md).
//
// The durability discipline is the classic one: write the full payload to a
// sibling temp file, fsync the file, rename it over the destination, fsync
// the containing directory. A reader therefore sees either the old file or
// the new file in its entirety — never a torn mixture — and a crash between
// any two steps leaves at worst a stale `.tmp` sibling to be swept.
#pragma once

#include <string>
#include <string_view>

namespace spooftrack::util {

/// Atomically replaces `path` with `bytes` (temp write -> fsync -> rename ->
/// directory fsync). Throws std::runtime_error on any I/O failure; on
/// failure the destination is untouched. When `sync` is false the fsyncs
/// are skipped (atomicity against concurrent readers is kept; durability
/// against power loss is not — tests use this for speed).
void atomic_write_file(const std::string& path, std::string_view bytes,
                       bool sync = true);

/// Reads an entire file into a string. Throws std::runtime_error when the
/// file cannot be opened or read.
std::string read_file(const std::string& path);

/// Whether `path` exists (any file type).
bool path_exists(const std::string& path) noexcept;

/// Creates `dir` (one level) if it does not exist. Throws on failure.
void ensure_directory(const std::string& dir);

/// fsyncs a directory so a rename/creation within it is durable. Throws on
/// failure; no-op when `sync` is false.
void fsync_directory(const std::string& dir, bool sync = true);

}  // namespace spooftrack::util
