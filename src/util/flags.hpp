// Minimal command-line flag parser used by the CLI tool and the bench
// binaries: `--key=value` and boolean `--switch` flags, with typed
// accessors, defaults, and an auto-generated usage string.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace spooftrack::util {

class FlagSet {
 public:
  /// Declares a flag; `help` feeds the usage text. Declaration order is
  /// preserved in usage().
  FlagSet& define(const std::string& name, const std::string& help,
                  const std::string& default_value = "");
  /// Declares a boolean switch (present = true).
  FlagSet& define_switch(const std::string& name, const std::string& help);

  /// Parses argv; returns false (and fills error()) on unknown flags or
  /// malformed input. Non-flag arguments are collected as positionals.
  bool parse(int argc, const char* const* argv);
  bool parse(const std::vector<std::string>& args);

  std::string get(const std::string& name) const;
  bool get_switch(const std::string& name) const;
  std::optional<std::uint64_t> get_u64(const std::string& name) const;
  std::optional<double> get_double(const std::string& name) const;

  const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }
  const std::string& error() const noexcept { return error_; }

  /// One line per flag: "--name=default   help".
  std::string usage() const;

 private:
  struct Flag {
    std::string help;
    std::string value;
    bool is_switch = false;
    bool set = false;
  };
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
  std::vector<std::string> positionals_;
  std::string error_;
};

}  // namespace spooftrack::util
