#include "util/flags.hpp"

#include <charconv>

namespace spooftrack::util {

FlagSet& FlagSet::define(const std::string& name, const std::string& help,
                         const std::string& default_value) {
  auto [it, inserted] = flags_.try_emplace(name);
  it->second.help = help;
  it->second.value = default_value;
  it->second.is_switch = false;
  if (inserted) order_.push_back(name);
  return *this;
}

FlagSet& FlagSet::define_switch(const std::string& name,
                                const std::string& help) {
  auto [it, inserted] = flags_.try_emplace(name);
  it->second.help = help;
  it->second.value = "";
  it->second.is_switch = true;
  if (inserted) order_.push_back(name);
  return *this;
}

bool FlagSet::parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return parse(args);
}

bool FlagSet::parse(const std::vector<std::string>& args) {
  error_.clear();
  positionals_.clear();
  // Fresh `set` state per parse: repeated parses of one FlagSet stay
  // idempotent, while repeats *within* one argv are rejected below.
  for (auto& [name, flag] : flags_) flag.set = false;
  for (const std::string& arg : args) {
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(arg);
      continue;
    }
    const auto eq = arg.find('=');
    const std::string name = arg.substr(2, eq == std::string::npos
                                               ? std::string::npos
                                               : eq - 2);
    const auto it = flags_.find(name);
    if (it == flags_.end()) {
      error_ = "unknown flag: --" + name;
      return false;
    }
    Flag& flag = it->second;
    if (flag.set) {
      error_ = "duplicate flag: --" + name;
      return false;
    }
    if (flag.is_switch) {
      if (eq != std::string::npos) {
        error_ = "switch --" + name + " takes no value";
        return false;
      }
      flag.set = true;
      flag.value = "1";
    } else {
      if (eq == std::string::npos) {
        error_ = "flag --" + name + " needs a value (--" + name + "=...)";
        return false;
      }
      flag.set = true;
      flag.value = arg.substr(eq + 1);
    }
  }
  return true;
}

std::string FlagSet::get(const std::string& name) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? "" : it->second.value;
}

bool FlagSet::get_switch(const std::string& name) const {
  const auto it = flags_.find(name);
  return it != flags_.end() && it->second.set;
}

std::optional<std::uint64_t> FlagSet::get_u64(const std::string& name) const {
  const std::string text = get(name);
  std::uint64_t value = 0;
  const auto [next, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || next != text.data() + text.size() ||
      text.empty()) {
    return std::nullopt;
  }
  return value;
}

std::optional<double> FlagSet::get_double(const std::string& name) const {
  const std::string text = get(name);
  if (text.empty()) return std::nullopt;
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) return std::nullopt;
    return value;
  } catch (...) {
    return std::nullopt;
  }
}

std::string FlagSet::usage() const {
  std::string out;
  for (const std::string& name : order_) {
    const Flag& flag = flags_.at(name);
    out += "  --" + name;
    if (!flag.is_switch) {
      out += "=" + (flag.value.empty() ? "<value>" : flag.value);
    }
    out += "\n      " + flag.help + "\n";
  }
  return out;
}

}  // namespace spooftrack::util
