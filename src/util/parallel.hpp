// Data-parallel helpers. Announcement configurations are routed
// independently, so benches parallelize propagation across worker threads
// with the blocking parallel_for below. The routing engine itself uses
// WorkerPool: the Jacobi compute phase dispatches a batch of chunk tasks to
// persistent threads every round, and spawning threads per round would
// dominate the work.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace spooftrack::util {

/// Number of workers parallel_for will use (>= 1); honours the environment
/// variable SPOOFTRACK_THREADS when it holds a clean positive integer
/// (no trailing garbage, in range), else falls back to
/// hardware_concurrency.
std::size_t default_worker_count() noexcept;

/// The SPOOFTRACK_THREADS override, if the variable is set to a clean
/// positive integer (same validation as default_worker_count); nullopt when
/// unset or malformed. Exposed so CLI flag handling can detect — and reject
/// — a --workers value conflicting with the environment (docs/cli.md,
/// "Worker-count precedence").
std::optional<std::size_t> env_worker_override() noexcept;

/// Runs fn(i) for i in [0, count) across `workers` threads (0 = default).
/// Blocks until all iterations complete. Exceptions in tasks are rethrown
/// (first one wins) after all workers have stopped; once a task throws, no
/// worker claims new work (tasks already started still run to completion).
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t workers = 0);

/// A pool of persistent worker threads for repeated small batches.
///
/// `run(tasks, fn)` executes fn(i) for i in [0, tasks), the calling thread
/// participating alongside the pool's threads; tasks are claimed dynamically
/// (atomic counter), so callers needing deterministic OUTPUT must make each
/// task index own its output slot — which thread runs it then cannot matter.
/// run() blocks until every task of the batch finished; it is not
/// re-entrant and the pool must be driven from one thread at a time.
/// Exceptions propagate like parallel_for (first wins, batch still drains).
class WorkerPool {
 public:
  /// A pool of `threads` persistent workers (0 is allowed: run() then
  /// executes everything on the calling thread). Threads are spawned
  /// lazily, on the first run() that can actually use them — a pool whose
  /// batches all turn out to be single-task (or a pool constructed on a
  /// single-core host by a worker-count heuristic) never pays thread
  /// creation, wakeups, or join-at-destruction.
  explicit WorkerPool(std::size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// The pool's worker-thread count (the constructor argument), whether or
  /// not the threads have been spawned yet.
  std::size_t threads() const noexcept { return target_threads_; }

  void run(std::size_t tasks, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  void drain_batch();
  void ensure_spawned();

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Batch state, guarded by mutex_ except where noted. A new batch is
  // published by bumping generation_; workers pick it up, drain the shared
  // atomic task counter, and check out via pending_workers_.
  std::uint64_t generation_ = 0;
  std::size_t task_count_ = 0;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t pending_workers_ = 0;
  std::atomic<std::size_t> next_{0};
  std::atomic<bool> stop_batch_{false};
  std::exception_ptr first_error_;
  bool shutdown_ = false;

  std::size_t target_threads_ = 0;
  std::vector<std::thread> threads_;
};

}  // namespace spooftrack::util
