// Minimal data-parallel helper. Announcement configurations are routed
// independently, so benches parallelize propagation across a small pool of
// worker threads. We deliberately keep this a plain blocking parallel_for:
// deterministic output ordering, no shared mutable state in the tasks.
#pragma once

#include <cstddef>
#include <functional>

namespace spooftrack::util {

/// Number of workers parallel_for will use (>= 1); honours the environment
/// variable SPOOFTRACK_THREADS when it holds a clean positive integer
/// (no trailing garbage, in range), else falls back to
/// hardware_concurrency.
std::size_t default_worker_count() noexcept;

/// Runs fn(i) for i in [0, count) across `workers` threads (0 = default).
/// Blocks until all iterations complete. Exceptions in tasks are rethrown
/// (first one wins) after all workers have stopped; once a task throws, no
/// worker claims new work (tasks already started still run to completion).
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t workers = 0);

}  // namespace spooftrack::util
