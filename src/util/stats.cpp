#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace spooftrack::util {

double mean(const std::vector<double>& values) noexcept {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double mean_u32(const std::vector<std::uint32_t>& values) noexcept {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (std::uint32_t v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double percentile(std::vector<double> values, double q) noexcept {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q / 100.0 * static_cast<double>(values.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return values[std::min(index, values.size() - 1)];
}

double percentile_u32(const std::vector<std::uint32_t>& values,
                      double q) noexcept {
  std::vector<double> copy(values.begin(), values.end());
  return percentile(std::move(copy), q);
}

std::vector<DistPoint> cdf(std::vector<double> samples) {
  std::vector<DistPoint> points;
  if (samples.empty()) return points;
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const bool last_of_value =
        i + 1 == samples.size() || samples[i + 1] != samples[i];
    if (last_of_value) {
      points.push_back({samples[i], static_cast<double>(i + 1) / n});
    }
  }
  return points;
}

std::vector<DistPoint> ccdf(std::vector<double> samples) {
  std::vector<DistPoint> points;
  if (samples.empty()) return points;
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const bool first_of_value = i == 0 || samples[i - 1] != samples[i];
    if (first_of_value) {
      points.push_back({samples[i], static_cast<double>(samples.size() - i) / n});
    }
  }
  return points;
}

void Accumulator::add(double value) noexcept {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  ++count_;
}

void Histogram::add(std::uint64_t value, std::uint64_t weight) {
  buckets_.emplace_back(value, weight);
  total_ += weight;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> Histogram::sorted_()
    const {
  auto copy = buckets_;
  std::sort(copy.begin(), copy.end());
  std::vector<std::pair<std::uint64_t, std::uint64_t>> merged;
  for (const auto& [value, weight] : copy) {
    if (!merged.empty() && merged.back().first == value) {
      merged.back().second += weight;
    } else {
      merged.emplace_back(value, weight);
    }
  }
  return merged;
}

double Histogram::cumulative_at(std::uint64_t x) const noexcept {
  if (total_ == 0) return 0.0;
  std::uint64_t mass = 0;
  for (const auto& [value, weight] : buckets_) {
    if (value <= x) mass += weight;
  }
  return static_cast<double>(mass) / static_cast<double>(total_);
}

double Histogram::complementary_at(std::uint64_t x) const noexcept {
  if (total_ == 0) return 0.0;
  std::uint64_t mass = 0;
  for (const auto& [value, weight] : buckets_) {
    if (value >= x) mass += weight;
  }
  return static_cast<double>(mass) / static_cast<double>(total_);
}

std::vector<std::uint64_t> Histogram::values() const {
  std::vector<std::uint64_t> out;
  for (const auto& [value, weight] : sorted_()) {
    (void)weight;
    out.push_back(value);
  }
  return out;
}

}  // namespace spooftrack::util
