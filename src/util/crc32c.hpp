// CRC32C (Castagnoli) — the checksum framing the campaign journal and the
// artifact trailer (docs/checkpointing.md).
//
// Chosen over the RFC 1071 Internet checksum (netcore/checksum.hpp) because
// torn-write detection needs real error detection: CRC32C catches all
// single-byte corruptions and all burst errors up to 32 bits, which is what
// the journal's recovery scan relies on to distinguish a torn tail from a
// valid record. Software slicing-by-8 implementation; no hardware intrinsic
// dependence, identical output on every platform.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace spooftrack::util {

/// Incremental CRC32C: feed `crc32c_update` an evolving crc (start from
/// crc32c_init()) and finish with crc32c_final(). One-shot: crc32c(data).
std::uint32_t crc32c_init() noexcept;
std::uint32_t crc32c_update(std::uint32_t crc, const void* data,
                            std::size_t size) noexcept;
std::uint32_t crc32c_final(std::uint32_t crc) noexcept;

/// One-shot CRC32C of a buffer.
std::uint32_t crc32c(const void* data, std::size_t size) noexcept;
inline std::uint32_t crc32c(std::string_view bytes) noexcept {
  return crc32c(bytes.data(), bytes.size());
}

}  // namespace spooftrack::util
