#include "util/fsio.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace spooftrack::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

std::string parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void write_all(int fd, const char* data, std::size_t size,
               const std::string& path) {
  while (size > 0) {
    const ssize_t wrote = ::write(fd, data, size);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      fail("cannot write", path);
    }
    data += wrote;
    size -= static_cast<std::size_t>(wrote);
  }
}

}  // namespace

void atomic_write_file(const std::string& path, std::string_view bytes,
                       bool sync) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot open for writing", tmp);
  try {
    write_all(fd, bytes.data(), bytes.size(), tmp);
    if (sync && ::fsync(fd) != 0) fail("cannot fsync", tmp);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail("cannot close", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail("cannot rename over", path);
  }
  fsync_directory(parent_dir(path), sync);
}

std::string read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail("cannot open", path);
  std::string bytes;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t got = ::read(fd, buffer, sizeof(buffer));
    if (got < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      fail("cannot read", path);
    }
    if (got == 0) break;
    bytes.append(buffer, static_cast<std::size_t>(got));
  }
  ::close(fd);
  return bytes;
}

bool path_exists(const std::string& path) noexcept {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

void ensure_directory(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    fail("cannot create directory", dir);
  }
}

void fsync_directory(const std::string& dir, bool sync) {
  if (!sync) return;
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) fail("cannot open directory", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) fail("cannot fsync directory", dir);
}

}  // namespace spooftrack::util
