#include "util/parallel.hpp"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace spooftrack::util {

namespace {

/// Upper bound on worker counts accepted from the environment; anything
/// larger is treated as a configuration error (and would only oversubscribe
/// the scheduler anyway).
constexpr long kMaxEnvWorkers = 1 << 16;

}  // namespace

std::optional<std::size_t> env_worker_override() noexcept {
  if (const char* env = std::getenv("SPOOFTRACK_THREADS")) {
    // Accept only a clean positive integer: the whole string must parse and
    // the value must be in range. "8abc", "", "-3", "0" and overflowing
    // values are all rejected.
    char* end = nullptr;
    errno = 0;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && errno != ERANGE && parsed >= 1 &&
        parsed <= kMaxEnvWorkers) {
      return static_cast<std::size_t>(parsed);
    }
  }
  return std::nullopt;
}

std::size_t default_worker_count() noexcept {
  if (const auto env = env_worker_override()) return *env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t workers) {
  if (count == 0) return;
  OBS_COUNT("parallel.invocations", 1);
  OBS_COUNT("parallel.tasks", count);
  if (workers == 0) workers = default_worker_count();
  workers = std::min(workers, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  // Separate stop flag: a thrower must not signal termination through the
  // work index itself, where concurrent fetch_adds race with the sentinel
  // store; the monotonic flag cannot be un-set by a peer claiming work.
  std::atomic<bool> stop{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto body = [&]() {
    while (!stop.load(std::memory_order_acquire)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        stop.store(true, std::memory_order_release);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(body);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

WorkerPool::WorkerPool(std::size_t threads) : target_threads_(threads) {}

void WorkerPool::ensure_spawned() {
  // First multi-task batch: spawn the workers. run() is documented as
  // driven from one thread at a time, so no lock is needed here.
  if (!threads_.empty()) return;
  threads_.reserve(target_threads_);
  for (std::size_t i = 0; i < target_threads_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::drain_batch() {
  while (!stop_batch_.load(std::memory_order_acquire)) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= task_count_) return;
    try {
      (*fn_)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
      stop_batch_.store(true, std::memory_order_release);
      return;
    }
  }
}

void WorkerPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
    }
    drain_batch();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_workers_ == 0) done_cv_.notify_one();
    }
  }
}

void WorkerPool::run(std::size_t tasks,
                     const std::function<void(std::size_t)>& fn) {
  if (tasks == 0) return;
  // Effective worker count 1 (no pool threads, or nothing to share): run
  // the batch inline — no spawns, no wakeups, no cv round-trips.
  if (target_threads_ == 0 || tasks == 1) {
    for (std::size_t i = 0; i < tasks; ++i) fn(i);
    return;
  }
  ensure_spawned();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_count_ = tasks;
    fn_ = &fn;
    next_.store(0, std::memory_order_relaxed);
    stop_batch_.store(false, std::memory_order_relaxed);
    first_error_ = nullptr;
    pending_workers_ = threads_.size();
    ++generation_;  // publishes the batch to workers under the lock
  }
  work_cv_.notify_all();
  // The caller is a full participant: with small batches it often finishes
  // the whole batch before a worker even wakes.
  drain_batch();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_workers_ == 0; });
    error = first_error_;
    fn_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace spooftrack::util
