#include "util/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace spooftrack::util {

std::size_t default_worker_count() noexcept {
  if (const char* env = std::getenv("SPOOFTRACK_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t workers) {
  if (count == 0) return;
  if (workers == 0) workers = default_worker_count();
  workers = std::min(workers, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto body = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        // Drain remaining work: leave the index past the end so peers stop.
        next.store(count, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(body);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace spooftrack::util
