#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace spooftrack::util {

std::string fmt_double(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

std::string fmt_percent(double fraction, int precision) {
  return fmt_double(fraction * 100.0, precision) + "%";
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t underline = 0;
  for (std::size_t w : widths) underline += w + 2;
  os << std::string(underline, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << '\n' << "== " << title << " ==" << '\n';
}

}  // namespace spooftrack::util
