#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace spooftrack::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t value) noexcept {
  std::uint64_t state = value;
  return splitmix64(state);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return mix64(a ^ (mix64(b) + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Lemire's method: multiply-shift with rejection of the biased region.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::pareto(double alpha, double xm) noexcept {
  assert(alpha > 0.0 && xm > 0.0);
  double u = uniform01();
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  return xm / std::pow(1.0 - u, 1.0 / alpha);
}

std::uint32_t Rng::one_plus_exponential(double mean_extra) noexcept {
  if (mean_extra <= 0.0) return 1;
  double u = uniform01();
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  const double extra = -mean_extra * std::log(1.0 - u);
  return 1 + static_cast<std::uint32_t>(extra);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  assert(total > 0.0);
  double point = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (point < w) return i;
    point -= w;
  }
  return weights.size() - 1;  // numeric slack lands on the last entry
}

Rng Rng::fork() noexcept { return Rng{next()}; }

}  // namespace spooftrack::util
