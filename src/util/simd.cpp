#include "util/simd.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define SPOOFTRACK_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define SPOOFTRACK_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace spooftrack::util {

namespace {

SimdLevel detect() noexcept {
#if defined(SPOOFTRACK_SIMD_X86)
  return __builtin_cpu_supports("avx2") ? SimdLevel::kWide
                                        : SimdLevel::kScalar;
#elif defined(SPOOFTRACK_SIMD_NEON)
  return SimdLevel::kWide;  // NEON is architectural on aarch64.
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel resolve() noexcept {
  const SimdLevel detected = detected_simd_level();
  const char* env = std::getenv("SPOOFTRACK_SIMD");
  if (env != nullptr) {
    if (std::strcmp(env, "scalar") == 0) return SimdLevel::kScalar;
    // "wide" is a request, clamped to hardware; anything else is auto.
  }
  return detected;
}

// -1 = unresolved, otherwise a SimdLevel. A separate forced slot (offset
// by 2) lets force_simd_level(nullopt) fall back to env/auto resolution.
std::atomic<int> g_active{-1};
std::atomic<int> g_forced{-1};

}  // namespace

SimdLevel detected_simd_level() noexcept {
  static const SimdLevel level = detect();
  return level;
}

SimdLevel active_simd_level() noexcept {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<SimdLevel>(forced);
  int active = g_active.load(std::memory_order_relaxed);
  if (active < 0) {
    active = static_cast<int>(resolve());
    g_active.store(active, std::memory_order_relaxed);
  }
  return static_cast<SimdLevel>(active);
}

std::string_view simd_level_name(SimdLevel level) noexcept {
  return level == SimdLevel::kWide ? "wide" : "scalar";
}

void force_simd_level(std::optional<SimdLevel> level) noexcept {
  if (!level.has_value()) {
    g_forced.store(-1, std::memory_order_relaxed);
    return;
  }
  SimdLevel clamped = *level;
  if (clamped == SimdLevel::kWide &&
      detected_simd_level() != SimdLevel::kWide) {
    clamped = SimdLevel::kScalar;
  }
  g_forced.store(static_cast<int>(clamped), std::memory_order_relaxed);
}

std::uint64_t popcount_words_scalar(const std::uint64_t* words,
                                    std::size_t count) noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < count; ++i) total += std::popcount(words[i]);
  return total;
}

#if defined(SPOOFTRACK_SIMD_X86)

__attribute__((target("avx2"))) static std::uint64_t popcount_words_avx2(
    const std::uint64_t* words, std::size_t count) noexcept {
  // Nibble-LUT popcount (pshufb), accumulated with sad against zero so the
  // per-byte counts widen to u64 lanes without overflow.
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
                                       3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2,
                                       2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0F);
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(words + i));
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
    const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                        _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
  }
  std::uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < count; ++i) total += std::popcount(words[i]);
  return total;
}

#elif defined(SPOOFTRACK_SIMD_NEON)

static std::uint64_t popcount_words_neon(const std::uint64_t* words,
                                         std::size_t count) noexcept {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const uint8x16_t v =
        vld1q_u8(reinterpret_cast<const std::uint8_t*>(words + i));
    total += vaddvq_u8(vcntq_u8(v));
  }
  for (; i < count; ++i) total += std::popcount(words[i]);
  return total;
}

#endif

std::uint64_t popcount_words(const std::uint64_t* words,
                             std::size_t count) noexcept {
#if defined(SPOOFTRACK_SIMD_X86)
  if (active_simd_level() == SimdLevel::kWide) {
    return popcount_words_avx2(words, count);
  }
#elif defined(SPOOFTRACK_SIMD_NEON)
  if (active_simd_level() == SimdLevel::kWide) {
    return popcount_words_neon(words, count);
  }
#endif
  return popcount_words_scalar(words, count);
}

}  // namespace spooftrack::util
