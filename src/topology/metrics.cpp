#include "topology/metrics.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace spooftrack::topology {

std::vector<std::uint32_t> hop_distances(const AsGraph& graph,
                                         std::span<const AsId> sources) {
  std::vector<std::uint32_t> dist(graph.size(), kUnreachable);
  std::deque<AsId> queue;
  for (AsId s : sources) {
    if (s < graph.size() && dist[s] == kUnreachable) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const AsId u = queue.front();
    queue.pop_front();
    for (const Neighbor& n : graph.neighbors(u)) {
      if (dist[n.id] == kUnreachable) {
        dist[n.id] = dist[u] + 1;
        queue.push_back(n.id);
      }
    }
  }
  return dist;
}

namespace {

/// Kahn topological order of the p2c DAG with providers before customers.
/// Returns an empty vector when a cycle exists.
std::vector<AsId> provider_first_order(const AsGraph& graph) {
  std::vector<std::uint32_t> pending_providers(graph.size(), 0);
  for (AsId id = 0; id < graph.size(); ++id) {
    for (const Neighbor& n : graph.neighbors(id)) {
      if (n.rel == Rel::kProvider) ++pending_providers[id];
    }
  }
  std::vector<AsId> order;
  order.reserve(graph.size());
  std::deque<AsId> ready;
  for (AsId id = 0; id < graph.size(); ++id) {
    if (pending_providers[id] == 0) ready.push_back(id);
  }
  while (!ready.empty()) {
    const AsId u = ready.front();
    ready.pop_front();
    order.push_back(u);
    for (const Neighbor& n : graph.neighbors(u)) {
      if (n.rel == Rel::kCustomer && --pending_providers[n.id] == 0) {
        ready.push_back(n.id);
      }
    }
  }
  if (order.size() != graph.size()) order.clear();
  return order;
}

}  // namespace

bool p2c_acyclic(const AsGraph& graph) {
  return graph.size() == 0 || !provider_first_order(graph).empty();
}

bool connected(const AsGraph& graph) {
  if (graph.size() == 0) return true;
  const AsId roots[] = {0};
  const auto dist = hop_distances(graph, roots);
  return std::none_of(dist.begin(), dist.end(), [](std::uint32_t d) {
    return d == kUnreachable;
  });
}

std::vector<std::uint32_t> customer_cone_sizes(const AsGraph& graph) {
  const auto order = provider_first_order(graph);
  if (graph.size() != 0 && order.empty()) {
    throw std::invalid_argument("customer cones require an acyclic p2c graph");
  }

  // Bitset DP: cone(p) = {p} | union of cone(c) for customers c. Processing
  // in reverse provider-first order guarantees customers are done first.
  const std::size_t words = (graph.size() + 63) / 64;
  std::vector<std::uint64_t> cones(graph.size() * words, 0);
  auto cone = [&](AsId id) {
    return std::span<std::uint64_t>(cones.data() + std::size_t{id} * words,
                                    words);
  };

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const AsId id = *it;
    auto self = cone(id);
    self[id / 64] |= std::uint64_t{1} << (id % 64);
    for (const Neighbor& n : graph.neighbors(id)) {
      if (n.rel != Rel::kCustomer) continue;
      const auto child = cone(n.id);
      for (std::size_t w = 0; w < words; ++w) self[w] |= child[w];
    }
  }

  std::vector<std::uint32_t> sizes(graph.size(), 0);
  for (AsId id = 0; id < graph.size(); ++id) {
    std::uint32_t count = 0;
    for (std::uint64_t word : cone(id)) {
      count += static_cast<std::uint32_t>(__builtin_popcountll(word));
    }
    sizes[id] = count;
  }
  return sizes;
}

std::vector<AsId> tier1_set(const AsGraph& graph) {
  std::vector<AsId> out;
  for (AsId id = 0; id < graph.size(); ++id) {
    if (graph.is_provider_free(id)) out.push_back(id);
  }
  // Provider-free stubs (disconnected oddities in real data) are not
  // tier-1: a tier-1 must actually transit for someone (cone >= 2).
  if (out.size() <= 1) return out;
  const auto cones = customer_cone_sizes(graph);
  std::vector<AsId> filtered;
  for (AsId id : out) {
    if (cones[id] >= 2) filtered.push_back(id);
  }
  return filtered.empty() ? out : filtered;
}

}  // namespace spooftrack::topology
