// AS-level Internet topology: autonomous systems and their business
// relationships (customer-provider and peer-peer, per Gao's model).
//
// ASes are identified externally by ASN and internally by a dense AsId so
// that per-AS state in the routing engine lives in flat arrays.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace spooftrack::topology {

using Asn = std::uint32_t;
using AsId = std::uint32_t;

inline constexpr AsId kInvalidAsId = std::numeric_limits<AsId>::max();

/// Relationship of a neighbor as seen from the local AS.
enum class Rel : std::uint8_t {
  kCustomer = 0,  // the neighbor pays us
  kPeer = 1,      // settlement-free
  kProvider = 2,  // we pay the neighbor
};

/// The mirrored relationship (my customer sees me as its provider).
constexpr Rel reverse(Rel rel) noexcept {
  switch (rel) {
    case Rel::kCustomer: return Rel::kProvider;
    case Rel::kProvider: return Rel::kCustomer;
    case Rel::kPeer: return Rel::kPeer;
  }
  return Rel::kPeer;
}

const char* to_string(Rel rel) noexcept;

struct Neighbor {
  AsId id = kInvalidAsId;
  Rel rel = Rel::kPeer;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

/// Immutable-after-freeze AS graph.
///
/// Usage: add_as / add_p2c / add_p2p during construction, then freeze().
/// Query methods require a frozen graph (checked by assertions).
class AsGraph {
 public:
  /// Registers an AS (idempotent) and returns its dense id.
  AsId add_as(Asn asn);

  /// Adds a customer-provider edge: `provider` transits for `customer`.
  /// Both ASes are registered on demand. Duplicate edges are merged at
  /// freeze(); conflicting duplicate relationships throw there.
  void add_p2c(Asn provider, Asn customer);

  /// Adds a settlement-free peering edge.
  void add_p2p(Asn a, Asn b);

  /// Sorts and deduplicates adjacency lists; validates that no AS pair has
  /// two different relationships. Throws std::invalid_argument on conflict
  /// or self-loop.
  void freeze();

  bool frozen() const noexcept { return frozen_; }
  std::size_t size() const noexcept { return asns_.size(); }
  std::size_t edge_count() const noexcept;

  Asn asn_of(AsId id) const noexcept { return asns_[id]; }
  std::optional<AsId> id_of(Asn asn) const noexcept;
  bool contains(Asn asn) const noexcept { return id_of(asn).has_value(); }

  std::span<const Neighbor> neighbors(AsId id) const noexcept;
  std::vector<AsId> neighbors_with(AsId id, Rel rel) const;
  std::optional<Rel> relationship(AsId from, AsId to) const noexcept;

  std::size_t degree(AsId id) const noexcept { return adjacency_[id].size(); }

  /// True when the AS has no providers (candidate tier-1 / clique member).
  bool is_provider_free(AsId id) const noexcept;

 private:
  void require_frozen() const noexcept;

  std::vector<Asn> asns_;
  std::unordered_map<Asn, AsId> index_;
  std::vector<std::vector<Neighbor>> adjacency_;
  bool frozen_ = false;
};

}  // namespace spooftrack::topology
