// Reader/writer for CAIDA's AS-relationship "serial-1" format:
//
//   # comment lines
//   <provider-asn>|<customer-asn>|-1
//   <peer-asn>|<peer-asn>|0
//
// The paper derives PEERING's provider neighbourhood from this dataset; we
// support the format so a real CAIDA snapshot can replace the synthetic
// topology without code changes.
#pragma once

#include <iosfwd>
#include <string>

#include "topology/as_graph.hpp"

namespace spooftrack::topology {

/// Parses serial-1 text into a frozen AsGraph. Throws std::invalid_argument
/// with a line number on malformed input.
AsGraph read_caida(std::istream& in);
AsGraph read_caida_file(const std::string& path);

/// Serializes a frozen graph back to serial-1 (p2c lines then p2p lines,
/// each edge once, sorted for reproducible output).
void write_caida(const AsGraph& graph, std::ostream& out);

}  // namespace spooftrack::topology
