#include "topology/caida_io.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string_view>

namespace spooftrack::topology {

namespace {

struct ParsedLine {
  Asn first = 0;
  Asn second = 0;
  int rel = 0;
};

std::optional<Asn> parse_asn(std::string_view field) noexcept {
  Asn value = 0;
  auto [next, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || next != field.data() + field.size()) {
    return std::nullopt;
  }
  return value;
}

std::optional<ParsedLine> parse_line(std::string_view line) noexcept {
  const auto bar1 = line.find('|');
  if (bar1 == std::string_view::npos) return std::nullopt;
  const auto bar2 = line.find('|', bar1 + 1);
  if (bar2 == std::string_view::npos) return std::nullopt;
  // serial-1 may append extra fields (e.g. inference source); ignore them.
  auto rel_field = line.substr(bar2 + 1);
  const auto bar3 = rel_field.find('|');
  if (bar3 != std::string_view::npos) rel_field = rel_field.substr(0, bar3);

  const auto a = parse_asn(line.substr(0, bar1));
  const auto b = parse_asn(line.substr(bar1 + 1, bar2 - bar1 - 1));
  if (!a || !b) return std::nullopt;
  if (rel_field == "-1") return ParsedLine{*a, *b, -1};
  if (rel_field == "0") return ParsedLine{*a, *b, 0};
  return std::nullopt;
}

}  // namespace

AsGraph read_caida(std::istream& in) {
  AsGraph graph;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Trim trailing CR from CRLF files.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const auto parsed = parse_line(line);
    if (!parsed) {
      throw std::invalid_argument("malformed serial-1 line " +
                                  std::to_string(line_number) + ": " + line);
    }
    if (parsed->rel == -1) {
      graph.add_p2c(parsed->first, parsed->second);
    } else {
      graph.add_p2p(parsed->first, parsed->second);
    }
  }
  graph.freeze();
  return graph;
}

AsGraph read_caida_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot open relationship file: " + path);
  }
  return read_caida(in);
}

void write_caida(const AsGraph& graph, std::ostream& out) {
  std::vector<std::pair<Asn, Asn>> p2c;
  std::vector<std::pair<Asn, Asn>> p2p;
  for (AsId id = 0; id < graph.size(); ++id) {
    for (const Neighbor& n : graph.neighbors(id)) {
      const Asn self = graph.asn_of(id);
      const Asn other = graph.asn_of(n.id);
      if (n.rel == Rel::kCustomer) {
        p2c.emplace_back(self, other);
      } else if (n.rel == Rel::kPeer && self < other) {
        p2p.emplace_back(self, other);
      }
    }
  }
  std::sort(p2c.begin(), p2c.end());
  std::sort(p2p.begin(), p2p.end());
  out << "# spooftrack serial-1 export\n";
  for (const auto& [provider, customer] : p2c) {
    out << provider << '|' << customer << "|-1\n";
  }
  for (const auto& [a, b] : p2p) {
    out << a << '|' << b << "|0\n";
  }
}

}  // namespace spooftrack::topology
