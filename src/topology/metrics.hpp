// Structural graph metrics used by validation and by the evaluation
// (Figure 7 buckets ASes by AS-hop distance to the origin's PoPs; tier-1
// membership feeds the poisoned-route filter; customer cones reproduce the
// paper's coverage statistic of "ASes with customer cone larger than 300").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "topology/as_graph.hpp"

namespace spooftrack::topology {

inline constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

/// Multi-source BFS over all edges (relationship-agnostic). Entry i is the
/// hop distance of AsId i from the closest source, or kUnreachable.
std::vector<std::uint32_t> hop_distances(const AsGraph& graph,
                                         std::span<const AsId> sources);

/// True when the customer-provider subgraph has no directed cycle.
bool p2c_acyclic(const AsGraph& graph);

/// True when the undirected graph is connected (empty graphs count as
/// connected).
bool connected(const AsGraph& graph);

/// Size of each AS's customer cone (the AS itself plus every AS reachable
/// by repeatedly following provider->customer edges, counted as a set).
/// Requires an acyclic p2c subgraph; throws std::invalid_argument otherwise.
std::vector<std::uint32_t> customer_cone_sizes(const AsGraph& graph);

/// Provider-free ASes with the largest customer cones; these play the role
/// of the tier-1 clique in routing-policy filters.
std::vector<AsId> tier1_set(const AsGraph& graph);

}  // namespace spooftrack::topology
