// Synthetic Internet-like AS topology generator.
//
// The paper runs on the real Internet via the PEERING testbed; we cannot.
// This generator builds a hierarchical AS graph with the structural
// properties the techniques depend on: a tier-1 clique, a transit layer
// with preferential-attachment (power-law-ish) provider degrees, a large
// stub edge, valley-free customer-provider DAG, and full connectivity.
// Specific ASNs (the PEERING providers of Table I) can be reserved and are
// assigned to well-connected transit ASes so the poisoning phase has a rich
// provider neighbourhood to target, mirroring the paper's 347 neighbours.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/as_graph.hpp"

namespace spooftrack::topology {

struct SynthConfig {
  std::uint64_t seed = 1;

  std::uint32_t tier1_count = 8;
  std::uint32_t transit_count = 150;
  std::uint32_t stub_count = 4000;

  /// Mean number of extra providers beyond the first (multihoming).
  double transit_extra_providers = 0.9;
  double stub_extra_providers = 0.55;

  /// Probability that a given pair of transit ASes peers (IXP-style).
  double transit_peering_prob = 0.04;
  /// Number of random stub-stub peerings as a fraction of stub count.
  double stub_peering_fraction = 0.01;
  /// Probability a stub buys transit directly from a tier-1.
  double stub_tier1_provider_prob = 0.05;

  /// ASNs to embed as transit ASes (e.g. the Table I PEERING providers).
  std::vector<Asn> reserved_transit_asns;
  /// Extra preferential-attachment weight for reserved ASes so they end up
  /// with many customers (they model large regional transit providers).
  double reserved_attract_bonus = 40.0;

  /// Where in the transit creation sequence the reserved ASes appear, as a
  /// fraction of transit_count. Earlier creation compounds preferential
  /// attachment; 0.0 makes the reserved ASes the largest hubs, 0.5 makes
  /// them mid-pack regional providers.
  double reserved_position_fraction = 0.0;

  /// When nonzero, an origin AS with this ASN is attached as a customer of
  /// every reserved transit AS (the multi-homed measurement network; the
  /// graph must contain it before freezing).
  Asn origin_asn = 0;
};

struct SynthTopology {
  AsGraph graph;
  std::vector<Asn> tier1;
  std::vector<Asn> transit;  // includes the reserved ASNs, in creation order
  std::vector<Asn> stubs;
};

/// Generates a frozen topology. Deterministic in config.seed.
/// Throws std::invalid_argument when reserved ASNs exceed transit_count or
/// collide with generated ASNs.
SynthTopology synthesize(const SynthConfig& config);

}  // namespace spooftrack::topology
