#include "topology/synth.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "util/rng.hpp"

namespace spooftrack::topology {

namespace {

// Well-known tier-1 ASNs used for flavour; generation continues sequentially
// when more tier-1s are requested than listed here.
constexpr Asn kTier1Pool[] = {3356, 174,  3257, 1299, 2914,
                              6762, 6939, 701,  7018, 3320};

std::uint64_t edge_key(Asn a, Asn b) noexcept {
  if (a > b) std::swap(a, b);
  return (std::uint64_t{a} << 32) | b;
}

class EdgeSet {
 public:
  bool insert(Asn a, Asn b) { return seen_.insert(edge_key(a, b)).second; }
  bool contains(Asn a, Asn b) const { return seen_.contains(edge_key(a, b)); }

 private:
  std::unordered_set<std::uint64_t> seen_;
};

}  // namespace

SynthTopology synthesize(const SynthConfig& config) {
  if (config.tier1_count == 0) {
    throw std::invalid_argument("tier1_count must be >= 1");
  }
  if (config.reserved_transit_asns.size() > config.transit_count) {
    throw std::invalid_argument("more reserved ASNs than transit slots");
  }

  util::Rng rng{config.seed};
  SynthTopology topo;
  EdgeSet edges;

  std::unordered_set<Asn> taken(config.reserved_transit_asns.begin(),
                                config.reserved_transit_asns.end());
  if (config.origin_asn != 0) taken.insert(config.origin_asn);
  Asn next_asn = 64500;
  auto fresh_asn = [&]() {
    while (taken.contains(next_asn)) ++next_asn;
    taken.insert(next_asn);
    return next_asn++;
  };

  // --- Tier-1 clique -------------------------------------------------------
  for (std::uint32_t i = 0; i < config.tier1_count; ++i) {
    Asn asn;
    if (i < std::size(kTier1Pool) && !taken.contains(kTier1Pool[i])) {
      asn = kTier1Pool[i];
      taken.insert(asn);
    } else {
      asn = fresh_asn();
    }
    topo.tier1.push_back(asn);
    topo.graph.add_as(asn);
  }
  for (std::size_t i = 0; i < topo.tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < topo.tier1.size(); ++j) {
      topo.graph.add_p2p(topo.tier1[i], topo.tier1[j]);
      edges.insert(topo.tier1[i], topo.tier1[j]);
    }
  }

  // Preferential-attachment weights over candidate providers.
  std::vector<Asn> provider_pool = topo.tier1;
  std::vector<double> provider_weight(provider_pool.size(), 1.0);
  auto bump_weight = [&](std::size_t index, double amount) {
    provider_weight[index] += amount;
  };

  auto pick_providers = [&](Asn self, std::size_t count,
                            std::size_t pool_limit) {
    std::vector<Asn> chosen;
    std::vector<double> weights(provider_weight.begin(),
                                provider_weight.begin() +
                                    static_cast<std::ptrdiff_t>(pool_limit));
    for (std::size_t attempt = 0;
         attempt < count * 8 && chosen.size() < count; ++attempt) {
      const std::size_t index = rng.weighted_index(weights);
      const Asn provider = provider_pool[index];
      if (provider == self || edges.contains(provider, self)) continue;
      chosen.push_back(provider);
      edges.insert(provider, self);
      weights[index] = 0.0;  // no duplicate providers
      bump_weight(index, 1.0);
    }
    return chosen;
  };

  // --- Transit layer -------------------------------------------------------
  const std::size_t reserved_count = config.reserved_transit_asns.size();
  const std::size_t reserved_begin = std::min<std::size_t>(
      static_cast<std::size_t>(config.reserved_position_fraction *
                               static_cast<double>(config.transit_count)),
      config.transit_count - reserved_count);
  for (std::uint32_t i = 0; i < config.transit_count; ++i) {
    const bool is_reserved =
        i >= reserved_begin && i < reserved_begin + reserved_count;
    const Asn asn = is_reserved
                        ? config.reserved_transit_asns[i - reserved_begin]
                        : fresh_asn();
    topo.transit.push_back(asn);

    // Providers come only from already-created ASes, which keeps the
    // customer-provider graph acyclic by construction.
    const std::size_t pool_limit = provider_pool.size();
    const std::size_t provider_count =
        1 + (rng.uniform01() < config.transit_extra_providers ? 1u : 0u) +
        (rng.uniform01() < config.transit_extra_providers / 3.0 ? 1u : 0u);
    const auto providers = pick_providers(asn, provider_count, pool_limit);
    if (providers.empty()) {
      // Degenerate fallback: attach to the first tier-1.
      topo.graph.add_p2c(topo.tier1[0], asn);
      edges.insert(topo.tier1[0], asn);
    }
    for (Asn provider : providers) topo.graph.add_p2c(provider, asn);

    provider_pool.push_back(asn);
    provider_weight.push_back(
        1.0 + (is_reserved ? config.reserved_attract_bonus : 0.0));
  }

  // Guarantee every tier-1 transits for someone: a tier-1 without
  // customers would be indistinguishable from an isolated stub.
  {
    std::size_t next_transit = 0;
    for (std::size_t i = 0; i < topo.tier1.size(); ++i) {
      const AsId t1_id = *topo.graph.id_of(topo.tier1[i]);
      bool has_customer = false;
      // Adjacency is not frozen yet; scan the transit list instead.
      for (Asn transit : topo.transit) {
        if (edges.contains(topo.tier1[i], transit)) {
          // The edge might be a peering, but transit ASes only ever peer
          // with each other, so tier1-transit edges are always p2c here.
          has_customer = true;
          break;
        }
      }
      (void)t1_id;
      if (!has_customer && !topo.transit.empty()) {
        const Asn customer = topo.transit[next_transit++ % topo.transit.size()];
        if (!edges.contains(topo.tier1[i], customer)) {
          edges.insert(topo.tier1[i], customer);
          topo.graph.add_p2c(topo.tier1[i], customer);
        }
      }
    }
  }

  // Transit-transit peering (IXP fabric).
  for (std::size_t i = 0; i < topo.transit.size(); ++i) {
    for (std::size_t j = i + 1; j < topo.transit.size(); ++j) {
      if (!rng.chance(config.transit_peering_prob)) continue;
      const Asn a = topo.transit[i];
      const Asn b = topo.transit[j];
      if (edges.contains(a, b)) continue;
      edges.insert(a, b);
      topo.graph.add_p2p(a, b);
    }
  }

  // --- Stub edge -----------------------------------------------------------
  // Stubs prefer transit providers; occasionally buy from tier-1 directly.
  const std::size_t transit_pool_begin = topo.tier1.size();
  for (std::uint32_t i = 0; i < config.stub_count; ++i) {
    const Asn asn = fresh_asn();
    topo.stubs.push_back(asn);

    const std::size_t provider_count =
        1 + (rng.uniform01() < config.stub_extra_providers ? 1u : 0u) +
        (rng.uniform01() < config.stub_extra_providers / 4.0 ? 1u : 0u);

    std::vector<Asn> chosen;
    for (std::size_t attempt = 0;
         attempt < provider_count * 8 && chosen.size() < provider_count;
         ++attempt) {
      std::size_t index;
      if (rng.chance(config.stub_tier1_provider_prob)) {
        index = static_cast<std::size_t>(rng.next_below(topo.tier1.size()));
      } else {
        // Weighted pick among transit ASes only.
        std::vector<double> weights(
            provider_weight.begin() +
                static_cast<std::ptrdiff_t>(transit_pool_begin),
            provider_weight.end());
        index = transit_pool_begin + rng.weighted_index(weights);
      }
      const Asn provider = provider_pool[index];
      if (provider == asn || edges.contains(provider, asn)) continue;
      if (std::find(chosen.begin(), chosen.end(), provider) != chosen.end()) {
        continue;
      }
      chosen.push_back(provider);
      edges.insert(provider, asn);
      bump_weight(index, 1.0);
    }
    if (chosen.empty()) {
      const Asn fallback = topo.transit[rng.next_below(topo.transit.size())];
      chosen.push_back(fallback);
      edges.insert(fallback, asn);
    }
    for (Asn provider : chosen) topo.graph.add_p2c(provider, asn);
  }

  // Sparse stub-stub peering (e.g. content caches at regional IXPs).
  const auto stub_peerings = static_cast<std::size_t>(
      config.stub_peering_fraction * static_cast<double>(topo.stubs.size()));
  for (std::size_t k = 0; k < stub_peerings && topo.stubs.size() >= 2; ++k) {
    const Asn a = topo.stubs[rng.next_below(topo.stubs.size())];
    const Asn b = topo.stubs[rng.next_below(topo.stubs.size())];
    if (a == b || edges.contains(a, b)) continue;
    edges.insert(a, b);
    topo.graph.add_p2p(a, b);
  }

  // --- Origin attachment -----------------------------------------------
  if (config.origin_asn != 0) {
    for (Asn provider : config.reserved_transit_asns) {
      topo.graph.add_p2c(provider, config.origin_asn);
    }
  }

  topo.graph.freeze();
  return topo;
}

}  // namespace spooftrack::topology
