#include "topology/as_graph.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace spooftrack::topology {

const char* to_string(Rel rel) noexcept {
  switch (rel) {
    case Rel::kCustomer: return "customer";
    case Rel::kPeer: return "peer";
    case Rel::kProvider: return "provider";
  }
  return "?";
}

AsId AsGraph::add_as(Asn asn) {
  assert(!frozen_);
  auto [it, inserted] = index_.try_emplace(asn, static_cast<AsId>(asns_.size()));
  if (inserted) {
    asns_.push_back(asn);
    adjacency_.emplace_back();
  }
  return it->second;
}

void AsGraph::add_p2c(Asn provider, Asn customer) {
  assert(!frozen_);
  if (provider == customer) {
    throw std::invalid_argument("self-loop p2c edge for AS " +
                                std::to_string(provider));
  }
  const AsId p = add_as(provider);
  const AsId c = add_as(customer);
  adjacency_[p].push_back({c, Rel::kCustomer});
  adjacency_[c].push_back({p, Rel::kProvider});
}

void AsGraph::add_p2p(Asn a, Asn b) {
  assert(!frozen_);
  if (a == b) {
    throw std::invalid_argument("self-loop p2p edge for AS " +
                                std::to_string(a));
  }
  const AsId ia = add_as(a);
  const AsId ib = add_as(b);
  adjacency_[ia].push_back({ib, Rel::kPeer});
  adjacency_[ib].push_back({ia, Rel::kPeer});
}

void AsGraph::freeze() {
  if (frozen_) return;
  for (AsId id = 0; id < adjacency_.size(); ++id) {
    auto& list = adjacency_[id];
    std::sort(list.begin(), list.end(),
              [](const Neighbor& x, const Neighbor& y) {
                if (x.id != y.id) return x.id < y.id;
                return static_cast<int>(x.rel) < static_cast<int>(y.rel);
              });
    // Exact duplicates merge; same neighbor under two relationships is a
    // data error (CAIDA serial-1 never contains both for one pair).
    auto last = std::unique(list.begin(), list.end());
    list.erase(last, list.end());
    for (std::size_t i = 1; i < list.size(); ++i) {
      if (list[i].id == list[i - 1].id) {
        throw std::invalid_argument(
            "conflicting relationships between AS " +
            std::to_string(asns_[id]) + " and AS " +
            std::to_string(asns_[list[i].id]));
      }
    }
  }
  frozen_ = true;
}

std::size_t AsGraph::edge_count() const noexcept {
  std::size_t half_edges = 0;
  for (const auto& list : adjacency_) half_edges += list.size();
  return half_edges / 2;
}

std::optional<AsId> AsGraph::id_of(Asn asn) const noexcept {
  const auto it = index_.find(asn);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::span<const Neighbor> AsGraph::neighbors(AsId id) const noexcept {
  require_frozen();
  return adjacency_[id];
}

std::vector<AsId> AsGraph::neighbors_with(AsId id, Rel rel) const {
  require_frozen();
  std::vector<AsId> out;
  for (const Neighbor& n : adjacency_[id]) {
    if (n.rel == rel) out.push_back(n.id);
  }
  return out;
}

std::optional<Rel> AsGraph::relationship(AsId from, AsId to) const noexcept {
  require_frozen();
  const auto& list = adjacency_[from];
  const auto it = std::lower_bound(
      list.begin(), list.end(), to,
      [](const Neighbor& n, AsId target) { return n.id < target; });
  if (it == list.end() || it->id != to) return std::nullopt;
  return it->rel;
}

bool AsGraph::is_provider_free(AsId id) const noexcept {
  require_frozen();
  for (const Neighbor& n : adjacency_[id]) {
    if (n.rel == Rel::kProvider) return false;
  }
  return true;
}

void AsGraph::require_frozen() const noexcept {
  assert(frozen_ && "AsGraph must be frozen before queries");
}

}  // namespace spooftrack::topology
