// DDoS localization scenario: the paper's motivating use case end-to-end,
// with the full measured pipeline and packet-level traffic.
//
// An amplification attack spoofs a victim's address from a handful of
// compromised ASes. The origin network (running an AmpPot-style honeypot
// inside the experiment prefix):
//   1. pre-measures catchments for its configuration plan (feeds +
//      traceroutes + repair + imputation — the SIV pipeline),
//   2. replays the attack against a greedy schedule of configurations,
//   3. correlates per-link honeypot volumes with clusters,
//   4. reports the suspect clusters and how many configurations the
//      greedy schedule needed.
#include <iostream>

#include "core/attribution.hpp"
#include "core/cluster.hpp"
#include "core/experiment.hpp"
#include "core/mitigation.hpp"
#include "core/scheduler.hpp"
#include "traffic/background.hpp"
#include "traffic/honeypot.hpp"
#include "traffic/spoofer.hpp"
#include "util/table.hpp"

int main() {
  using namespace spooftrack;

  core::TestbedConfig config;
  config.seed = 5;
  config.stub_count = 1200;
  config.transit_count = 100;
  config.probe_count = 400;
  config.measured_catchments = true;
  const core::PeeringTestbed testbed(config);

  core::GeneratorOptions gen;
  gen.max_removals = 2;
  gen.max_poison_configs = 80;
  auto plan = testbed.generator(gen).full_plan(testbed.graph());
  std::cout << "pre-measuring catchments for " << plan.size()
            << " configurations (feeds + traceroutes + repair)...\n";
  const auto deployment = testbed.deploy(std::move(plan));
  const auto clustering = core::cluster_sources(deployment.matrix);
  std::cout << "  " << deployment.sources.size() << " sources, "
            << clustering.cluster_count << " clusters, mean size "
            << util::fmt_double(clustering.mean_size(), 2) << "\n";

  // The attack: three compromised stub ASes flood an NTP honeypot with
  // monlist queries spoofing the victim.
  const netcore::Ipv4Addr victim{198, 51, 100, 9};
  std::vector<std::size_t> attacker_sources;
  for (std::size_t s = 7; attacker_sources.size() < 3;
       s += deployment.sources.size() / 3) {
    attacker_sources.push_back(s % deployment.sources.size());
  }

  traffic::SpoofedTrafficGenerator traffic_gen(1234);
  std::vector<std::vector<double>> observed;  // per config, per link

  // Greedy schedule over the pre-measured catchments (§V-C): the operator
  // deploys the most informative configurations first.
  const auto schedule = core::greedy_schedule(deployment.matrix, 20);
  std::cout << "replaying the attack under the " << schedule.order.size()
            << " greedy-scheduled configurations...\n";

  measure::CatchmentStore deployed_rows;
  traffic::HoneypotOptions pot_options;
  pot_options.attack_min_packets = 50;
  std::uint64_t suppressed = 0;
  for (std::size_t step : schedule.order) {
    traffic::AmpPotHoneypot pot(testbed.origin().links.size(), pot_options);
    std::vector<traffic::SpoofedFlow> flows;
    for (std::size_t i = 0; i < attacker_sources.size(); ++i) {
      traffic::SpoofedFlow flow;
      flow.source_as = deployment.sources[attacker_sources[i]];
      flow.victim = victim;
      flow.protocol = traffic::AmpProtocol::kNtpMonlist;
      // Distinct rates per attacker: equal-rate sources are a degenerate
      // tie for any volume-decomposition method.
      flow.packets_per_second = 80.0 * static_cast<double>(i + 1);
      flows.push_back(flow);
    }
    const auto arrivals =
        traffic_gen.deliver(flows, deployment.truth[step], 1.0, 400);
    for (const auto& arrived : arrivals) {
      pot.receive(arrived.link, arrived.datagram, arrived.timestamp);
    }
    suppressed += pot.responses_suppressed();
    observed.push_back(pot.volume_by_link());
    deployed_rows.append_row(deployment.matrix.row(step));
  }
  std::cout << "  honeypot rate limiter suppressed " << suppressed
            << " reflected responses across the replay\n";

  // Mixture attribution over the deployed subset (what the operator saw):
  // the observed per-link volumes are decomposed into per-cluster
  // contributions, which handles several simultaneous attackers.
  const auto sub_clustering = core::cluster_sources(deployed_rows);
  // Strict consistency (the default): a cluster only absorbs weight when
  // its trajectory matches the volumes in EVERY deployed configuration.
  // Catchment-inference errors can therefore hide a real attacker — the
  // residual_fraction printed below is the honest "unattributed" signal an
  // operator would see (the paper's motivation for better catchment
  // measurement).
  const auto mixture =
      core::attribute_mixture(deployed_rows, sub_clustering, observed);

  util::Table table(
      {"component", "cluster", "ASes", "weight", "contains attacker?"});
  for (std::size_t rank = 0; rank < mixture.components.size(); ++rank) {
    const auto& component = mixture.components[rank];
    bool has_attacker = false;
    for (std::size_t s : attacker_sources) {
      has_attacker |= sub_clustering.cluster_of[s] == component.cluster;
    }
    table.add_row({std::to_string(rank + 1),
                   std::to_string(component.cluster),
                   std::to_string(sub_clustering.sizes()[component.cluster]),
                   util::fmt_percent(component.weight),
                   has_attacker ? "YES" : "no"});
  }
  table.print(std::cout);

  std::size_t hits = 0;
  std::size_t suspects = 0;
  for (const auto& component : mixture.components) {
    suspects += sub_clustering.sizes()[component.cluster];
  }
  for (std::size_t s : attacker_sources) {
    for (const auto& component : mixture.components) {
      if (sub_clustering.cluster_of[s] == component.cluster) ++hits;
    }
  }
  std::cout << "\n" << hits << "/" << attacker_sources.size()
            << " attacker ASes inside the " << mixture.components.size()
            << " suspect clusters (" << suspects
            << " ASes total) after only " << schedule.order.size()
            << " configurations; unexplained volume: "
            << util::fmt_percent(mixture.residual_fraction) << "\n";

  // Finally, turn the attribution into mitigation (SI: RTBH blackholing or
  // flowspec filters, weighed against the legitimate traffic that shares
  // each ingress link under the currently-deployed configuration).
  const std::size_t live = schedule.order.back();
  const measure::AddressPlan plan_addr(testbed.graph());
  const traffic::BackgroundTrafficModel background(testbed.graph(),
                                                   plan_addr, {});
  std::vector<double> legit_by_link(testbed.origin().links.size(), 0.0);
  for (const auto& arrived : background.generate(deployment.truth[live], 3)) {
    legit_by_link[arrived.link] += 1.0;
  }
  const auto mitigation = core::plan_mitigation(
      mixture, sub_clustering, deployment.sources, testbed.graph(),
      deployment.truth[live], legit_by_link);

  std::cout << "\nmitigation plan (covers "
            << util::fmt_percent(mitigation.covered_weight)
            << " of attributed volume):\n";
  for (const auto& action : mitigation.actions) {
    std::cout << "  * " << action.describe() << "\n";
  }
  return 0;
}
