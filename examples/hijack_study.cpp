// Hijack-scenario study (§VI): each configuration announcing from n
// locations doubles as 2^n prefix-hijack experiments — any subset of the
// locations can be read as the hijacker's sites competing for traffic with
// the legitimate ones. This example quantifies how much traffic a hijacker
// would capture as a function of how many (and which) sites it announces
// from.
#include <bit>
#include <iostream>

#include "core/experiment.hpp"
#include "core/hijack.hpp"
#include "netcore/ipv6.hpp"
#include "netcore/lpm.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace spooftrack;

  core::TestbedConfig config;
  config.seed = 17;
  config.stub_count = 1500;
  config.transit_count = 120;
  config.measured_catchments = false;
  const core::PeeringTestbed testbed(config);

  // Use the all-locations anycast configuration: 2^7 - 2 = 126 scenarios.
  const auto announce_all = testbed.generator().location_phase().front();
  const auto outcome = testbed.route(announce_all);
  const auto catchments = bgp::extract_catchments(outcome, announce_all);
  const auto scenarios = core::hijack_coverage(catchments, announce_all);

  std::cout << "one anycast configuration with "
            << announce_all.announcements.size() << " locations covers "
            << scenarios.size() << " hijack scenarios\n";

  // Aggregate captured fraction by hijacker site count.
  util::print_banner(std::cout,
                     "Captured traffic fraction by number of hijacker sites");
  util::Table table({"hijacker sites", "scenarios", "mean captured",
                     "min", "max"});
  for (std::uint32_t k = 1; k < announce_all.announcements.size(); ++k) {
    util::Accumulator acc;
    for (const auto& s : scenarios) {
      if (s.hijacker_announcements == k) acc.add(s.captured_fraction);
    }
    table.add_row({std::to_string(k), std::to_string(acc.count()),
                   util::fmt_percent(acc.mean()), util::fmt_percent(acc.min()),
                   util::fmt_percent(acc.max())});
  }
  table.print(std::cout);

  // The most and least dangerous single-site hijacks.
  util::print_banner(std::cout, "Single-site hijacks, per mux");
  util::Table single({"hijacker site", "provider", "captured"});
  for (const auto& s : scenarios) {
    if (s.hijacker_announcements != 1) continue;
    const auto link = static_cast<std::size_t>(
        std::countr_zero(s.hijacker_mask));
    single.add_row({testbed.origin().links[link].pop_name,
                    "AS" + std::to_string(testbed.origin().links[link].provider),
                    util::fmt_percent(s.captured_fraction)});
  }
  single.print(std::cout);

  // SVI's contrast case: a SUBPREFIX hijack needs no catchment analysis at
  // all — longest-prefix matching hands the hijacker everything. Announce
  // the victim's 184.164.224.0/24 as two /25s and every router prefers
  // the hijacker, regardless of AS-path or location:
  util::print_banner(std::cout, "Why subprefix hijacks are different (SVI)");
  netcore::LpmTable<const char*> rib;
  rib.insert(*netcore::Ipv4Prefix::parse("184.164.224.0/24"), "victim");
  rib.insert(*netcore::Ipv4Prefix::parse("184.164.224.0/25"), "hijacker");
  rib.insert(*netcore::Ipv4Prefix::parse("184.164.224.128/25"), "hijacker");
  std::size_t captured = 0;
  for (std::uint32_t host = 0; host < 256; ++host) {
    const auto owner = rib.lookup(
        netcore::Ipv4Addr{184, 164, 224, static_cast<std::uint8_t>(host)});
    captured += owner && std::string_view(*owner) == "hijacker";
  }
  std::cout << "subprefix hijack captures " << captured
            << "/256 addresses of the /24 — deterministically, because\n"
               "longest-prefix match ignores routing preferences entirely.\n"
               "The same holds for IPv6: "
            << netcore::Ipv6Prefix::parse("2001:db8:42::/48")->to_string()
            << " inside "
            << netcore::Ipv6Prefix::parse("2001:db8::/32")->to_string()
            << " wins every lookup. Defenses must announce equally-specific\n"
               "prefixes (/24 IPv4, /48 IPv6) and fight for catchments — the\n"
               "competition this study quantifies above.\n";

  std::cout << "\nReading: a hijacker announcing from one well-connected\n"
               "site can already capture a large slice of the Internet —\n"
               "and the same catchment data quantifies competing-prefix\n"
               "defenses (announcing from more sites shrinks the slice).\n";
  return 0;
}
