// Policy survey: using the announcement plan as a routing-policy probe
// (the paper's §VI observation that the techniques generalize to
// interdomain policy inference, à la Anwar et al.).
//
// Deploys the location+prepending plan, audits every AS's choices against
// its available alternatives per configuration, and reports which kinds of
// deviations the survey detects vs the ground-truth policy flags.
#include <iostream>

#include "core/experiment.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace spooftrack;

  core::TestbedConfig config;
  config.seed = 13;
  config.stub_count = 1000;
  config.transit_count = 100;
  config.measured_catchments = false;
  config.audit_policies = true;
  // Crank the deviation fractions up a little so the survey has something
  // to find.
  config.policy.shortest_violator_fraction = 0.10;
  config.policy.peer_provider_swap_fraction = 0.08;
  const core::PeeringTestbed testbed(config);

  core::GeneratorOptions gen;
  gen.max_removals = 2;
  auto location = testbed.generator(gen).location_phase();
  auto plan = location;
  const auto prepends = testbed.generator(gen).prepend_phase(location);
  plan.insert(plan.end(), prepends.begin(), prepends.end());

  std::cout << "auditing " << plan.size()
            << " configurations on " << testbed.graph().size() << " ASes...\n";
  const auto deployment = testbed.deploy(std::move(plan));

  util::Accumulator best_rel, both;
  for (const auto& stats : deployment.compliance) {
    best_rel.add(stats.best_relationship_fraction());
    both.add(stats.both_fraction());
  }

  // Ground truth: how many ASes actually carry deviation flags?
  std::size_t swapped = 0, shortest = 0;
  for (topology::AsId id = 0; id < testbed.graph().size(); ++id) {
    swapped += testbed.policy().flags(id).peer_provider_swapped;
    shortest += testbed.policy().flags(id).shortest_violator;
  }

  util::print_banner(std::cout, "Observed compliance (mean over configs)");
  util::Table table({"criterion", "compliant fraction"});
  table.add_row({"best relationship", util::fmt_percent(best_rel.mean())});
  table.add_row({"best relationship + shortest path",
                 util::fmt_percent(both.mean())});
  table.print(std::cout);

  util::print_banner(std::cout, "Ground-truth policy deviations");
  util::Table truth({"deviation", "ASes", "fraction"});
  const double n = static_cast<double>(testbed.graph().size());
  truth.add_row({"peer/provider preference swapped", std::to_string(swapped),
                 util::fmt_percent(swapped / n)});
  truth.add_row({"tiebreak dominates path length", std::to_string(shortest),
                 util::fmt_percent(shortest / n)});
  truth.print(std::cout);

  std::cout
      << "\nNote: a deviation is only *observable* in configurations where\n"
         "the AS actually has alternatives of different classes/lengths,\n"
         "which is why observed non-compliance is below the planted\n"
         "fractions — the same visibility limit the paper faces.\n";
  return 0;
}
