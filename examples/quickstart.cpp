// Quickstart: the library in ~60 lines.
//
// Build an Internet-like topology with a multi-homed origin (the PEERING
// emulation), deploy a handful of announcement configurations, intersect
// the catchments into clusters, and show how per-link spoofed-traffic
// volumes point at the cluster hosting a spoofer.
//
//   ./quickstart [--seed=N]
#include <iostream>

#include "core/attribution.hpp"
#include "core/cluster.hpp"
#include "core/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace spooftrack;

  // 1. A small testbed: synthetic topology + origin AS 47065 announcing
  //    through the seven Table I providers. Ground-truth catchments keep
  //    the quickstart fast; see ddos_localization for the full measured
  //    pipeline.
  core::TestbedConfig config;
  config.seed = 1;
  config.stub_count = 800;
  config.transit_count = 80;
  config.measured_catchments = false;
  const core::PeeringTestbed testbed(config);
  std::cout << "topology: " << testbed.graph().size() << " ASes, "
            << testbed.graph().edge_count() << " edges; origin AS"
            << testbed.origin().asn << " with "
            << testbed.origin().links.size() << " peering links\n";

  // 2. Generate announcement configurations: every subset of locations
  //    down to 4 links, then single-link prepends, then poisoning.
  core::GeneratorOptions gen;
  gen.max_poison_configs = 60;
  auto plan = testbed.generator(gen).full_plan(testbed.graph());
  std::cout << "deploying " << plan.size() << " configurations...\n";

  // 3. Deploy and cluster: sources sharing a catchment in every
  //    configuration are indistinguishable; everything else separates.
  const auto deployment = testbed.deploy(std::move(plan));
  const auto clustering = core::cluster_sources(deployment.matrix);
  std::size_t singletons = 0;
  for (std::uint32_t s : clustering.sizes()) singletons += s == 1;
  std::cout << deployment.sources.size() << " sources -> "
            << clustering.cluster_count << " clusters (mean size "
            << util::fmt_double(clustering.mean_size(), 2) << ", "
            << util::fmt_percent(static_cast<double>(singletons) /
                                 clustering.cluster_count)
            << " singletons)\n";

  // 4. Simulate a spoofer and attribute observed per-link volumes.
  const std::size_t spoofer = deployment.sources.size() / 3;
  std::vector<std::vector<double>> volumes;
  for (const auto& truth : deployment.truth) {
    std::vector<double> per_link(testbed.origin().links.size(), 0.0);
    const auto link = truth.link_of[deployment.sources[spoofer]];
    if (link != bgp::kNoCatchment) per_link[link] = 1.0;
    volumes.push_back(std::move(per_link));
  }
  const auto attribution =
      core::attribute_clusters(deployment.matrix, clustering, volumes);
  const auto top = attribution.ranking.front();
  std::cout << "spoofer planted in source #" << spoofer << " (AS"
            << testbed.graph().asn_of(deployment.sources[spoofer])
            << "); top-ranked cluster has " << clustering.sizes()[top]
            << " ASes and "
            << (clustering.cluster_of[spoofer] == top
                    ? "contains the spoofer — localized.\n"
                    : "misses the spoofer.\n");
  return 0;
}
