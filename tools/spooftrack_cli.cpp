// spooftrack — command-line front end for the library.
//
//   spooftrack topo     synthesize an Internet-like topology (CAIDA serial-1)
//   spooftrack plan     print the announcement-configuration plan
//   spooftrack deploy   run a measurement campaign, save a .artifact file
//   spooftrack clusters analyse an artifact: clusters, CCDF, tail
//   spooftrack attack   simulate a spoofing attack and attribute it
//   spooftrack campaign wall-clock planning for real deployments
//
// Every subcommand takes --help. Artifacts written by `deploy` are consumed
// by `clusters` and `attack`, mirroring the measure-once / analyse-often
// workflow the paper implies.
//
// The global --obs-report=PATH flag (valid before or after the command)
// writes a spooftrack.obs.v1 JSON RunReport of the run's telemetry; see
// docs/observability.md.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>

#include "core/attribution.hpp"
#include "core/campaign.hpp"
#include "core/cluster.hpp"
#include "core/config_gen.hpp"
#include "core/experiment.hpp"
#include "core/io.hpp"
#include "core/prediction.hpp"
#include "core/report.hpp"
#include "core/scheduler.hpp"
#include "journal/journal.hpp"
#include "obs/report.hpp"
#include "topology/caida_io.hpp"
#include "topology/metrics.hpp"
#include "topology/synth.hpp"
#include "traffic/honeypot.hpp"
#include "traffic/spoofer.hpp"
#include "util/flags.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace spooftrack;

int usage(int code) {
  std::cerr
      << "usage: spooftrack <command> [flags]\n\n"
         "commands:\n"
         "  topo      synthesize a topology and print it as CAIDA serial-1\n"
         "  plan      print the generated announcement configurations\n"
         "  deploy    run a campaign on the emulated testbed -> artifact\n"
         "  clusters  cluster analysis of a deployment artifact\n"
         "  attack    simulate a spoofing attack against an artifact\n"
         "  report    render an artifact as a Markdown campaign report\n"
         "  predict   train/evaluate the catchment predictor on an artifact\n"
         "  campaign  wall-clock planning for real-Internet deployment\n\n"
         "global flags:\n"
         "  --obs-report=PATH  write a JSON telemetry RunReport "
         "(docs/observability.md)\n\n"
         "run 'spooftrack <command> --help' for flags.\n";
  return code;
}

util::FlagSet testbed_flags() {
  util::FlagSet flags;
  flags.define("seed", "deterministic seed", "42")
      .define("stubs", "stub AS count", "2500")
      .define("transit", "transit AS count", "150")
      .define("tier1", "tier-1 clique size", "8")
      .define("probes", "RIPE-Atlas-style probe ASes", "800")
      .define("rounds", "traceroute rounds per configuration", "2")
      .define_switch("ground-truth",
                     "use routing ground truth instead of the measured "
                     "pipeline")
      .define("fault-rate",
              "fault probability applied to every injection site "
              "(docs/faults.md)", "0")
      .define("fault-feed-outage",
              "collector outage probability (overrides fault-rate)", "")
      .define("fault-feed-stale",
              "stale feed snapshot probability (overrides fault-rate)", "")
      .define("fault-trace-loss",
              "traceroute loss probability (overrides fault-rate)", "")
      .define("fault-trace-truncate",
              "traceroute truncation probability (overrides fault-rate)", "")
      .define("fault-deploy",
              "per-attempt deployment failure probability (overrides "
              "fault-rate)", "")
      .define("fault-retries", "deployment retry budget", "2")
      .define("fault-seed", "fault schedule seed", "")
      .define("workers",
              "worker threads for measurement and the deploy pipeline "
              "(0 = auto; must agree with SPOOFTRACK_THREADS when both are "
              "set, see docs/cli.md)", "0")
      .define("pipeline",
              "deploy scheduling: on|off|auto (streaming overlap of "
              "propagation, measurement and analysis; docs/cli.md)", "auto")
      .define("pipeline-depth",
              "streaming backpressure: max propagated-but-unmeasured steps "
              "per chain", "2");
  return flags;
}

core::TestbedConfig testbed_config(const util::FlagSet& flags) {
  core::TestbedConfig config;
  config.seed = flags.get_u64("seed").value_or(42);
  config.stub_count = static_cast<std::uint32_t>(
      flags.get_u64("stubs").value_or(2500));
  config.transit_count = static_cast<std::uint32_t>(
      flags.get_u64("transit").value_or(150));
  config.tier1_count = static_cast<std::uint32_t>(
      flags.get_u64("tier1").value_or(8));
  config.probe_count = static_cast<std::uint32_t>(
      flags.get_u64("probes").value_or(800));
  config.traceroute_rounds = static_cast<std::uint32_t>(
      flags.get_u64("rounds").value_or(2));
  config.measured_catchments = !flags.get_switch("ground-truth");
  config.faults.set_all(flags.get_double("fault-rate").value_or(0.0));
  if (const auto v = flags.get_double("fault-feed-outage")) {
    config.faults.feed_outage_prob = *v;
  }
  if (const auto v = flags.get_double("fault-feed-stale")) {
    config.faults.feed_stale_prob = *v;
  }
  if (const auto v = flags.get_double("fault-trace-loss")) {
    config.faults.traceroute_loss_prob = *v;
  }
  if (const auto v = flags.get_double("fault-trace-truncate")) {
    config.faults.traceroute_truncate_prob = *v;
  }
  if (const auto v = flags.get_double("fault-deploy")) {
    config.faults.deploy_failure_prob = *v;
  }
  config.faults.deploy_retry_budget = static_cast<std::uint32_t>(
      flags.get_u64("fault-retries").value_or(2));
  config.faults.seed = flags.get_u64("fault-seed")
                           .value_or(config.faults.seed);
  // Worker-count precedence (docs/cli.md): an explicit --workers wins over
  // the resolved default, but a *conflicting* SPOOFTRACK_THREADS is a
  // configuration error, not a silent tie-break — scripted runs should not
  // discover at bench-diff time which of the two was honoured.
  const std::uint64_t workers = flags.get_u64("workers").value_or(0);
  if (workers > 0) {
    if (const auto env = util::env_worker_override(); env && *env != workers) {
      throw std::invalid_argument(
          "conflicting worker counts: --workers=" + std::to_string(workers) +
          " but SPOOFTRACK_THREADS=" + std::to_string(*env) +
          "; unset one or make them agree (docs/cli.md)");
    }
    config.measure_workers = static_cast<std::size_t>(workers);
  }
  const std::string pipeline = flags.get("pipeline");
  if (pipeline == "on") {
    config.pipeline = core::PipelineMode::kOn;
  } else if (pipeline == "off") {
    config.pipeline = core::PipelineMode::kOff;
  } else if (pipeline == "auto") {
    config.pipeline = core::PipelineMode::kAuto;
  } else {
    throw std::invalid_argument("--pipeline must be on, off or auto (got '" +
                                pipeline + "')");
  }
  config.pipeline_depth = static_cast<std::size_t>(
      flags.get_u64("pipeline-depth").value_or(2));
  return config;
}

int run_with_help(util::FlagSet& flags, const std::vector<std::string>& args,
                  const char* what) {
  for (const auto& arg : args) {
    if (arg == "--help") {
      std::cout << "flags for 'spooftrack " << what << "':\n"
                << flags.usage();
      return 0;
    }
  }
  if (!flags.parse(args)) {
    std::cerr << flags.error() << "\n" << flags.usage();
    return 2;
  }
  return -1;  // continue
}

// --- topo -----------------------------------------------------------------

int cmd_topo(const std::vector<std::string>& args) {
  util::FlagSet flags = testbed_flags();
  flags.define("out", "output path (default: stdout)", "");
  if (int rc = run_with_help(flags, args, "topo"); rc >= 0) return rc;

  const core::PeeringTestbed testbed(testbed_config(flags));
  const std::string out_path = flags.get("out");
  if (out_path.empty()) {
    topology::write_caida(testbed.graph(), std::cout);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot open " << out_path << "\n";
      return 1;
    }
    topology::write_caida(testbed.graph(), out);
    std::cerr << "wrote " << testbed.graph().size() << " ASes / "
              << testbed.graph().edge_count() << " edges to " << out_path
              << "\n";
  }
  return 0;
}

// --- plan -----------------------------------------------------------------

int cmd_plan(const std::vector<std::string>& args) {
  util::FlagSet flags = testbed_flags();
  flags.define("max-removals", "location phase: max withdrawn links", "3")
      .define("max-poison", "poisoning phase cap", "347")
      .define("max-communities", "community phase cap (0 = off)", "0");
  if (int rc = run_with_help(flags, args, "plan"); rc >= 0) return rc;

  const core::PeeringTestbed testbed(testbed_config(flags));
  core::GeneratorOptions gen;
  gen.max_removals = static_cast<std::uint32_t>(
      flags.get_u64("max-removals").value_or(3));
  gen.max_poison_configs = flags.get_u64("max-poison").value_or(347);
  gen.max_community_configs = flags.get_u64("max-communities").value_or(0);

  const auto plan = testbed.generator(gen).full_plan(testbed.graph());
  util::Table table({"#", "label", "links", "prepended", "poisoned",
                     "no-export"});
  for (std::size_t i = 0; i < plan.size(); ++i) {
    std::size_t prepended = 0, poisoned = 0, no_export = 0;
    for (const auto& spec : plan[i].announcements) {
      prepended += spec.prepend > 0;
      poisoned += spec.poisoned.size();
      no_export += spec.no_export_to.size();
    }
    table.add_row({std::to_string(i), plan[i].label,
                   std::to_string(plan[i].announcements.size()),
                   std::to_string(prepended), std::to_string(poisoned),
                   std::to_string(no_export)});
  }
  table.print_csv(std::cout);
  std::cerr << plan.size() << " configurations\n";
  return 0;
}

// --- deploy ----------------------------------------------------------------

int cmd_deploy(const std::vector<std::string>& args) {
  util::FlagSet flags = testbed_flags();
  flags.define("out", "artifact output path", "deployment.artifact")
      .define("max-removals", "location phase: max withdrawn links", "3")
      .define("max-poison", "poisoning phase cap", "347")
      .define_switch("audit", "collect Figure 9 compliance statistics")
      .define("journal",
              "crash-consistent campaign journal directory "
              "(docs/checkpointing.md)", "")
      .define("resume",
              "resume a journaled campaign from DIR: replay the journal, "
              "skip committed configurations (implies --journal=DIR)", "")
      .define("journal-segment-records",
              "journal records per segment before rotation", "128");
  if (int rc = run_with_help(flags, args, "deploy"); rc >= 0) return rc;

  core::TestbedConfig config = testbed_config(flags);
  config.audit_policies = flags.get_switch("audit");
  const std::string journal_dir = flags.get("journal");
  const std::string resume_dir = flags.get("resume");
  if (!resume_dir.empty()) {
    if (!journal_dir.empty() && journal_dir != resume_dir) {
      throw std::invalid_argument(
          "--journal and --resume must name the same directory");
    }
    config.journal.dir = resume_dir;
    config.journal.resume = true;
  } else {
    config.journal.dir = journal_dir;
  }
  config.journal.segment_records = static_cast<std::size_t>(
      flags.get_u64("journal-segment-records").value_or(128));
  const core::PeeringTestbed testbed(config);

  core::GeneratorOptions gen;
  gen.max_removals = static_cast<std::uint32_t>(
      flags.get_u64("max-removals").value_or(3));
  gen.max_poison_configs = flags.get_u64("max-poison").value_or(347);
  const core::ConfigGenerator generator = testbed.generator(gen);
  auto location = generator.location_phase();
  const auto prepends = generator.prepend_phase(location);
  const auto poisons = generator.poison_phase(testbed.graph());
  std::vector<bgp::Configuration> plan = location;
  plan.insert(plan.end(), prepends.begin(), prepends.end());
  plan.insert(plan.end(), poisons.begin(), poisons.end());
  const std::size_t location_end = location.size();
  const std::size_t prepend_end = location.size() + prepends.size();

  std::cerr << "deploying " << plan.size() << " configurations on "
            << testbed.graph().size() << " ASes...\n";
  const auto result = testbed.deploy(std::move(plan));
  if (result.resumed_configs > 0) {
    std::cerr << "resume: skipped " << result.resumed_configs
              << " journaled configurations (docs/checkpointing.md)\n";
  }
  std::size_t degraded = 0;
  std::size_t failed = 0;
  if (!result.quality.empty()) {
    for (const fault::ConfigQuality& q : result.quality) {
      degraded += q.grade == fault::Grade::kDegraded;
      failed += q.grade == fault::Grade::kFailed;
    }
    std::cerr << "fault plan active: " << degraded << " degraded, " << failed
              << " failed of " << result.quality.size()
              << " configurations (docs/faults.md)\n";
  }

  auto artifact = core::make_artifact(result, config.seed,
                                      testbed.graph().size(),
                                      testbed.origin().links.size());
  artifact.annotate("location_end", location_end);
  artifact.annotate("prepend_end", prepend_end);
  core::save_artifact_file(artifact, flags.get("out"));
  std::cerr << "sources: " << result.sources.size()
            << ", coverage: " << result.mean_coverage
            << " ASes/config; wrote " << flags.get("out") << "\n";
  // Exit-code contract (docs/cli.md): the artifact is written either way,
  // but scripted campaigns branch on measurement quality without parsing
  // stderr — 4 = abandoned configurations, 3 = degraded quorum.
  if (failed > 0) return 4;
  if (degraded > 0) return 3;
  return 0;
}

// --- clusters ----------------------------------------------------------------

int cmd_clusters(const std::vector<std::string>& args) {
  util::FlagSet flags;
  flags.define("in", "artifact path", "deployment.artifact")
      .define_switch("ccdf", "print the cluster-size CCDF")
      .define("greedy", "also print an N-step greedy schedule", "0");
  if (int rc = run_with_help(flags, args, "clusters"); rc >= 0) return rc;

  const auto artifact = core::load_artifact_file(flags.get("in"));
  const auto clustering = core::cluster_sources(artifact.matrix);
  const auto sizes = clustering.sizes();
  std::size_t singles = 0;
  std::uint32_t largest = 0;
  for (std::uint32_t s : sizes) {
    singles += s == 1;
    largest = std::max(largest, s);
  }

  util::Table table({"metric", "value"});
  table.add_row({"configurations", std::to_string(artifact.configs.size())});
  table.add_row({"sources", std::to_string(artifact.sources.size())});
  table.add_row({"clusters", std::to_string(clustering.cluster_count)});
  table.add_row({"mean cluster size",
                 util::fmt_double(clustering.mean_size(), 3)});
  table.add_row({"singleton clusters",
                 util::fmt_percent(clustering.cluster_count == 0
                                       ? 0.0
                                       : static_cast<double>(singles) /
                                             clustering.cluster_count)});
  table.add_row({"largest cluster", std::to_string(largest)});
  table.print(std::cout);

  if (flags.get_switch("ccdf")) {
    util::Histogram hist;
    for (std::uint32_t s : sizes) hist.add(s);
    util::Table ccdf({"size", "ccdf"});
    for (std::uint64_t x : hist.values()) {
      ccdf.add_row({std::to_string(x),
                    util::fmt_double(hist.complementary_at(x), 4)});
    }
    util::print_banner(std::cout, "cluster-size CCDF");
    ccdf.print(std::cout);
  }

  const auto greedy_steps = flags.get_u64("greedy").value_or(0);
  if (greedy_steps > 0) {
    const auto schedule = core::greedy_schedule(
        artifact.matrix, static_cast<std::size_t>(greedy_steps));
    util::print_banner(std::cout, "greedy schedule");
    util::Table greedy({"step", "config", "label", "mean cluster size"});
    for (std::size_t k = 0; k < schedule.order.size(); ++k) {
      greedy.add_row({std::to_string(k + 1),
                      std::to_string(schedule.order[k]),
                      artifact.configs[schedule.order[k]].label,
                      util::fmt_double(schedule.mean_cluster_size[k], 2)});
    }
    greedy.print(std::cout);
  }
  return 0;
}

// --- attack ----------------------------------------------------------------

int cmd_attack(const std::vector<std::string>& args) {
  util::FlagSet flags;
  flags.define("in", "artifact path", "deployment.artifact")
      .define("attackers", "number of attacking ASes", "2")
      .define("seed", "attacker placement seed", "7")
      .define("pps", "per-attacker packets per second", "100");
  if (int rc = run_with_help(flags, args, "attack"); rc >= 0) return rc;

  const auto artifact = core::load_artifact_file(flags.get("in"));
  if (artifact.matrix.empty()) {
    std::cerr << "artifact has no catchment matrix\n";
    return 1;
  }
  const auto clustering = core::cluster_sources(artifact.matrix);

  util::Rng rng{flags.get_u64("seed").value_or(7)};
  const auto attacker_count = flags.get_u64("attackers").value_or(2);
  std::vector<std::size_t> attackers;
  while (attackers.size() < attacker_count) {
    const auto pick = rng.next_below(artifact.sources.size());
    if (std::find(attackers.begin(), attackers.end(), pick) ==
        attackers.end()) {
      attackers.push_back(pick);
    }
  }

  // Observed per-link volumes per configuration (ideal sensor: volume
  // proportional to each attacker's rate). Rates are distinct — equal-rate
  // attackers are a degenerate tie where any trajectory alternating
  // between their links is indistinguishable from a real source.
  std::vector<std::vector<double>> volumes;
  for (const auto row : artifact.matrix) {
    std::vector<double> per_link(artifact.link_count, 0.0);
    for (std::size_t i = 0; i < attackers.size(); ++i) {
      const std::uint8_t link = row[attackers[i]];
      if (link != bgp::kNoCatchment8 && link < per_link.size()) {
        per_link[link] += static_cast<double>(i + 1);
      }
    }
    volumes.push_back(std::move(per_link));
  }

  const auto mixture =
      core::attribute_mixture(artifact.matrix, clustering, volumes);

  util::Table table({"component", "cluster", "ASes", "weight",
                     "contains attacker"});
  for (std::size_t rank = 0; rank < mixture.components.size(); ++rank) {
    const auto& component = mixture.components[rank];
    bool hit = false;
    for (std::size_t a : attackers) {
      hit |= clustering.cluster_of[a] == component.cluster;
    }
    table.add_row({std::to_string(rank + 1),
                   std::to_string(component.cluster),
                   std::to_string(clustering.sizes()[component.cluster]),
                   util::fmt_percent(component.weight), hit ? "YES" : "no"});
  }
  table.print(std::cout);
  std::cout << "unexplained volume: "
            << util::fmt_percent(mixture.residual_fraction) << "\n";
  return 0;
}

// --- predict ----------------------------------------------------------------

int cmd_predict(const std::vector<std::string>& args) {
  util::FlagSet flags;
  flags.define("in", "artifact path", "deployment.artifact")
      .define("holdout", "evaluate on every k-th configuration", "5");
  if (int rc = run_with_help(flags, args, "predict"); rc >= 0) return rc;

  const auto artifact = core::load_artifact_file(flags.get("in"));
  if (artifact.matrix.empty()) {
    std::cerr << "artifact has no catchment matrix\n";
    return 1;
  }
  const auto holdout = std::max<std::uint64_t>(
      2, flags.get_u64("holdout").value_or(5));

  core::CatchmentPredictor predictor(artifact.sources.size(),
                                     artifact.link_count);
  std::vector<std::size_t> evaluation;
  for (std::size_t i = 0; i < artifact.configs.size(); ++i) {
    if (i % holdout == holdout - 1) {
      evaluation.push_back(i);
    } else {
      predictor.observe(
          core::ConfigDescriptor::from(artifact.configs[i]),
          artifact.matrix[i]);
    }
  }

  util::Accumulator accuracy;
  for (std::size_t i : evaluation) {
    accuracy.add(predictor.accuracy(
        core::ConfigDescriptor::from(artifact.configs[i]),
        artifact.matrix[i]));
  }
  util::Table table({"metric", "value"});
  table.add_row({"training configurations",
                 std::to_string(artifact.configs.size() - evaluation.size())});
  table.add_row({"held-out configurations",
                 std::to_string(evaluation.size())});
  table.add_row({"mean per-config accuracy",
                 util::fmt_percent(accuracy.mean())});
  table.add_row({"worst held-out config",
                 util::fmt_percent(accuracy.min())});
  table.print(std::cout);
  std::cout << "\nHigh accuracy means future configurations can be chosen "
               "from predictions\ninstead of deployments (see "
               "bench/ablation_prediction).\n";
  return 0;
}

// --- report ----------------------------------------------------------------

int cmd_report(const std::vector<std::string>& args) {
  util::FlagSet flags;
  flags.define("in", "artifact path", "deployment.artifact")
      .define("out", "output path (default: stdout)", "")
      .define("runbook-steps", "greedy runbook length", "10")
      .define("tail-threshold", "cluster size counted as heavy tail", "5");
  if (int rc = run_with_help(flags, args, "report"); rc >= 0) return rc;

  const auto artifact = core::load_artifact_file(flags.get("in"));
  core::ReportOptions options;
  options.runbook_steps = flags.get_u64("runbook-steps").value_or(10);
  options.tail_threshold = static_cast<std::uint32_t>(
      flags.get_u64("tail-threshold").value_or(5));

  const std::string out_path = flags.get("out");
  if (out_path.empty()) {
    core::write_report(artifact, std::cout, options);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot open " << out_path << "\n";
      return 1;
    }
    core::write_report(artifact, out, options);
    std::cerr << "wrote " << out_path << "\n";
  }
  return 0;
}

// --- campaign ----------------------------------------------------------------

int cmd_campaign(const std::vector<std::string>& args) {
  util::FlagSet flags;
  flags.define("configs", "configurations to deploy", "705")
      .define("minutes", "dwell minutes per configuration", "70")
      .define("prefixes", "concurrent experiment prefixes", "1")
      .define("deadline-days", "report prefixes needed for deadline", "0");
  if (int rc = run_with_help(flags, args, "campaign"); rc >= 0) return rc;

  core::CampaignModel model;
  model.minutes_per_config =
      flags.get_double("minutes").value_or(70.0);
  model.concurrent_prefixes = static_cast<std::uint32_t>(
      flags.get_u64("prefixes").value_or(1));
  const auto configs = flags.get_u64("configs").value_or(705);

  std::cout << model.describe(configs) << "\n";
  std::cout << "schedule feasible: " << (model.feasible() ? "yes" : "NO")
            << "\n";
  const double deadline = flags.get_double("deadline-days").value_or(0.0);
  if (deadline > 0.0) {
    std::cout << "prefixes needed for " << deadline << " days: "
              << model.prefixes_for_deadline(configs, deadline) << "\n";
  }
  return 0;
}

}  // namespace

namespace {

int dispatch(const std::string& command, const std::vector<std::string>& args) {
  if (command == "topo") return cmd_topo(args);
  if (command == "plan") return cmd_plan(args);
  if (command == "deploy") return cmd_deploy(args);
  if (command == "clusters") return cmd_clusters(args);
  if (command == "attack") return cmd_attack(args);
  if (command == "predict") return cmd_predict(args);
  if (command == "report") return cmd_report(args);
  if (command == "campaign") return cmd_campaign(args);
  if (command == "--help" || command == "help") return usage(0);
  std::cerr << "unknown command: " << command << "\n";
  return usage(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(2);
  const std::string command = argv[1];

  // --obs-report is a global flag stripped before subcommand parsing so
  // every command accepts it uniformly.
  std::string obs_report;
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--obs-report=", 0) == 0) {
      obs_report = arg.substr(std::string("--obs-report=").size());
    } else {
      args.emplace_back(arg);
    }
  }

  int rc;
  try {
    rc = dispatch(command, args);
  } catch (const journal::JournalError& e) {
    // Corrupt journal or partial artifact on resume (docs/cli.md exit 5):
    // distinct from a generic failure so operators can tell "re-run with a
    // fresh journal" from "fix the invocation".
    std::cerr << "journal error: " << e.what() << "\n";
    return 5;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  // Degraded/failed campaigns (3/4) still produced an artifact — their
  // telemetry is exactly what an operator wants to inspect.
  if ((rc == 0 || rc == 3 || rc == 4) && !obs_report.empty()) {
    try {
      obs::RunReport::capture("spooftrack-" + command)
          .save_json_file(obs_report);
      std::cerr << "wrote obs report to " << obs_report << "\n";
    } catch (const std::exception& e) {
      std::cerr << "obs report failed: " << e.what() << "\n";
      return 1;
    }
  }
  return rc;
}
