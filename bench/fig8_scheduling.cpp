// Figure 8: localization speed. Deploying configurations in a random order
// (band over many random sequences) vs the greedy order that assumes
// catchments were measured beforehand and always picks the configuration
// minimising mean cluster size. Paper: after ten configurations, random
// yields mean clusters of 7.8 ASes vs 3.5 for the greedy order.
#include <iostream>

#include "common.hpp"
#include "core/scheduler.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace spooftrack;
  const auto options = bench::BenchOptions::parse(argc, argv);
  const auto dep = bench::run_standard(options);

  std::cerr << "[bench] " << options.sequences
            << " random sequences (paper used 30,000; use --sequences=N to "
               "scale) and greedy horizon "
            << options.greedy_steps << "\n";

  const auto ensemble = core::random_ensemble(
      dep.matrix, options.sequences, options.seed ^ 0xF18, 0);
  const auto greedy = core::greedy_schedule(dep.matrix, options.greedy_steps);

  util::print_banner(std::cout,
                     "Figure 8: mean cluster size vs announcement schedule");
  util::Table table({"configs", "random p25", "random median", "random p75",
                     "greedy"});
  for (std::size_t n : bench::log_samples(ensemble.p50.size(), {10})) {
    std::vector<std::string> row{
        std::to_string(n), util::fmt_double(ensemble.p25[n - 1], 2),
        util::fmt_double(ensemble.p50[n - 1], 2),
        util::fmt_double(ensemble.p75[n - 1], 2)};
    row.push_back(n <= greedy.mean_cluster_size.size()
                      ? util::fmt_double(greedy.mean_cluster_size[n - 1], 2)
                      : "-");
    table.add_row(row);
  }
  table.print(std::cout);

  if (ensemble.p50.size() >= 10 && greedy.mean_cluster_size.size() >= 10) {
    std::cout << "\nafter 10 configurations: random median = "
              << util::fmt_double(ensemble.p50[9], 2)
              << ", greedy = "
              << util::fmt_double(greedy.mean_cluster_size[9], 2)
              << " (paper: 7.8 vs 3.5 — greedy roughly halves the mean)\n";
  }
  return bench::finish(options, "fig8_scheduling");
}
