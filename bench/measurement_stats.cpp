// §IV measurement-pipeline statistics: coverage (paper: 1885 ASes) and the
// fraction of ASes observed in multiple catchments within a configuration
// (paper: 2.28% on average), plus visibility/imputation accounting.
#include <iostream>

#include "common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace spooftrack;
  auto options = bench::BenchOptions::parse(argc, argv);
  options.measured = true;  // this bench is about the measured pipeline
  const auto dep = bench::run_standard(options);

  util::print_banner(std::cout, "Measurement pipeline statistics (SIV)");
  util::Table table({"statistic", "value", "paper"});
  table.add_row({"topology size [ASes]", std::to_string(dep.as_count), "-"});
  table.add_row({"analysis sources (SIV-d baseline)",
                 std::to_string(dep.source_count()),
                 "1885 covered ASes"});
  table.add_row({"mean per-config coverage [ASes]",
                 util::fmt_double(dep.mean_coverage, 1), "-"});
  table.add_row({"coverage fraction of topology",
                 util::fmt_percent(dep.mean_coverage /
                                   static_cast<double>(dep.as_count)),
                 "-"});
  table.add_row({"mean multi-catchment fraction",
                 util::fmt_percent(dep.mean_multi_catchment), "2.28%"});
  table.print(std::cout);

  // Visibility: how many matrix cells needed s_max imputation or stayed
  // unresolved after it.
  std::size_t missing = 0;
  const std::size_t cells = dep.matrix.size_bytes();
  for (const auto row : dep.matrix) {
    for (std::uint8_t cell : row) missing += cell == bgp::kNoCatchment8;
  }
  util::print_banner(std::cout, "Visibility (SIV-d)");
  util::Table vis({"statistic", "value"});
  vis.add_row({"matrix cells (configs x sources)", std::to_string(cells)});
  vis.add_row({"unresolved after s_max imputation",
               util::fmt_percent(cells == 0 ? 0.0
                                            : static_cast<double>(missing) /
                                                  static_cast<double>(cells))});
  vis.print(std::cout);

  util::print_banner(std::cout, "Plan shape");
  util::Table plan({"phase", "configurations", "paper"});
  plan.add_row({"location", std::to_string(dep.location_end), "64"});
  plan.add_row({"prepending",
                std::to_string(dep.prepend_end - dep.location_end), "294"});
  plan.add_row({"poisoning",
                std::to_string(dep.configs.size() - dep.prepend_end), "347"});
  plan.add_row({"total", std::to_string(dep.configs.size()), "705"});
  plan.print(std::cout);
  return bench::finish(options, "measurement_stats");
}
