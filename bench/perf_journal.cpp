// Campaign-journal overhead: wall-clock comparison of a journal-off deploy
// against the same deploy committing a crash-consistent journal record per
// configuration (docs/checkpointing.md), plus the resume path replaying a
// completed journal and skipping every measurement.
//
// Every run is digested and the bench fails — exit nonzero, "equivalent":
// false — if journaling or resuming perturbs a single result: the journal's
// contract is crash consistency at zero semantic cost. The overhead target
// is <3% single-thread with fsync barriers off (the barriers are the
// dominant cost on real disks and are measured separately as
// journal_fsync_ms).
//
// Usage: perf_journal [--quick] [--stubs=N] [--seed=N] [--obs-report=PATH]
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/config_gen.hpp"
#include "core/experiment.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "util/fsio.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace spooftrack;

std::uint64_t digest(const core::DeploymentResult& result) {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  const auto mix = [&h](std::uint64_t v) { h = util::hash_combine(h, v); };
  for (const std::uint32_t rounds : result.engine_rounds) mix(rounds);
  for (const topology::AsId id : result.sources) mix(id);
  for (const std::uint32_t d : result.min_route_distance) mix(d);
  for (const auto& truth : result.truth) {
    for (const bgp::LinkId link : truth.link_of) mix(link);
  }
  const std::uint8_t* cells = result.matrix.data();
  for (std::size_t i = 0; i < result.matrix.size_bytes(); ++i) mix(cells[i]);
  for (const auto& inferred : result.measured) mix(inferred.covered_count);
  mix(static_cast<std::uint64_t>(result.mean_coverage * 1e6));
  mix(static_cast<std::uint64_t>(result.mean_multi_catchment * 1e9));
  return h;
}

struct Run {
  double ms = 0.0;
  std::uint64_t checksum = 0;
  std::uint64_t resumed = 0;
};

Run deploy_once(core::TestbedConfig config,
                const std::vector<bgp::Configuration>& plan) {
  config.measure_workers = 1;
  const core::PeeringTestbed testbed(config);
  const obs::Stopwatch watch;
  const auto result = testbed.deploy(plan);
  return {watch.elapsed_ms(), digest(result), result.resumed_configs};
}

Run best_of(int repeats, const core::TestbedConfig& config,
            const std::vector<bgp::Configuration>& plan) {
  Run best = deploy_once(config, plan);
  for (int i = 1; i < repeats; ++i) {
    const Run run = deploy_once(config, plan);
    best.ms = std::min(best.ms, run.ms);
    best.resumed = run.resumed;  // identical across repeats by contract
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::BenchOptions::parse(argc, argv);
  if (options.quick) {
    options.stubs = 400;
    options.transit = 60;
    options.probes = 150;
    options.rounds = 2;
  }
  // Percentage overhead on a ~10ms deploy needs best-of-N to be stable.
  const int repeats = options.quick ? 5 : 3;

  core::TestbedConfig config = options.testbed_config();

  const core::PeeringTestbed planner(config);
  auto plan = planner.generator().location_phase();
  const auto prepends = planner.generator().prepend_phase(plan);
  plan.insert(plan.end(), prepends.begin(), prepends.end());
  const std::size_t cap = options.quick ? 16 : 48;
  if (plan.size() > cap) plan.resize(cap);

  std::cerr << "[bench] " << plan.size() << " configurations, "
            << planner.graph().size() << " ASes\n";

  util::ensure_directory(options.cache_dir);
  const std::string journal_dir = options.cache_dir + "/perf_journal_wal";

  // Journal off: the reference for both results and wall-clock.
  const Run off = best_of(repeats, config, plan);

  // Journal on, fsync barriers off: the framing/CRC/commit-record cost the
  // <3% target covers. Each run starts fresh (the writer wipes the dir).
  core::TestbedConfig journaled = config;
  journaled.journal.dir = journal_dir;
  journaled.journal.fsync = false;
  const Run on = best_of(repeats, journaled, plan);

  // Journal on with real fsync barriers: the durability price on this disk.
  // Small segments here so the measured worst case includes atomic
  // rotations (and the resume below replays a multi-segment journal).
  core::TestbedConfig durable = journaled;
  durable.journal.fsync = true;
  durable.journal.segment_records = 5;
  const Run synced = best_of(repeats, durable, plan);

  // Resume of the complete journal left by the last durable run: replay,
  // verify every digest, skip every measurement, re-seed the warm chains.
  core::TestbedConfig resumed = durable;
  resumed.journal.resume = true;
  const Run resume = deploy_once(resumed, plan);

  const bool equivalent = on.checksum == off.checksum &&
                          synced.checksum == off.checksum &&
                          resume.checksum == off.checksum &&
                          resume.resumed == plan.size();
  const double overhead_pct =
      off.ms > 0.0 ? (on.ms - off.ms) / off.ms * 100.0 : 0.0;
  const double fsync_pct =
      off.ms > 0.0 ? (synced.ms - off.ms) / off.ms * 100.0 : 0.0;

  std::cout << "{\n"
            << "  \"bench\": \"perf_journal\",\n"
            << "  \"configs\": " << plan.size() << ",\n"
            << "  \"as_count\": " << planner.graph().size() << ",\n"
            << "  \"journal_off_ms\": " << util::fmt_double(off.ms, 2) << ",\n"
            << "  \"journal_on_ms\": " << util::fmt_double(on.ms, 2) << ",\n"
            << "  \"journal_fsync_ms\": " << util::fmt_double(synced.ms, 2)
            << ",\n"
            << "  \"resume_ms\": " << util::fmt_double(resume.ms, 2) << ",\n"
            << "  \"resumed_configs\": " << resume.resumed << ",\n"
            << "  \"overhead_pct\": " << util::fmt_double(overhead_pct, 2)
            << ",\n"
            << "  \"overhead_target_pct\": 3.0,\n"
            << "  \"fsync_overhead_pct\": " << util::fmt_double(fsync_pct, 2)
            << ",\n"
            << "  \"equivalent\": " << (equivalent ? "true" : "false") << "\n"
            << "}\n";

  const int rc = bench::finish(options, "perf_journal", [&](auto& report) {
    report.value("configs", static_cast<double>(plan.size()))
        .value("as_count", static_cast<double>(planner.graph().size()))
        .value("journal_off_ms", off.ms)
        .value("journal_on_ms", on.ms)
        .value("journal_fsync_ms", synced.ms)
        .value("resume_ms", resume.ms)
        .value("resumed_configs", static_cast<double>(resume.resumed))
        .value("overhead_pct", overhead_pct)
        .value("overhead_target_pct", 3.0)
        .value("fsync_overhead_pct", fsync_pct)
        .label("equivalent", equivalent ? "true" : "false");
  });

  if (!equivalent) {
    std::cerr << "FAIL: journaled or resumed deployment diverged from the "
                 "journal-off reference\n";
    return 1;
  }
  return rc;
}
