// Figure 6: CCDF of final cluster sizes for 7/6/5-location footprints (the
// end state of Figure 5's curves). The paper reports the tail fractions of
// clusters larger than 25 ASes: 0.1% (all locations), 1.27% (six), 4.29%
// (five) — fewer locations leave bigger unresolved clusters.
#include <algorithm>
#include <bit>
#include <iostream>

#include "common.hpp"
#include "core/cluster.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using spooftrack::bench::ConfigMeta;
using spooftrack::bench::Phase;

std::vector<std::size_t> subset_rows(const std::vector<ConfigMeta>& configs,
                                     std::uint32_t link_mask,
                                     std::uint32_t max_removals) {
  const auto total = static_cast<std::uint32_t>(std::popcount(link_mask));
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const ConfigMeta& meta = configs[i];
    if (meta.phase == Phase::kPoison) continue;
    if ((meta.active_mask & ~link_mask) != 0) continue;
    const auto active =
        static_cast<std::uint32_t>(std::popcount(meta.active_mask));
    if (active + max_removals < total) continue;
    rows.push_back(i);
  }
  return rows;
}

std::vector<std::uint32_t> final_sizes(
    const spooftrack::measure::CatchmentStore& matrix,
    const std::vector<std::size_t>& rows) {
  spooftrack::core::ClusterTracker tracker(matrix.sources());
  for (std::size_t row : rows) tracker.refine(matrix.row(row));
  return tracker.current().sizes();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spooftrack;
  const auto options = bench::BenchOptions::parse(argc, argv);
  const auto dep = bench::run_standard(options);
  const auto links = static_cast<std::uint32_t>(dep.link_count);
  const std::uint32_t full_mask = (1u << links) - 1;

  // All locations.
  std::vector<std::size_t> all_rows(dep.prepend_end);
  for (std::size_t i = 0; i < dep.prepend_end; ++i) all_rows[i] = i;
  const auto all_sizes = final_sizes(dep.matrix, all_rows);

  // Aggregated cluster sizes across every footprint subset (the paper
  // draws a line per scenario with a min/max band; we aggregate all
  // subsets into a single empirical distribution per scenario and report
  // the tail range separately).
  auto scenario_sizes = [&](std::uint32_t discard, std::uint32_t removals,
                            std::vector<double>& tail_fractions) {
    std::vector<std::uint32_t> sizes;
    for (std::uint32_t mask = 0; mask <= full_mask; ++mask) {
      if (std::popcount(mask) != static_cast<int>(links - discard)) continue;
      const auto subset = final_sizes(
          dep.matrix, subset_rows(dep.configs, mask, removals));
      std::size_t over25 = 0;
      for (std::uint32_t s : subset) over25 += s > 25;
      tail_fractions.push_back(static_cast<double>(over25) /
                               static_cast<double>(subset.size()));
      sizes.insert(sizes.end(), subset.begin(), subset.end());
    }
    return sizes;
  };
  std::vector<double> six_tail, five_tail;
  const auto six_sizes = scenario_sizes(1, 2, six_tail);
  const auto five_sizes = scenario_sizes(2, 1, five_tail);

  util::print_banner(std::cout,
                     "Figure 6: CCDF of final cluster sizes by footprint");

  auto hist_of = [](const std::vector<std::uint32_t>& sizes) {
    util::Histogram h;
    for (std::uint32_t s : sizes) h.add(s);
    return h;
  };
  const auto all_hist = hist_of(all_sizes);
  const auto six_hist = hist_of(six_sizes);
  const auto five_hist = hist_of(five_sizes);

  std::vector<std::uint64_t> xs;
  for (const auto* h : {&all_hist, &six_hist, &five_hist}) {
    const auto values = h->values();
    xs.insert(xs.end(), values.begin(), values.end());
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  util::Table table({"size", "ccdf(all)", "ccdf(six)", "ccdf(five)"});
  for (std::uint64_t x : xs) {
    table.add_row({std::to_string(x),
                   util::fmt_double(all_hist.complementary_at(x), 4),
                   util::fmt_double(six_hist.complementary_at(x), 4),
                   util::fmt_double(five_hist.complementary_at(x), 4)});
  }
  table.print(std::cout);

  util::print_banner(std::cout, "Tail: clusters with more than 25 ASes");
  std::size_t all_over = 0;
  for (std::uint32_t s : all_sizes) all_over += s > 25;
  util::Table tail({"scenario", "fraction >25 ASes (mean over subsets)",
                    "paper"});
  tail.add_row({"all locations",
                util::fmt_percent(static_cast<double>(all_over) /
                                  static_cast<double>(all_sizes.size())),
                "0.10%"});
  tail.add_row({"six locations", util::fmt_percent(util::mean(six_tail)),
                "1.27%"});
  tail.add_row({"five locations", util::fmt_percent(util::mean(five_tail)),
                "4.29%"});
  tail.print(std::cout);
  return bench::finish(options, "fig6_footprint_ccdf");
}
