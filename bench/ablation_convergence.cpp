// Ablation: convergence-time budget (§IV-a).
//
// The paper dwells 70 minutes per configuration, citing that convergence
// "takes less than 2.5 minutes 99% of the time". We replay the whole
// 705-configuration plan through the routing engine, convert each
// configuration's update ripple into seconds with per-AS MRAI pacing, and
// check where the 99th percentile lands relative to that budget — and how
// much dwell time the budget actually consumes.
#include <iostream>

#include "common.hpp"
#include "core/campaign.hpp"
#include "core/config_gen.hpp"
#include "core/experiment.hpp"
#include "measure/convergence.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace spooftrack;
  const auto options = bench::BenchOptions::parse(argc, argv);

  core::TestbedConfig config = options.testbed_config();
  config.measured_catchments = false;
  const core::PeeringTestbed testbed(config);
  const auto plan = testbed.generator().full_plan(testbed.graph());

  measure::ConvergenceOptions conv_options;
  conv_options.seed = options.seed ^ 0xC0;
  const measure::ConvergenceModel model(conv_options);

  std::vector<double> settle_seconds;
  std::vector<double> rounds;
  std::size_t within_budget = 0;
  settle_seconds.reserve(plan.size());
  for (const auto& configuration : plan) {
    const auto outcome = testbed.route(configuration);
    const double seconds = model.settle_seconds(outcome);
    settle_seconds.push_back(seconds);
    rounds.push_back(static_cast<double>(outcome.rounds));
    within_budget += seconds <= 150.0;  // the paper's 2.5 minutes
  }

  util::print_banner(std::cout,
                     "Convergence time across the " +
                         std::to_string(plan.size()) +
                         "-configuration plan (MRAI mean " +
                         util::fmt_double(conv_options.mrai_seconds, 0) +
                         " s)");
  util::Table table({"metric", "value", "paper"});
  table.add_row({"median settle time [s]",
                 util::fmt_double(util::percentile(settle_seconds, 50), 1),
                 "-"});
  table.add_row({"p99 settle time [s]",
                 util::fmt_double(util::percentile(settle_seconds, 99), 1),
                 "< 150 s for 99% of changes"});
  table.add_row({"max settle time [s]",
                 util::fmt_double(util::percentile(settle_seconds, 100), 1),
                 "-"});
  table.add_row({"configs converged within 2.5 min",
                 util::fmt_percent(static_cast<double>(within_budget) /
                                   static_cast<double>(plan.size())),
                 "99%"});
  table.add_row({"median engine rounds",
                 util::fmt_double(util::percentile(rounds, 50), 0), "-"});
  table.add_row({"max engine rounds",
                 util::fmt_double(util::percentile(rounds, 100), 0), "-"});
  table.print(std::cout);

  // Does the paper's dwell schedule hold up against these settle times?
  const core::CampaignModel campaign;
  const double measurement_window =
      campaign.minutes_per_config * 60.0 - util::percentile(settle_seconds, 100);
  std::cout << "\nworst-case settle leaves "
            << util::fmt_double(measurement_window / 60.0, 1)
            << " min of the 70-min dwell for measurement (needs "
            << util::fmt_double(campaign.traceroute_rounds *
                                    campaign.traceroute_cadence_minutes,
                                0)
            << " min for " << campaign.traceroute_rounds
            << " traceroute rounds) -> "
            << (measurement_window / 60.0 >=
                        campaign.traceroute_rounds *
                            campaign.traceroute_cadence_minutes
                    ? "schedule holds"
                    : "schedule WOULD BE violated")
            << "\n";
  return bench::finish(options, "ablation_convergence");
}
