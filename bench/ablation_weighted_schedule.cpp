// Ablation: volume-weighted greedy scheduling (§VIII future work (i):
// "jointly optimizing for cluster size and traffic volume, giving higher
// utility to reducing the size of clusters inferred to send more spoofed
// traffic").
//
// A Pareto-placed spoofer population emits traffic; we compare the plain
// greedy schedule of Figure 8 (minimise mean cluster size) against the
// weighted greedy schedule (minimise the volume-weighted expected cluster
// size) on two metrics: the weighted objective over time, and how small
// the heaviest spoofers' clusters get per configuration spent.
#include <algorithm>
#include <iostream>

#include "common.hpp"
#include "core/cluster.hpp"
#include "core/scheduler.hpp"
#include "traffic/placement.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using spooftrack::measure::CatchmentStore;

/// Weighted objective of a deployment order, step by step.
std::vector<double> weighted_trajectory(
    const CatchmentStore& matrix, const std::vector<std::size_t>& order,
    const std::vector<double>& volume, std::size_t steps) {
  spooftrack::core::ClusterTracker tracker(matrix.sources());
  double total = 0.0;
  for (double v : volume) total += v;
  std::vector<double> out;
  for (std::size_t k = 0; k < steps && k < order.size(); ++k) {
    tracker.refine(matrix.row(order[k]));
    const auto sizes = tracker.current().sizes();
    double objective = 0.0;
    for (std::size_t s = 0; s < volume.size(); ++s) {
      objective +=
          volume[s] * sizes[tracker.current().cluster_of[s]] / total;
    }
    out.push_back(objective);
  }
  return out;
}

/// Mean cluster size of the `top` heaviest sources after `k` steps.
double heavy_cluster_size(const CatchmentStore& matrix,
                          const std::vector<std::size_t>& order,
                          const std::vector<double>& volume, std::size_t top,
                          std::size_t k) {
  std::vector<std::size_t> heavy(volume.size());
  for (std::size_t i = 0; i < heavy.size(); ++i) heavy[i] = i;
  std::partial_sort(heavy.begin(), heavy.begin() + static_cast<long>(top),
                    heavy.end(), [&](std::size_t a, std::size_t b) {
                      return volume[a] > volume[b];
                    });
  heavy.resize(top);

  spooftrack::core::ClusterTracker tracker(matrix.sources());
  for (std::size_t step = 0; step < k && step < order.size(); ++step) {
    tracker.refine(matrix.row(order[step]));
  }
  const auto sizes = tracker.current().sizes();
  double total = 0.0;
  for (std::size_t s : heavy) {
    total += sizes[tracker.current().cluster_of[s]];
  }
  return total / static_cast<double>(top);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spooftrack;
  const auto options = bench::BenchOptions::parse(argc, argv);
  const auto dep = bench::run_standard(options);

  util::Rng rng{options.seed ^ 0x3E1};
  const auto placement = traffic::generate_placement(
      traffic::PlacementKind::kPareto8020, dep.source_count(), rng);

  const std::size_t horizon = options.greedy_steps;
  const auto plain = core::greedy_schedule(dep.matrix, horizon);
  const auto weighted =
      core::weighted_greedy_schedule(dep.matrix, placement.volume, horizon);

  const auto plain_obj =
      weighted_trajectory(dep.matrix, plain.order, placement.volume, horizon);

  util::print_banner(std::cout,
                     "Volume-weighted expected cluster size vs schedule");
  util::Table table({"configs", "plain greedy", "volume-weighted greedy"});
  for (std::size_t n : bench::log_samples(horizon, {10})) {
    table.add_row({std::to_string(n), util::fmt_double(plain_obj[n - 1], 2),
                   util::fmt_double(weighted.mean_cluster_size[n - 1], 2)});
  }
  table.print(std::cout);

  util::print_banner(std::cout,
                     "Mean cluster size of the top-10 heaviest spoofers");
  util::Table heavy({"after configs", "plain greedy",
                     "volume-weighted greedy"});
  for (std::size_t k : {5u, 10u, 20u, 40u}) {
    heavy.add_row(
        {std::to_string(k),
         util::fmt_double(heavy_cluster_size(dep.matrix, plain.order,
                                             placement.volume, 10, k),
                          2),
         util::fmt_double(heavy_cluster_size(dep.matrix, weighted.order,
                                             placement.volume, 10, k),
                          2)});
  }
  heavy.print(std::cout);

  std::cout << "\nReading: weighting the objective by attributed volume "
               "spends early announcements\non the clusters carrying the "
               "most spoofed traffic. Some heavy sources sit in\n"
               "structurally captive clusters no announcement can split "
               "(the Figure 3 tail),\nso the weighted advantage is in the "
               "objective, not full isolation.\n";
  return bench::finish(options, "ablation_weighted_schedule");
}
