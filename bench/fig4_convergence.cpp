// Figure 4: mean and 90th-percentile cluster size as a function of the
// number of deployed configurations, with the three phase boundaries
// marked. The paper observes diminishing returns but continued catchment
// changes even after hundreds of configurations, with small drops right
// after each phase switch (new techniques induce new route changes).
#include <iostream>

#include "common.hpp"
#include "core/cluster.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace spooftrack;
  const auto options = bench::BenchOptions::parse(argc, argv);
  const auto dep = bench::run_standard(options);

  core::ClusterTracker tracker(dep.source_count());
  std::vector<double> mean_size(dep.matrix.size());
  std::vector<double> p90_size(dep.matrix.size());
  for (std::size_t i = 0; i < dep.matrix.size(); ++i) {
    tracker.refine(dep.matrix[i]);
    mean_size[i] = tracker.mean_cluster_size();
    p90_size[i] = util::percentile_u32(tracker.current().sizes(), 90.0);
  }

  util::print_banner(std::cout,
                     "Figure 4: cluster sizes vs number of configurations");
  std::cout << "phase boundaries: locations end at " << dep.location_end
            << ", prepending at " << dep.prepend_end << ", poisoning at "
            << dep.matrix.size() << "\n";

  const auto samples = bench::log_samples(
      dep.matrix.size(), {dep.location_end, dep.prepend_end});
  util::Table table({"configs", "mean cluster size", "p90 cluster size",
                     "phase"});
  for (std::size_t n : samples) {
    const char* phase = n <= dep.location_end  ? "location"
                        : n <= dep.prepend_end ? "prepending"
                                               : "poisoning";
    table.add_row({std::to_string(n), util::fmt_double(mean_size[n - 1], 3),
                   util::fmt_double(p90_size[n - 1], 1), phase});
  }
  table.print(std::cout);

  // Paper comparison point: the curve keeps dropping after each boundary.
  const double at_loc = mean_size[dep.location_end - 1];
  const double at_prep = mean_size[dep.prepend_end - 1];
  const double at_end = mean_size.back();
  std::cout << "\nmean cluster size: " << util::fmt_double(at_loc, 2)
            << " after locations -> " << util::fmt_double(at_prep, 2)
            << " after prepending -> " << util::fmt_double(at_end, 2)
            << " after poisoning (paper: monotone decrease to 1.40)\n";
  return bench::finish(options, "fig4_convergence");
}
