// Ablation: BGP-community steering vs BGP poisoning (§VIII future work).
//
// Both phases try to move the same first-hop traffic (neighbors of the
// origin's providers). Poisoning is defeated by ASes that disable loop
// prevention and by tier-1 route-leak filters; a no-export community
// honoured by the direct provider has neither failure mode. This ablation
// deploys the same number of steering configurations with each technique
// on identical baselines and compares how many targets actually moved and
// what that does to cluster sizes.
#include <iostream>

#include "common.hpp"
#include "core/cluster.hpp"
#include "core/config_gen.hpp"
#include "core/experiment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace spooftrack;
  const auto options = bench::BenchOptions::parse(argc, argv);

  core::TestbedConfig config = options.testbed_config();
  config.measured_catchments = false;  // ground truth isolates the steering
  // Make poisoning's failure modes visible.
  config.policy.ignore_poison_fraction = 0.10;
  const core::PeeringTestbed testbed(config);

  core::GeneratorOptions gen;
  gen.max_poison_configs = 120;
  gen.max_community_configs = 120;
  const core::ConfigGenerator generator = testbed.generator(gen);

  auto baseline = generator.location_phase();
  const auto prepends = generator.prepend_phase(baseline);
  baseline.insert(baseline.end(), prepends.begin(), prepends.end());

  const auto base_result = testbed.deploy(baseline);
  core::ClusterTracker base_tracker(base_result.sources.size());
  for (const auto& row : base_result.matrix) base_tracker.refine(row);

  auto evaluate = [&](std::vector<bgp::Configuration> steering,
                      const char* what) {
    // How many targets moved off the steered link, and what clusters look
    // like after adding the steering phase to the baseline.
    const auto result = testbed.deploy(std::move(steering));
    core::ClusterTracker tracker(base_result.sources.size());
    for (const auto& row : base_result.matrix) tracker.refine(row);
    std::size_t moved = 0, total = 0;
    for (std::size_t i = 0; i < result.configs.size(); ++i) {
      // Identify the steered target and link of this configuration.
      topology::Asn target = 0;
      bgp::LinkId link = bgp::kNoCatchment;
      for (const auto& spec : result.configs[i].announcements) {
        if (!spec.poisoned.empty()) {
          target = spec.poisoned.front();
          link = spec.link;
        }
        if (!spec.no_export_to.empty()) {
          target = spec.no_export_to.front();
          link = spec.link;
        }
      }
      if (const auto id = testbed.graph().id_of(target)) {
        ++total;
        moved += result.truth[i].link_of[*id] != link &&
                 result.truth[i].link_of[*id] != bgp::kNoCatchment;
      }
      // Refine the baseline partition with the steering row.
      std::vector<bgp::LinkId> row(base_result.sources.size());
      for (std::size_t s = 0; s < base_result.sources.size(); ++s) {
        row[s] = result.truth[i].link_of[base_result.sources[s]];
      }
      tracker.refine(row);
    }
    util::Table table({"metric", "value"});
    table.add_row({"steering configurations", std::to_string(total)});
    table.add_row({"targets moved off the steered link",
                   std::to_string(moved) + " (" +
                       util::fmt_percent(total == 0
                                             ? 0.0
                                             : static_cast<double>(moved) /
                                                   static_cast<double>(total)) +
                       ")"});
    table.add_row({"clusters after baseline+steering",
                   std::to_string(tracker.cluster_count())});
    table.add_row({"mean cluster size",
                   util::fmt_double(tracker.mean_cluster_size(), 3)});
    util::print_banner(std::cout, what);
    table.print(std::cout);
    return tracker.cluster_count();
  };

  util::print_banner(std::cout, "Baseline (location + prepending)");
  util::Table base({"metric", "value"});
  base.add_row({"configurations", std::to_string(baseline.size())});
  base.add_row({"clusters", std::to_string(base_tracker.cluster_count())});
  base.add_row({"mean cluster size",
                util::fmt_double(base_tracker.mean_cluster_size(), 3)});
  base.print(std::cout);

  const auto poison_clusters =
      evaluate(generator.poison_phase(testbed.graph()),
               "Steering by BGP poisoning (10% of ASes ignore poison)");
  const auto community_clusters = evaluate(
      generator.community_phase(testbed.graph()),
      "Steering by no-export communities");

  std::cout
      << "\ncommunities vs poisoning: " << community_clusters << " vs "
      << poison_clusters
      << " clusters.\nReading: poisoning blocks the target from using ANY "
         "copy of the announcement\n(it rejects its own ASN wherever the "
         "route arrives — and even loop-prevention\nexemptions often move "
         "anyway because the sandwich lengthens the path), while\na "
         "no-export community severs exactly the provider-target edge. "
         "Severing one\nedge reroutes the ASes behind it more diversely, "
         "which is why the community\nphase tends to refine clusters "
         "harder per configuration.\n";
  return bench::finish(options, "ablation_communities");
}
