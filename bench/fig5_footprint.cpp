// Figure 5: mean cluster size vs number of configurations when the origin
// has fewer peering locations. Footprints of 6 (5) locations replay the
// subset of location+prepending configurations a 6-location (5-location)
// network could deploy: 118 (31) configurations, with a min/max band over
// all ways of discarding one (two) of the seven PoPs.
//
// Paper: more locations allow more configurations AND give smaller
// clusters at equal configuration counts.
#include <bit>
#include <iostream>

#include "common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using spooftrack::bench::ConfigMeta;
using spooftrack::bench::Phase;

/// Rows (in deployment order) a network owning exactly the links in
/// `link_mask` could deploy, with at most `max_removals` withdrawn links.
std::vector<std::size_t> subset_rows(const std::vector<ConfigMeta>& configs,
                                     std::uint32_t link_mask,
                                     std::uint32_t max_removals) {
  const auto total = static_cast<std::uint32_t>(std::popcount(link_mask));
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const ConfigMeta& meta = configs[i];
    if (meta.phase == Phase::kPoison) continue;
    if ((meta.active_mask & ~link_mask) != 0) continue;
    const auto active =
        static_cast<std::uint32_t>(std::popcount(meta.active_mask));
    if (active + max_removals < total) continue;
    rows.push_back(i);
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spooftrack;
  const auto options = bench::BenchOptions::parse(argc, argv);
  const auto dep = bench::run_standard(options);
  const auto links = static_cast<std::uint32_t>(dep.link_count);
  const std::uint32_t full_mask = (1u << links) - 1;

  // All locations: the full location+prepending plan.
  std::vector<std::size_t> all_rows(dep.prepend_end);
  for (std::size_t i = 0; i < dep.prepend_end; ++i) all_rows[i] = i;
  const auto all_traj = bench::trajectory(dep.matrix, all_rows);

  // Helper: trajectories across every footprint obtained by discarding
  // `discard` links, with max_removals scaled down accordingly.
  auto band = [&](std::uint32_t discard, std::uint32_t max_removals) {
    std::vector<std::vector<double>> trajectories;
    for (std::uint32_t mask = 0; mask <= full_mask; ++mask) {
      if (std::popcount(mask) != static_cast<int>(links - discard)) continue;
      const auto rows = subset_rows(dep.configs, mask, max_removals);
      trajectories.push_back(bench::trajectory(dep.matrix, rows));
    }
    return trajectories;
  };
  const auto six = band(1, 2);   // paper: 118 configurations
  const auto five = band(2, 1);  // paper: 31 configurations

  util::print_banner(std::cout,
                     "Figure 5: mean cluster size vs configurations, by "
                     "peering footprint");
  std::cout << "all locations: " << all_traj.size()
            << " configs (paper 358); six locations: " << six[0].size()
            << " (paper 118) x" << six.size()
            << " subsets; five locations: " << five[0].size()
            << " (paper 31) x" << five.size() << " subsets\n";

  auto stats_at = [](const std::vector<std::vector<double>>& trajs,
                     std::size_t step) {
    util::Accumulator acc;
    for (const auto& t : trajs) {
      if (step < t.size()) acc.add(t[step]);
    }
    return acc;
  };

  util::Table table({"configs", "all locations", "six (mean)", "six (min)",
                     "six (max)", "five (mean)", "five (min)", "five (max)"});
  for (std::size_t n : bench::log_samples(all_traj.size())) {
    std::vector<std::string> row{std::to_string(n)};
    row.push_back(util::fmt_double(all_traj[n - 1], 2));
    for (const auto* trajs : {&six, &five}) {
      const auto acc = stats_at(*trajs, n - 1);
      if (acc.count() == 0) {
        row.insert(row.end(), {"-", "-", "-"});
      } else {
        row.push_back(util::fmt_double(acc.mean(), 2));
        row.push_back(util::fmt_double(acc.min(), 2));
        row.push_back(util::fmt_double(acc.max(), 2));
      }
    }
    table.add_row(row);
  }
  table.print(std::cout);

  std::cout << "\nfinal mean cluster sizes: all="
            << util::fmt_double(all_traj.back(), 2)
            << " six=" << util::fmt_double(stats_at(six, six[0].size() - 1).mean(), 2)
            << " five=" << util::fmt_double(stats_at(five, five[0].size() - 1).mean(), 2)
            << " (paper: larger footprint -> smaller clusters)\n";
  return bench::finish(options, "fig5_footprint");
}
