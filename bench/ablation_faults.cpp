// Ablation: fault-rate sweep (docs/faults.md).
//
// Sweeps the measurement-plane fault rate through the deterministic
// injector and reports how the analysis endpoint — final mean cluster
// size — degrades, alongside coverage and the per-config quality grades.
// Rate 0 must reproduce the clean deployment exactly (the fault layer is a
// provable no-op when disabled); the monotone-subset draw property makes
// the sweep compare like with like under a single seed.
#include <iostream>
#include <vector>

#include "common.hpp"
#include "core/cluster.hpp"
#include "core/config_gen.hpp"
#include "core/experiment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace spooftrack;
  const auto options = bench::BenchOptions::parse(argc, argv);

  core::TestbedConfig base = options.testbed_config();
  base.audit_policies = false;
  if (options.quick) {
    base.tier1_count = 4;
    base.transit_count = 24;
    base.stub_count = 200;
    base.probe_count = 80;
    base.feed.peer_count = 40;
  }

  const double rates[] = {0.0, 0.01, 0.02, 0.05, 0.1, 0.2};

  struct Point {
    double rate = 0.0;
    double mean_cluster = 0.0;
    std::size_t clusters = 0;
    std::size_t sources = 0;
    double coverage = 0.0;
    std::size_t degraded = 0;
    std::size_t failed = 0;
  };
  std::vector<Point> sweep;

  for (const double rate : rates) {
    core::TestbedConfig config = base;
    config.faults.set_all(rate);
    const core::PeeringTestbed testbed(config);
    auto plan = testbed.generator().location_phase();
    if (options.quick && plan.size() > 12) plan.resize(12);

    const auto result = testbed.deploy(std::move(plan));
    const auto clustering = core::cluster_sources(result.matrix);

    Point point;
    point.rate = rate;
    point.mean_cluster = clustering.mean_size();
    point.clusters = clustering.cluster_count;
    point.sources = result.sources.size();
    point.coverage = result.mean_coverage;
    for (const fault::ConfigQuality& q : result.quality) {
      point.degraded += q.grade == fault::Grade::kDegraded;
      point.failed += q.grade == fault::Grade::kFailed;
    }
    sweep.push_back(point);
  }

  util::print_banner(std::cout,
                     "Fault-rate sweep: cluster quality under injected "
                     "measurement faults");
  util::Table table({"fault rate", "sources", "clusters",
                     "mean cluster size", "coverage [AS/config]", "degraded",
                     "failed"});
  for (const Point& p : sweep) {
    table.add_row({util::fmt_double(p.rate, 2), std::to_string(p.sources),
                   std::to_string(p.clusters),
                   util::fmt_double(p.mean_cluster, 3),
                   util::fmt_double(p.coverage, 1),
                   std::to_string(p.degraded), std::to_string(p.failed)});
  }
  table.print(std::cout);

  std::cout << "\nLarger mean clusters at higher rates = lost measurements "
               "merging sources\nthat a clean deployment separates "
               "(docs/faults.md has the degradation\nsemantics per "
               "injection site).\n";

  return bench::finish(options, "ablation_faults", [&](obs::RunReport& report) {
    for (const Point& p : sweep) {
      const std::string prefix =
          "rate_" + util::fmt_double(p.rate, 2);
      report.value(prefix + ".mean_cluster_size", p.mean_cluster);
      report.value(prefix + ".coverage", p.coverage);
      report.value(prefix + ".degraded",
                   static_cast<double>(p.degraded));
      report.value(prefix + ".failed", static_cast<double>(p.failed));
    }
  });
}
