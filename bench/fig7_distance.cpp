// Figure 7: cluster size as a function of AS-hop distance between sources
// and the origin's PoPs. The paper finds ASes 1-2 hops away land in
// clusters of 1.85 ASes on average vs 2.64 for ASes 3+ hops away — nearby
// sources are easier to isolate, and the largest clusters sit far away.
#include <iostream>

#include "common.hpp"
#include "core/cluster.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace spooftrack;
  const auto options = bench::BenchOptions::parse(argc, argv);
  const auto dep = bench::run_standard(options);

  // Final clustering over all configurations.
  const auto clustering = core::cluster_sources(dep.matrix);
  const auto sizes = clustering.sizes();

  // Distance buckets: 1, 2, 3, 4+ AS-hops (distance = min observed
  // AS-path hops to the origin, so a link provider is at distance 1).
  constexpr std::size_t kBuckets = 4;
  auto bucket_of = [](std::uint32_t distance) -> std::size_t {
    if (distance <= 1) return 0;
    if (distance == 2) return 1;
    if (distance == 3) return 2;
    return 3;
  };
  const char* bucket_names[kBuckets] = {"1 hop", "2 hops", "3 hops",
                                        "4+ hops"};

  std::vector<std::vector<std::uint32_t>> per_bucket(kBuckets);
  for (std::size_t s = 0; s < dep.source_count(); ++s) {
    const std::uint32_t cluster_size = sizes[clustering.cluster_of[s]];
    per_bucket[bucket_of(dep.source_distance[s])].push_back(cluster_size);
  }

  util::print_banner(std::cout,
                     "Figure 7: cumulative fraction of ASes vs cluster "
                     "size, by AS-hop distance from the origin's PoPs");
  std::uint32_t max_size = 1;
  for (const auto& bucket : per_bucket) {
    for (std::uint32_t s : bucket) max_size = std::max(max_size, s);
  }

  util::Table table({"cluster size", "1 hop", "2 hops", "3 hops", "4+ hops"});
  for (std::uint32_t x = 1; x <= std::min(max_size, 30u); ++x) {
    std::vector<std::string> row{std::to_string(x)};
    for (const auto& bucket : per_bucket) {
      if (bucket.empty()) {
        row.push_back("-");
        continue;
      }
      std::size_t le = 0;
      for (std::uint32_t s : bucket) le += s <= x;
      row.push_back(util::fmt_double(
          static_cast<double>(le) / static_cast<double>(bucket.size()), 3));
    }
    table.add_row(row);
  }
  table.print(std::cout);

  util::print_banner(std::cout, "Mean cluster size by distance group");
  util::Table means({"group", "ASes", "mean cluster size"});
  auto group_mean = [&](std::initializer_list<std::size_t> buckets) {
    util::Accumulator acc;
    for (std::size_t b : buckets) {
      for (std::uint32_t s : per_bucket[b]) acc.add(s);
    }
    return acc;
  };
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const auto acc = group_mean({b});
    means.add_row({bucket_names[b], std::to_string(acc.count()),
                   util::fmt_double(acc.mean(), 2)});
  }
  const auto near = group_mean({0, 1});
  const auto far = group_mean({2, 3});
  means.add_row({"1-2 hops (paper: 1.85)", std::to_string(near.count()),
                 util::fmt_double(near.mean(), 2)});
  means.add_row({"3+ hops (paper: 2.64)", std::to_string(far.count()),
                 util::fmt_double(far.mean(), 2)});
  means.print(std::cout);
  return bench::finish(options, "fig7_distance");
}
