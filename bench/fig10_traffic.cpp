// Figure 10: cumulative fraction of spoofed traffic originating in
// clusters up to a given size, for three spoofer placements (uniform,
// Pareto 80/20, single source), averaged over many random placements.
// Paper: for every distribution most spoofed traffic comes from small
// clusters, because most clusters are small (Figure 3).
#include <iostream>

#include "common.hpp"
#include "core/attribution.hpp"
#include "core/cluster.hpp"
#include "traffic/placement.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace spooftrack;
  const auto options = bench::BenchOptions::parse(argc, argv);
  const auto dep = bench::run_standard(options);

  const auto clustering = core::cluster_sources(dep.matrix);
  const auto sizes = clustering.sizes();
  std::uint32_t max_size = 1;
  for (std::uint32_t s : sizes) max_size = std::max(max_size, s);
  const std::uint32_t x_max = std::min<std::uint32_t>(max_size, 16);

  std::cerr << "[bench] " << options.placements
            << " placements per distribution (paper: 1000)\n";

  const traffic::PlacementKind kinds[] = {
      traffic::PlacementKind::kUniform, traffic::PlacementKind::kPareto8020,
      traffic::PlacementKind::kSingleSource};

  // curve[kind][x] = mean cumulative traffic fraction in clusters <= x.
  std::vector<std::vector<double>> curve(
      std::size(kinds), std::vector<double>(x_max + 1, 0.0));

  for (std::size_t k = 0; k < std::size(kinds); ++k) {
    util::Rng rng{util::hash_combine(options.seed, 0xF16 + k)};
    for (std::uint32_t trial = 0; trial < options.placements; ++trial) {
      const auto placement =
          traffic::generate_placement(kinds[k], dep.source_count(), rng);
      const auto result =
          core::traffic_by_cluster_size(clustering, placement.volume);
      // Step function: cumulative volume at each x.
      std::size_t cursor = 0;
      double running = 0.0;
      for (std::uint32_t x = 0; x <= x_max; ++x) {
        while (cursor < result.cluster_size.size() &&
               result.cluster_size[cursor] <= x) {
          running = result.cumulative_volume[cursor];
          ++cursor;
        }
        curve[k][x] += running;
      }
    }
    for (double& v : curve[k]) v /= options.placements;
  }

  util::print_banner(std::cout,
                     "Figure 10: cumulative spoofed-traffic fraction vs "
                     "cluster size");
  util::Table table({"cluster size", "uniform", "pareto-80/20",
                     "single source"});
  for (std::uint32_t x = 0; x <= x_max; ++x) {
    table.add_row({std::to_string(x), util::fmt_double(curve[0][x], 3),
                   util::fmt_double(curve[1][x], 3),
                   util::fmt_double(curve[2][x], 3)});
  }
  table.print(std::cout);

  std::cout << "\ntraffic from singleton clusters: uniform="
            << util::fmt_percent(curve[0][1])
            << " pareto=" << util::fmt_percent(curve[1][1])
            << " single=" << util::fmt_percent(curve[2][1])
            << "\n(paper: most spoofed traffic originates in small "
               "clusters for all three distributions)\n";
  return bench::finish(options, "fig10_traffic");
}
