// Cold propagation throughput across topology sizes and engine worker
// counts: the in-engine parallelism acceptance bench. For each (size,
// workers) cell it runs the four canonical configuration shapes
// (all-plain / prepend / poison / no-export) repeatedly, reports the best
// wall time, and cross-checks kFull outcome checksums so a speedup can
// never come from diverging outcomes.
//
// On single-core machines the >1-worker cells measure dispatch overhead
// rather than speedup; hardware_concurrency is reported alongside so the
// numbers read honestly.
//
// Usage: perf_engine [--seed=N] [--obs-report=PATH] [--quick]
// --quick shrinks to one tiny size, one repeat, one worker — a CI smoke
// run that checks the bench and its report stay wired, not a measurement.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bgp/engine.hpp"
#include "bgp/policy.hpp"
#include "common.hpp"
#include "obs/obs.hpp"
#include "topology/synth.hpp"
#include "util/table.hpp"

namespace {

using namespace spooftrack;

constexpr topology::Asn kOriginAsn = 47065;
constexpr std::uint32_t kLinkCount = 7;

struct Size {
  const char* name;
  std::uint32_t tier1, transit, stubs;
  std::uint32_t repeats;
};

constexpr Size kSizes[] = {
    {"small", 4, 40, 200, 40},
    {"medium", 8, 120, 900, 12},
    {"large", 8, 150, 2500, 4},
};
constexpr Size kQuickSizes[] = {{"quick", 2, 8, 40, 1}};

constexpr std::uint32_t kWorkerCounts[] = {1, 2, 4, 8};
constexpr std::uint32_t kQuickWorkerCounts[] = {1};

topology::SynthTopology make_topo(std::uint64_t seed, const Size& size) {
  topology::SynthConfig synth;
  synth.seed = seed;
  synth.tier1_count = size.tier1;
  synth.transit_count = size.transit;
  synth.stub_count = size.stubs;
  synth.origin_asn = kOriginAsn;
  for (std::uint32_t l = 0; l < kLinkCount; ++l) {
    synth.reserved_transit_asns.push_back(60000 + l);
  }
  return topology::synthesize(synth);
}

std::vector<bgp::Configuration> make_configs() {
  std::vector<bgp::Configuration> configs(4);
  configs[0].label = "all-plain";
  for (std::uint32_t l = 0; l < kLinkCount; ++l) {
    configs[0].announcements.push_back({l, 0, {}, {}});
  }
  configs[1].label = "prepend";
  for (std::uint32_t l = 0; l < kLinkCount; ++l) {
    configs[1].announcements.push_back({l, l == 0 ? 4u : 0u, {}, {}});
  }
  configs[2].label = "poison";
  for (std::uint32_t l = 0; l < 5; ++l) {
    bgp::AnnouncementSpec spec{l, 0, {}, {}};
    if (l == 1) spec.poisoned = {60004, 60005};
    configs[2].announcements.push_back(spec);
  }
  configs[3].label = "withdrawn";
  for (std::uint32_t l = 0; l < kLinkCount; l += 2) {
    configs[3].announcements.push_back({l, 0, {}, {}});
  }
  return configs;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);

  bgp::OriginSpec origin;
  origin.asn = kOriginAsn;
  for (std::uint32_t l = 0; l < kLinkCount; ++l) {
    origin.links.push_back({l, "pop-" + std::to_string(l), 60000 + l});
  }
  const auto configs = make_configs();

  std::cout << "{\n  \"bench\": \"perf_engine\",\n"
            << "  \"hardware_concurrency\": "
            << std::thread::hardware_concurrency() << ",\n  \"sizes\": [\n";

  const std::span<const Size> sizes =
      options.quick ? std::span<const Size>(kQuickSizes)
                    : std::span<const Size>(kSizes);
  const std::span<const std::uint32_t> worker_counts =
      options.quick ? std::span<const std::uint32_t>(kQuickWorkerCounts)
                    : std::span<const std::uint32_t>(kWorkerCounts);

  bool equivalent = true;
  bool first_size = true;
  for (const Size& size : sizes) {
    const auto topo = make_topo(options.seed, size);
    const bgp::RoutingPolicy policy(topo.graph, bgp::PolicyConfig{});

    std::vector<std::uint64_t> serial_sums;
    if (!first_size) std::cout << ",\n";
    first_size = false;
    std::cout << "    {\"name\": \"" << size.name << "\", \"as_count\": "
              << topo.graph.size() << ", \"workers\": {";

    bool first_cell = true;
    double serial_ms = 0.0;
    for (std::uint32_t workers : worker_counts) {
      bgp::EngineOptions engine_options;
      engine_options.workers = workers;
      const bgp::Engine engine(topo.graph, policy, engine_options);

      double best_ms = 0.0;
      std::vector<std::uint64_t> sums;
      for (std::uint32_t rep = 0; rep < size.repeats; ++rep) {
        sums.clear();
        const obs::Stopwatch watch;
        for (const auto& config : configs) {
          const auto outcome = engine.run(origin, config);
          sums.push_back(
              bgp::outcome_checksum(outcome, bgp::ChecksumScope::kFull));
        }
        const double ms = watch.elapsed_ms();
        if (rep == 0 || ms < best_ms) best_ms = ms;
      }
      if (workers == 1) {
        serial_sums = sums;
        serial_ms = best_ms;
      } else if (sums != serial_sums) {
        equivalent = false;
      }

      if (!first_cell) std::cout << ", ";
      first_cell = false;
      std::cout << "\"" << workers
                << "\": {\"ms\": " << util::fmt_double(best_ms, 2)
                << ", \"speedup\": "
                << util::fmt_double(best_ms > 0.0 ? serial_ms / best_ms : 0.0,
                                    2)
                << "}";
    }
    std::cout << "}}";
  }
  std::cout << "\n  ],\n  \"equivalent\": " << (equivalent ? "true" : "false")
            << "\n}\n";

  const int report_rc =
      bench::finish(options, "perf_engine", [&](obs::RunReport& report) {
        report.label("equivalent", equivalent ? "true" : "false");
      });

  if (!equivalent) {
    std::cerr << "FAIL: parallel outcomes diverge from serial\n";
    return 1;
  }
  return report_rc;
}
