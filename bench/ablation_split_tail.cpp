// Ablation: targeted poisoning to split the large-cluster tail (the
// paper's §V-B future work). After the location+prepending baseline, we
// compare spending K extra configurations on (a) generic poison-phase
// configurations vs (b) splitter-proposed targeted poisons aimed at the
// biggest clusters, and report what happens to the tail.
#include <iostream>

#include "common.hpp"
#include "core/cluster.hpp"
#include "core/config_gen.hpp"
#include "core/experiment.hpp"
#include "core/splitter.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

struct TailStats {
  std::uint32_t clusters = 0;
  double mean = 0.0;
  std::uint32_t largest = 0;
  std::uint32_t over5 = 0;
};

TailStats tail_of(const spooftrack::core::ClusterTracker& tracker) {
  TailStats stats;
  const auto sizes = tracker.current().sizes();
  stats.clusters = tracker.cluster_count();
  stats.mean = tracker.mean_cluster_size();
  for (std::uint32_t s : sizes) {
    stats.largest = std::max(stats.largest, s);
    stats.over5 += s > 5;
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spooftrack;
  const auto options = bench::BenchOptions::parse(argc, argv);

  core::TestbedConfig config = options.testbed_config();
  config.measured_catchments = false;
  const core::PeeringTestbed testbed(config);

  // Baseline: location + prepending.
  auto baseline = testbed.generator().location_phase();
  const auto prepends = testbed.generator().prepend_phase(baseline);
  baseline.insert(baseline.end(), prepends.begin(), prepends.end());
  const auto base = testbed.deploy(baseline);

  core::ClusterTracker base_tracker(base.sources.size());
  for (const auto& row : base.matrix) base_tracker.refine(row);
  const TailStats before = tail_of(base_tracker);

  const std::size_t extra_budget = 24;

  // (a) Control: the next `extra_budget` generic poison configurations.
  core::GeneratorOptions gen;
  gen.max_poison_configs = extra_budget;
  auto generic = testbed.generator(gen).poison_phase(testbed.graph());

  // (b) Splitter: targeted proposals from the all-links outcome.
  const auto all_links = baseline.front();
  const auto outcome = testbed.route(all_links);
  core::SplitterOptions split_options;
  split_options.max_proposals = extra_budget;
  split_options.per_cluster = 2;
  const auto proposals = core::propose_splits(
      testbed.engine(), testbed.origin(), all_links, outcome,
      base_tracker.current(), base.sources, split_options);
  std::vector<bgp::Configuration> targeted;
  for (const auto& proposal : proposals) {
    targeted.push_back(proposal.to_poison_config(testbed.origin()));
  }

  // (c) Splitter realised with no-export communities.
  core::SplitterOptions community_options = split_options;
  community_options.use_communities = true;
  const auto community_proposals = core::propose_splits(
      testbed.engine(), testbed.origin(), all_links, outcome,
      base_tracker.current(), base.sources, community_options);
  std::vector<bgp::Configuration> targeted_communities;
  for (const auto& proposal : community_proposals) {
    targeted_communities.push_back(
        proposal.to_community_config(testbed.origin()));
  }

  auto extend = [&](std::vector<bgp::Configuration> extra) {
    core::ClusterTracker tracker(base.sources.size());
    for (const auto& row : base.matrix) tracker.refine(row);
    const auto result = testbed.deploy(std::move(extra));
    for (const auto& truth : result.truth) {
      std::vector<bgp::LinkId> row(base.sources.size());
      for (std::size_t s = 0; s < base.sources.size(); ++s) {
        row[s] = truth.link_of[base.sources[s]];
      }
      tracker.refine(row);
    }
    return tail_of(tracker);
  };

  const TailStats with_generic = extend(std::move(generic));
  const TailStats with_targeted = extend(std::move(targeted));
  const TailStats with_communities = extend(std::move(targeted_communities));

  util::print_banner(std::cout,
                     "Splitting the large-cluster tail with " +
                         std::to_string(extra_budget) +
                         " extra configurations");
  util::Table table({"scenario", "clusters", "mean size", "largest cluster",
                     "clusters >5 ASes"});
  auto add = [&](const char* name, const TailStats& stats) {
    table.add_row({name, std::to_string(stats.clusters),
                   util::fmt_double(stats.mean, 3),
                   std::to_string(stats.largest),
                   std::to_string(stats.over5)});
  };
  add("baseline (loc+prepend)", before);
  add("+ generic poisoning", with_generic);
  add("+ targeted poison splits", with_targeted);
  add("+ targeted no-export splits", with_communities);
  table.print(std::cout);

  std::cout << "\ntargeted proposals used: " << proposals.size() << "; top "
               "proposal: cluster of "
            << (proposals.empty() ? 0 : proposals.front().cluster_size)
            << " ASes, poisoning AS"
            << (proposals.empty() ? 0 : proposals.front().target)
            << " moves "
            << (proposals.empty() ? 0 : proposals.front().members_moved)
            << " members\n";
  return bench::finish(options, "ablation_split_tail");
}
