// Warm-start campaign propagation: wall-clock comparison of per-config
// cold propagation versus the memoized, similarity-ordered, warm-started
// campaign runner on a 100-configuration plan (location + prepending
// phases, the paper's §III-A(a)/(b) shapes). Verifies outcome equivalence
// while timing and reports machine-readable JSON.
//
// Outcomes are digested to checksums inside the sink rather than collected:
// retaining every outcome would keep each chain step's baseline arena alive
// (shared), forcing the warm path off its steal-the-arena fast path — and a
// digest is all the equivalence check needs.
//
// Usage: perf_campaign_warm [--stubs=N] [--transit=N] [--seed=N]
//                           [--obs-report=PATH]
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/campaign.hpp"
#include "core/config_gen.hpp"
#include "core/experiment.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace {

using namespace spooftrack;

double run_timed(const core::PeeringTestbed& testbed,
                 const std::vector<bgp::Configuration>& plan,
                 const core::CampaignRunnerOptions& options,
                 core::CampaignRunStats* stats,
                 std::vector<std::uint64_t>* checksums) {
  std::vector<std::uint64_t> digests(plan.size(), 0);
  const obs::Stopwatch watch;
  const core::CampaignRunStats run_stats = core::propagate_campaign(
      testbed.engine(), testbed.origin(), plan,
      [&digests](std::size_t, std::size_t i,
                 const bgp::RoutingOutcome& outcome) {
        digests[i] =
            bgp::outcome_checksum(outcome, bgp::ChecksumScope::kRoutes);
      },
      options);
  const double elapsed_ms = watch.elapsed_ms();
  if (stats != nullptr) *stats = run_stats;
  if (checksums != nullptr) *checksums = std::move(digests);
  return elapsed_ms;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);

  core::TestbedConfig config = options.testbed_config();
  const core::PeeringTestbed testbed(config);

  core::GeneratorOptions gen;
  auto plan = testbed.generator(gen).location_phase();
  const auto prepends = testbed.generator(gen).prepend_phase(plan);
  plan.insert(plan.end(), prepends.begin(), prepends.end());
  constexpr std::size_t kCampaignSize = 100;
  if (plan.size() > kCampaignSize) plan.resize(kCampaignSize);

  core::CampaignRunnerOptions cold_options;
  cold_options.warm_start = false;
  cold_options.memoize = false;
  cold_options.order_chains = false;

  core::CampaignRunnerOptions warm_options;  // defaults: everything on

  // Warm-up pass (page in the topology, steady up the allocator), then one
  // timed pass per mode; best of two timed passes guards against scheduler
  // noise.
  run_timed(testbed, plan, cold_options, nullptr, nullptr);
  // Drop the warm-up pass from the telemetry so the RunReport describes
  // only the timed passes (all campaign workers have joined; the registry
  // is quiescent here).
  obs::Registry::global().reset();

  core::CampaignRunStats cold_stats;
  std::vector<std::uint64_t> cold_checksums;
  double cold_ms = run_timed(testbed, plan, cold_options, &cold_stats,
                             &cold_checksums);
  cold_ms = std::min(cold_ms, run_timed(testbed, plan, cold_options,
                                        nullptr, nullptr));

  core::CampaignRunStats warm_stats;
  std::vector<std::uint64_t> warm_checksums;
  double warm_ms = run_timed(testbed, plan, warm_options, &warm_stats,
                             &warm_checksums);
  warm_ms = std::min(warm_ms, run_timed(testbed, plan, warm_options,
                                        nullptr, nullptr));

  // The speedup claim is only meaningful if warm outcomes are identical.
  std::size_t mismatched_configs = 0;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    if (cold_checksums[i] != warm_checksums[i]) ++mismatched_configs;
  }

  const double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
  std::cout << "{\n"
            << "  \"bench\": \"perf_campaign_warm\",\n"
            << "  \"configs\": " << plan.size() << ",\n"
            << "  \"as_count\": " << testbed.graph().size() << ",\n"
            << "  \"workers\": " << util::default_worker_count() << ",\n"
            << "  \"cold_ms\": " << util::fmt_double(cold_ms, 2) << ",\n"
            << "  \"warm_ms\": " << util::fmt_double(warm_ms, 2) << ",\n"
            << "  \"speedup\": " << util::fmt_double(speedup, 2) << ",\n"
            << "  \"cold_rounds\": " << cold_stats.total_rounds << ",\n"
            << "  \"warm_rounds\": " << warm_stats.total_rounds << ",\n"
            << "  \"warm_chain_heads\": " << warm_stats.cold_runs << ",\n"
            << "  \"warm_runs\": " << warm_stats.warm_runs << ",\n"
            << "  \"memo_hits\": " << warm_stats.memo_hits << ",\n"
            << "  \"equivalent\": "
            << (mismatched_configs == 0 ? "true" : "false") << "\n"
            << "}\n";

  if (!options.obs_report.empty()) {
    obs::RunReport report = obs::RunReport::capture("perf_campaign_warm");
    report.value("configs", static_cast<double>(plan.size()))
        .value("as_count", static_cast<double>(testbed.graph().size()))
        .value("cold_ms", cold_ms)
        .value("warm_ms", warm_ms)
        .value("speedup", speedup)
        .label("equivalent", mismatched_configs == 0 ? "true" : "false");
    report.save_json_file(options.obs_report);
    std::cerr << "[bench] wrote obs report to " << options.obs_report << "\n";
  }

  if (mismatched_configs != 0) {
    std::cerr << "FAIL: " << mismatched_configs
              << " configs differ between cold and warm propagation\n";
    return 1;
  }
  return 0;
}
