// Figure 3: complementary CDF of cluster sizes after each announcement
// phase (64 location configs; +294 prepending; +347 poisoning = 705).
//
// Paper headline (real Internet, PEERING): after all 705 configurations 92%
// of clusters contain a single AS; 14 clusters are larger than 5 ASes and
// hold 7.9% of the ASes. The synthetic substrate reproduces the shape:
// each phase shifts the CCDF left, singletons dominate, and a small tail
// of large clusters remains.
#include <algorithm>
#include <iostream>

#include "common.hpp"
#include "core/cluster.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace spooftrack;
  const auto options = bench::BenchOptions::parse(argc, argv);
  const auto dep = bench::run_standard(options);

  // Refine through the plan, snapshotting cluster sizes at phase ends.
  core::ClusterTracker tracker(dep.source_count());
  std::vector<std::vector<std::uint32_t>> snapshots;
  for (std::size_t i = 0; i < dep.matrix.size(); ++i) {
    tracker.refine(dep.matrix[i]);
    if (i + 1 == dep.location_end || i + 1 == dep.prepend_end ||
        i + 1 == dep.matrix.size()) {
      snapshots.push_back(tracker.current().sizes());
    }
  }

  const char* phase_names[] = {"locations", "loc+prepending", "all phases"};
  util::print_banner(std::cout, "Figure 3: CCDF of cluster sizes per phase");
  std::cout << "(paper x-axis: cluster size [ASes]; y: CCDF of clusters)\n";

  // Distinct sizes across all snapshots.
  std::vector<double> xs;
  for (const auto& sizes : snapshots) {
    for (std::uint32_t s : sizes) xs.push_back(s);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  util::Table table({"size", "ccdf(locations)", "ccdf(loc+prep)",
                     "ccdf(all 3 phases)"});
  for (double x : xs) {
    std::vector<std::string> row{util::fmt_double(x, 0)};
    for (const auto& sizes : snapshots) {
      util::Histogram hist;
      for (std::uint32_t s : sizes) hist.add(s);
      row.push_back(util::fmt_double(
          hist.complementary_at(static_cast<std::uint64_t>(x)), 4));
    }
    table.add_row(row);
  }
  table.print(std::cout);

  util::print_banner(std::cout, "Headline statistics");
  util::Table head({"phase", "configs", "clusters", "mean size",
                    "singleton clusters", ">5-AS clusters",
                    "ASes in >5-AS clusters"});
  const std::size_t boundaries[] = {dep.location_end, dep.prepend_end,
                                    dep.matrix.size()};
  for (std::size_t p = 0; p < snapshots.size(); ++p) {
    const auto& sizes = snapshots[p];
    std::size_t singleton = 0, big = 0, big_ases = 0, total_ases = 0;
    for (std::uint32_t s : sizes) {
      total_ases += s;
      singleton += s == 1;
      if (s > 5) {
        ++big;
        big_ases += s;
      }
    }
    head.add_row({phase_names[p], std::to_string(boundaries[p]),
                  std::to_string(sizes.size()),
                  util::fmt_double(static_cast<double>(total_ases) /
                                       static_cast<double>(sizes.size()),
                                   2),
                  util::fmt_percent(static_cast<double>(singleton) /
                                    static_cast<double>(sizes.size())),
                  std::to_string(big),
                  util::fmt_percent(static_cast<double>(big_ases) /
                                    static_cast<double>(total_ases))});
  }
  head.print(std::cout);
  std::cout << "\npaper (real Internet): 92% singletons after 705 configs; "
               "14 clusters >5 ASes holding 7.9% of ASes\n";
  return bench::finish(options, "fig3_cluster_ccdf");
}
