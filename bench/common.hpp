// Shared infrastructure for the evaluation benches.
//
// Every figure of the paper's §V is derived from one "standard deployment":
// the 705-configuration plan (64 location + 294 prepend + 347 poison)
// deployed on the PeeringTestbed with the measured §IV pipeline. The
// deployment is expensive relative to the per-figure analysis, so benches
// share it through a binary cache file keyed by the generation options —
// the first bench pays, the rest load in milliseconds.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/cluster.hpp"
#include "core/experiment.hpp"
#include "core/policy_audit.hpp"
#include "measure/catchment_store.hpp"
#include "obs/report.hpp"

namespace spooftrack::bench {

struct BenchOptions {
  std::uint64_t seed = 42;
  std::uint32_t tier1 = 8;
  std::uint32_t transit = 150;
  std::uint32_t stubs = 2500;
  std::uint32_t probes = 800;
  std::uint32_t rounds = 2;      // traceroute rounds per configuration
  bool measured = true;          // §IV pipeline vs ground truth
  std::uint32_t sequences = 300; // Figure 8 random schedules
  std::uint32_t placements = 1000;  // Figure 10 source placements
  std::uint32_t greedy_steps = 100; // Figure 8 greedy horizon
  std::string cache_dir = "bench_cache";
  bool no_cache = false;
  std::string obs_report;  // --obs-report=PATH: write a JSON RunReport here
  bool quick = false;      // --quick: smoke-test sizes, single worker

  /// Parses --key=value flags; exits with usage on unknown flags.
  static BenchOptions parse(int argc, char** argv);

  core::TestbedConfig testbed_config() const;
};

/// Standard bench epilogue: when --obs-report was given, captures the
/// merged obs registry plus process wall time into a RunReport named
/// `bench_name` and writes it as JSON. Every report also records the
/// machine context (`hardware_concurrency`, the resolved `workers` count)
/// so single-core numbers explain themselves. `decorate`, when given, runs
/// on the report before it is written — benches add their own labels and
/// values there instead of hand-rolling reports. Returns the process exit
/// code, so benches end with `return bench::finish(options, "fig3");`
int finish(const BenchOptions& options, std::string_view bench_name,
           const std::function<void(obs::RunReport&)>& decorate = {});

enum class Phase : std::uint8_t { kLocation = 0, kPrepend = 1, kPoison = 2 };

struct ConfigMeta {
  Phase phase = Phase::kLocation;
  std::uint32_t active_mask = 0;    // bit i: link i announced
  std::uint32_t prepend_mask = 0;   // bit i: link i prepended
  std::uint32_t poison_link = std::numeric_limits<std::uint32_t>::max();
  std::uint32_t poison_asn = 0;
};

struct StandardDeployment {
  std::vector<ConfigMeta> configs;
  std::size_t location_end = 0;  // index one past the location phase (64)
  std::size_t prepend_end = 0;   // index one past the prepending phase (358)

  measure::CatchmentStore matrix;             // rows = configs, cols = sources
  std::vector<std::uint32_t> source_distance; // min AS-hops per source
  std::vector<core::ComplianceStats> compliance;  // per config
  double mean_multi_catchment = 0.0;
  double mean_coverage = 0.0;
  std::size_t as_count = 0;
  std::size_t link_count = 7;

  std::size_t source_count() const { return matrix.sources(); }
};

/// Runs (or loads from cache) the standard deployment for the options.
StandardDeployment run_standard(const BenchOptions& options);

/// Mean-cluster-size trajectory over a row subset of the matrix, refined in
/// the given order.
std::vector<double> trajectory(const measure::CatchmentStore& matrix,
                               const std::vector<std::size_t>& rows);

/// Log-spaced sample indices over [1, n] (inclusive), always containing 1,
/// n and the provided anchors.
std::vector<std::size_t> log_samples(std::size_t n,
                                     std::vector<std::size_t> anchors = {});

}  // namespace spooftrack::bench
