// Figure 9: fraction of ASes whose routing choices follow (i) the
// best-relationship criterion and (ii) additionally shortest AS-path (the
// Gao-Rexford model), shown as a CDF across announcement configurations.
// Paper: most ASes follow best-relationship; both criteria hold for a
// somewhat smaller majority.
#include <algorithm>
#include <iostream>

#include "common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace spooftrack;
  const auto options = bench::BenchOptions::parse(argc, argv);
  const auto dep = bench::run_standard(options);

  std::vector<double> best_rel, both;
  for (const auto& stats : dep.compliance) {
    if (stats.audited == 0) continue;
    best_rel.push_back(stats.best_relationship_fraction());
    both.push_back(stats.both_fraction());
  }

  util::print_banner(std::cout,
                     "Figure 9: routing-policy compliance across "
                     "configurations (CDF over configs)");
  std::cout << "x: fraction of ASes following the criterion; y: cumulative "
               "fraction of configurations\n";

  const auto best_cdf = util::cdf(best_rel);
  const auto both_cdf = util::cdf(both);

  // Print both CDFs on a common grid of x values.
  std::vector<double> xs;
  for (const auto& p : best_cdf) xs.push_back(p.x);
  for (const auto& p : both_cdf) xs.push_back(p.x);
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  auto cdf_at = [](const std::vector<util::DistPoint>& points, double x) {
    double y = 0.0;
    for (const auto& p : points) {
      if (p.x <= x) y = p.y;
      else break;
    }
    return y;
  };

  util::Table table({"fraction of ASes", "cdf(best relationship)",
                     "cdf(best rel & shortest)"});
  // Sample sparsely if there are many distinct values.
  const std::size_t stride = std::max<std::size_t>(1, xs.size() / 40);
  for (std::size_t i = 0; i < xs.size(); i += stride) {
    table.add_row({util::fmt_double(xs[i], 4),
                   util::fmt_double(cdf_at(best_cdf, xs[i]), 3),
                   util::fmt_double(cdf_at(both_cdf, xs[i]), 3)});
  }
  table.print(std::cout);

  util::print_banner(std::cout, "Summary");
  util::Table summary({"criterion", "mean fraction", "min", "max"});
  util::Accumulator acc_best, acc_both;
  for (double v : best_rel) acc_best.add(v);
  for (double v : both) acc_both.add(v);
  summary.add_row({"best relationship", util::fmt_percent(acc_best.mean()),
                   util::fmt_percent(acc_best.min()),
                   util::fmt_percent(acc_best.max())});
  summary.add_row({"best relationship & shortest path",
                   util::fmt_percent(acc_both.mean()),
                   util::fmt_percent(acc_both.min()),
                   util::fmt_percent(acc_both.max())});
  summary.print(std::cout);
  std::cout << "\npaper: most ASes follow best-relationship; adding the "
               "shortest-path criterion lowers compliance visibly\n";
  return bench::finish(options, "fig9_policy");
}
