// Analysis-pipeline throughput: the columnar CatchmentStore acceptance
// bench. For each matrix size it generates a deterministic synthetic
// catchment matrix (hidden source groups plus measurement noise, so
// clusters split gradually instead of saturating on the first row) and
// measures, best-of-N:
//
//   * store build from legacy nested-vector rows, and the bit-sliced
//     BitplaneStore mirror build (with a scalar-vs-wide dispatch gate),
//   * cluster refinement: legacy u32 nested-vector reference vs
//     ClusterTracker on encoded u8 rows vs the word-parallel bitplane
//     refine,
//   * greedy scheduling: legacy serial reference vs core::greedy_schedule
//     single-threaded (the speedup_serial acceptance number) with a
//     per-kernel ablation (bitplane default vs byte stamp-table), plus a
//     worker sweep,
//   * online cluster attribution on the store (tiled column gather).
//
// The legacy references reimplement the pre-columnar algorithms faithfully
// (same epoch-stamped bucket tables, same first-touch dense ids, same
// lowest-index-max tie break) over std::vector<std::vector<bgp::LinkId>>,
// without the u8 layout or the singleton word-skip — so every speedup is
// attributable to the store, and equivalence can be asserted bit-for-bit:
// cluster ids, greedy orders, parallel-vs-serial orders, per-kernel orders
// and scalar-vs-wide plane builds must all match or the bench exits
// non-zero.
//
// Usage: perf_analysis [--seed=N] [--obs-report=PATH] [--quick]
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bgp/catchment.hpp"
#include "common.hpp"
#include "core/attribution.hpp"
#include "core/cluster.hpp"
#include "core/cluster_slots.hpp"
#include "core/scheduler.hpp"
#include "measure/bitplane_store.hpp"
#include "measure/catchment_store.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/table.hpp"

namespace {

using namespace spooftrack;

constexpr std::uint32_t kLinkCount = 7;

struct Size {
  const char* name;
  std::size_t configs, sources, steps;
  std::uint32_t repeats;
};

constexpr Size kSizes[] = {
    {"small", 100, 500, 40, 7},
    {"medium", 300, 1500, 60, 5},
    {"large", 705, 3000, 60, 3},
};
constexpr Size kQuickSizes[] = {{"quick", 20, 100, 10, 1}};

constexpr std::uint32_t kWorkerCounts[] = {1, 2, 4, 8};
constexpr std::uint32_t kQuickWorkerCounts[] = {1};

// Deterministic synthetic matrix in the legacy nested-vector shape. Sources
// belong to hidden groups sharing a per-config prototype catchment; a small
// flip/missing noise rate makes refinement split clusters gradually, the
// regime the greedy scheduler actually runs in.
measure::CatchmentMatrix synth_matrix(const Size& size, std::uint64_t seed) {
  util::Rng rng(seed ^ 0xA11A);
  const std::size_t groups = std::max<std::size_t>(8, size.sources / 6);
  std::vector<std::size_t> group_of(size.sources);
  for (auto& g : group_of) g = rng.next_below(groups);

  measure::CatchmentMatrix matrix(size.configs);
  std::vector<bgp::LinkId> prototype(groups);
  for (auto& row : matrix) {
    for (auto& p : prototype) {
      p = static_cast<bgp::LinkId>(rng.next_below(kLinkCount));
    }
    row.resize(size.sources);
    for (std::size_t s = 0; s < size.sources; ++s) {
      if (rng.chance(0.02)) {
        row[s] = bgp::kNoCatchment;
      } else if (rng.chance(0.02)) {
        row[s] = static_cast<bgp::LinkId>(rng.next_below(kLinkCount));
      } else {
        row[s] = prototype[group_of[s]];
      }
    }
  }
  return matrix;
}

// --- Legacy reference implementations (pre-columnar algorithms) -----------

std::size_t legacy_slot(bgp::LinkId link) {
  return link == bgp::kNoCatchment ? core::kMissingSlot
                                   : static_cast<std::size_t>(link);
}

/// The pre-refactor incremental refinement: epoch-stamped
/// (cluster, catchment) buckets over u32 rows, first-touch dense ids, no
/// singleton fast path.
class LegacyTracker {
 public:
  explicit LegacyTracker(std::size_t sources)
      : cluster_of_(sources, 0),
        cluster_count_(sources == 0 ? 0 : 1),
        keys_(std::max<std::size_t>(1, sources) * core::kSlots, 0),
        order_(keys_.size(), 0) {}

  std::uint32_t refine(const std::vector<bgp::LinkId>& row) {
    ++epoch_;
    std::uint32_t next_id = 0;
    for (std::size_t s = 0; s < cluster_of_.size(); ++s) {
      const std::size_t key =
          static_cast<std::size_t>(cluster_of_[s]) * core::kSlots +
          legacy_slot(row[s]);
      if (keys_[key] != epoch_) {
        keys_[key] = epoch_;
        order_[key] = next_id++;
      }
      cluster_of_[s] = order_[key];
    }
    cluster_count_ = next_id;
    return next_id;
  }

  /// Clusters after hypothetically refining with `row`; no state change.
  std::uint32_t count_after(const std::vector<bgp::LinkId>& row) {
    ++epoch_;
    std::uint32_t count = 0;
    for (std::size_t s = 0; s < cluster_of_.size(); ++s) {
      const std::size_t key =
          static_cast<std::size_t>(cluster_of_[s]) * core::kSlots +
          legacy_slot(row[s]);
      if (keys_[key] != epoch_) {
        keys_[key] = epoch_;
        ++count;
      }
    }
    return count;
  }

  const std::vector<std::uint32_t>& cluster_of() const { return cluster_of_; }
  std::uint32_t cluster_count() const { return cluster_count_; }

 private:
  std::vector<std::uint32_t> cluster_of_;
  std::uint32_t cluster_count_ = 0;
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> order_;
  std::uint64_t epoch_ = 0;
};

/// The pre-refactor serial greedy schedule: scan every remaining
/// configuration, pick the one maximising the refined cluster count
/// (minimum mean cluster size), lowest index on ties.
std::vector<std::size_t> legacy_greedy(const measure::CatchmentMatrix& matrix,
                                       std::size_t steps) {
  const std::size_t sources = matrix.empty() ? 0 : matrix.front().size();
  LegacyTracker tracker(sources);
  std::vector<bool> used(matrix.size(), false);
  std::vector<std::size_t> order;
  const std::size_t horizon =
      steps == 0 ? matrix.size() : std::min(steps, matrix.size());
  order.reserve(horizon);
  for (std::size_t k = 0; k < horizon; ++k) {
    std::size_t best = matrix.size();
    std::uint32_t best_count = 0;
    for (std::size_t i = 0; i < matrix.size(); ++i) {
      if (used[i]) continue;
      const std::uint32_t count = tracker.count_after(matrix[i]);
      if (best == matrix.size() || count > best_count) {
        best = i;
        best_count = count;
      }
    }
    if (best == matrix.size()) break;
    used[best] = true;
    tracker.refine(matrix[best]);
    order.push_back(best);
  }
  return order;
}

// --------------------------------------------------------------------------

template <typename Fn>
double best_of(std::uint32_t repeats, Fn&& fn) {
  double best_ms = 0.0;
  for (std::uint32_t rep = 0; rep < repeats; ++rep) {
    const obs::Stopwatch watch;
    fn();
    const double ms = watch.elapsed_ms();
    if (rep == 0 || ms < best_ms) best_ms = ms;
  }
  return best_ms;
}

/// Per-config per-link spoofed volumes for the attribution stage: Pareto
/// source volumes accumulated onto each configuration's catchment links.
std::vector<std::vector<double>> synth_volumes(
    const measure::CatchmentStore& matrix, std::uint64_t seed) {
  util::Rng rng(seed ^ 0xB01);
  std::vector<double> volume(matrix.sources());
  for (auto& v : volume) v = rng.pareto(1.2);
  std::vector<std::vector<double>> per_config(
      matrix.configs(), std::vector<double>(kLinkCount, 0.0));
  for (std::size_t c = 0; c < matrix.configs(); ++c) {
    const auto row = matrix.row(c);
    for (std::size_t s = 0; s < matrix.sources(); ++s) {
      if (row[s] != bgp::kNoCatchment8 && row[s] < kLinkCount) {
        per_config[c][row[s]] += volume[s];
      }
    }
  }
  return per_config;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);

  const std::span<const Size> sizes =
      options.quick ? std::span<const Size>(kQuickSizes)
                    : std::span<const Size>(kSizes);
  const std::span<const std::uint32_t> worker_counts =
      options.quick ? std::span<const std::uint32_t>(kQuickWorkerCounts)
                    : std::span<const std::uint32_t>(kWorkerCounts);

  std::cout << "{\n  \"bench\": \"perf_analysis\",\n"
            << "  \"hardware_concurrency\": "
            << std::thread::hardware_concurrency() << ",\n  \"sizes\": [\n";

  bool equivalent = true;
  double speedup_serial_last = 0.0;
  bool first_size = true;
  for (const Size& size : sizes) {
    const auto legacy_matrix = synth_matrix(size, options.seed);

    // Store build (legacy interchange -> columnar).
    measure::CatchmentStore matrix;
    const double build_ms = best_of(size.repeats, [&] {
      matrix = measure::CatchmentStore(legacy_matrix);
    });
    OBS_GAUGE("analysis.matrix_bytes", matrix.size_bytes());

    // Bit-sliced mirror build, plus the dispatch gate: the scalar and wide
    // builders must agree bit for bit and the round trip must reproduce the
    // byte store exactly. The gate runs in --quick too, so CI's bench-smoke
    // exercises both SIMD paths on every change.
    measure::BitplaneStore planes;
    const double bitplane_build_ms = best_of(size.repeats, [&] {
      planes = measure::BitplaneStore(matrix);
    });
    {
      util::force_simd_level(util::SimdLevel::kScalar);
      const measure::BitplaneStore scalar_planes(matrix);
      util::force_simd_level(util::SimdLevel::kWide);
      const measure::BitplaneStore wide_planes(matrix);
      util::force_simd_level(std::nullopt);
      if (!(scalar_planes == wide_planes)) {
        equivalent = false;
        std::cerr << "FAIL[" << size.name
                  << "]: scalar and wide bitplane builds diverge\n";
      }
      if (planes.to_store() != matrix) {
        equivalent = false;
        std::cerr << "FAIL[" << size.name
                  << "]: bitplane round trip loses cells\n";
      }
    }

    // Refinement: legacy u32 reference vs ClusterTracker on u8 rows.
    LegacyTracker legacy_tracker(size.sources);
    const double legacy_refine_ms = best_of(size.repeats, [&] {
      legacy_tracker = LegacyTracker(size.sources);
      for (const auto& row : legacy_matrix) legacy_tracker.refine(row);
    });
    core::Clustering clustering;
    const double store_refine_ms = best_of(size.repeats, [&] {
      clustering = core::cluster_sources(matrix);
    });
    if (clustering.cluster_of != legacy_tracker.cluster_of() ||
        clustering.cluster_count != legacy_tracker.cluster_count()) {
      equivalent = false;
      std::cerr << "FAIL[" << size.name
                << "]: store clustering diverges from legacy reference\n";
    }
    core::Clustering bitplane_clustering;
    const double bitplane_refine_ms = best_of(size.repeats, [&] {
      bitplane_clustering = core::cluster_sources(planes);
    });
    if (bitplane_clustering.cluster_of != clustering.cluster_of ||
        bitplane_clustering.cluster_count != clustering.cluster_count) {
      equivalent = false;
      std::cerr << "FAIL[" << size.name
                << "]: bitplane clustering diverges from byte store\n";
    }

    // Greedy scheduling: legacy serial reference vs store, then the worker
    // sweep (all orders must be bit-identical).
    std::vector<std::size_t> legacy_order;
    const double legacy_greedy_ms = best_of(size.repeats, [&] {
      legacy_order = legacy_greedy(legacy_matrix, size.steps);
    });

    double serial_ms = 0.0;
    std::vector<std::size_t> serial_order;
    std::vector<std::pair<std::uint32_t, double>> worker_ms;
    for (std::uint32_t workers : worker_counts) {
      core::ScheduleTrace trace;
      const double ms = best_of(size.repeats, [&] {
        trace = core::greedy_schedule(matrix, size.steps, workers);
      });
      worker_ms.emplace_back(workers, ms);
      if (workers == 1) {
        serial_ms = ms;
        serial_order = trace.order;
        if (trace.order != legacy_order) {
          equivalent = false;
          std::cerr << "FAIL[" << size.name
                    << "]: store greedy order diverges from legacy\n";
        }
      } else if (trace.order != serial_order) {
        equivalent = false;
        std::cerr << "FAIL[" << size.name << "]: greedy order at "
                  << workers << " workers diverges from serial\n";
      }
    }
    const double speedup_serial =
        serial_ms > 0.0 ? legacy_greedy_ms / serial_ms : 0.0;
    speedup_serial_last = speedup_serial;

    // Kernel ablation: the byte stamp-table kernel must produce the same
    // order, and its serial time isolates the bitplane kernel's share of
    // the speedup.
    std::vector<std::size_t> byte_order;
    const double byte_greedy_ms = best_of(size.repeats, [&] {
      byte_order = core::greedy_schedule(matrix, size.steps, 1,
                                         core::GreedyKernel::kByte)
                       .order;
    });
    if (byte_order != serial_order) {
      equivalent = false;
      std::cerr << "FAIL[" << size.name
                << "]: byte kernel order diverges from bitplane kernel\n";
    }
    {
      // Bitplane greedy must not depend on the dispatch path either.
      util::force_simd_level(util::SimdLevel::kScalar);
      const auto scalar_trace = core::greedy_schedule(matrix, size.steps, 1);
      util::force_simd_level(std::nullopt);
      if (scalar_trace.order != serial_order) {
        equivalent = false;
        std::cerr << "FAIL[" << size.name
                  << "]: forced-scalar greedy order diverges\n";
      }
    }

    // Attribution on the store (timed; equivalence with the legacy path is
    // covered bit-for-bit by tests/test_catchment_store.cpp).
    const auto volumes = synth_volumes(matrix, options.seed);
    core::AttributionResult attribution;
    const double attribution_ms = best_of(size.repeats, [&] {
      attribution = core::attribute_clusters(matrix, clustering, volumes);
    });
    if (attribution.ranking.size() != clustering.cluster_count) {
      equivalent = false;
      std::cerr << "FAIL[" << size.name << "]: attribution ranking size\n";
    }

    if (!first_size) std::cout << ",\n";
    first_size = false;
    std::cout << "    {\"name\": \"" << size.name
              << "\", \"configs\": " << size.configs
              << ", \"sources\": " << size.sources
              << ", \"steps\": " << size.steps
              << ", \"matrix_bytes\": " << matrix.size_bytes()
              << ",\n     \"build_ms\": " << util::fmt_double(build_ms, 3)
              << ", \"bitplane_build_ms\": "
              << util::fmt_double(bitplane_build_ms, 3)
              << ", \"bitplane_bytes\": " << planes.size_bytes()
              << ",\n     \"legacy_refine_ms\": "
              << util::fmt_double(legacy_refine_ms, 3)
              << ", \"store_refine_ms\": "
              << util::fmt_double(store_refine_ms, 3)
              << ", \"bitplane_refine_ms\": "
              << util::fmt_double(bitplane_refine_ms, 3)
              << ", \"refine_speedup\": "
              << util::fmt_double(
                     store_refine_ms > 0.0 ? legacy_refine_ms / store_refine_ms
                                           : 0.0,
                     2)
              << ",\n     \"legacy_greedy_ms\": "
              << util::fmt_double(legacy_greedy_ms, 2)
              << ", \"byte_greedy_ms\": " << util::fmt_double(byte_greedy_ms, 2)
              << ", \"store_greedy_ms\": " << util::fmt_double(serial_ms, 2)
              << ", \"speedup_serial\": "
              << util::fmt_double(speedup_serial, 2)
              << ", \"kernel_speedup\": "
              << util::fmt_double(
                     serial_ms > 0.0 ? byte_greedy_ms / serial_ms : 0.0, 2)
              << ", \"attribution_ms\": "
              << util::fmt_double(attribution_ms, 3)
              << ",\n     \"workers\": {";
    bool first_cell = true;
    for (const auto& [workers, ms] : worker_ms) {
      if (!first_cell) std::cout << ", ";
      first_cell = false;
      std::cout << "\"" << workers << "\": {\"ms\": "
                << util::fmt_double(ms, 2) << ", \"speedup\": "
                << util::fmt_double(ms > 0.0 ? serial_ms / ms : 0.0, 2)
                << "}";
    }
    std::cout << "}}";
  }
  std::cout << "\n  ],\n  \"simd\": \""
            << util::simd_level_name(util::active_simd_level())
            << "\",\n  \"equivalent\": " << (equivalent ? "true" : "false")
            << ",\n  \"speedup_serial\": "
            << util::fmt_double(speedup_serial_last, 2) << "\n}\n";

  const int report_rc =
      bench::finish(options, "perf_analysis", [&](obs::RunReport& report) {
        report.label("equivalent", equivalent ? "true" : "false")
            .label("simd", util::simd_level_name(util::active_simd_level()))
            .value("speedup_serial", speedup_serial_last);
      });

  if (!equivalent) {
    std::cerr << "FAIL: columnar analysis diverges from legacy reference\n";
    return 1;
  }
  return report_rc;
}
