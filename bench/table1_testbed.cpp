// Table I: PoPs and providers of the (emulated) PEERING platform, plus the
// synthetic-substrate statistics that stand in for the real Internet.
#include <iostream>

#include "common.hpp"
#include "core/config_gen.hpp"
#include "topology/metrics.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace spooftrack;
  const auto options = bench::BenchOptions::parse(argc, argv);

  util::print_banner(std::cout, "Table I: PoPs and providers (paper setup)");
  util::Table table({"Mux", "Transit Provider", "ASN"});
  for (const auto& mux : core::table1_muxes()) {
    table.add_row({mux.mux, mux.provider_name,
                   "AS" + std::to_string(mux.provider_asn)});
  }
  table.print(std::cout);

  util::print_banner(std::cout, "Emulated substrate (paper: real Internet)");
  const core::PeeringTestbed testbed(options.testbed_config());
  const auto& graph = testbed.graph();
  const auto tier1 = topology::tier1_set(graph);

  util::Table stats({"Property", "Value"});
  stats.add_row({"ASes", std::to_string(graph.size())});
  stats.add_row({"AS-level edges", std::to_string(graph.edge_count())});
  stats.add_row({"tier-1 clique", std::to_string(tier1.size())});
  stats.add_row({"origin ASN", "AS" + std::to_string(testbed.origin().asn)});
  stats.add_row({"peering links",
                 std::to_string(testbed.origin().links.size())});
  stats.add_row({"RIPE-Atlas-style probe ASes",
                 std::to_string(testbed.probe_ases().size())});

  // Poison targets available (the paper identified 347 provider neighbors).
  const auto poison = testbed.generator().poison_phase(graph);
  stats.add_row({"poisoning configurations", std::to_string(poison.size())});
  stats.print(std::cout);

  util::print_banner(std::cout, "Per-provider neighborhood");
  util::Table degrees({"Provider", "Neighbors", "Customers"});
  for (const auto& mux : core::table1_muxes()) {
    const auto id = *graph.id_of(mux.provider_asn);
    degrees.add_row(
        {std::string(mux.provider_name), std::to_string(graph.degree(id)),
         std::to_string(
             graph.neighbors_with(id, topology::Rel::kCustomer).size())});
  }
  degrees.print(std::cout);
  return bench::finish(options, "table1_testbed");
}
