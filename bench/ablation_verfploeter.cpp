// Ablation: passive catchment inference (§IV: BGP feeds + RIPE-Atlas-style
// traceroutes + repair) vs Verfploeter-style active probing (§I). For a
// sample of configurations, both pipelines are compared against routing
// ground truth on coverage and accuracy.
#include <iostream>

#include "common.hpp"
#include "bgp/catchment.hpp"
#include "core/experiment.hpp"
#include "measure/verfploeter.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace spooftrack;
  const auto options = bench::BenchOptions::parse(argc, argv);

  core::TestbedConfig config = options.testbed_config();
  config.measured_catchments = true;
  const core::PeeringTestbed testbed(config);
  const measure::AddressPlan plan(testbed.graph());
  measure::VerfploeterOptions verf_options;
  verf_options.seed = options.seed ^ 0xEC40;
  const measure::VerfploeterProber prober(testbed.graph(), plan,
                                          verf_options);

  // Sample of configurations: the whole location phase.
  auto configs = testbed.generator().location_phase();
  const auto deployment = testbed.deploy(configs);

  util::Accumulator passive_cov, passive_acc, active_cov, active_acc;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto& truth = deployment.truth[i];
    const std::size_t routed = truth.routed_count();

    // Passive pipeline (already computed during deployment).
    const auto& passive = deployment.measured[i];
    std::size_t agree = 0, resolved = 0;
    for (topology::AsId id = 0; id < testbed.graph().size(); ++id) {
      if (!passive.observed[id] ||
          passive.catchments.link_of[id] == bgp::kNoCatchment) {
        continue;
      }
      ++resolved;
      agree += passive.catchments.link_of[id] == truth.link_of[id];
    }
    passive_cov.add(static_cast<double>(resolved) /
                    static_cast<double>(routed));
    passive_acc.add(resolved == 0 ? 0.0
                                  : static_cast<double>(agree) /
                                        static_cast<double>(resolved));

    // Active probing from the prefix.
    const auto outcome = testbed.route(configs[i]);
    const auto active =
        prober.probe(outcome, configs[i], testbed.origin_id(), i);
    std::size_t a_agree = 0, a_resolved = 0;
    for (topology::AsId id = 0; id < testbed.graph().size(); ++id) {
      if (!active.observed[id]) continue;
      ++a_resolved;
      a_agree += active.catchments.link_of[id] == truth.link_of[id];
    }
    active_cov.add(static_cast<double>(a_resolved) /
                   static_cast<double>(routed));
    active_acc.add(a_resolved == 0 ? 0.0
                                   : static_cast<double>(a_agree) /
                                         static_cast<double>(a_resolved));
  }

  util::print_banner(std::cout,
                     "Catchment measurement: passive (SIV) vs active "
                     "(Verfploeter), " +
                         std::to_string(configs.size()) + " configurations");
  util::Table table({"pipeline", "coverage of routed ASes",
                     "accuracy of resolved ASes"});
  table.add_row({"BGP feeds + traceroutes + repair",
                 util::fmt_percent(passive_cov.mean()),
                 util::fmt_percent(passive_acc.mean())});
  table.add_row({"Verfploeter-style active probing",
                 util::fmt_percent(active_cov.mean()),
                 util::fmt_percent(active_acc.mean())});
  table.print(std::cout);

  std::cout << "\nReading: active probing from the anycast prefix gets "
               "near-total coverage with\nexact per-AS catchments (the "
               "paper could not host a prober on PEERING, which is\nwhy it "
               "built the passive pipeline; a production deployment should "
               "prefer active\nmeasurement when the prefix allows it).\n";
  return bench::finish(options, "ablation_verfploeter");
}
