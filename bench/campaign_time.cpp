// Campaign wall-clock model (§IV-a, §V-C): how long does deploying the
// plan take at the paper's 70-minute dwell time, and how many concurrent
// experiment prefixes buy how much speedup?
#include <iostream>

#include "common.hpp"
#include "core/campaign.hpp"
#include "core/config_gen.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace spooftrack;
  const auto options = bench::BenchOptions::parse(argc, argv);

  const core::CampaignModel model;
  const std::size_t phase_counts[] = {
      core::ConfigGenerator::location_phase_size(7, 3),        // 64
      core::ConfigGenerator::location_and_prepend_size(7, 3),  // 358
      705,
  };
  const char* phase_names[] = {"location phase", "+ prepending",
                               "+ poisoning (full plan)"};

  util::print_banner(std::cout,
                     "Campaign duration at the paper's 70-minute dwell");
  std::cout << "(convergence wait " << model.convergence_minutes
            << " min; " << model.traceroute_rounds << " traceroute rounds at "
            << model.traceroute_cadence_minutes
            << "-min cadence; schedule feasible: "
            << (model.feasible() ? "yes" : "NO") << ")\n";

  util::Table table({"plan", "configs", "1 prefix [days]", "2 prefixes",
                     "4 prefixes", "8 prefixes"});
  for (std::size_t p = 0; p < 3; ++p) {
    std::vector<std::string> row{phase_names[p],
                                 std::to_string(phase_counts[p])};
    for (std::uint32_t prefixes : {1u, 2u, 4u, 8u}) {
      core::CampaignModel parallel = model;
      parallel.concurrent_prefixes = prefixes;
      row.push_back(util::fmt_double(parallel.total_days(phase_counts[p]), 1));
    }
    table.add_row(row);
  }
  table.print(std::cout);

  util::print_banner(std::cout,
                     "Prefixes needed to finish the 705-config plan by a "
                     "deadline");
  util::Table deadline({"deadline [days]", "prefixes needed"});
  for (double days : {3.0, 7.0, 14.0, 34.5}) {
    deadline.add_row({util::fmt_double(days, 1),
                      std::to_string(model.prefixes_for_deadline(705, days))});
  }
  deadline.print(std::cout);

  std::cout << "\n" << model.describe(705)
            << " — the paper notes deploying hundreds of configurations "
               "takes weeks,\nmotivating the pre-measured greedy schedules "
               "of Figure 8 and catchment prediction.\n";
  return bench::finish(options, "campaign_time");
}
