#include "common.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <iostream>
#include <thread>

#include "util/parallel.hpp"

#include "core/config_gen.hpp"
#include "core/io.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"

namespace spooftrack::bench {

namespace {

// Started at static initialization: finish() reports wall time for the
// whole process, which is what you want to compare across bench runs.
const obs::Stopwatch process_watch;

[[noreturn]] void usage_and_exit(const char* flag) {
  std::cerr << "unknown or malformed flag: " << flag << "\n"
            << "flags: --seed=N --tier1=N --transit=N --stubs=N --probes=N\n"
            << "       --rounds=N --sequences=N --placements=N\n"
            << "       --greedy-steps=N --ground-truth --cache-dir=PATH\n"
            << "       --no-cache --obs-report=PATH --quick\n";
  std::exit(2);
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  try {
    std::size_t used = 0;
    out = std::stoull(text, &used);
    return used == text.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

BenchOptions BenchOptions::parse(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    std::uint64_t parsed = 0;
    auto want_num = [&]() {
      if (!parse_u64(value, parsed)) usage_and_exit(argv[i]);
      return parsed;
    };
    if (key == "--seed") options.seed = want_num();
    else if (key == "--tier1") options.tier1 = static_cast<std::uint32_t>(want_num());
    else if (key == "--transit") options.transit = static_cast<std::uint32_t>(want_num());
    else if (key == "--stubs") options.stubs = static_cast<std::uint32_t>(want_num());
    else if (key == "--probes") options.probes = static_cast<std::uint32_t>(want_num());
    else if (key == "--rounds") options.rounds = static_cast<std::uint32_t>(want_num());
    else if (key == "--sequences") options.sequences = static_cast<std::uint32_t>(want_num());
    else if (key == "--placements") options.placements = static_cast<std::uint32_t>(want_num());
    else if (key == "--greedy-steps") options.greedy_steps = static_cast<std::uint32_t>(want_num());
    else if (key == "--ground-truth") options.measured = false;
    else if (key == "--cache-dir") options.cache_dir = value;
    else if (key == "--no-cache") options.no_cache = true;
    else if (key == "--obs-report") options.obs_report = value;
    else if (key == "--quick") options.quick = true;
    else usage_and_exit(argv[i]);
  }
  return options;
}

int finish(const BenchOptions& options, std::string_view bench_name,
           const std::function<void(obs::RunReport&)>& decorate) {
  if (options.obs_report.empty()) return 0;
  obs::RunReport report = obs::RunReport::capture(bench_name);
  report.value("wall_ms", process_watch.elapsed_ms());
  // Machine context: every report says what it ran on, so single-core or
  // oversubscribed numbers need no hand-written explanation.
  const unsigned hardware = std::thread::hardware_concurrency();
  report.value("hardware_concurrency", static_cast<double>(hardware));
  report.value("workers",
               static_cast<double>(util::default_worker_count()));
  if (hardware <= 1) {
    // Parallel speedups measured here are meaningless; flag the report so
    // downstream comparisons (CI trend lines, BENCH_*.json readers) can
    // discount them instead of mistaking contention for regression.
    report.label("single_core", "true");
    std::cerr << "[bench] WARNING: single-core host "
              << "(hardware_concurrency <= 1); parallel speedups are not "
              << "meaningful, report flagged single_core=true\n";
  }
  if (decorate) decorate(report);
  try {
    report.save_json_file(options.obs_report);
    std::cerr << "[bench] wrote obs report to " << options.obs_report << "\n";
  } catch (const std::exception& e) {
    std::cerr << "[bench] obs report failed: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

core::TestbedConfig BenchOptions::testbed_config() const {
  core::TestbedConfig config;
  config.seed = seed;
  config.tier1_count = tier1;
  config.transit_count = transit;
  config.stub_count = stubs;
  config.probe_count = probes;
  config.traceroute_rounds = rounds;
  config.measured_catchments = measured;
  config.audit_policies = true;  // Figure 9 shares the standard deployment
  return config;
}

namespace {

std::uint64_t options_key(const BenchOptions& o) {
  std::uint64_t key = o.seed;
  for (std::uint64_t field :
       {std::uint64_t{o.tier1}, std::uint64_t{o.transit},
        std::uint64_t{o.stubs}, std::uint64_t{o.probes},
        std::uint64_t{o.rounds}, std::uint64_t{o.measured ? 1u : 0u}}) {
    key = util::hash_combine(key, field);
  }
  return key;
}

ConfigMeta meta_of(const bgp::Configuration& config, Phase phase) {
  ConfigMeta meta;
  meta.phase = phase;
  for (const auto& spec : config.announcements) {
    meta.active_mask |= 1u << spec.link;
    if (spec.prepend > 0) meta.prepend_mask |= 1u << spec.link;
    if (!spec.poisoned.empty()) {
      meta.poison_link = spec.link;
      meta.poison_asn = spec.poisoned.front();
    }
  }
  return meta;
}

/// Rebuilds the bench view from a (possibly cached) artifact.
StandardDeployment from_artifact(const core::DeploymentArtifact& artifact) {
  StandardDeployment dep;
  dep.location_end = artifact.annotation("location_end");
  dep.prepend_end = artifact.annotation("prepend_end");
  dep.matrix = artifact.matrix;
  dep.source_distance = artifact.source_distance;
  dep.compliance = artifact.compliance;
  dep.mean_multi_catchment = artifact.mean_multi_catchment;
  dep.mean_coverage = artifact.mean_coverage;
  dep.as_count = artifact.as_count;
  dep.link_count = artifact.link_count;
  dep.configs.reserve(artifact.configs.size());
  for (std::size_t i = 0; i < artifact.configs.size(); ++i) {
    const Phase phase = i < dep.location_end  ? Phase::kLocation
                        : i < dep.prepend_end ? Phase::kPrepend
                                              : Phase::kPoison;
    dep.configs.push_back(meta_of(artifact.configs[i], phase));
  }
  return dep;
}

}  // namespace

StandardDeployment run_standard(const BenchOptions& options) {
  const std::uint64_t key = options_key(options);
  const std::string cache_path =
      options.cache_dir + "/standard-" + std::to_string(key) + ".artifact";

  if (!options.no_cache) {
    try {
      const obs::Stopwatch load_watch;
      auto artifact = core::load_artifact_file(cache_path);
      OBS_COUNT("bench.cache_hits", 1);
      OBS_HIST("bench.cache_load_ns", "ns", load_watch.elapsed_ns());
      std::cerr << "[bench] loaded standard deployment from " << cache_path
                << "\n";
      return from_artifact(artifact);
    } catch (const std::exception&) {
      // Cache miss or corruption: fall through and (re)compute.
    }
  }
  OBS_COUNT("bench.cache_misses", 1);

  std::cerr << "[bench] running standard deployment (seed=" << options.seed
            << ", " << options.stubs << " stubs, "
            << (options.measured ? "measured" : "ground-truth")
            << " catchments)...\n";

  const core::PeeringTestbed testbed(options.testbed_config());
  const core::ConfigGenerator generator = testbed.generator();
  auto location = generator.location_phase();
  const auto prepends = generator.prepend_phase(location);
  const auto poisons = generator.poison_phase(testbed.graph());

  std::vector<bgp::Configuration> plan = location;
  plan.insert(plan.end(), prepends.begin(), prepends.end());
  plan.insert(plan.end(), poisons.begin(), poisons.end());

  const std::size_t location_end = location.size();
  const std::size_t prepend_end = location.size() + prepends.size();

  const auto result = testbed.deploy(std::move(plan));
  auto artifact = core::make_artifact(result, options.seed,
                                      testbed.graph().size(),
                                      testbed.origin().links.size());
  artifact.annotate("location_end", location_end);
  artifact.annotate("prepend_end", prepend_end);

  if (!options.no_cache) {
    std::error_code ec;
    std::filesystem::create_directories(options.cache_dir, ec);
    try {
      core::save_artifact_file(artifact, cache_path);
    } catch (const std::exception& e) {
      std::cerr << "[bench] cache write failed: " << e.what() << "\n";
    }
  }
  return from_artifact(artifact);
}

std::vector<double> trajectory(const measure::CatchmentStore& matrix,
                               const std::vector<std::size_t>& rows) {
  std::vector<double> means;
  if (matrix.empty()) return means;
  core::ClusterTracker tracker(matrix.sources());
  means.reserve(rows.size());
  for (std::size_t row : rows) {
    tracker.refine(matrix.row(row));
    means.push_back(tracker.mean_cluster_size());
  }
  return means;
}

std::vector<std::size_t> log_samples(std::size_t n,
                                     std::vector<std::size_t> anchors) {
  std::vector<std::size_t> samples = std::move(anchors);
  for (double x = 1.0; x <= static_cast<double>(n); x *= 1.25) {
    samples.push_back(static_cast<std::size_t>(std::llround(x)));
  }
  samples.push_back(n);
  std::sort(samples.begin(), samples.end());
  samples.erase(std::unique(samples.begin(), samples.end()), samples.end());
  samples.erase(std::remove_if(samples.begin(), samples.end(),
                               [n](std::size_t s) { return s < 1 || s > n; }),
                samples.end());
  return samples;
}

}  // namespace spooftrack::bench
