// Ablation: honeypot vs valid-source inference as the spoofed-volume
// sensor (§III-C offers both).
//
// A honeypot prefix receives no legitimate traffic, so every packet is
// spoofed by construction — perfect labels, but it needs a dedicated
// prefix. A production prefix must instead learn its valid (source,
// ingress-link) pairs from legitimate traffic and label mismatches as
// spoofed. This ablation measures the classifier's precision/recall on
// mixed traffic, and how it degrades when routes change between training
// and the attack (the §V-C trade-off between reusing stale catchments and
// re-measuring).
#include <iostream>

#include "common.hpp"
#include "bgp/catchment.hpp"
#include "core/experiment.hpp"
#include "traffic/background.hpp"
#include "traffic/spoofer.hpp"
#include "traffic/valid_source.hpp"
#include "util/table.hpp"

namespace {

struct Confusion {
  std::size_t true_spoofed = 0;
  std::size_t false_spoofed = 0;   // legit flagged as spoofed
  std::size_t missed_spoofed = 0;  // spoofed classified legit
  std::size_t true_legit = 0;

  double precision() const {
    const auto flagged = true_spoofed + false_spoofed;
    return flagged == 0 ? 0.0
                        : static_cast<double>(true_spoofed) /
                              static_cast<double>(flagged);
  }
  double recall() const {
    const auto spoofed = true_spoofed + missed_spoofed;
    return spoofed == 0 ? 0.0
                        : static_cast<double>(true_spoofed) /
                              static_cast<double>(spoofed);
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace spooftrack;
  const auto options = bench::BenchOptions::parse(argc, argv);

  core::TestbedConfig config = options.testbed_config();
  config.measured_catchments = false;
  const core::PeeringTestbed testbed(config);
  const measure::AddressPlan plan(testbed.graph());

  traffic::BackgroundOptions bg_options;
  bg_options.seed = options.seed ^ 0xBA5E;
  const traffic::BackgroundTrafficModel background(testbed.graph(), plan,
                                                   bg_options);

  // Train on the all-links configuration.
  const auto train_config = testbed.generator().location_phase().front();
  const auto train_outcome = testbed.route(train_config);
  const auto train_map =
      bgp::extract_catchments(train_outcome, train_config);
  traffic::ValidSourceInference inference;
  background.train(inference, train_map);

  // Attack traffic: 5 spoofing ASes, distinct rates, spoofing a victim.
  traffic::SpoofedTrafficGenerator gen(options.seed ^ 0xA77);
  const netcore::Ipv4Addr victim{198, 51, 100, 99};
  std::vector<traffic::SpoofedFlow> flows;
  util::Rng rng{options.seed ^ 0x5F};
  for (std::size_t i = 0; i < 5; ++i) {
    traffic::SpoofedFlow flow;
    flow.source_as = static_cast<topology::AsId>(
        rng.next_below(testbed.graph().size()));
    flow.victim = victim;
    flow.packets_per_second = 50.0 * static_cast<double>(i + 1);
    flows.push_back(flow);
  }

  auto evaluate = [&](const bgp::CatchmentMap& live_map, const char* name) {
    Confusion confusion;
    // Legitimate window under the live routing.
    for (const auto& arrived : background.generate(live_map, 11)) {
      const auto ip = arrived.datagram.ip();
      const auto verdict = inference.classify(arrived.link, ip->source);
      if (verdict == traffic::SourceVerdict::kLegitimate) {
        ++confusion.true_legit;
      } else {
        ++confusion.false_spoofed;
      }
    }
    // Spoofed packets under the live routing.
    for (const auto& arrived : gen.deliver(flows, live_map, 1.0, 200)) {
      const auto ip = arrived.datagram.ip();
      const auto verdict = inference.classify(arrived.link, ip->source);
      if (verdict == traffic::SourceVerdict::kLegitimate) {
        ++confusion.missed_spoofed;
      } else {
        ++confusion.true_spoofed;
      }
    }
    util::Table table({"metric", "value"});
    table.add_row({"legit packets accepted",
                   std::to_string(confusion.true_legit)});
    table.add_row({"legit flagged spoofed (false alarms)",
                   std::to_string(confusion.false_spoofed)});
    table.add_row({"spoofed detected", std::to_string(confusion.true_spoofed)});
    table.add_row({"spoofed missed", std::to_string(confusion.missed_spoofed)});
    table.add_row({"precision", util::fmt_percent(confusion.precision())});
    table.add_row({"recall", util::fmt_percent(confusion.recall())});
    util::print_banner(std::cout, name);
    table.print(std::cout);
    return confusion;
  };

  // Scenario 1: routes unchanged since training.
  const auto stable = evaluate(train_map, "Routes unchanged since training");

  // Scenario 2: a link was withdrawn after training (stale classifier).
  bgp::Configuration shifted;
  shifted.label = "withdrawn l0";
  for (const auto& link : testbed.origin().links) {
    if (link.id != 0) shifted.announcements.push_back({link.id, 0, {}, {}});
  }
  const auto shifted_outcome = testbed.route(shifted);
  const auto shifted_map = bgp::extract_catchments(shifted_outcome, shifted);
  const auto stale = evaluate(
      shifted_map, "Routes changed after training (link 0 withdrawn)");

  std::cout << "\nReading: with fresh training the classifier is "
            << util::fmt_percent(stable.precision()) << " precise at "
            << util::fmt_percent(stable.recall())
            << " recall; after a route change the false-alarm count jumps ("
            << stale.false_spoofed
            << " legitimate packets now arrive on 'wrong' links) — the "
               "paper's §V-C trade-off\nbetween reusing stale catchments "
               "and spending time re-measuring.\n";
  return bench::finish(options, "ablation_valid_source");
}
