// Table II: qualitative comparison of IP traceback proposals. The table is
// a taxonomy from the paper's related-work analysis; we reprint it so the
// bench suite regenerates every table, and annotate the row implemented by
// this library.
#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace spooftrack;
  const auto options = bench::BenchOptions::parse(argc, argv);
  util::print_banner(std::cout,
                     "Table II: summary of proposals for IP traceback");
  util::Table table({"Approach", "Manipulates", "Cooperation",
                     "Router updates", "Overhead", "Precision", "Delay"});
  table.add_row({"Manual", "Logs/monitoring", "Required", "No", "No",
                 "Path prefix", "Long"});
  table.add_row({"Flooding [Burch/Cheswick]", "Packet loss", "Required", "No",
                 "High", "Path prefix", "Moderate"});
  table.add_row({"Marking [Savage et al.]", "IP ID field", "Deployment",
                 "Yes", "Low", "Closest router", "~sampling"});
  table.add_row({"Out-of-band [ICMP traceback]", "-", "Deployment", "Yes",
                 "High", "Closest router", "~sampling"});
  table.add_row({"Digest-based [SPIE]", "Router state", "Deployment", "Yes",
                 "High", "Closest router", "Low"});
  table.add_row({"Routing (this paper / this library)", "Routes", "No", "No",
                 "No", "AS", "Long"});
  table.print(std::cout);

  std::cout << "\nThe last row is the approach this library implements:\n"
               "the origin manipulates only its own BGP announcements\n"
               "(anycast location sets, prepending, poisoning) and needs\n"
               "no router changes or third-party cooperation.\n";
  return bench::finish(options, "table2_traceback");
}
