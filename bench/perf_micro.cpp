// Engineering micro-benchmarks (google-benchmark): throughput of the
// components the evaluation leans on — the path-vector engine, cluster
// refinement, LPM lookups, packet serialization, and the traceroute-repair
// pipeline. These back DESIGN.md's performance claims and the ablations
// (e.g. the epoch-stamped cluster refinement that makes Figure 8's random
// ensembles affordable).
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bgp/catchment.hpp"
#include "bgp/engine.hpp"
#include "core/bitplane_kernels.hpp"
#include "core/cluster.hpp"
#include "core/experiment.hpp"
#include "measure/bitplane_store.hpp"
#include "measure/catchment_store.hpp"
#include "measure/repair.hpp"
#include "netcore/lpm.hpp"
#include "netcore/packet.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace {

using namespace spooftrack;

const core::PeeringTestbed& testbed_for(std::int64_t stubs) {
  static std::map<std::int64_t, std::unique_ptr<core::PeeringTestbed>> cache;
  auto& slot = cache[stubs];
  if (!slot) {
    core::TestbedConfig config;
    config.seed = 7;
    config.stub_count = static_cast<std::uint32_t>(stubs);
    config.transit_count = 120;
    config.probe_count = 400;
    slot = std::make_unique<core::PeeringTestbed>(config);
  }
  return *slot;
}

void BM_EnginePropagation(benchmark::State& state) {
  const auto& testbed = testbed_for(state.range(0));
  const auto config = testbed.generator().location_phase().front();
  for (auto _ : state) {
    auto outcome = testbed.engine().run(testbed.origin(), config);
    benchmark::DoNotOptimize(outcome.best.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(testbed.graph().size()));
}
BENCHMARK(BM_EnginePropagation)->Arg(500)->Arg(2000)->Arg(4000);

void BM_EngineNoActivityTracking(benchmark::State& state) {
  // Ablation: the same propagation with activity tracking disabled — every
  // AS recomputes every round.
  const auto& testbed = testbed_for(2000);
  bgp::EngineOptions options;
  options.activity_tracking = false;
  const bgp::Engine engine(testbed.graph(), testbed.policy(), options);
  const auto config = testbed.generator().location_phase().front();
  for (auto _ : state) {
    auto outcome = engine.run(testbed.origin(), config);
    benchmark::DoNotOptimize(outcome.best.data());
  }
}
BENCHMARK(BM_EngineNoActivityTracking);

void BM_EngineWithPoisoning(benchmark::State& state) {
  const auto& testbed = testbed_for(2000);
  auto configs = testbed.generator().poison_phase(testbed.graph());
  configs.resize(1);
  for (auto _ : state) {
    auto outcome = testbed.engine().run(testbed.origin(), configs[0]);
    benchmark::DoNotOptimize(outcome.best.data());
  }
}
BENCHMARK(BM_EngineWithPoisoning);

void BM_ClusterRefine(benchmark::State& state) {
  const auto sources = static_cast<std::size_t>(state.range(0));
  util::Rng rng{3};
  std::vector<std::vector<bgp::LinkId>> rows(32,
                                             std::vector<bgp::LinkId>(sources));
  for (auto& row : rows) {
    for (auto& cell : row) cell = static_cast<bgp::LinkId>(rng.next_below(7));
  }
  std::size_t i = 0;
  core::ClusterTracker tracker(sources);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.refine(rows[i++ & 31]));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sources));
}
BENCHMARK(BM_ClusterRefine)->Arg(1000)->Arg(10000);

measure::CatchmentStore micro_matrix(std::size_t configs,
                                     std::size_t sources) {
  util::Rng rng{11};
  measure::CatchmentStore store(0, sources);
  std::vector<std::uint8_t> row(sources);
  for (std::size_t c = 0; c < configs; ++c) {
    for (auto& cell : row) {
      cell = rng.chance(0.02) ? bgp::kNoCatchment8
                              : static_cast<std::uint8_t>(rng.next_below(7));
    }
    store.append_row(std::span<const std::uint8_t>(row));
  }
  return store;
}

void BM_PopcountWords(benchmark::State& state) {
  // Dispatched popcount reduction (wide path when the host supports it);
  // compare against BM_PopcountWordsScalar for the SIMD ablation.
  util::Rng rng{13};
  std::vector<std::uint64_t> words(static_cast<std::size_t>(state.range(0)));
  for (auto& w : words) w = rng.next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::popcount_words(words.data(), words.size()));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(words.size() * 8));
}
BENCHMARK(BM_PopcountWords)->Arg(1024)->Arg(65536);

void BM_PopcountWordsScalar(benchmark::State& state) {
  util::Rng rng{13};
  std::vector<std::uint64_t> words(static_cast<std::size_t>(state.range(0)));
  for (auto& w : words) w = rng.next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        util::popcount_words_scalar(words.data(), words.size()));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(words.size() * 8));
}
BENCHMARK(BM_PopcountWordsScalar)->Arg(1024)->Arg(65536);

void BM_BitplaneBuild(benchmark::State& state) {
  // Byte store -> bit-sliced planes transpose (dispatched build kernel).
  const auto store = micro_matrix(128, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    measure::BitplaneStore planes(store);
    benchmark::DoNotOptimize(planes.row_planes(0));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(store.size_bytes()));
}
BENCHMARK(BM_BitplaneBuild)->Arg(1000)->Arg(10000);

void BM_BitplaneCountAfter(benchmark::State& state) {
  // The greedy scheduler's inner loop: presence-bitmap distinct-slot count
  // of one candidate row against a partially refined clustering. Compare
  // against BM_ClusterRefine for the per-source stamp-table cost.
  const auto sources = static_cast<std::size_t>(state.range(0));
  const auto store = micro_matrix(64, sources);
  const measure::BitplaneStore planes(store);
  core::ClusterTracker tracker(sources);
  for (std::size_t c = 0; c < store.configs(); c += 8) {
    tracker.refine(store.row(c));
  }
  core::ClusterMasks masks;
  masks.build(tracker.current().cluster_of, tracker.cluster_count(),
              tracker.singleton_mask());
  std::size_t config = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::count_after_bitplane(
        masks, tracker.singleton_count(), store.row(config).data(),
        planes.row_planes(config), planes.words(), 0));
    config = (config + 1) % store.configs();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sources));
}
BENCHMARK(BM_BitplaneCountAfter)->Arg(1000)->Arg(10000);

void BM_MemberCountAfter(benchmark::State& state) {
  // Same count through the member-list kernel (the scheduler's pick once
  // refinement scatters clusters across words).
  const auto sources = static_cast<std::size_t>(state.range(0));
  const auto store = micro_matrix(64, sources);
  core::ClusterTracker tracker(sources);
  for (std::size_t c = 0; c < store.configs(); c += 8) {
    tracker.refine(store.row(c));
  }
  core::ClusterMasks masks;
  masks.build(tracker.current().cluster_of, tracker.cluster_count(),
              tracker.singleton_mask());
  std::size_t config = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::count_after_members(
        masks, tracker.singleton_count(), store.row(config).data(), 0));
    config = (config + 1) % store.configs();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sources));
}
BENCHMARK(BM_MemberCountAfter)->Arg(1000)->Arg(10000);

void BM_ColumnGather(benchmark::State& state) {
  // Tiled trajectory gather (attribution / prediction access pattern):
  // 64 columns of a 1024-config matrix into contiguous buffers.
  const auto store = micro_matrix(1024, static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint32_t> sources(64);
  for (std::size_t j = 0; j < sources.size(); ++j) {
    sources[j] = static_cast<std::uint32_t>(j * (store.sources() / 64));
  }
  std::vector<std::uint8_t> out(sources.size() * store.configs());
  for (auto _ : state) {
    store.gather_columns(sources, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(out.size()));
}
BENCHMARK(BM_ColumnGather)->Arg(512)->Arg(4096);

void BM_LpmLookup(benchmark::State& state) {
  util::Rng rng{5};
  netcore::LpmTable<std::uint32_t> table;
  for (std::uint32_t i = 0; i < 10000; ++i) {
    const auto len = static_cast<std::uint8_t>(rng.uniform_int(8, 24));
    table.insert(netcore::Ipv4Prefix::make(
                     netcore::Ipv4Addr{static_cast<std::uint32_t>(rng.next())},
                     len),
                 i);
  }
  std::uint32_t x = 12345;
  for (auto _ : state) {
    x = x * 1664525 + 1013904223;
    benchmark::DoNotOptimize(table.lookup(netcore::Ipv4Addr{x}));
  }
}
BENCHMARK(BM_LpmLookup);

void BM_DatagramBuild(benchmark::State& state) {
  const std::vector<std::uint8_t> payload(64, 0xAB);
  for (auto _ : state) {
    auto d = netcore::Datagram::make_udp(netcore::Ipv4Addr{10, 0, 0, 1},
                                         netcore::Ipv4Addr{10, 0, 0, 2}, 1234,
                                         53, payload);
    benchmark::DoNotOptimize(d.bytes().data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload.size() + 28));
}
BENCHMARK(BM_DatagramBuild);

void BM_MeasurementPipeline(benchmark::State& state) {
  // One configuration's full measured pipeline on a small testbed.
  core::TestbedConfig config;
  config.seed = 9;
  config.stub_count = 500;
  config.transit_count = 60;
  config.probe_count = 200;
  const core::PeeringTestbed testbed(config);
  auto configs = testbed.generator().location_phase();
  configs.resize(1);
  for (auto _ : state) {
    auto result = testbed.deploy(configs);
    benchmark::DoNotOptimize(result.matrix.data());
  }
}
BENCHMARK(BM_MeasurementPipeline);

}  // namespace

BENCHMARK_MAIN();
