// Engineering micro-benchmarks (google-benchmark): throughput of the
// components the evaluation leans on — the path-vector engine, cluster
// refinement, LPM lookups, packet serialization, and the traceroute-repair
// pipeline. These back DESIGN.md's performance claims and the ablations
// (e.g. the epoch-stamped cluster refinement that makes Figure 8's random
// ensembles affordable).
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bgp/catchment.hpp"
#include "bgp/engine.hpp"
#include "core/cluster.hpp"
#include "core/experiment.hpp"
#include "measure/repair.hpp"
#include "netcore/lpm.hpp"
#include "netcore/packet.hpp"
#include "util/rng.hpp"

namespace {

using namespace spooftrack;

const core::PeeringTestbed& testbed_for(std::int64_t stubs) {
  static std::map<std::int64_t, std::unique_ptr<core::PeeringTestbed>> cache;
  auto& slot = cache[stubs];
  if (!slot) {
    core::TestbedConfig config;
    config.seed = 7;
    config.stub_count = static_cast<std::uint32_t>(stubs);
    config.transit_count = 120;
    config.probe_count = 400;
    slot = std::make_unique<core::PeeringTestbed>(config);
  }
  return *slot;
}

void BM_EnginePropagation(benchmark::State& state) {
  const auto& testbed = testbed_for(state.range(0));
  const auto config = testbed.generator().location_phase().front();
  for (auto _ : state) {
    auto outcome = testbed.engine().run(testbed.origin(), config);
    benchmark::DoNotOptimize(outcome.best.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(testbed.graph().size()));
}
BENCHMARK(BM_EnginePropagation)->Arg(500)->Arg(2000)->Arg(4000);

void BM_EngineNoActivityTracking(benchmark::State& state) {
  // Ablation: the same propagation with activity tracking disabled — every
  // AS recomputes every round.
  const auto& testbed = testbed_for(2000);
  bgp::EngineOptions options;
  options.activity_tracking = false;
  const bgp::Engine engine(testbed.graph(), testbed.policy(), options);
  const auto config = testbed.generator().location_phase().front();
  for (auto _ : state) {
    auto outcome = engine.run(testbed.origin(), config);
    benchmark::DoNotOptimize(outcome.best.data());
  }
}
BENCHMARK(BM_EngineNoActivityTracking);

void BM_EngineWithPoisoning(benchmark::State& state) {
  const auto& testbed = testbed_for(2000);
  auto configs = testbed.generator().poison_phase(testbed.graph());
  configs.resize(1);
  for (auto _ : state) {
    auto outcome = testbed.engine().run(testbed.origin(), configs[0]);
    benchmark::DoNotOptimize(outcome.best.data());
  }
}
BENCHMARK(BM_EngineWithPoisoning);

void BM_ClusterRefine(benchmark::State& state) {
  const auto sources = static_cast<std::size_t>(state.range(0));
  util::Rng rng{3};
  std::vector<std::vector<bgp::LinkId>> rows(32,
                                             std::vector<bgp::LinkId>(sources));
  for (auto& row : rows) {
    for (auto& cell : row) cell = static_cast<bgp::LinkId>(rng.next_below(7));
  }
  std::size_t i = 0;
  core::ClusterTracker tracker(sources);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.refine(rows[i++ & 31]));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sources));
}
BENCHMARK(BM_ClusterRefine)->Arg(1000)->Arg(10000);

void BM_LpmLookup(benchmark::State& state) {
  util::Rng rng{5};
  netcore::LpmTable<std::uint32_t> table;
  for (std::uint32_t i = 0; i < 10000; ++i) {
    const auto len = static_cast<std::uint8_t>(rng.uniform_int(8, 24));
    table.insert(netcore::Ipv4Prefix::make(
                     netcore::Ipv4Addr{static_cast<std::uint32_t>(rng.next())},
                     len),
                 i);
  }
  std::uint32_t x = 12345;
  for (auto _ : state) {
    x = x * 1664525 + 1013904223;
    benchmark::DoNotOptimize(table.lookup(netcore::Ipv4Addr{x}));
  }
}
BENCHMARK(BM_LpmLookup);

void BM_DatagramBuild(benchmark::State& state) {
  const std::vector<std::uint8_t> payload(64, 0xAB);
  for (auto _ : state) {
    auto d = netcore::Datagram::make_udp(netcore::Ipv4Addr{10, 0, 0, 1},
                                         netcore::Ipv4Addr{10, 0, 0, 2}, 1234,
                                         53, payload);
    benchmark::DoNotOptimize(d.bytes().data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload.size() + 28));
}
BENCHMARK(BM_DatagramBuild);

void BM_MeasurementPipeline(benchmark::State& state) {
  // One configuration's full measured pipeline on a small testbed.
  core::TestbedConfig config;
  config.seed = 9;
  config.stub_count = 500;
  config.transit_count = 60;
  config.probe_count = 200;
  const core::PeeringTestbed testbed(config);
  auto configs = testbed.generator().location_phase();
  configs.resize(1);
  for (auto _ : state) {
    auto result = testbed.deploy(configs);
    benchmark::DoNotOptimize(result.matrix.data());
  }
}
BENCHMARK(BM_MeasurementPipeline);

}  // namespace

BENCHMARK_MAIN();
