// Streaming deploy pipeline: wall-clock and peak-RSS comparison of the
// barrier deploy schedule (propagate everything, then measure everything,
// then analyse) against the pipeline-executor schedule that overlaps
// propagation of config i+1 with measurement of config i and the analysis
// commit of config i-1 (core::PipelineMode, docs/architecture.md).
//
// Every run is digested (truth, rounds, sources, matrix, means) and the
// bench fails — exit nonzero, "equivalent": false — if any schedule or
// worker count diverges from the barrier reference: the speedup claim is
// only meaningful over identical results.
//
// Peak-RSS methodology: ru_maxrss is a process-lifetime high-water mark,
// so the streaming runs go FIRST; the barrier run afterwards raises the
// mark by exactly the additional memory its bulk MeasurementTask snapshots
// need beyond the streaming peak. That delta is the reported reduction.
//
// Usage: perf_pipeline [--quick] [--stubs=N] [--seed=N] [--obs-report=PATH]
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common.hpp"
#include "core/config_gen.hpp"
#include "core/experiment.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace spooftrack;

long max_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) return usage.ru_maxrss;
#endif
  return 0;
}

std::uint64_t digest(const core::DeploymentResult& result) {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  const auto mix = [&h](std::uint64_t v) { h = util::hash_combine(h, v); };
  for (const std::uint32_t rounds : result.engine_rounds) mix(rounds);
  for (const topology::AsId id : result.sources) mix(id);
  for (const std::uint32_t d : result.min_route_distance) mix(d);
  for (const auto& truth : result.truth) {
    for (const bgp::LinkId link : truth.link_of) mix(link);
  }
  const std::uint8_t* cells = result.matrix.data();
  for (std::size_t i = 0; i < result.matrix.size_bytes(); ++i) mix(cells[i]);
  for (const auto& inferred : result.measured) mix(inferred.covered_count);
  mix(static_cast<std::uint64_t>(result.mean_coverage * 1e6));
  mix(static_cast<std::uint64_t>(result.mean_multi_catchment * 1e9));
  return h;
}

struct Run {
  double ms = 0.0;
  std::uint64_t checksum = 0;
};

Run deploy_once(core::TestbedConfig config, core::PipelineMode mode,
                std::size_t workers,
                const std::vector<bgp::Configuration>& plan) {
  config.pipeline = mode;
  config.measure_workers = workers;
  const core::PeeringTestbed testbed(config);
  const obs::Stopwatch watch;
  const auto result = testbed.deploy(plan);
  return {watch.elapsed_ms(), digest(result)};
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::BenchOptions::parse(argc, argv);
  if (options.quick) {
    options.stubs = 400;
    options.transit = 60;
    options.probes = 150;
    options.rounds = 2;
  }

  core::TestbedConfig config = options.testbed_config();
  config.pipeline_depth = 2;

  // Plan: location + prepending phases (memo fan-out included), capped so
  // the bench finishes in seconds, not the standard deployment's minutes.
  const core::PeeringTestbed planner(config);
  auto plan = planner.generator().location_phase();
  const auto prepends = planner.generator().prepend_phase(plan);
  plan.insert(plan.end(), prepends.begin(), prepends.end());
  const std::size_t cap = options.quick ? 16 : 48;
  if (plan.size() > cap) plan.resize(cap);

  std::cerr << "[bench] " << plan.size() << " configurations, "
            << planner.graph().size() << " ASes\n";

  // --- Phase 1: streaming runs (first, so the RSS high-water mark is the
  // streaming peak when the barrier run starts). Workers=1 doubles as the
  // single-threaded RSS probe.
  Run pipe1 = deploy_once(config, core::PipelineMode::kOn, 1, plan);
  pipe1.ms = std::min(
      pipe1.ms, deploy_once(config, core::PipelineMode::kOn, 1, plan).ms);
  const long rss_after_pipeline_kb = max_rss_kb();

  const std::vector<std::size_t> worker_counts = {2, 4, 8};
  std::vector<Run> pipelined;
  for (const std::size_t workers : worker_counts) {
    pipelined.push_back(
        deploy_once(config, core::PipelineMode::kOn, workers, plan));
  }

  // --- Phase 2: barrier runs.
  Run barrier1 = deploy_once(config, core::PipelineMode::kOff, 1, plan);
  const long rss_after_barrier_kb = max_rss_kb();
  barrier1.ms = std::min(
      barrier1.ms, deploy_once(config, core::PipelineMode::kOff, 1, plan).ms);

  std::vector<Run> barrier;
  for (const std::size_t workers : worker_counts) {
    barrier.push_back(
        deploy_once(config, core::PipelineMode::kOff, workers, plan));
  }

  bool equivalent = pipe1.checksum == barrier1.checksum;
  for (std::size_t i = 0; i < worker_counts.size(); ++i) {
    equivalent = equivalent && pipelined[i].checksum == barrier1.checksum &&
                 barrier[i].checksum == barrier1.checksum;
  }
  const long rss_delta_kb = rss_after_barrier_kb - rss_after_pipeline_kb;

  std::cout << "{\n"
            << "  \"bench\": \"perf_pipeline\",\n"
            << "  \"configs\": " << plan.size() << ",\n"
            << "  \"as_count\": " << planner.graph().size() << ",\n"
            << "  \"barrier_ms_w1\": " << util::fmt_double(barrier1.ms, 2)
            << ",\n"
            << "  \"pipeline_ms_w1\": " << util::fmt_double(pipe1.ms, 2)
            << ",\n";
  for (std::size_t i = 0; i < worker_counts.size(); ++i) {
    const std::string w = std::to_string(worker_counts[i]);
    const double speedup =
        pipelined[i].ms > 0.0 ? barrier[i].ms / pipelined[i].ms : 0.0;
    std::cout << "  \"barrier_ms_w" << w << "\": "
              << util::fmt_double(barrier[i].ms, 2) << ",\n"
              << "  \"pipeline_ms_w" << w << "\": "
              << util::fmt_double(pipelined[i].ms, 2) << ",\n"
              << "  \"speedup_w" << w << "\": " << util::fmt_double(speedup, 2)
              << ",\n";
  }
  std::cout << "  \"peak_rss_after_pipeline_kb\": " << rss_after_pipeline_kb
            << ",\n"
            << "  \"barrier_extra_rss_kb\": " << rss_delta_kb << ",\n"
            << "  \"equivalent\": " << (equivalent ? "true" : "false") << "\n"
            << "}\n";

  const int rc = bench::finish(options, "perf_pipeline", [&](auto& report) {
    report.value("configs", static_cast<double>(plan.size()))
        .value("as_count", static_cast<double>(planner.graph().size()))
        .value("barrier_ms_w1", barrier1.ms)
        .value("pipeline_ms_w1", pipe1.ms)
        .value("peak_rss_after_pipeline_kb",
               static_cast<double>(rss_after_pipeline_kb))
        .value("barrier_extra_rss_kb", static_cast<double>(rss_delta_kb))
        .label("equivalent", equivalent ? "true" : "false");
    for (std::size_t i = 0; i < worker_counts.size(); ++i) {
      const std::string w = std::to_string(worker_counts[i]);
      report.value("barrier_ms_w" + w, barrier[i].ms)
          .value("pipeline_ms_w" + w, pipelined[i].ms)
          .value("speedup_w" + w, pipelined[i].ms > 0.0
                                      ? barrier[i].ms / pipelined[i].ms
                                      : 0.0);
    }
  });

  if (!equivalent) {
    std::cerr << "FAIL: pipelined deployment diverged from the barrier "
                 "reference\n";
    return 1;
  }
  return rc;
}
