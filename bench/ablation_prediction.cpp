// Ablation: catchment prediction (§V-C / §VIII future work).
//
// Trains the pairwise-preference predictor on the location phase of the
// standard deployment and answers two questions:
//   1. How accurately does it predict the catchments of configurations it
//      has never seen (held-out location configs, the prepending phase,
//      and — stressing the model — the poisoning phase)?
//   2. Does prediction-assisted scheduling help? We compute a greedy
//      deployment order from *predicted* catchments only, then replay that
//      order against the *actual* catchments and compare with the random
//      baseline and the oracle greedy order of Figure 8.
#include <iostream>

#include "common.hpp"
#include "core/prediction.hpp"
#include "core/scheduler.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace spooftrack;
  const auto options = bench::BenchOptions::parse(argc, argv);
  const auto dep = bench::run_standard(options);

  // Reconstruct ConfigDescriptors from the cached metadata.
  std::vector<core::ConfigDescriptor> descriptors(dep.configs.size());
  for (std::size_t i = 0; i < dep.configs.size(); ++i) {
    descriptors[i].active_mask = dep.configs[i].active_mask;
    descriptors[i].prepend_mask = dep.configs[i].prepend_mask;
  }

  // --- 1. Accuracy ---------------------------------------------------------
  core::CatchmentPredictor predictor(dep.source_count(), dep.link_count);
  std::vector<std::size_t> held_out_location;
  for (std::size_t i = 0; i < dep.location_end; ++i) {
    if (i % 5 == 3) {
      held_out_location.push_back(i);
    } else {
      predictor.observe(descriptors[i], dep.matrix[i]);
    }
  }

  auto mean_accuracy = [&](std::size_t begin, std::size_t end) {
    util::Accumulator acc;
    for (std::size_t i = begin; i < end; ++i) {
      acc.add(predictor.accuracy(descriptors[i], dep.matrix[i]));
    }
    return acc.mean();
  };

  util::print_banner(std::cout,
                     "Prediction accuracy (trained on location phase)");
  util::Table accuracy({"evaluation set", "configs", "mean accuracy"});
  {
    util::Accumulator acc;
    for (std::size_t i : held_out_location) {
      acc.add(predictor.accuracy(descriptors[i], dep.matrix[i]));
    }
    accuracy.add_row({"held-out location configs",
                      std::to_string(held_out_location.size()),
                      util::fmt_percent(acc.mean())});
  }
  accuracy.add_row(
      {"prepending phase",
       std::to_string(dep.prepend_end - dep.location_end),
       util::fmt_percent(mean_accuracy(dep.location_end, dep.prepend_end))});
  accuracy.add_row(
      {"poisoning phase (model is poison-blind)",
       std::to_string(dep.configs.size() - dep.prepend_end),
       util::fmt_percent(mean_accuracy(dep.prepend_end, dep.configs.size()))});
  accuracy.print(std::cout);

  // --- 2. Prediction-assisted scheduling ------------------------------------
  // Predicted matrix for every configuration, from location-phase training.
  measure::CatchmentStore predicted;
  for (std::size_t i = 0; i < dep.matrix.size(); ++i) {
    const auto row = predictor.predict_row(descriptors[i]);
    predicted.append_row(std::span<const bgp::LinkId>(row));
  }

  const std::size_t horizon = options.greedy_steps;
  const auto oracle = core::greedy_schedule(dep.matrix, horizon);
  const auto assisted_plan = core::greedy_schedule(predicted, horizon);
  const auto ensemble =
      core::random_ensemble(dep.matrix, options.sequences,
                            options.seed ^ 0xAB1, horizon);

  // Replay the predicted order against reality.
  core::ClusterTracker replay(dep.source_count());
  std::vector<double> assisted(horizon);
  for (std::size_t k = 0; k < assisted_plan.order.size() && k < horizon;
       ++k) {
    replay.refine(dep.matrix[assisted_plan.order[k]]);
    assisted[k] = replay.mean_cluster_size();
  }

  util::print_banner(std::cout,
                     "Prediction-assisted scheduling (mean cluster size)");
  util::Table table({"configs", "random median", "prediction-assisted",
                     "oracle greedy"});
  for (std::size_t n : bench::log_samples(horizon, {10})) {
    table.add_row({std::to_string(n),
                   util::fmt_double(ensemble.p50[n - 1], 2),
                   util::fmt_double(assisted[n - 1], 2),
                   util::fmt_double(oracle.mean_cluster_size[n - 1], 2)});
  }
  table.print(std::cout);
  std::cout << "\nReading: predicted catchments recover most of the oracle's "
               "advantage without\npre-deploying anything beyond the "
               "location phase.\n";
  return bench::finish(options, "ablation_prediction");
}
