// Measurement-plane throughput: the MeasurementDriver acceptance bench.
//
// For each topology size it routes a handful of announcement
// configurations (untimed), then measures, best-of-N:
//
//   * the legacy serial pipeline, reimplemented verbatim as it ran inline
//     in PeeringTestbed::deploy before the driver existed: per config,
//     collect feeds, walk the routing outcome once per traceroute round
//     (TracerouteSim::run), repair the batch with owned-vector
//     substitution indexes, infer with a per-call vote buffer;
//   * MeasurementDriver::run over snapshot tasks (feed collection and
//     path extraction included in the timed region), across a worker
//     sweep.
//
// The legacy reference allocates exactly where the old code allocated —
// per-pair interior vectors in both substitution indexes, fresh hop and
// mapping buffers per trace, a fresh vote matrix per config — so every
// speedup is attributable to the driver's scratch reuse, slice-pooled
// indexes, and shared per-config forwarding paths. Equivalence is asserted
// bit-for-bit: every worker count must reproduce the legacy
// InferenceResults exactly or the bench exits non-zero.
//
// Usage: perf_measure [--seed=N] [--obs-report=PATH] [--quick]
#include <cstdint>
#include <iostream>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common.hpp"
#include "core/experiment.hpp"
#include "measure/driver.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace spooftrack;

constexpr std::uint32_t kRounds = 2;

struct Size {
  const char* name;
  std::uint32_t tier1, transit, stubs, probes, feed_peers;
  std::size_t configs;
  std::uint32_t repeats;
};

constexpr Size kSizes[] = {
    {"small", 4, 40, 400, 120, 60, 8, 5},
    {"medium", 6, 80, 1200, 400, 150, 12, 3},
    {"large", 8, 150, 2500, 800, 250, 16, 3},
};
constexpr Size kQuickSizes[] = {{"quick", 4, 16, 120, 40, 30, 3, 1}};

constexpr std::size_t kWorkerCounts[] = {1, 2, 4, 8};
constexpr std::size_t kQuickWorkerCounts[] = {1};

// --- Legacy reference: the pre-driver inline pipeline ---------------------

namespace legacy {

constexpr std::size_t kWindow = measure::PathRepair::kSubstitutionWindow;

std::uint64_t pack(std::uint64_t a, std::uint64_t b) {
  return (a << 32) | (b & 0xFFFFFFFFULL);
}

template <typename T>
struct SeqEntry {
  std::vector<T> seq;
  bool conflict = false;
};

template <typename T>
void record(std::unordered_map<std::uint64_t, SeqEntry<T>>& map,
            std::uint64_t key, const std::vector<T>& interior) {
  const auto it = map.find(key);
  if (it == map.end()) {
    map.emplace(key, SeqEntry<T>{interior});
    return;
  }
  if (!it->second.conflict && it->second.seq != interior) {
    it->second.conflict = true;
  }
}

using AddrSeqMap =
    std::unordered_map<std::uint64_t, SeqEntry<netcore::Ipv4Addr>>;
using AsnSeqMap = std::unordered_map<std::uint64_t, SeqEntry<topology::Asn>>;

AddrSeqMap build_address_index(std::span<const measure::Traceroute> traces) {
  AddrSeqMap map;
  for (const measure::Traceroute& trace : traces) {
    const auto& hops = trace.hops;
    for (std::size_t i = 0; i < hops.size(); ++i) {
      if (!hops[i].responsive()) continue;
      std::vector<netcore::Ipv4Addr> interior;
      for (std::size_t j = i + 1; j < hops.size() && j - i <= kWindow + 1;
           ++j) {
        if (!hops[j].responsive()) break;
        record(map, pack(hops[i].address->value(), hops[j].address->value()),
               interior);
        interior.push_back(*hops[j].address);
      }
    }
  }
  return map;
}

AsnSeqMap build_feed_index(std::span<const measure::FeedEntry> feeds,
                           topology::Asn origin_asn) {
  AsnSeqMap map;
  for (const measure::FeedEntry& feed : feeds) {
    std::vector<topology::Asn> path;
    for (topology::Asn asn : feed.as_path) {
      if (path.empty() || path.back() != asn) path.push_back(asn);
    }
    for (std::size_t i = 0; i < path.size(); ++i) {
      std::vector<topology::Asn> interior;
      for (std::size_t j = i + 1; j < path.size() && j - i <= kWindow + 1;
           ++j) {
        if (j - i >= 2 && path[j - 1] == origin_asn) break;
        record(map, pack(path[i], path[j]), interior);
        interior.push_back(path[j]);
      }
    }
  }
  return map;
}

std::vector<measure::TracerouteHop> substitute_unresponsive(
    const std::vector<measure::TracerouteHop>& hops, const AddrSeqMap& index) {
  std::vector<measure::TracerouteHop> out;
  out.reserve(hops.size());
  std::size_t i = 0;
  while (i < hops.size()) {
    if (hops[i].responsive()) {
      out.push_back(hops[i]);
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < hops.size() && !hops[j].responsive()) ++j;
    const bool has_left = !out.empty() && out.back().responsive();
    const bool has_right = j < hops.size();
    bool substituted = false;
    if (has_left && has_right && j - i <= kWindow) {
      const auto it = index.find(pack(out.back().address->value(),
                                      hops[j].address->value()));
      if (it != index.end() && !it->second.conflict) {
        for (netcore::Ipv4Addr addr : it->second.seq) out.push_back({addr});
        substituted = true;
      }
    }
    if (!substituted) {
      for (std::size_t k = i; k < j; ++k) out.push_back(hops[k]);
    }
    i = j;
  }
  return out;
}

measure::AsLevelPath finish_mapping(
    const topology::AsGraph& graph, const measure::Ip2AsMap& ip2as,
    const measure::IxpTable& ixps, topology::Asn origin_asn,
    topology::AsId probe, const std::vector<measure::TracerouteHop>& hops,
    const AsnSeqMap* feed_index) {
  std::vector<std::optional<topology::Asn>> mapped;
  mapped.reserve(hops.size());
  for (const measure::TracerouteHop& hop : hops) {
    if (!hop.responsive()) {
      mapped.push_back(std::nullopt);
      continue;
    }
    if (ixps.is_ixp_address(*hop.address)) continue;
    mapped.push_back(ip2as.lookup(*hop.address));
  }

  std::vector<topology::Asn> as_hops;
  std::size_t i = 0;
  while (i < mapped.size()) {
    if (mapped[i]) {
      as_hops.push_back(*mapped[i]);
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < mapped.size() && !mapped[j]) ++j;
    const bool has_left = !as_hops.empty();
    const bool has_right = j < mapped.size();
    if (has_left && has_right) {
      const topology::Asn left = as_hops.back();
      const topology::Asn right = *mapped[j];
      if (left == right) {
        // Gap internal to one AS.
      } else if (feed_index != nullptr && j - i <= kWindow) {
        const auto it = feed_index->find(pack(left, right));
        if (it != feed_index->end() && !it->second.conflict) {
          for (topology::Asn asn : it->second.seq) as_hops.push_back(asn);
        }
      }
    }
    i = j;
  }

  measure::AsLevelPath result;
  result.probe = probe;
  result.path.push_back(graph.asn_of(probe));
  for (topology::Asn asn : as_hops) {
    if (result.path.back() != asn) result.path.push_back(asn);
  }
  result.complete = result.path.back() == origin_asn;
  return result;
}

std::vector<measure::AsLevelPath> repair(
    const topology::AsGraph& graph, const measure::Ip2AsMap& ip2as,
    const measure::IxpTable& ixps, topology::Asn origin_asn,
    std::span<const measure::Traceroute> traces,
    std::span<const measure::FeedEntry> feeds) {
  const AddrSeqMap address_index = build_address_index(traces);
  const AsnSeqMap feed_index = build_feed_index(feeds, origin_asn);
  std::vector<measure::AsLevelPath> out;
  out.reserve(traces.size());
  for (const measure::Traceroute& trace : traces) {
    const auto hops = substitute_unresponsive(trace.hops, address_index);
    out.push_back(finish_mapping(graph, ip2as, ixps, origin_asn, trace.probe,
                                 hops, &feed_index));
  }
  return out;
}

}  // namespace legacy

template <typename Fn>
double best_of(std::uint32_t repeats, Fn&& fn) {
  double best_ms = 0.0;
  for (std::uint32_t rep = 0; rep < repeats; ++rep) {
    const obs::Stopwatch watch;
    fn();
    const double ms = watch.elapsed_ms();
    if (rep == 0 || ms < best_ms) best_ms = ms;
  }
  return best_ms;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);

  const std::span<const Size> sizes =
      options.quick ? std::span<const Size>(kQuickSizes)
                    : std::span<const Size>(kSizes);
  const std::span<const std::size_t> worker_counts =
      options.quick ? std::span<const std::size_t>(kQuickWorkerCounts)
                    : std::span<const std::size_t>(kWorkerCounts);

  std::cout << "{\n  \"bench\": \"perf_measure\",\n"
            << "  \"hardware_concurrency\": "
            << std::thread::hardware_concurrency()
            << ",\n  \"rounds\": " << kRounds << ",\n  \"sizes\": [\n";

  bool equivalent = true;
  double speedup_serial_last = 0.0;
  bool first_size = true;
  for (const Size& size : sizes) {
    core::TestbedConfig config;
    config.seed = options.seed;
    config.tier1_count = size.tier1;
    config.transit_count = size.transit;
    config.stub_count = size.stubs;
    config.probe_count = size.probes;
    config.measured_catchments = false;  // the bench runs the pipeline itself
    const core::PeeringTestbed testbed(config);
    const auto& graph = testbed.graph();

    const measure::AddressPlan plan(graph);
    const measure::IxpTable ixps(graph, 6, 0.5, options.seed ^ 0x1A);
    const measure::Ip2AsMap ip2as = measure::Ip2AsMap::from_plan(
        graph, plan, core::kPeeringAsn, {0.05, options.seed});
    const measure::FeedSimulator feed_sim(
        graph, {size.feed_peers, 0.6, options.seed ^ 0x5EED});
    measure::TracerouteOptions traceroute_options;  // realistic default noise
    traceroute_options.seed = options.seed ^ 0x7E;
    const measure::TracerouteSim tracer(graph, plan, ixps,
                                        traceroute_options);
    const measure::PathRepair repair(graph, ip2as, ixps, core::kPeeringAsn);
    const measure::CatchmentInference inference(graph, testbed.origin());

    // Route the configurations once; propagation time is not the subject.
    auto announce = testbed.generator().location_phase();
    announce.resize(std::min(size.configs, announce.size()));
    std::vector<bgp::RoutingOutcome> outcomes;
    outcomes.reserve(announce.size());
    for (const auto& c : announce) outcomes.push_back(testbed.route(c));

    const std::span<const topology::AsId> probes = testbed.probe_ases();
    const std::size_t traces_per_rep =
        announce.size() * probes.size() * kRounds;

    // Legacy serial pipeline, as it ran inline in deploy().
    std::vector<measure::InferenceResult> reference(announce.size());
    const double legacy_ms = best_of(size.repeats, [&] {
      for (std::size_t i = 0; i < announce.size(); ++i) {
        const auto feeds = feed_sim.collect(outcomes[i]);
        std::vector<measure::Traceroute> traces;
        traces.reserve(probes.size() * kRounds);
        for (topology::AsId probe : probes) {
          for (std::uint32_t round = 0; round < kRounds; ++round) {
            traces.push_back(tracer.run(outcomes[i], probe,
                                        testbed.origin_id(),
                                        util::hash_combine(i, round)));
          }
        }
        const auto paths = legacy::repair(graph, ip2as, ixps,
                                          core::kPeeringAsn, traces, feeds);
        reference[i] = inference.infer(feeds, paths);
      }
    });

    // Driver pipeline: snapshotting (feeds + paths) is part of the timed
    // region, exactly as the deploy sink pays for it.
    double serial_ms = 0.0;
    std::vector<std::pair<std::size_t, double>> worker_ms;
    for (const std::size_t workers : worker_counts) {
      measure::MeasurementDriverOptions driver_options;
      driver_options.workers = workers;
      driver_options.traceroute_rounds = kRounds;
      const measure::MeasurementDriver driver(
          tracer, repair, inference, probes, testbed.origin_id(),
          driver_options);
      std::vector<measure::InferenceResult> results;
      const double ms = best_of(size.repeats, [&] {
        std::vector<measure::MeasurementTask> tasks(announce.size());
        for (std::size_t i = 0; i < announce.size(); ++i) {
          tasks[i] = {
              i,
              std::make_shared<const std::vector<measure::FeedEntry>>(
                  feed_sim.collect(outcomes[i])),
              std::make_shared<const measure::ProbePathSet>(
                  measure::ProbePathSet::extract(outcomes[i], probes,
                                                 testbed.origin_id()))};
        }
        results = driver.run(tasks);
      });
      worker_ms.emplace_back(workers, ms);
      if (workers == 1) serial_ms = ms;
      if (results != reference) {
        equivalent = false;
        std::cerr << "FAIL[" << size.name << "]: driver results at "
                  << workers << " workers diverge from the legacy pipeline\n";
      }
    }
    const double speedup_serial =
        serial_ms > 0.0 ? legacy_ms / serial_ms : 0.0;
    speedup_serial_last = speedup_serial;

    if (!first_size) std::cout << ",\n";
    first_size = false;
    std::cout << "    {\"name\": \"" << size.name
              << "\", \"ases\": " << graph.size()
              << ", \"configs\": " << announce.size()
              << ", \"probes\": " << probes.size()
              << ", \"traces\": " << traces_per_rep
              << ",\n     \"legacy_ms\": " << util::fmt_double(legacy_ms, 2)
              << ", \"driver_ms\": " << util::fmt_double(serial_ms, 2)
              << ", \"speedup_serial\": "
              << util::fmt_double(speedup_serial, 2)
              << ",\n     \"workers\": {";
    bool first_cell = true;
    for (const auto& [workers, ms] : worker_ms) {
      if (!first_cell) std::cout << ", ";
      first_cell = false;
      std::cout << "\"" << workers << "\": {\"ms\": "
                << util::fmt_double(ms, 2) << ", \"speedup\": "
                << util::fmt_double(ms > 0.0 ? serial_ms / ms : 0.0, 2)
                << "}";
    }
    std::cout << "}}";
  }
  std::cout << "\n  ],\n  \"equivalent\": " << (equivalent ? "true" : "false")
            << ",\n  \"speedup_serial\": "
            << util::fmt_double(speedup_serial_last, 2) << "\n}\n";

  const int report_rc =
      bench::finish(options, "perf_measure", [&](obs::RunReport& report) {
        report.label("equivalent", equivalent ? "true" : "false")
            .value("speedup_serial", speedup_serial_last);
      });

  if (!equivalent) {
    std::cerr << "FAIL: measurement driver diverges from legacy pipeline\n";
    return 1;
  }
  return report_rc;
}
