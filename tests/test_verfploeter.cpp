#include "measure/verfploeter.hpp"

#include <gtest/gtest.h>

#include "bgp/catchment.hpp"
#include "helpers.hpp"

namespace spooftrack::measure {
namespace {

class VerfploeterTest : public ::testing::Test {
 protected:
  VerfploeterTest()
      : graph_(test::small_topology()),
        policy_(graph_, test::clean_policy_config()),
        engine_(graph_, policy_),
        origin_(test::small_origin()),
        plan_(graph_) {}

  VerfploeterOptions lossless() const {
    VerfploeterOptions options;
    options.responsive_prob = 1.0;
    options.loss_prob = 0.0;
    return options;
  }

  topology::AsGraph graph_;
  bgp::RoutingPolicy policy_;
  bgp::Engine engine_;
  bgp::OriginSpec origin_;
  AddressPlan plan_;
};

TEST_F(VerfploeterTest, LosslessProbeMatchesGroundTruth) {
  const VerfploeterProber prober(graph_, plan_, lossless());
  const auto config = test::announce_all(2);
  const auto outcome = engine_.run(origin_, config);
  const auto truth = bgp::extract_catchments(outcome, config);
  const auto result =
      prober.probe(outcome, config, *graph_.id_of(test::kOrigin), 0);

  EXPECT_EQ(result.covered_count, graph_.size() - 1);
  EXPECT_EQ(result.multi_catchment_fraction, 0.0);
  for (topology::AsId id = 0; id < graph_.size(); ++id) {
    if (id == *graph_.id_of(test::kOrigin)) {
      EXPECT_FALSE(result.observed[id]);
      continue;
    }
    EXPECT_TRUE(result.observed[id]);
    EXPECT_EQ(result.catchments.link_of[id], truth[id]);
  }
}

TEST_F(VerfploeterTest, UnresponsiveAsesStayUnobserved) {
  VerfploeterOptions options = lossless();
  options.responsive_prob = 0.0;
  const VerfploeterProber prober(graph_, plan_, options);
  const auto config = test::announce_all(2);
  const auto outcome = engine_.run(origin_, config);
  const auto result =
      prober.probe(outcome, config, *graph_.id_of(test::kOrigin), 0);
  EXPECT_EQ(result.covered_count, 0u);
}

TEST_F(VerfploeterTest, ResponsivenessIsPersistentPerSeed) {
  VerfploeterOptions options;
  options.responsive_prob = 0.5;
  const VerfploeterProber a(graph_, plan_, options);
  const VerfploeterProber b(graph_, plan_, options);
  for (topology::AsId id = 0; id < graph_.size(); ++id) {
    EXPECT_EQ(a.responsive(id), b.responsive(id));
  }
  options.seed ^= 1;
  const VerfploeterProber c(graph_, plan_, options);
  bool differs = false;
  for (topology::AsId id = 0; id < graph_.size(); ++id) {
    differs |= a.responsive(id) != c.responsive(id);
  }
  EXPECT_TRUE(differs);
}

TEST_F(VerfploeterTest, RetriesRecoverTransientLoss) {
  VerfploeterOptions options = lossless();
  options.loss_prob = 0.5;
  options.rounds = 12;  // (1/2)^12 residual loss: negligible here
  const VerfploeterProber prober(graph_, plan_, options);
  const auto config = test::announce_all(2);
  const auto outcome = engine_.run(origin_, config);
  const auto result =
      prober.probe(outcome, config, *graph_.id_of(test::kOrigin), 0);
  EXPECT_GE(result.covered_count, graph_.size() - 2);
}

TEST_F(VerfploeterTest, ZeroRoundsClampedToOneRound) {
  // rounds == 0 would silently probe nothing and report zero coverage for
  // every deployment; the prober clamps it to a single round instead.
  VerfploeterOptions options = lossless();
  options.rounds = 0;
  const VerfploeterProber prober(graph_, plan_, options);
  const auto config = test::announce_all(2);
  const auto outcome = engine_.run(origin_, config);
  const auto result =
      prober.probe(outcome, config, *graph_.id_of(test::kOrigin), 0);
  EXPECT_EQ(result.covered_count, graph_.size() - 1);
}

TEST_F(VerfploeterTest, OutOfRangeProbabilitiesClamped) {
  VerfploeterOptions options;
  options.responsive_prob = 1.7;  // clamped to 1.0: everyone responds
  options.loss_prob = -0.3;       // clamped to 0.0: nothing is lost
  options.rounds = 1;
  const VerfploeterProber prober(graph_, plan_, options);
  for (topology::AsId id = 0; id < graph_.size(); ++id) {
    EXPECT_TRUE(prober.responsive(id));
  }
  const auto config = test::announce_all(2);
  const auto outcome = engine_.run(origin_, config);
  const auto result =
      prober.probe(outcome, config, *graph_.id_of(test::kOrigin), 0);
  EXPECT_EQ(result.covered_count, graph_.size() - 1);
}

TEST_F(VerfploeterTest, UnroutedTargetsCannotReply) {
  const VerfploeterProber prober(graph_, plan_, lossless());
  bgp::Configuration config;
  config.announcements.push_back({0, 0, {}, {}});
  auto outcome = engine_.run(origin_, config);
  // Sever b's route artificially: no reply possible.
  outcome.best[*graph_.id_of(test::kB)] = bgp::Route{};
  const auto result =
      prober.probe(outcome, config, *graph_.id_of(test::kOrigin), 0);
  EXPECT_FALSE(result.observed[*graph_.id_of(test::kB)]);
}

}  // namespace
}  // namespace spooftrack::measure
