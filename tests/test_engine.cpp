#include "bgp/engine.hpp"

#include <gtest/gtest.h>

#include "bgp/catchment.hpp"
#include "helpers.hpp"

namespace spooftrack {
namespace {

using test::kA;
using test::kB;
using test::kC;
using test::kD;
using test::kE;
using test::kOrigin;
using test::kP1;
using test::kP2;
using test::kT1;
using test::kT2;

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : graph_(test::small_topology()),
        policy_(graph_, test::clean_policy_config()),
        engine_(graph_, policy_),
        origin_(test::small_origin()) {}

  topology::AsId id(topology::Asn asn) const { return *graph_.id_of(asn); }

  const bgp::Route& route_of(const bgp::RoutingOutcome& outcome,
                             topology::Asn asn) const {
    return outcome.best[id(asn)];
  }

  bgp::LinkId catchment_of(const bgp::RoutingOutcome& outcome,
                           const bgp::Configuration& config,
                           topology::Asn asn) const {
    const auto map = bgp::extract_catchments(outcome, config);
    return map[id(asn)];
  }

  topology::AsGraph graph_;
  bgp::RoutingPolicy policy_;
  bgp::Engine engine_;
  bgp::OriginSpec origin_;
};

TEST_F(EngineTest, AnycastReachesEveryAsAndConverges) {
  const auto config = test::announce_all(2);
  const auto outcome = engine_.run(origin_, config);
  EXPECT_TRUE(outcome.converged);
  EXPECT_LT(outcome.rounds, 20u);
  for (topology::AsId as = 0; as < graph_.size(); ++as) {
    if (as == id(kOrigin)) {
      EXPECT_FALSE(outcome.best[as].valid());
    } else {
      EXPECT_TRUE(outcome.best[as].valid())
          << "AS " << graph_.asn_of(as) << " has no route";
    }
  }
}

TEST_F(EngineTest, AnycastCatchmentsFollowProximity) {
  const auto config = test::announce_all(2);
  const auto outcome = engine_.run(origin_, config);
  EXPECT_EQ(catchment_of(outcome, config, kA), 0u);   // under p1
  EXPECT_EQ(catchment_of(outcome, config, kB), 1u);   // under p2
  EXPECT_EQ(catchment_of(outcome, config, kC), 0u);   // under t1 -> p1
  EXPECT_EQ(catchment_of(outcome, config, kE), 1u);   // under t2 -> p2
  EXPECT_EQ(catchment_of(outcome, config, kP1), 0u);  // direct seed
  EXPECT_EQ(catchment_of(outcome, config, kP2), 1u);
}

TEST_F(EngineTest, ProvidersPreferDirectCustomerRoute) {
  const auto config = test::announce_all(2);
  const auto outcome = engine_.run(origin_, config);
  const bgp::Route& p1_route = route_of(outcome, kP1);
  EXPECT_EQ(p1_route.learned_from, topology::Rel::kCustomer);
  EXPECT_EQ(outcome.path_of(id(kP1)), (std::vector<topology::Asn>{kOrigin}));
}

TEST_F(EngineTest, WithdrawingALinkMovesItsCatchment) {
  bgp::Configuration config;
  config.label = "only-l1";
  config.announcements.push_back({1, 0, {}, {}});
  const auto outcome = engine_.run(origin_, config);
  // Everything must now reach the prefix through p2 (link 1).
  for (topology::Asn asn : {kA, kB, kC, kD, kE, kP1, kP2, kT1, kT2}) {
    EXPECT_EQ(catchment_of(outcome, config, asn), 1u)
        << "AS " << asn << " not on link 1";
  }
  // a's path climbs out of p1 via t1 and t2.
  EXPECT_EQ(outcome.path_of(id(kA)),
            (std::vector<topology::Asn>{kP1, kT1, kT2, kP2, kOrigin}));
}

TEST_F(EngineTest, LocalPrefBeatsPathLength) {
  // Even with link 0 heavily prepended, t1 keeps its customer route via p1
  // rather than switching to the shorter peer route via t2.
  bgp::Configuration config;
  config.label = "prep-l0";
  config.announcements.push_back({0, 4, {}});
  config.announcements.push_back({1, 0, {}, {}});
  const auto outcome = engine_.run(origin_, config);
  const bgp::Route& t1_route = route_of(outcome, kT1);
  EXPECT_EQ(t1_route.learned_from, topology::Rel::kCustomer);
  EXPECT_EQ(catchment_of(outcome, config, kT1), 0u);
  EXPECT_EQ(outcome.path_length(id(kT1)), 6u);  // p1 + origin x5
}

TEST_F(EngineTest, PrependSteersEqualPrefSources) {
  // d multihomes to p1 and p2: both provider routes, equal length. With
  // prepending on link 0 it must choose link 1; with prepending on link 1
  // it must choose link 0.
  for (const bgp::LinkId prepended : {0u, 1u}) {
    bgp::Configuration config;
    config.label = "prep";
    config.announcements.push_back({0, prepended == 0 ? 4u : 0u, {}});
    config.announcements.push_back({1, prepended == 1 ? 4u : 0u, {}});
    const auto outcome = engine_.run(origin_, config);
    EXPECT_EQ(catchment_of(outcome, config, kD), 1u - prepended);
  }
}

TEST_F(EngineTest, PrependLengthensSeedPath) {
  bgp::Configuration config;
  config.label = "prep-l0";
  config.announcements.push_back({0, 4, {}});
  config.announcements.push_back({1, 0, {}, {}});
  const auto outcome = engine_.run(origin_, config);
  EXPECT_EQ(outcome.path_of(id(kP1)),
            (std::vector<topology::Asn>{kOrigin, kOrigin, kOrigin, kOrigin,
                                        kOrigin}));
}

TEST_F(EngineTest, PoisoningMovesThePoisonedAs) {
  // Baseline: t2 and e sit in link 1's catchment.
  {
    const auto config = test::announce_all(2);
    const auto outcome = engine_.run(origin_, config);
    EXPECT_EQ(catchment_of(outcome, config, kT2), 1u);
    EXPECT_EQ(catchment_of(outcome, config, kE), 1u);
  }
  // Poison t2 on link 1: loop prevention forces t2 (and its customer e)
  // onto link 0 via t1.
  bgp::Configuration config;
  config.label = "poison-t2";
  config.announcements.push_back({0, 0, {}, {}});
  config.announcements.push_back({1, 0, {kT2}});
  const auto outcome = engine_.run(origin_, config);
  EXPECT_EQ(catchment_of(outcome, config, kT2), 0u);
  EXPECT_EQ(catchment_of(outcome, config, kE), 0u);
  // b still reaches link 1 directly through p2.
  EXPECT_EQ(catchment_of(outcome, config, kB), 1u);
  // The poison sandwich is visible in p2's seed path.
  EXPECT_EQ(outcome.path_of(id(kP2)),
            (std::vector<topology::Asn>{kOrigin, kT2, kOrigin}));
}

TEST_F(EngineTest, DisabledLoopPreventionDefeatsPoisoning) {
  bgp::AsPolicyFlags flags;
  flags.ignores_poison = true;
  policy_.override_flags(id(kT2), flags);

  bgp::Configuration config;
  config.label = "poison-t2";
  config.announcements.push_back({0, 0, {}, {}});
  config.announcements.push_back({1, 0, {kT2}});
  const auto outcome = engine_.run(origin_, config);
  // t2 ignores its own ASN in the path and stays on link 1.
  EXPECT_EQ(catchment_of(outcome, config, kT2), 1u);
}

TEST_F(EngineTest, Tier1FiltersPoisonedCustomerRoutes) {
  // Poisoning tier-1 t1 on link 1 makes p2's announcement look like a
  // route leak to t2 (a tier-1 hearing another tier-1 from a customer).
  bgp::Configuration config;
  config.label = "poison-t1-on-l1";
  config.announcements.push_back({0, 0, {}, {}});
  config.announcements.push_back({1, 0, {kT1}});
  const auto outcome = engine_.run(origin_, config);
  // t2 rejects the poisoned customer route and uses its peer t1 instead.
  EXPECT_EQ(catchment_of(outcome, config, kT2), 0u);
  EXPECT_EQ(route_of(outcome, kT2).learned_from, topology::Rel::kPeer);
  // b, directly under p2, still uses link 1.
  EXPECT_EQ(catchment_of(outcome, config, kB), 1u);
}

TEST_F(EngineTest, ActivityTrackingIsSemanticallyTransparent) {
  bgp::EngineOptions no_tracking;
  no_tracking.activity_tracking = false;
  const bgp::Engine brute(graph_, policy_, no_tracking);
  for (const auto& config :
       {test::announce_all(2), [] {
          bgp::Configuration c;
          c.announcements.push_back({0, 4, {}, {}});
          c.announcements.push_back({1, 0, {kT2}, {}});
          return c;
        }()}) {
    const auto fast = engine_.run(origin_, config);
    const auto slow = brute.run(origin_, config);
    for (topology::AsId as = 0; as < graph_.size(); ++as) {
      // The two runs intern paths in different orders, so compare content
      // (routes_equal), not PathIds.
      EXPECT_TRUE(bgp::routes_equal(fast, slow, as));
    }
  }
}

TEST_F(EngineTest, DeterministicAcrossRuns) {
  const auto config = test::announce_all(2);
  const auto first = engine_.run(origin_, config);
  const auto second = engine_.run(origin_, config);
  EXPECT_EQ(first.best.size(), second.best.size());
  for (topology::AsId as = 0; as < graph_.size(); ++as) {
    // Identical runs produce identical arenas, so even the PathIds match.
    EXPECT_EQ(first.best[as], second.best[as]);
    EXPECT_EQ(first.next_hop[as], second.next_hop[as]);
  }
  EXPECT_EQ(bgp::outcome_checksum(first, bgp::ChecksumScope::kFull),
            bgp::outcome_checksum(second, bgp::ChecksumScope::kFull));
}

TEST_F(EngineTest, ForwardingPathMatchesAsPath) {
  const auto config = test::announce_all(2);
  const auto outcome = engine_.run(origin_, config);
  const auto path = bgp::forwarding_path(outcome, id(kC), id(kOrigin));
  ASSERT_EQ(path.size(), 4u);  // c -> t1 -> p1 -> origin
  EXPECT_EQ(graph_.asn_of(path[0]), kC);
  EXPECT_EQ(graph_.asn_of(path[1]), kT1);
  EXPECT_EQ(graph_.asn_of(path[2]), kP1);
  EXPECT_EQ(graph_.asn_of(path[3]), kOrigin);
}

TEST_F(EngineTest, ForwardingLoopYieldsEmptyPath) {
  // Regression: a corrupted (or non-converged) outcome whose next hops
  // cycle must surface as an empty path — the documented behaviour for
  // inconsistent forwarding state — not an exception.
  const auto config = test::announce_all(2);
  auto outcome = engine_.run(origin_, config);
  outcome.next_hop[id(kA)] = id(kP1);
  outcome.next_hop[id(kP1)] = id(kA);
  EXPECT_TRUE(bgp::forwarding_path(outcome, id(kA), id(kOrigin)).empty());
}

TEST_F(EngineTest, InvalidHopMidWalkYieldsEmptyPath) {
  const auto config = test::announce_all(2);
  auto outcome = engine_.run(origin_, config);
  // c routes via t1; cutting t1's next hop strands the walk mid-way.
  outcome.next_hop[id(kT1)] = topology::kInvalidAsId;
  EXPECT_TRUE(bgp::forwarding_path(outcome, id(kC), id(kOrigin)).empty());
}

TEST_F(EngineTest, RejectsUnknownProvider) {
  bgp::OriginSpec bad = origin_;
  bad.links.push_back({2, "bogus", 999999});
  bgp::Configuration config;
  config.announcements.push_back({2, 0, {}, {}});
  EXPECT_THROW(engine_.run(bad, config), std::invalid_argument);
}

TEST_F(EngineTest, RejectsNonProviderLink) {
  // kA exists but is not a provider of the origin.
  bgp::OriginSpec bad = origin_;
  bad.links.push_back({2, "not-a-provider", kA});
  bgp::Configuration config;
  config.announcements.push_back({2, 0, {}, {}});
  EXPECT_THROW(engine_.run(bad, config), std::invalid_argument);
}

TEST_F(EngineTest, CandidatesEnumerateAlternatives) {
  const auto config = test::announce_all(2);
  const auto outcome = engine_.run(origin_, config);
  // d hears provider routes from both p1 and p2.
  const auto cands = engine_.candidates(id(kD), origin_, config, outcome);
  ASSERT_EQ(cands.size(), 2u);
  for (const auto& cand : cands) {
    EXPECT_EQ(cand.rel_of_sender, topology::Rel::kProvider);
    EXPECT_EQ(cand.length, 2u);
  }
  // t1 hears: customer route from p1, peer route from t2.
  const auto t1_cands = engine_.candidates(id(kT1), origin_, config, outcome);
  ASSERT_EQ(t1_cands.size(), 2u);
}

}  // namespace
}  // namespace spooftrack
