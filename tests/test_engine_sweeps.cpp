// Parameterized behavioural sweeps of the routing engine: how catchments
// respond to prepend depth, announcement-set size, and steering, across
// random topologies. These pin down the monotonicity properties the
// paper's techniques exploit.
#include <gtest/gtest.h>

#include "bgp/catchment.hpp"
#include "bgp/engine.hpp"
#include "core/experiment.hpp"
#include "topology/synth.hpp"

namespace spooftrack {
namespace {

struct SweepWorld {
  explicit SweepWorld(std::uint64_t seed) {
    topology::SynthConfig config;
    config.seed = seed;
    config.tier1_count = 5;
    config.transit_count = 40;
    config.stub_count = 350;
    config.reserved_transit_asns = {12859, 5408, 226, 156};
    config.reserved_position_fraction = 0.5;
    config.reserved_attract_bonus = 8.0;
    config.origin_asn = core::kPeeringAsn;
    topo = topology::synthesize(config);

    origin.asn = core::kPeeringAsn;
    bgp::LinkId id = 0;
    for (topology::Asn provider : config.reserved_transit_asns) {
      origin.links.push_back({id++, "pop", provider});
    }

    bgp::PolicyConfig pconfig;  // default deviations on
    pconfig.seed = seed;
    policy = std::make_unique<bgp::RoutingPolicy>(topo.graph, pconfig);
    engine = std::make_unique<bgp::Engine>(topo.graph, *policy);
  }

  bgp::Configuration all_links(std::uint32_t prepend_link = 0,
                               std::uint32_t prepend = 0) const {
    bgp::Configuration config;
    for (const auto& link : origin.links) {
      config.announcements.push_back(
          {link.id, link.id == prepend_link ? prepend : 0u, {}, {}});
    }
    return config;
  }

  topology::SynthTopology topo;
  bgp::OriginSpec origin;
  std::unique_ptr<bgp::RoutingPolicy> policy;
  std::unique_ptr<bgp::Engine> engine;
};

class EngineSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineSweep, PrependMonotonicallyShrinksTheLinkCatchment) {
  SweepWorld world(GetParam());
  std::size_t previous = std::numeric_limits<std::size_t>::max();
  for (std::uint32_t depth : {0u, 1u, 2u, 4u, 8u}) {
    const auto config = world.all_links(0, depth);
    const auto outcome = world.engine->run(world.origin, config);
    ASSERT_TRUE(outcome.converged);
    const auto map = bgp::extract_catchments(outcome, config);
    const std::size_t size = map.count(0);
    // Longer paths can only repel equal-LocalPref sources; the catchment
    // never grows with prepend depth.
    EXPECT_LE(size, previous) << "depth " << depth;
    previous = size;
  }
}

TEST_P(EngineSweep, WithdrawnLinksCatchmentRedistributes) {
  SweepWorld world(GetParam());
  const auto full = world.all_links();
  const auto full_outcome = world.engine->run(world.origin, full);
  const auto full_map = bgp::extract_catchments(full_outcome, full);

  for (bgp::LinkId withdrawn = 0; withdrawn < world.origin.links.size();
       ++withdrawn) {
    bgp::Configuration config;
    for (const auto& link : world.origin.links) {
      if (link.id != withdrawn) {
        config.announcements.push_back({link.id, 0, {}, {}});
      }
    }
    const auto outcome = world.engine->run(world.origin, config);
    const auto map = bgp::extract_catchments(outcome, config);
    // Reachability is preserved (the graph is connected) and nobody sits
    // on the withdrawn link.
    EXPECT_EQ(map.count(withdrawn), 0u);
    EXPECT_EQ(map.routed_count(), full_map.routed_count());
    // Sources that were NOT on the withdrawn link mostly stay put. (Not
    // an invariant: a withdrawal can indirectly improve a neighbor's
    // exported route — e.g. an upstream switching preference class onto a
    // shorter path — so a small fraction may legitimately move.)
    std::size_t unaffected = 0, stayed = 0;
    for (topology::AsId as = 0; as < world.topo.graph.size(); ++as) {
      if (full_map[as] == bgp::kNoCatchment || full_map[as] == withdrawn) {
        continue;
      }
      ++unaffected;
      stayed += map[as] == full_map[as];
    }
    ASSERT_GT(unaffected, 0u);
    EXPECT_GT(static_cast<double>(stayed) / static_cast<double>(unaffected),
              0.9)
        << "withdrawing link " << withdrawn
        << " moved too many third-party sources";
  }
}

TEST_P(EngineSweep, AnnouncingMoreLinksNeverReducesReachability) {
  SweepWorld world(GetParam());
  std::size_t previous = 0;
  for (std::size_t count = 1; count <= world.origin.links.size(); ++count) {
    bgp::Configuration config;
    for (std::size_t l = 0; l < count; ++l) {
      config.announcements.push_back(
          {static_cast<bgp::LinkId>(l), 0, {}, {}});
    }
    const auto outcome = world.engine->run(world.origin, config);
    const auto map = bgp::extract_catchments(outcome, config);
    EXPECT_GE(map.routed_count(), previous);
    previous = map.routed_count();
  }
}

TEST_P(EngineSweep, SteeringConfigurationsOnlyMoveTraffic) {
  // Poisoning or no-exporting a provider neighbor may reroute sources but
  // must not disconnect anyone (alternatives exist in a connected graph).
  SweepWorld world(GetParam());
  const auto provider_id =
      *world.topo.graph.id_of(world.origin.links[0].provider);
  std::vector<topology::Asn> targets;
  for (const auto& n : world.topo.graph.neighbors(provider_id)) {
    const auto asn = world.topo.graph.asn_of(n.id);
    if (asn != world.origin.asn) targets.push_back(asn);
    if (targets.size() == 3) break;
  }
  for (topology::Asn target : targets) {
    for (int community : {0, 1}) {
      auto config = world.all_links();
      if (community) {
        config.announcements[0].no_export_to.push_back(target);
      } else {
        config.announcements[0].poisoned.push_back(target);
      }
      const auto outcome = world.engine->run(world.origin, config);
      ASSERT_TRUE(outcome.converged);
      const auto map = bgp::extract_catchments(outcome, config);
      EXPECT_EQ(map.routed_count(), world.topo.graph.size() - 1)
          << "AS" << target << (community ? " no-export" : " poison");
    }
  }
}

TEST_P(EngineSweep, DataPlaneAgreesWithControlPlane) {
  // The forwarding walk must traverse exactly the collapsed AS-path of the
  // source's best route (hot-potato consistency).
  SweepWorld world(GetParam());
  const auto config = world.all_links();
  const auto outcome = world.engine->run(world.origin, config);
  const auto origin_id = *world.topo.graph.id_of(world.origin.asn);
  for (topology::AsId as = 0; as < world.topo.graph.size(); ++as) {
    if (as == origin_id || !outcome.best[as].valid()) continue;
    const auto walk = bgp::forwarding_path(outcome, as, origin_id);
    // Collapse the control-plane path (prepends repeat ASNs).
    std::vector<topology::Asn> control;
    control.push_back(world.topo.graph.asn_of(as));
    for (topology::Asn hop : outcome.paths->view(outcome.best[as].path)) {
      if (control.back() != hop) control.push_back(hop);
    }
    ASSERT_EQ(walk.size(), control.size()) << "AS " << control.front();
    for (std::size_t i = 0; i < walk.size(); ++i) {
      EXPECT_EQ(world.topo.graph.asn_of(walk[i]), control[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineSweep,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace spooftrack
