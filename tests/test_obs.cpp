// spooftrack::obs — registry correctness under parallel recording, merge
// determinism, the RunReport JSON round-trip, macro gating, and the
// docs-contract check that every metric name emitted by the source tree is
// documented in docs/observability.md.
//
// All tests use unique "test.obs.*" metric names and delta-based
// assertions: the registry is process-global and the library's own
// instrumentation may have recorded into it already.
#include "obs/obs.hpp"
#include "obs/report.hpp"

#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/parallel.hpp"

namespace spooftrack {
namespace {

obs::Registry& reg() { return obs::Registry::global(); }

std::uint64_t counter_value(std::string_view name) {
  const obs::Snapshot snap = reg().snapshot();
  const obs::MetricSnapshot* metric = snap.find(name);
  return metric == nullptr ? 0 : metric->value;
}

TEST(ObsRegistry, CounterUnderParallelForContention) {
  const obs::MetricId id =
      reg().intern("test.obs.par_counter", obs::Kind::kCounter, "");
  const std::uint64_t before = counter_value("test.obs.par_counter");

  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kIncrementsPerTask = 1000;
  constexpr std::size_t kWorkers = 8;
  util::parallel_for(
      kTasks,
      [&](std::size_t) {
        for (std::size_t k = 0; k < kIncrementsPerTask; ++k) reg().add(id, 1);
      },
      kWorkers);

  EXPECT_EQ(counter_value("test.obs.par_counter"),
            before + kTasks * kIncrementsPerTask);
}

TEST(ObsRegistry, HistogramUnderParallelForContention) {
  const obs::MetricId id =
      reg().intern("test.obs.par_hist", obs::Kind::kHistogram, "ns");

  constexpr std::size_t kTasks = 32;
  constexpr std::uint64_t kSamplesPerTask = 200;
  util::parallel_for(
      kTasks,
      [&](std::size_t i) {
        for (std::uint64_t k = 0; k < kSamplesPerTask; ++k) {
          reg().record(id, i * kSamplesPerTask + k);
        }
      },
      8);

  const obs::Snapshot snap = reg().snapshot();
  const obs::MetricSnapshot* metric = snap.find("test.obs.par_hist");
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->count, kTasks * kSamplesPerTask);
  // Sum of 0..N-1 over all tasks.
  const std::uint64_t n = kTasks * kSamplesPerTask;
  EXPECT_EQ(metric->sum, n * (n - 1) / 2);
  EXPECT_EQ(metric->min, 0u);
  EXPECT_EQ(metric->max, n - 1);
  std::uint64_t binned = 0;
  for (std::uint64_t b : metric->bins) binned += b;
  EXPECT_EQ(binned, metric->count);
}

TEST(ObsRegistry, TotalsSurviveThreadExitAndShardsAreReused) {
  const obs::MetricId id =
      reg().intern("test.obs.shard_reuse", obs::Kind::kCounter, "");
  const std::uint64_t before = counter_value("test.obs.shard_reuse");

  // Sequential short-lived threads, the lifecycle parallel_for produces:
  // each thread's shard is released on exit and reused by the next, and no
  // total is lost.
  for (int t = 0; t < 10; ++t) {
    std::thread([&] { reg().add(id, 5); }).join();
  }
  EXPECT_EQ(counter_value("test.obs.shard_reuse"), before + 50);
}

TEST(ObsRegistry, HistogramStatsAndPercentileBounds) {
  const obs::MetricId id =
      reg().intern("test.obs.hist_stats", obs::Kind::kHistogram, "ms");
  for (std::uint64_t v : {1u, 2u, 3u, 100u}) reg().record(id, v);

  const obs::Snapshot snap = reg().snapshot();
  const obs::MetricSnapshot* metric = snap.find("test.obs.hist_stats");
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->unit, "ms");
  EXPECT_EQ(metric->count, 4u);
  EXPECT_EQ(metric->sum, 106u);
  EXPECT_EQ(metric->min, 1u);
  EXPECT_EQ(metric->max, 100u);
  EXPECT_DOUBLE_EQ(metric->mean(), 106.0 / 4.0);
  // Log2 bins give upper estimates within 2x, clamped to the observed max.
  EXPECT_GE(metric->percentile(50.0), 2.0);
  EXPECT_LE(metric->percentile(50.0), 3.0);
  EXPECT_DOUBLE_EQ(metric->percentile(100.0), 100.0);
  EXPECT_DOUBLE_EQ(metric->percentile(0.0), 1.0);
}

TEST(ObsRegistry, GaugeLastWriteWinsAcrossThreads) {
  const obs::MetricId id =
      reg().intern("test.obs.gauge", obs::Kind::kGauge, "");
  reg().set(id, 3);
  std::thread([&] { reg().set(id, 5); }).join();

  const obs::Snapshot snap = reg().snapshot();
  const obs::MetricSnapshot* metric = snap.find("test.obs.gauge");
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->kind, obs::Kind::kGauge);
  EXPECT_EQ(metric->value, 5u);

  reg().set(id, 7);  // main thread writes last -> wins again
  EXPECT_EQ(counter_value("test.obs.gauge"), 7u);
}

TEST(ObsRegistry, SnapshotMergeIsDeterministic) {
  const obs::MetricId id =
      reg().intern("test.obs.determinism", obs::Kind::kHistogram, "");
  util::parallel_for(
      16, [&](std::size_t i) { reg().record(id, i + 1); }, 4);

  const obs::Snapshot a = reg().snapshot();
  const obs::Snapshot b = reg().snapshot();
  EXPECT_EQ(a, b);
  ASSERT_NE(a.find("test.obs.determinism"), nullptr);
}

TEST(ObsRegistry, InternIsIdempotentAndChecksKind) {
  const obs::MetricId a =
      reg().intern("test.obs.kind", obs::Kind::kCounter, "");
  const obs::MetricId b =
      reg().intern("test.obs.kind", obs::Kind::kCounter, "");
  EXPECT_EQ(a, b);
  EXPECT_THROW(reg().intern("test.obs.kind", obs::Kind::kHistogram, ""),
               std::logic_error);
}

TEST(ObsRegistry, ResetZeroesEverything) {
  const obs::MetricId counter =
      reg().intern("test.obs.reset_counter", obs::Kind::kCounter, "");
  const obs::MetricId hist =
      reg().intern("test.obs.reset_hist", obs::Kind::kHistogram, "");
  reg().add(counter, 9);
  reg().record(hist, 42);
  reg().reset();

  const obs::Snapshot snap = reg().snapshot();
  const obs::MetricSnapshot* c = snap.find("test.obs.reset_counter");
  const obs::MetricSnapshot* h = snap.find("test.obs.reset_hist");
  ASSERT_NE(c, nullptr);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(c->value, 0u);
  EXPECT_EQ(h->count, 0u);
  EXPECT_EQ(h->sum, 0u);
  EXPECT_EQ(h->min, 0u);
  EXPECT_EQ(h->max, 0u);
}

// ---------------------------------------------------------------------------
// Macro gating
// ---------------------------------------------------------------------------

#if SPOOFTRACK_OBS_ENABLED

TEST(ObsMacros, RecordWhenEnabled) {
  const std::uint64_t before = counter_value("test.obs.macro_counter");
  OBS_COUNT("test.obs.macro_counter", 2);
  OBS_COUNT("test.obs.macro_counter", 3);
  EXPECT_EQ(counter_value("test.obs.macro_counter"), before + 5);

  OBS_GAUGE("test.obs.macro_gauge", 11);
  EXPECT_EQ(counter_value("test.obs.macro_gauge"), 11u);

  OBS_HIST("test.obs.macro_hist", "items", 4);
  { OBS_TIMER("test.obs.macro_timer"); }
  const obs::Snapshot snap = reg().snapshot();
  const obs::MetricSnapshot* hist = snap.find("test.obs.macro_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->unit, "items");
  EXPECT_GE(hist->count, 1u);
  const obs::MetricSnapshot* timer = snap.find("test.obs.macro_timer");
  ASSERT_NE(timer, nullptr);
  EXPECT_EQ(timer->unit, "ns");
  EXPECT_GE(timer->count, 1u);
}

#else  // SPOOFTRACK_OBS=OFF build: the same macros must record nothing and
       // must not evaluate their arguments.

TEST(ObsMacros, NoOpWhenDisabled) {
  const std::size_t metrics_before = reg().metric_count();
  int evaluations = 0;
  OBS_COUNT("test.obs.off_counter", ++evaluations);
  OBS_GAUGE("test.obs.off_gauge", ++evaluations);
  OBS_HIST("test.obs.off_hist", "items", ++evaluations);
  { OBS_TIMER("test.obs.off_timer"); }
  EXPECT_EQ(evaluations, 0);
  EXPECT_EQ(reg().metric_count(), metrics_before);
  const obs::Snapshot snap = reg().snapshot();
  EXPECT_EQ(snap.find("test.obs.off_counter"), nullptr);
  EXPECT_EQ(snap.find("test.obs.off_hist"), nullptr);
}

TEST(ObsMacros, LibraryEmitsNothingWhenDisabled) {
  // The instrumented library paths intern engine.* / campaign.* metrics on
  // first use; in an OFF build those call sites are compiled out entirely.
  const obs::Snapshot snap = reg().snapshot();
  for (const obs::MetricSnapshot& metric : snap.metrics) {
    EXPECT_TRUE(metric.name.rfind("test.obs.", 0) == 0)
        << "unexpected metric in OFF build: " << metric.name;
  }
}

#endif  // SPOOFTRACK_OBS_ENABLED

// ---------------------------------------------------------------------------
// RunReport
// ---------------------------------------------------------------------------

obs::RunReport sample_report() {
  reg().intern("test.obs.report_counter", obs::Kind::kCounter, "");
  const obs::MetricId gauge =
      reg().intern("test.obs.report_gauge", obs::Kind::kGauge, "");
  const obs::MetricId hist =
      reg().intern("test.obs.report_hist", obs::Kind::kHistogram, "ns");
  reg().set(gauge, 12);
  for (std::uint64_t v : {7u, 130u, 130u, 4096u}) reg().record(hist, v);

  obs::RunReport report = obs::RunReport::capture("test_run");
  report.label("mode", "unit-test")
      .label("quoted", "a \"b\"\nc")
      .value("wall_ms", 12.5)
      .value("speedup", 1.0 / 3.0);
  return report;
}

TEST(ObsReport, JsonRoundTripIsByteIdentical) {
  const obs::RunReport report = sample_report();

  std::ostringstream first;
  report.write_json(first);

  std::istringstream in(first.str());
  const obs::RunReport parsed = obs::RunReport::parse_json(in);

  std::ostringstream second;
  parsed.write_json(second);
  EXPECT_EQ(first.str(), second.str());
  EXPECT_EQ(parsed, report);
  EXPECT_EQ(parsed.schema, obs::kReportSchema);
  EXPECT_EQ(parsed.name, "test_run");
}

TEST(ObsReport, CsvHasHeaderAndOneRowPerMetric) {
  const obs::RunReport report = sample_report();
  std::ostringstream out;
  report.write_csv(out);

  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "name,kind,unit,count,value,sum,min,max,mean,p50,p90,p99");
  std::size_t rows = 0;
  while (std::getline(lines, line)) ++rows;
  EXPECT_EQ(rows, report.metrics.metrics.size());
}

TEST(ObsReport, FileSaveAndLoad) {
  const obs::RunReport report = sample_report();
  const std::string path =
      (std::filesystem::path(testing::TempDir()) / "obs_report.json").string();
  report.save_json_file(path);
  const obs::RunReport loaded = obs::RunReport::parse_json_file(path);
  EXPECT_EQ(loaded, report);
}

TEST(ObsReport, ParserRejectsMalformedInput) {
  const auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return obs::RunReport::parse_json(in);
  };
  EXPECT_THROW(parse(""), std::runtime_error);
  EXPECT_THROW(parse("{"), std::runtime_error);
  EXPECT_THROW(parse("[]"), std::runtime_error);
  EXPECT_THROW(parse("{\"schema\": \"other.v9\", \"name\": \"x\", "
                     "\"obs_enabled\": true, \"metrics\": []}"),
               std::runtime_error);
  // Missing metrics array.
  EXPECT_THROW(parse("{\"schema\": \"spooftrack.obs.v1\", \"name\": \"x\", "
                     "\"obs_enabled\": true}"),
               std::runtime_error);
}

TEST(ObsReport, ParserIgnoresUnknownKeysAndAnyKeyOrder) {
  const std::string text =
      "{\"future_field\": [1, {\"nested\": true}],\n"
      " \"metrics\": [{\"kind\": \"counter\", \"unit\": \"\", "
      "\"value\": 3, \"name\": \"x\", \"extra\": null}],\n"
      " \"obs_enabled\": false,\n"
      " \"name\": \"reordered\",\n"
      " \"schema\": \"spooftrack.obs.v1\"}";
  std::istringstream in(text);
  const obs::RunReport report = obs::RunReport::parse_json(in);
  EXPECT_EQ(report.name, "reordered");
  EXPECT_FALSE(report.obs_enabled);
  ASSERT_EQ(report.metrics.metrics.size(), 1u);
  EXPECT_EQ(report.metrics.metrics[0].name, "x");
  EXPECT_EQ(report.metrics.metrics[0].value, 3u);
}

// ---------------------------------------------------------------------------
// Docs contract: every metric name the source tree emits is documented.
// ---------------------------------------------------------------------------

#ifdef SPOOFTRACK_SOURCE_DIR

std::set<std::string> emitted_metric_names() {
  const std::regex call(
      R"re(OBS_(?:COUNT|GAUGE|HIST|TIMER)\(\s*"([^"]+)")re");
  std::set<std::string> names;
  // tests/ is deliberately excluded: test.obs.* names are not part of the
  // telemetry contract.
  for (const char* dir : {"src", "bench", "tools"}) {
    const std::filesystem::path root =
        std::filesystem::path(SPOOFTRACK_SOURCE_DIR) / dir;
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(root)) {
      const auto ext = entry.path().extension();
      if (ext != ".cpp" && ext != ".hpp") continue;
      std::ifstream in(entry.path());
      std::stringstream buffer;
      buffer << in.rdbuf();
      const std::string text = buffer.str();
      for (auto it = std::sregex_iterator(text.begin(), text.end(), call);
           it != std::sregex_iterator(); ++it) {
        names.insert((*it)[1].str());
      }
    }
  }
  return names;
}

TEST(ObsDocsContract, EveryEmittedMetricIsDocumented) {
  const std::filesystem::path doc_path =
      std::filesystem::path(SPOOFTRACK_SOURCE_DIR) / "docs" /
      "observability.md";
  ASSERT_TRUE(std::filesystem::exists(doc_path))
      << "docs/observability.md is missing";
  std::ifstream in(doc_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();

  const std::set<std::string> names = emitted_metric_names();
  ASSERT_FALSE(names.empty()) << "no OBS_* call sites found — regex broken?";
  for (const std::string& name : names) {
    EXPECT_NE(doc.find("`" + name + "`"), std::string::npos)
        << "metric '" << name
        << "' is emitted by the code but not documented (backticked) in "
           "docs/observability.md";
  }
}

#endif  // SPOOFTRACK_SOURCE_DIR

}  // namespace
}  // namespace spooftrack
