#include "core/report.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace spooftrack::core {
namespace {

DeploymentArtifact small_artifact() {
  TestbedConfig config;
  config.seed = 19;
  config.stub_count = 250;
  config.transit_count = 30;
  config.tier1_count = 4;
  config.measured_catchments = false;
  config.audit_policies = true;
  const PeeringTestbed testbed(config);
  GeneratorOptions gen;
  gen.max_removals = 1;
  auto plan = testbed.generator(gen).location_phase();
  const auto result = testbed.deploy(plan);
  auto artifact = make_artifact(result, config.seed, testbed.graph().size(),
                                testbed.origin().links.size());
  artifact.annotate("location_end", plan.size());
  artifact.annotate("prepend_end", plan.size());
  return artifact;
}

TEST(Report, ContainsEverySection) {
  const auto artifact = small_artifact();
  const auto text = render_report(artifact);
  for (const char* needle :
       {"# Spoofed-source localization campaign report", "## Campaign",
        "## Localization quality", "## Routing-policy compliance",
        "## Attack-time runbook", "singleton clusters",
        "configurations deployed | 8"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(Report, RunbookRespectsStepOption) {
  const auto artifact = small_artifact();
  ReportOptions options;
  options.runbook_steps = 3;
  const auto text = render_report(artifact, options);
  EXPECT_NE(text.find("| 3 | `"), std::string::npos);
  EXPECT_EQ(text.find("| 4 | `"), std::string::npos);

  options.runbook_steps = 0;
  const auto no_runbook = render_report(artifact, options);
  EXPECT_EQ(no_runbook.find("runbook"), std::string::npos);
}

TEST(Report, TailSectionAppearsOnlyWhenTailExists) {
  const auto artifact = small_artifact();
  ReportOptions coarse;
  coarse.tail_threshold = 1;  // plenty of clusters exceed one AS
  EXPECT_NE(render_report(artifact, coarse).find("Heavy tail"),
            std::string::npos);
  ReportOptions generous;
  generous.tail_threshold = 100000;  // nothing exceeds this
  EXPECT_EQ(render_report(artifact, generous).find("Heavy tail"),
            std::string::npos);
}

TEST(Report, ComplianceSectionOmittedWithoutAudit) {
  auto artifact = small_artifact();
  artifact.compliance.clear();
  const auto text = render_report(artifact);
  EXPECT_EQ(text.find("Routing-policy compliance"), std::string::npos);
}

TEST(Report, RendersEmptyArtifactWithoutCrashing) {
  DeploymentArtifact empty;
  EXPECT_FALSE(render_report(empty).empty());
}

}  // namespace
}  // namespace spooftrack::core
