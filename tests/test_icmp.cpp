#include "netcore/icmp.hpp"

#include <gtest/gtest.h>

#include "measure/address_plan.hpp"
#include "measure/verfploeter.hpp"
#include "helpers.hpp"

namespace spooftrack::netcore {
namespace {

const Ipv4Addr kSrc{184, 164, 224, 1};
const Ipv4Addr kDst{20, 0, 0, 16};

TEST(IcmpEcho, RequestRoundTrips) {
  const std::vector<std::uint8_t> payload{1, 2, 3, 4};
  const auto d = make_icmp_echo(kSrc, kDst, false, 0xBEEF, 7, payload);
  const auto ip = d.ip();
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->protocol, kProtoIcmp);
  EXPECT_EQ(ip->source, kSrc);
  EXPECT_EQ(ip->destination, kDst);

  const auto echo = parse_icmp_echo(d);
  ASSERT_TRUE(echo.has_value());
  EXPECT_FALSE(echo->is_reply);
  EXPECT_EQ(echo->identifier, 0xBEEF);
  EXPECT_EQ(echo->sequence, 7);
}

TEST(IcmpEcho, ChecksumCoversPayload) {
  const std::vector<std::uint8_t> payload{9, 9, 9};
  auto d = make_icmp_echo(kSrc, kDst, false, 1, 2, payload);
  // parse_icmp_echo verifies the ICMP checksum; corrupt a payload byte via
  // a rebuilt datagram with a mismatched checksum.
  auto bytes = d.bytes();
  bytes[kIpv4HeaderBytes + kIcmpEchoHeaderBytes] ^= 0xFF;
  // Rebuild a datagram from the corrupted bytes through the raw maker
  // (keeping the IPv4 header valid, the ICMP checksum now stale).
  const auto corrupted = Datagram::make_raw(
      kSrc, kDst, kProtoIcmp,
      std::span<const std::uint8_t>(bytes).subspan(kIpv4HeaderBytes));
  EXPECT_FALSE(parse_icmp_echo(corrupted).has_value());
}

TEST(IcmpEcho, RejectsNonEchoAndNonIcmp) {
  const auto udp = Datagram::make_udp(kSrc, kDst, 1, 2, {});
  EXPECT_FALSE(parse_icmp_echo(udp).has_value());
  // Type 3 (unreachable) is not an echo message.
  std::vector<std::uint8_t> body(kIcmpEchoHeaderBytes, 0);
  body[0] = 3;
  const auto other = Datagram::make_raw(kSrc, kDst, kProtoIcmp, body);
  EXPECT_FALSE(parse_icmp_echo(other).has_value());
}

TEST(IcmpEcho, ReplySwapsAddressesAndEchoesIds) {
  const std::vector<std::uint8_t> payload{5, 6};
  const auto request = make_icmp_echo(kSrc, kDst, false, 42, 3, payload);
  const auto reply = icmp_echo_reply_for(request);
  ASSERT_TRUE(reply.has_value());
  const auto ip = reply->ip();
  EXPECT_EQ(ip->source, kDst);
  EXPECT_EQ(ip->destination, kSrc);
  const auto echo = parse_icmp_echo(*reply);
  ASSERT_TRUE(echo.has_value());
  EXPECT_TRUE(echo->is_reply);
  EXPECT_EQ(echo->identifier, 42);
  EXPECT_EQ(echo->sequence, 3);
  // A reply has no reply.
  EXPECT_FALSE(icmp_echo_reply_for(*reply).has_value());
}

TEST(IcmpEcho, VerfploeterProbeLifecycle) {
  const auto graph = test::small_topology();
  const measure::AddressPlan plan(graph);
  measure::VerfploeterOptions options;
  const measure::VerfploeterProber prober(graph, plan, options);

  const auto probe = prober.make_probe(2, 17);
  const auto ip = probe.ip();
  ASSERT_TRUE(ip.has_value());
  // Probes originate inside the anycast prefix (that is the whole trick).
  EXPECT_EQ(ip->source, measure::AddressPlan::experiment_target());

  const auto reply = icmp_echo_reply_for(probe);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(prober.is_probe_reply(*reply));
  // A reply from a different session is not ours.
  measure::VerfploeterOptions other_options;
  other_options.seed ^= 0x123456;
  const measure::VerfploeterProber other(graph, plan, other_options);
  EXPECT_FALSE(other.is_probe_reply(*reply));
  // The request itself is not a reply.
  EXPECT_FALSE(prober.is_probe_reply(probe));
}

}  // namespace
}  // namespace spooftrack::netcore
