#include "core/attribution.hpp"

#include <gtest/gtest.h>

namespace spooftrack::core {
namespace {

Clustering make_clustering(std::vector<std::uint32_t> ids,
                           std::uint32_t count) {
  Clustering clustering;
  clustering.cluster_of = std::move(ids);
  clustering.cluster_count = count;
  return clustering;
}

TEST(TrafficBySize, CumulativeVolumeMonotone) {
  // 5 sources: clusters {0,1}, {2}, {3,4} -> sizes 2,1,2.
  const auto clustering = make_clustering({0, 0, 1, 2, 2}, 3);
  const std::vector<double> volume = {0.1, 0.1, 0.5, 0.15, 0.15};
  const auto result = traffic_by_cluster_size(clustering, volume);
  ASSERT_EQ(result.cluster_size.size(), 2u);  // sizes 1 and 2
  EXPECT_EQ(result.cluster_size[0], 1u);
  EXPECT_NEAR(result.cumulative_volume[0], 0.5, 1e-9);
  EXPECT_EQ(result.cluster_size[1], 2u);
  EXPECT_NEAR(result.cumulative_volume[1], 1.0, 1e-9);
}

TEST(TrafficBySize, SingletonClustersCaptureAllVolume) {
  const auto clustering = make_clustering({0, 1, 2}, 3);
  const std::vector<double> volume = {0.2, 0.3, 0.5};
  const auto result = traffic_by_cluster_size(clustering, volume);
  ASSERT_EQ(result.cluster_size.size(), 1u);
  EXPECT_EQ(result.cluster_size[0], 1u);
  EXPECT_NEAR(result.cumulative_volume[0], 1.0, 1e-9);
}

TEST(TrafficBySize, SizeMismatchThrows) {
  const auto clustering = make_clustering({0, 0}, 1);
  EXPECT_THROW(traffic_by_cluster_size(clustering, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(AttributeClusters, RanksTrueClusterFirst) {
  // Two configs, three sources in three singleton clusters.
  // Source 1 is the attacker: volumes concentrate on its catchment link.
  measure::CatchmentMatrix matrix = {
      {0, 1, 1},
      {0, 0, 1},
  };
  const auto clustering = make_clustering({0, 1, 2}, 3);
  // Observed per-link volumes: all traffic follows source 1's trajectory
  // (link 1 in config 0, link 0 in config 1).
  const std::vector<std::vector<double>> volumes = {
      {0.0, 1.0},
      {1.0, 0.0},
  };
  const auto result = attribute_clusters(matrix, clustering, volumes);
  ASSERT_EQ(result.ranking.size(), 3u);
  EXPECT_EQ(result.ranking.front(), 1u);
  EXPECT_GT(result.score[1], result.score[0]);
  EXPECT_GT(result.score[1], result.score[2]);
}

TEST(AttributeClusters, SharedTrajectoryTies) {
  // Sources 0 and 1 always share catchments -> same cluster; the cluster's
  // score uses one representative and is well-defined.
  measure::CatchmentMatrix matrix = {
      {0, 0, 1},
  };
  const auto clustering = cluster_sources(matrix);
  ASSERT_EQ(clustering.cluster_count, 2u);
  const std::vector<std::vector<double>> volumes = {{0.9, 0.1}};
  const auto result = attribute_clusters(matrix, clustering, volumes);
  EXPECT_EQ(result.ranking.front(), clustering.cluster_of[0]);
}

TEST(AttributeClusters, ConfigCountMismatchThrows) {
  measure::CatchmentMatrix matrix = {{0, 1}};
  const auto clustering = make_clustering({0, 1}, 2);
  EXPECT_THROW(attribute_clusters(matrix, clustering, {}),
               std::invalid_argument);
}

TEST(AttributeClusters, MissingCatchmentPenalised) {
  measure::CatchmentMatrix matrix = {
      {0, bgp::kNoCatchment},
  };
  const auto clustering = make_clustering({0, 1}, 2);
  const std::vector<std::vector<double>> volumes = {{1.0, 0.0}};
  const auto result = attribute_clusters(matrix, clustering, volumes);
  EXPECT_GT(result.score[0], result.score[1]);
}

TEST(AttributeMixture, RecoversTwoSourceDecomposition) {
  // Three singleton clusters with distinguishable trajectories; clusters 0
  // and 2 emit 70% / 30% of the traffic.
  measure::CatchmentMatrix matrix = {
      {0, 1, 1},
      {0, 0, 1},
      {1, 0, 0},
  };
  const auto clustering = make_clustering({0, 1, 2}, 3);
  // Observed volumes = 0.7 * trajectory(cluster0) + 0.3 * trajectory(c2).
  const std::vector<std::vector<double>> volumes = {
      {0.7, 0.3},
      {0.7, 0.3},
      {0.3, 0.7},
  };
  const auto result = attribute_mixture(matrix, clustering, volumes);
  ASSERT_EQ(result.components.size(), 2u);
  EXPECT_EQ(result.components[0].cluster, 0u);
  EXPECT_NEAR(result.components[0].weight, 0.7, 1e-9);
  EXPECT_EQ(result.components[1].cluster, 2u);
  EXPECT_NEAR(result.components[1].weight, 0.3, 1e-9);
  EXPECT_NEAR(result.residual_fraction, 0.0, 1e-9);
}

TEST(AttributeMixture, InnocentClustersGetNoWeight) {
  // Cluster 1's trajectory hits a zero-volume link in config 1, so its
  // consistent weight is zero.
  measure::CatchmentMatrix matrix = {
      {0, 1},
      {0, 1},
  };
  const auto clustering = make_clustering({0, 1}, 2);
  const std::vector<std::vector<double>> volumes = {
      {1.0, 0.0},
      {1.0, 0.0},
  };
  const auto result = attribute_mixture(matrix, clustering, volumes);
  ASSERT_EQ(result.components.size(), 1u);
  EXPECT_EQ(result.components[0].cluster, 0u);
  EXPECT_NEAR(result.components[0].weight, 1.0, 1e-9);
}

TEST(AttributeMixture, MinWeightAndComponentCaps) {
  measure::CatchmentMatrix matrix = {
      {0, 1, 1},
  };
  const auto clustering = make_clustering({0, 1, 2}, 3);
  const std::vector<std::vector<double>> volumes = {{0.9, 0.1}};
  // With a high threshold only the dominant component survives.
  const auto strict = attribute_mixture(matrix, clustering, volumes, 0.5);
  EXPECT_EQ(strict.components.size(), 1u);
  // With max_components = 0 nothing is extracted.
  const auto none = attribute_mixture(matrix, clustering, volumes, 0.01, 0);
  EXPECT_TRUE(none.components.empty());
  EXPECT_NEAR(none.residual_fraction, 1.0, 1e-9);
}

TEST(AttributeMixture, VolumesNeedNotBeNormalised) {
  measure::CatchmentMatrix matrix = {
      {0, 1},
  };
  const auto clustering = make_clustering({0, 1}, 2);
  // Raw packet counts instead of fractions.
  const std::vector<std::vector<double>> volumes = {{300.0, 100.0}};
  const auto result = attribute_mixture(matrix, clustering, volumes);
  ASSERT_EQ(result.components.size(), 2u);
  EXPECT_NEAR(result.components[0].weight, 0.75, 1e-9);
  EXPECT_NEAR(result.components[1].weight, 0.25, 1e-9);
}

TEST(AttributeMixture, MismatchThrows) {
  const auto clustering = make_clustering({0}, 1);
  measure::CatchmentMatrix matrix = {{0}};
  EXPECT_THROW(attribute_mixture(matrix, clustering, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace spooftrack::core
