// Equivalence suite for the bit-sliced analysis kernels (ISSUE 9): the
// BitplaneStore mirror and every kernel running on it — plane-partition
// refinement, the bitplane greedy scheduler, the tiled column gather —
// must be bit-identical to the byte-store algorithms, for every worker
// count and for both SIMD dispatch paths.
#include "measure/bitplane_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "bgp/catchment.hpp"
#include "core/bitplane_kernels.hpp"
#include "core/cluster.hpp"
#include "core/cluster_slots.hpp"
#include "core/scheduler.hpp"
#include "measure/catchment_store.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace spooftrack {
namespace {

constexpr std::uint32_t kLinkCount = 9;

/// Hidden-group matrix with missing cells and noise, mirroring the PR4
/// generator; `sources` is deliberately varied across word-boundary
/// widths (13, 64, 65, 100, ...) by the tests.
measure::CatchmentStore random_store(std::size_t configs, std::size_t sources,
                                     std::uint64_t seed) {
  util::Rng rng(seed ^ 0xB17);
  const std::size_t groups = std::max<std::size_t>(3, sources / 6);
  std::vector<std::size_t> group_of(sources);
  for (auto& g : group_of) g = rng.next_below(groups);

  measure::CatchmentStore store(0, sources);
  std::vector<std::uint8_t> row(sources);
  std::vector<std::uint8_t> prototype(groups);
  for (std::size_t c = 0; c < configs; ++c) {
    for (auto& p : prototype) {
      p = static_cast<std::uint8_t>(rng.next_below(kLinkCount));
    }
    for (std::size_t s = 0; s < sources; ++s) {
      if (rng.chance(0.05)) {
        row[s] = measure::kNoCatchment8;
      } else if (rng.chance(0.05)) {
        row[s] = static_cast<std::uint8_t>(rng.next_below(kLinkCount));
      } else {
        row[s] = prototype[group_of[s]];
      }
    }
    store.append_row(row);
  }
  return store;
}

/// Exercises the full valid cell range, not just small link ids.
measure::CatchmentStore full_range_store(std::size_t configs,
                                         std::size_t sources,
                                         std::uint64_t seed) {
  util::Rng rng(seed ^ 0xF0LL);
  measure::CatchmentStore store(0, sources);
  std::vector<std::uint8_t> row(sources);
  for (std::size_t c = 0; c < configs; ++c) {
    for (auto& cell : row) {
      cell = rng.chance(0.2) ? measure::kNoCatchment8
                             : static_cast<std::uint8_t>(
                                   rng.next_below(bgp::kMaxCatchmentLinks));
    }
    store.append_row(row);
  }
  return store;
}

class SimdLevels : public ::testing::TestWithParam<util::SimdLevel> {
 protected:
  void SetUp() override { util::force_simd_level(GetParam()); }
  void TearDown() override { util::force_simd_level(std::nullopt); }
};

INSTANTIATE_TEST_SUITE_P(BitplaneStore, SimdLevels,
                         ::testing::Values(util::SimdLevel::kScalar,
                                           util::SimdLevel::kWide),
                         [](const auto& info) {
                           return std::string(
                               util::simd_level_name(info.param));
                         });

// --- Construction, round trip, plane layout -------------------------------

TEST_P(SimdLevels, CellsMatchStoreAcrossWidths) {
  for (const std::size_t sources : {1u, 7u, 13u, 63u, 64u, 65u, 100u, 190u}) {
    const auto store = full_range_store(11, sources, sources);
    const measure::BitplaneStore planes(store);
    ASSERT_EQ(planes.configs(), store.configs());
    ASSERT_EQ(planes.sources(), store.sources());
    ASSERT_EQ(planes.words(), (sources + 63) / 64);
    for (std::size_t c = 0; c < store.configs(); ++c) {
      for (std::size_t s = 0; s < sources; ++s) {
        ASSERT_EQ(planes.cell(c, s), store.cell(c, s))
            << "sources=" << sources << " cell (" << c << ", " << s << ")";
      }
    }
  }
}

TEST_P(SimdLevels, RoundTripIsExact) {
  for (const std::size_t sources : {13u, 64u, 65u, 100u}) {
    const auto store = random_store(17, sources, 3 * sources);
    const measure::BitplaneStore planes(store);
    EXPECT_EQ(planes.to_store(), store) << "sources=" << sources;
  }
}

TEST_P(SimdLevels, MissingCellsReadAsMissingSlotInValuePlanes) {
  // A missing cell must carry all six value bits (slot 63 == kMissingSlot,
  // exactly what core::slot_of folds 0xFF into) plus the missing-plane bit.
  measure::CatchmentStore store(0, 70);
  std::vector<std::uint8_t> row(70, 5);
  row[0] = measure::kNoCatchment8;
  row[69] = measure::kNoCatchment8;
  store.append_row(row);
  const measure::BitplaneStore planes(store);
  EXPECT_EQ(planes.slot_at(0, 0), core::kMissingSlot);
  EXPECT_EQ(planes.slot_at(0, 69), core::kMissingSlot);
  EXPECT_TRUE(planes.missing_at(0, 0));
  EXPECT_TRUE(planes.missing_at(0, 69));
  EXPECT_FALSE(planes.missing_at(0, 1));
  EXPECT_EQ(planes.slot_at(0, 1), 5u);
  EXPECT_EQ(planes.missing_cells(), 2u);
}

TEST_P(SimdLevels, PaddingLanesAreZeroInEveryPlane) {
  const auto store = random_store(5, 70, 99);
  const measure::BitplaneStore planes(store);
  const std::uint64_t tail_mask = ~std::uint64_t{0} << (70 - 64);
  for (std::size_t c = 0; c < planes.configs(); ++c) {
    for (std::size_t p = 0; p < measure::BitplaneStore::kPlanes; ++p) {
      EXPECT_EQ(planes.plane(c, p)[1] & tail_mask, 0u)
          << "config " << c << " plane " << p;
    }
  }
}

TEST_P(SimdLevels, InvalidCellsThrow) {
  // CatchmentStore validates on ingest, so smuggle invalid bytes in
  // through the mutable buffer — BitplaneStore must still catch them.
  for (const std::uint8_t bad : {std::uint8_t{62}, std::uint8_t{0x80},
                                 std::uint8_t{0xFE}}) {
    for (const std::size_t victim : {0u, 31u, 64u, 76u}) {
      measure::CatchmentStore store(2, 77);
      store.data()[77 + victim] = bad;
      EXPECT_THROW(measure::BitplaneStore{store}, std::out_of_range)
          << "bad=" << int{bad} << " victim=" << victim;
    }
  }
}

TEST(BitplaneStoreTest, ScalarAndWideBuildsAreBitIdentical) {
  for (const std::size_t sources : {13u, 64u, 65u, 100u, 333u}) {
    const auto store = full_range_store(19, sources, 7 * sources);
    util::force_simd_level(util::SimdLevel::kScalar);
    const measure::BitplaneStore scalar(store);
    util::force_simd_level(util::SimdLevel::kWide);
    const measure::BitplaneStore wide(store);
    util::force_simd_level(std::nullopt);
    EXPECT_EQ(scalar, wide) << "sources=" << sources;
  }
}

TEST(BitplaneStoreTest, EmptyAndZeroSourceMatrices) {
  const measure::CatchmentStore empty;
  const measure::BitplaneStore planes(empty);
  EXPECT_TRUE(planes.empty());
  EXPECT_EQ(planes.missing_cells(), 0u);
  EXPECT_EQ(planes.to_store(), empty);

  // Rows with zero columns: words() is 0 and every kernel is a no-op.
  measure::CatchmentStore rows_only(3, 0);
  const measure::BitplaneStore no_cols(rows_only);
  EXPECT_EQ(no_cols.configs(), 3u);
  EXPECT_EQ(no_cols.words(), 0u);
  EXPECT_EQ(no_cols.missing_cells(), 0u);
}

TEST(BitplaneStoreTest, MissingCellsMatchesByteScan) {
  const auto store = full_range_store(23, 131, 42);
  const measure::BitplaneStore planes(store);
  std::uint64_t expected = 0;
  for (std::size_t c = 0; c < store.configs(); ++c) {
    for (const std::uint8_t cell : store.row(c)) {
      expected += cell == measure::kNoCatchment8 ? 1 : 0;
    }
  }
  EXPECT_EQ(planes.missing_cells(), expected);
}

// --- Popcount dispatch ----------------------------------------------------

TEST(SimdDispatch, PopcountMatchesScalarOnBothPaths) {
  util::Rng rng(0xC0DE);
  std::vector<std::uint64_t> words(137);
  for (auto& w : words) {
    w = rng.next_below(~std::uint64_t{0});
    if (rng.chance(0.1)) w = 0;
    if (rng.chance(0.1)) w = ~std::uint64_t{0};
  }
  const std::uint64_t expected =
      util::popcount_words_scalar(words.data(), words.size());
  for (const auto level :
       {util::SimdLevel::kScalar, util::SimdLevel::kWide}) {
    util::force_simd_level(level);
    EXPECT_EQ(util::popcount_words(words.data(), words.size()), expected)
        << util::simd_level_name(level);
  }
  util::force_simd_level(std::nullopt);
}

TEST(SimdDispatch, ForcedWideClampsToHardware) {
  util::force_simd_level(util::SimdLevel::kWide);
  if (util::detected_simd_level() == util::SimdLevel::kScalar) {
    EXPECT_EQ(util::active_simd_level(), util::SimdLevel::kScalar);
  } else {
    EXPECT_EQ(util::active_simd_level(), util::SimdLevel::kWide);
  }
  util::force_simd_level(std::nullopt);
}

// --- Cluster refinement equivalence ---------------------------------------

TEST_P(SimdLevels, BitplaneRefineMatchesByteRefine) {
  for (const std::size_t sources : {13u, 65u, 190u}) {
    const auto store = random_store(31, sources, 11 * sources);
    const measure::BitplaneStore planes(store);
    core::ClusterTracker byte_tracker(sources);
    core::ClusterTracker plane_tracker(sources);
    for (std::size_t c = 0; c < store.configs(); ++c) {
      const auto byte_count = byte_tracker.refine(store.row(c));
      const auto plane_count = plane_tracker.refine(planes, c);
      ASSERT_EQ(plane_count, byte_count) << "config " << c;
      ASSERT_EQ(plane_tracker.current().cluster_of,
                byte_tracker.current().cluster_of)
          << "config " << c;
    }
  }
}

TEST_P(SimdLevels, ClusterSourcesOverloadsAgree) {
  const auto store = random_store(21, 77, 5);
  const measure::BitplaneStore planes(store);
  const auto from_bytes = core::cluster_sources(store);
  const auto from_planes = core::cluster_sources(planes);
  EXPECT_EQ(from_planes.cluster_of, from_bytes.cluster_of);
  EXPECT_EQ(from_planes.cluster_count, from_bytes.cluster_count);
}

TEST(BitplaneKernels, SingletonLazinessSurvivesInterleavedAccess) {
  // Enable singleton tracking mid-stream: the mask must match a tracker
  // that tracked from the start.
  const auto store = random_store(15, 50, 77);
  core::ClusterTracker eager(50);
  eager.singleton_mask();
  core::ClusterTracker lazy(50);
  for (std::size_t c = 0; c < store.configs(); ++c) {
    eager.refine(store.row(c));
    lazy.refine(store.row(c));
    if (c == 7) {
      // First access flips lazy into tracking mode.
      ASSERT_EQ(lazy.singleton_count(), eager.singleton_count());
    }
  }
  const auto lazy_mask = lazy.singleton_mask();
  const auto eager_mask = eager.singleton_mask();
  ASSERT_TRUE(std::equal(lazy_mask.begin(), lazy_mask.end(),
                         eager_mask.begin(), eager_mask.end()));
  EXPECT_EQ(lazy.singleton_count(), eager.singleton_count());
  EXPECT_EQ(lazy.current().cluster_of, eager.current().cluster_of);
}

// --- count_after equivalence ---------------------------------------------

TEST_P(SimdLevels, CountAfterMatchesStampReference) {
  const std::size_t sources = 130;
  const auto store = random_store(40, sources, 123);
  const measure::BitplaneStore planes(store);

  core::ClusterTracker tracker(sources);
  // Partially refine so clusters of several sizes exist.
  for (std::size_t c = 0; c < 3; ++c) tracker.refine(store.row(c));

  const auto mask = tracker.singleton_mask();
  const std::uint32_t singles = tracker.singleton_count();
  core::ClusterMasks masks;
  masks.build(tracker.current().cluster_of, tracker.cluster_count(), mask);

  for (std::size_t c = 0; c < store.configs(); ++c) {
    // Stamp-table reference: distinct (cluster, slot) buckets.
    std::vector<std::uint8_t> seen(
        std::size_t{tracker.cluster_count()} * core::kSlots, 0);
    std::uint32_t expected = singles;
    const auto& cluster_of = tracker.current().cluster_of;
    for (std::size_t s = 0; s < sources; ++s) {
      if (mask[s] != 0) continue;
      const std::size_t key = std::size_t{cluster_of[s]} * core::kSlots +
                              core::slot_of(store.cell(c, s));
      if (seen[key] == 0) {
        seen[key] = 1;
        ++expected;
      }
    }
    const std::uint32_t counted = core::count_after_bitplane(
        masks, singles, store.row(c).data(), planes.row_planes(c),
        planes.words(), /*bound=*/0);
    ASSERT_EQ(counted, expected) << "config " << c;
    const std::uint32_t by_members = core::count_after_members(
        masks, singles, store.row(c).data(), /*bound=*/0);
    ASSERT_EQ(by_members, expected) << "config " << c;

    // With bound == the exact count, the abort may fire but must never
    // report more than the true count.
    const std::uint32_t bounded = core::count_after_bitplane(
        masks, singles, store.row(c).data(), planes.row_planes(c),
        planes.words(), expected);
    ASSERT_LE(bounded, expected);
    ASSERT_LE(core::count_after_members(masks, singles, store.row(c).data(),
                                        expected),
              expected);
  }
}

// --- Scheduler equivalence ------------------------------------------------

TEST_P(SimdLevels, GreedyKernelsAgreeForAllWorkerCounts) {
  for (const std::size_t sources : {29u, 100u}) {
    const auto store = random_store(24, sources, 1000 + sources);
    const auto reference =
        core::greedy_schedule(store, 0, 1, core::GreedyKernel::kByte);
    for (const std::size_t workers : {1u, 2u, 8u}) {
      for (const auto kernel :
           {core::GreedyKernel::kBitplane, core::GreedyKernel::kByte}) {
        const auto trace = core::greedy_schedule(store, 0, workers, kernel);
        ASSERT_EQ(trace.order, reference.order)
            << "sources=" << sources << " workers=" << workers;
        ASSERT_EQ(trace.mean_cluster_size, reference.mean_cluster_size)
            << "sources=" << sources << " workers=" << workers;
      }
    }
  }
}

TEST(BitplaneKernels, GreedyDefaultsToBitplaneKernel) {
  const auto store = random_store(12, 40, 4242);
  const auto defaulted = core::greedy_schedule(store);
  const auto bitplane =
      core::greedy_schedule(store, 0, 0, core::GreedyKernel::kBitplane);
  EXPECT_EQ(defaulted.order, bitplane.order);
}

// --- Column gather --------------------------------------------------------

TEST(ColumnGather, MatchesStridedColumnView) {
  const auto store = full_range_store(37, 90, 9);
  std::vector<std::uint32_t> columns = {0, 1, 17, 63, 64, 89, 42};
  std::vector<std::uint8_t> gathered(columns.size() * store.configs());
  store.gather_columns(columns, gathered.data());
  for (std::size_t j = 0; j < columns.size(); ++j) {
    const auto view = store.column(columns[j]);
    for (std::size_t c = 0; c < store.configs(); ++c) {
      ASSERT_EQ(gathered[j * store.configs() + c], view[c])
          << "column " << columns[j] << " config " << c;
    }
  }

  std::vector<std::uint8_t> single(store.configs());
  store.gather_column(17, single.data());
  const auto view = store.column(17);
  for (std::size_t c = 0; c < store.configs(); ++c) {
    ASSERT_EQ(single[c], view[c]);
  }
}

}  // namespace
}  // namespace spooftrack
